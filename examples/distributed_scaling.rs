//! Distributed BPMF on in-process MPI-style ranks: strong scaling, overlap
//! accounting, and the guarantee that every rank reports the identical RMSE
//! trace.
//!
//! Run with: `cargo run --release -p bpmf --example distributed_scaling`

use bpmf::distributed::{run_rank, DistConfig};
use bpmf::BpmfConfig;
use bpmf_dataset::movielens_like;
use bpmf_mpisim::{NetModel, Universe};

fn main() {
    let ds = movielens_like(0.005, 7);
    println!(
        "distributed BPMF on {}: {} users x {} movies, {} ratings\n",
        ds.name,
        ds.nrows(),
        ds.ncols(),
        ds.nnz()
    );

    println!("ranks  items/s    final-RMSE  compute  both   comm   bytes-sent");
    for ranks in [1usize, 2, 4] {
        let cfg = DistConfig {
            base: BpmfConfig {
                num_latent: 16,
                burnin: 4,
                samples: 8,
                seed: 11,
                kernel_threads: 1,
                ..Default::default()
            },
            send_buffer_items: 64,
            poll_every: 8,
            reorder: true,
            ..Default::default()
        };
        let outcomes = Universe::run(ranks, Some(NetModel::test_cluster()), |comm| {
            run_rank(comm, &ds.train, &ds.train_t, ds.global_mean, &ds.test, &cfg)
        });

        // The asynchronous protocol is still exact: every rank computed the
        // identical RMSE trace.
        for o in &outcomes[1..] {
            assert_eq!(
                o.rmse_mean_trace
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                outcomes[0]
                    .rmse_mean_trace
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "ranks disagreed on the RMSE trace"
            );
        }

        let o = &outcomes[0];
        let bytes: u64 = outcomes.iter().map(|x| x.bytes_sent).sum();
        println!(
            "{:5}  {:9.0}  {:10.4}  {:6.1}%  {:5.1}%  {:5.1}%  {}",
            ranks,
            o.items_per_sec,
            o.final_rmse(),
            o.compute_frac * 100.0,
            o.both_frac * 100.0,
            o.comm_frac * 100.0,
            bytes,
        );
    }
    println!("\n(all ranks verified to produce bit-identical RMSE traces)");
    println!("note: ranks are threads sharing this machine's cores, so items/s");
    println!("does not scale like the paper's cluster — see the fig4 harness for");
    println!("the calibrated BlueGene/Q extrapolation.");
}
