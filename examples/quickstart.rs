//! Quickstart: train BPMF on a small synthetic workload and watch RMSE
//! converge toward the planted noise floor.
//!
//! Run with: `cargo run --release -p bpmf --example quickstart`

use bpmf::{BpmfConfig, EngineKind, GibbsSampler, TrainData};
use bpmf_dataset::SyntheticConfig;

fn main() {
    // A 500 × 300 rating matrix with planted rank-8 structure and noise
    // σ = 0.5 — the best possible test RMSE is therefore ≈ 0.5.
    let dataset = SyntheticConfig {
        name: "quickstart".into(),
        nrows: 500,
        ncols: 300,
        nnz: 20_000,
        k_true: 8,
        noise_sd: 0.5,
        row_exponent: 0.5,
        col_exponent: 0.8,
        clip: None,
        clusters: None,
        intra_cluster_prob: 0.0,
        test_fraction: 0.1,
        seed: 42,
    }
    .generate();

    println!(
        "dataset: {} users x {} movies, {} train ratings, {} test ratings",
        dataset.nrows(),
        dataset.ncols(),
        dataset.nnz(),
        dataset.test.len()
    );
    println!("oracle RMSE floor: {:.4}\n", dataset.oracle_rmse().unwrap());

    let cfg = BpmfConfig {
        num_latent: 16,
        burnin: 8,
        samples: 20,
        seed: 7,
        ..Default::default()
    };
    let iterations = cfg.iterations();
    let data = TrainData::new(&dataset.train, &dataset.train_t, dataset.global_mean, &dataset.test);
    let runner = EngineKind::WorkStealing.build(
        std::thread::available_parallelism().map_or(2, |n| n.get()),
    );

    let mut sampler = GibbsSampler::new(cfg, data);
    println!("iter  sample-RMSE  posterior-mean-RMSE  items/s");
    for _ in 0..iterations {
        let s = sampler.step(runner.as_ref());
        println!(
            "{:4}  {:11.4}  {:19.4}  {:9.0}",
            s.iter, s.rmse_sample, s.rmse_mean, s.items_per_sec
        );
    }

    // Predict one unseen pair from the final sample.
    let (u, m) = (3usize, 14usize);
    println!("\npredicted rating for (user {u}, movie {m}): {:.3}", sampler.predict_one(u, m));
}
