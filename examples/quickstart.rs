//! Quickstart: train BPMF through the unified `Bpmf::builder()` API on a
//! small synthetic workload and watch RMSE converge toward the planted
//! noise floor, streamed live through an `IterCallback`.
//!
//! Run with: `cargo run --release -p bpmf --example quickstart`

use bpmf::{Bpmf, EngineKind, FitControl, Recommender, TrainData, Trainer};
use bpmf_dataset::SyntheticConfig;

fn main() {
    // A 500 × 300 rating matrix with planted rank-8 structure and noise
    // σ = 0.5 — the best possible test RMSE is therefore ≈ 0.5.
    let dataset = SyntheticConfig {
        name: "quickstart".into(),
        nrows: 500,
        ncols: 300,
        nnz: 20_000,
        k_true: 8,
        noise_sd: 0.5,
        row_exponent: 0.5,
        col_exponent: 0.8,
        clip: None,
        clusters: None,
        intra_cluster_prob: 0.0,
        test_fraction: 0.1,
        seed: 42,
    }
    .generate();

    println!(
        "dataset: {} users x {} movies, {} train ratings, {} test ratings",
        dataset.nrows(),
        dataset.ncols(),
        dataset.nnz(),
        dataset.test.len()
    );
    println!("oracle RMSE floor: {:.4}\n", dataset.oracle_rmse().unwrap());

    // One fluent, validated configuration instead of a bare config struct.
    let spec = Bpmf::builder()
        .latent(16)
        .burnin(8)
        .samples(20)
        .seed(7)
        .engine(EngineKind::WorkStealing)
        .threads(std::thread::available_parallelism().map_or(2, |n| n.get()))
        .build()
        .expect("valid configuration");

    let data = TrainData::try_new(
        &dataset.train,
        &dataset.train_t,
        dataset.global_mean,
        &dataset.test,
    )
    .expect("well-formed training data");
    let runner = spec.runner();
    let mut trainer = spec.gibbs_trainer();

    // Stream every Gibbs iteration as it happens.
    println!("iter  sample-RMSE  posterior-mean-RMSE  items/s");
    let mut on_iter = |s: &bpmf::IterStats| {
        println!(
            "{:4}  {:11.4}  {:19.4}  {:9.0}",
            s.iter, s.rmse_sample, s.rmse_mean, s.items_per_sec
        );
        FitControl::Continue
    };
    let report = trainer
        .fit(&data, runner.as_ref(), &mut on_iter)
        .expect("training succeeds");
    println!(
        "\ntrained in {:.2}s — final posterior-mean RMSE {:.4}",
        report.total_seconds,
        report.final_rmse()
    );

    // Predict one unseen pair from the fitted model.
    let model = trainer.model().expect("model available after fit");
    let (u, m) = (3usize, 14usize);
    println!(
        "predicted rating for (user {u}, movie {m}): {:.3}",
        model.predict(u, m)
    );
}
