//! BPMF vs ALS vs SGD — the trade-off the paper's introduction describes.
//!
//! "Popular algorithms for low-rank matrix factorization are alternating
//! least-squares (ALS), stochastic gradient descent (SGD) and the Bayesian
//! probabilistic matrix factorization (BPMF). … BPMF has been proven to be
//! more robust to data-overfitting and released from cross-validation …
//! Yet BPMF is more computational intensive." (§I)
//!
//! All algorithms — the two baselines, shared-memory BPMF, and the
//! paper's distributed BPMF — run through ONE code path: `Bpmf::builder()`
//! selects the algorithm, `make_trainer` hands back a `Box<dyn Trainer>`,
//! and fitting/serving is identical from the caller's side — the exact
//! "one builder, one trait, one report" the unified API exists for.
//!
//! Run with: `cargo run --release -p bpmf --example algorithm_comparison`

use bpmf::{Algorithm, Bpmf, NoCallback, TrainData, Trainer};
use bpmf_baselines::make_trainer;
use bpmf_dataset::chembl_like;

fn main() {
    let ds = chembl_like(0.01, 42);
    println!(
        "workload: {} ({} x {}, {} train / {} test ratings)\n",
        ds.name,
        ds.nrows(),
        ds.ncols(),
        ds.nnz(),
        ds.test.len()
    );
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    let data = TrainData::try_new(&ds.train, &ds.train_t, ds.global_mean, &ds.test)
        .expect("well-formed dataset");

    println!(
        "{:<22} {:>10} {:>12} {:>16}",
        "algorithm", "RMSE", "wall time", "extras"
    );
    println!("{}", "-".repeat(64));

    let mut gibbs_trainer: Option<Box<dyn Trainer>> = None;
    for algorithm in Algorithm::all() {
        // One builder serves every algorithm; unrelated knobs are ignored.
        let spec = Bpmf::builder()
            .algorithm(algorithm)
            .latent(16)
            .threads(threads)
            .sweeps(20)
            .epochs(30)
            .learning_rate(0.02)
            .decay(0.02)
            .lambda(match algorithm {
                Algorithm::Als => 0.08,
                _ => 0.05,
            })
            .burnin(8)
            .samples(24)
            .seed(3)
            .build()
            .expect("valid spec");
        let runner = spec.runner();
        let mut trainer = make_trainer(&spec);
        let report = trainer
            .fit(&data, runner.as_ref(), &mut NoCallback)
            .expect("fit succeeds");

        let label = match algorithm {
            Algorithm::Als => "ALS-WR (20 sweeps)".to_string(),
            Algorithm::Sgd => "SGD (30 epochs)".to_string(),
            Algorithm::Gibbs => "BPMF (32 iters)".to_string(),
            Algorithm::Sgmcmc => "BPMF SGLD (32 iters)".to_string(),
            Algorithm::Distributed => format!("BPMF dist ({threads} ranks)"),
        };
        let extras = match algorithm {
            Algorithm::Als => "needs λ tuning",
            Algorithm::Sgd => "needs λ,η tuning",
            Algorithm::Gibbs => "no tuning + CI",
            Algorithm::Sgmcmc => "mini-batch + CI",
            Algorithm::Distributed => "scales out + CI",
        };
        println!(
            "{:<22} {:>10.4} {:>11.2}s {:>16}",
            label,
            report.final_rmse(),
            report.total_seconds,
            extras
        );
        if algorithm == Algorithm::Gibbs {
            gibbs_trainer = Some(trainer);
        }
    }

    // BPMF's extra deliverable: uncertainty per prediction, straight from
    // the shared Recommender trait (None for the point estimators).
    if let Some(trainer) = &gibbs_trainer {
        let rec = trainer.recommender().expect("fitted model");
        let mut total = 0.0;
        let mut count = 0usize;
        for &(u, m, _) in ds.test.iter().take(200) {
            if let Some(s) = rec.predict_with_uncertainty(u as usize, m as usize) {
                total += s.std;
                count += 1;
            }
        }
        if count > 0 {
            println!(
                "\nBPMF predictive uncertainty: mean posterior std = {:.4} over {count} test points",
                total / count as f64
            );
        }
    }
    if let Some(oracle) = ds.oracle_rmse() {
        println!("oracle RMSE (planted model, noise floor): {oracle:.4}");
    }
}
