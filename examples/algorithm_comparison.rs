//! BPMF vs ALS vs SGD — the trade-off the paper's introduction describes.
//!
//! "Popular algorithms for low-rank matrix factorization are alternating
//! least-squares (ALS), stochastic gradient descent (SGD) and the Bayesian
//! probabilistic matrix factorization (BPMF). … BPMF has been proven to be
//! more robust to data-overfitting and released from cross-validation …
//! Yet BPMF is more computational intensive." (§I)
//!
//! This example trains all three on the same ChEMBL-like workload and
//! reports held-out RMSE and wall time per algorithm, making the trade-off
//! concrete: ALS/SGD are faster per pass, BPMF needs no λ tuning and also
//! yields predictive uncertainty.
//!
//! Run with: `cargo run --release -p bpmf --example algorithm_comparison`

use std::time::Instant;

use bpmf::{BpmfConfig, EngineKind, GibbsSampler, TrainData};
use bpmf_baselines::{AlsConfig, AlsTrainer, SgdConfig, SgdTrainer};
use bpmf_dataset::chembl_like;

fn main() {
    let ds = chembl_like(0.01, 42);
    println!(
        "workload: {} ({} x {}, {} train / {} test ratings)\n",
        ds.name,
        ds.nrows(),
        ds.ncols(),
        ds.nnz(),
        ds.test.len()
    );
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    let k = 16;
    println!("{:<22} {:>10} {:>12} {:>14}", "algorithm", "RMSE", "wall time", "extras");
    println!("{}", "-".repeat(62));

    // --- ALS-WR ------------------------------------------------------
    let t0 = Instant::now();
    let als_cfg = AlsConfig { num_latent: k, sweeps: 20, lambda: 0.08, ..Default::default() };
    let runner = EngineKind::WorkStealing.build(threads);
    let als = AlsTrainer::new(als_cfg, &ds.train, &ds.train_t).train(runner.as_ref());
    let als_time = t0.elapsed();
    println!(
        "{:<22} {:>10.4} {:>10.2?} {:>16}",
        "ALS-WR (20 sweeps)",
        als.rmse_on(&ds.test),
        als_time,
        "needs λ tuning"
    );

    // --- SGD (stratified-parallel) ------------------------------------
    let t0 = Instant::now();
    let sgd_cfg = SgdConfig {
        num_latent: k,
        epochs: 30,
        learning_rate: 0.02,
        decay: 0.02,
        lambda: 0.05,
        ..Default::default()
    };
    let sgd = SgdTrainer::new(sgd_cfg, &ds.train).train_stratified(threads);
    let sgd_time = t0.elapsed();
    println!(
        "{:<22} {:>10.4} {:>10.2?} {:>16}",
        "SGD (30 epochs)",
        sgd.rmse_on(&ds.test),
        sgd_time,
        "needs λ,η tuning"
    );

    // --- BPMF ----------------------------------------------------------
    let t0 = Instant::now();
    let cfg = BpmfConfig { num_latent: k, burnin: 8, samples: 24, seed: 3, ..Default::default() };
    let iterations = cfg.iterations();
    let data = TrainData::new(&ds.train, &ds.train_t, ds.global_mean, &ds.test);
    let mut sampler = GibbsSampler::new(cfg, data);
    let report = sampler.run(runner.as_ref(), iterations);
    let bpmf_time = t0.elapsed();
    println!(
        "{:<22} {:>10.4} {:>10.2?} {:>16}",
        "BPMF (32 iters)",
        report.final_rmse(),
        bpmf_time,
        "no tuning + CI"
    );

    // BPMF's extra deliverable: calibrated uncertainty per prediction.
    let summaries = sampler.test_prediction_summaries();
    if !summaries.is_empty() {
        let mean_std = summaries.iter().map(|s| s.std).sum::<f64>() / summaries.len() as f64;
        println!("\nBPMF predictive uncertainty: mean posterior std = {mean_std:.4}");
    }
    if let Some(oracle) = ds.oracle_rmse() {
        println!("oracle RMSE (planted model, noise floor): {oracle:.4}");
    }
}
