//! Confidence intervals from the posterior — the advantage the paper's
//! introduction credits BPMF with over ALS/SGD ("BPMF easily incorporates
//! confidence intervals").
//!
//! Trains on a planted workload, then reports per-prediction posterior
//! standard deviations and checks their empirical calibration: roughly 95%
//! of held-out ratings should fall inside mean ± 2·(predictive std), where
//! the predictive std combines the posterior spread with the observation
//! noise.
//!
//! Run with: `cargo run --release -p bpmf --example uncertainty`

use bpmf::{BpmfConfig, EngineKind, GibbsSampler, TrainData};
use bpmf_dataset::SyntheticConfig;

fn main() {
    let noise_sd = 0.4;
    let ds = SyntheticConfig {
        name: "uncertainty-demo".into(),
        nrows: 600,
        ncols: 300,
        nnz: 24_000,
        k_true: 8,
        noise_sd,
        row_exponent: 0.6,
        col_exponent: 0.8,
        clip: None,
        clusters: None,
        intra_cluster_prob: 0.0,
        test_fraction: 0.1,
        seed: 77,
    }
    .generate();
    println!(
        "dataset: {} x {}, {} train / {} test ratings, noise σ = {noise_sd}",
        ds.nrows(),
        ds.ncols(),
        ds.nnz(),
        ds.test.len()
    );

    let cfg = BpmfConfig { num_latent: 16, burnin: 8, samples: 30, seed: 5, ..Default::default() };
    let iterations = cfg.iterations();
    let data = TrainData::new(&ds.train, &ds.train_t, ds.global_mean, &ds.test);
    let runner = EngineKind::WorkStealing
        .build(std::thread::available_parallelism().map_or(2, |n| n.get()));
    let mut sampler = GibbsSampler::new(cfg, data);
    let report = sampler.run(runner.as_ref(), iterations);
    println!("trained: posterior-mean RMSE {:.4}\n", report.final_rmse());

    let summaries = sampler.test_prediction_summaries();

    // A few concrete predictions with their uncertainty.
    println!("sample predictions (mean ± posterior std, true rating):");
    for (s, &(i, j, r)) in summaries.iter().zip(ds.test.iter()).take(8) {
        println!("  user {i:4} movie {j:4}:  {:+.3} ± {:.3}   (true {:+.3})", s.mean, s.std, r);
    }

    // Calibration: predictive variance = posterior variance + noise
    // variance; ~95% of truths should fall inside ±2 predictive std.
    let mut covered = 0usize;
    for (s, &(_, _, r)) in summaries.iter().zip(&ds.test) {
        let predictive_std = (s.std * s.std + noise_sd * noise_sd).sqrt();
        if (s.mean - r).abs() <= 2.0 * predictive_std {
            covered += 1;
        }
    }
    let frac = covered as f64 / summaries.len() as f64;
    println!("\nempirical 2σ coverage: {:.1}% (Gaussian target ≈ 95%)", frac * 100.0);

    // Sparse items should be more uncertain than well-observed ones.
    let mut by_count: Vec<(usize, f64)> = summaries
        .iter()
        .zip(&ds.test)
        .map(|(s, &(i, _, _))| (ds.train.row_nnz(i as usize), s.std))
        .collect();
    by_count.sort_by_key(|&(c, _)| c);
    let quarter = by_count.len() / 4;
    let sparse_mean: f64 =
        by_count[..quarter].iter().map(|&(_, s)| s).sum::<f64>() / quarter as f64;
    let dense_mean: f64 =
        by_count[by_count.len() - quarter..].iter().map(|&(_, s)| s).sum::<f64>() / quarter as f64;
    println!(
        "mean posterior std: {:.3} for the least-observed users vs {:.3} for the most-observed",
        sparse_mean, dense_mean
    );
    println!("(uncertainty correctly concentrates on sparsely observed items)");
}
