//! Confidence intervals from the posterior — the advantage the paper's
//! introduction credits BPMF with over ALS/SGD ("BPMF easily incorporates
//! confidence intervals").
//!
//! Trains through the unified API, then queries per-prediction posterior
//! standard deviations via `Recommender::predict_with_uncertainty` — which
//! works for ANY (user, movie) pair, not just held-out test points — and
//! checks empirical calibration: roughly 95% of held-out ratings should
//! fall inside mean ± 2·(predictive std), where the predictive std
//! combines the posterior spread with the observation noise.
//!
//! Run with: `cargo run --release -p bpmf --example uncertainty`

use bpmf::{Bpmf, NoCallback, TrainData, Trainer};
use bpmf_dataset::SyntheticConfig;

fn main() {
    let noise_sd = 0.4;
    let ds = SyntheticConfig {
        name: "uncertainty-demo".into(),
        nrows: 600,
        ncols: 300,
        nnz: 24_000,
        k_true: 8,
        noise_sd,
        row_exponent: 0.6,
        col_exponent: 0.8,
        clip: None,
        clusters: None,
        intra_cluster_prob: 0.0,
        test_fraction: 0.1,
        seed: 77,
    }
    .generate();
    println!(
        "dataset: {} x {}, {} train / {} test ratings, noise σ = {noise_sd}",
        ds.nrows(),
        ds.ncols(),
        ds.nnz(),
        ds.test.len()
    );

    let spec = Bpmf::builder()
        .latent(16)
        .burnin(8)
        .samples(30)
        .seed(5)
        .threads(std::thread::available_parallelism().map_or(2, |n| n.get()))
        .build()
        .expect("valid configuration");
    let data = TrainData::try_new(&ds.train, &ds.train_t, ds.global_mean, &ds.test)
        .expect("well-formed dataset");
    let runner = spec.runner();
    let mut trainer = spec.gibbs_trainer();
    let report = trainer
        .fit(&data, runner.as_ref(), &mut NoCallback)
        .expect("training succeeds");
    println!("trained: posterior-mean RMSE {:.4}\n", report.final_rmse());

    let rec = trainer.recommender().expect("fitted model");
    let summaries: Vec<_> = ds
        .test
        .iter()
        .map(|&(i, j, _)| {
            rec.predict_with_uncertainty(i as usize, j as usize)
                .expect("posterior model provides uncertainty")
        })
        .collect();

    // A few concrete predictions with their uncertainty.
    println!("sample predictions (mean ± posterior std, true rating):");
    for (s, &(i, j, r)) in summaries.iter().zip(ds.test.iter()).take(8) {
        println!(
            "  user {i:4} movie {j:4}:  {:+.3} ± {:.3}   (true {:+.3})",
            s.mean, s.std, r
        );
    }

    // Calibration: predictive variance = posterior variance + noise
    // variance; ~95% of truths should fall inside ±2 predictive std.
    let mut covered = 0usize;
    for (s, &(_, _, r)) in summaries.iter().zip(&ds.test) {
        let predictive_std = (s.std * s.std + noise_sd * noise_sd).sqrt();
        if (s.mean - r).abs() <= 2.0 * predictive_std {
            covered += 1;
        }
    }
    let frac = covered as f64 / summaries.len() as f64;
    println!(
        "\nempirical 2σ coverage: {:.1}% (Gaussian target ≈ 95%)",
        frac * 100.0
    );

    // Sparse items should be more uncertain than well-observed ones.
    let mut by_count: Vec<(usize, f64)> = summaries
        .iter()
        .zip(&ds.test)
        .map(|(s, &(i, _, _))| (ds.train.row_nnz(i as usize), s.std))
        .collect();
    by_count.sort_by_key(|&(c, _)| c);
    let quarter = by_count.len() / 4;
    let sparse_mean: f64 =
        by_count[..quarter].iter().map(|&(_, s)| s).sum::<f64>() / quarter as f64;
    let dense_mean: f64 = by_count[by_count.len() - quarter..]
        .iter()
        .map(|&(_, s)| s)
        .sum::<f64>()
        / quarter as f64;
    println!(
        "mean posterior std: {:.3} for the least-observed users vs {:.3} for the most-observed",
        sparse_mean, dense_mean
    );
    println!("(uncertainty correctly concentrates on sparsely observed items)");

    // Uncertainty is available for pairs never rated and never held out —
    // something the per-test-point summaries of the raw sampler can't do.
    let s = rec.predict_with_uncertainty(0, ds.ncols() - 1).unwrap();
    println!(
        "\narbitrary-pair query (user 0, movie {}): {:+.3} ± {:.3}",
        ds.ncols() - 1,
        s.mean,
        s.std
    );
}
