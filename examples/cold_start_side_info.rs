//! Side information on a cold-start workload — the Macau extension
//! (the paper's reference [6], from the same ExaScience group).
//!
//! Drug-discovery matrices are cold-start heavy: most compounds have very
//! few measured targets, so their latent factors are barely constrained by
//! ratings alone. Macau's answer is to let per-item *features* (compound
//! fingerprints) shift the prior mean of each item's factors through a
//! Gibbs-sampled link matrix β.
//!
//! This example plants such a workload (user factors a linear function of
//! 6 features, only 2 training ratings per user), then trains plain BPMF
//! and feature-informed BPMF on identical data through the unified builder
//! — attaching features is one `.user_side_info(...)` call — and prints
//! both RMSE traces.
//!
//! Run with: `cargo run --release -p bpmf --example cold_start_side_info`

use bpmf::{Bpmf, NoCallback, TrainData, Trainer};
use bpmf_linalg::Mat;
use bpmf_sparse::{Coo, Csr};
use bpmf_stats::{normal, Xoshiro256pp};

struct Workload {
    train: Csr,
    train_t: Csr,
    test: Vec<(u32, u32, f64)>,
    features: Mat,
    global_mean: f64,
}

/// Users are "compounds" with 6 fingerprint features; factors are a planted
/// linear map of the features plus small noise; each compound has only two
/// measured "assays" in the training set.
fn plant(seed: u64) -> Workload {
    let (nusers, nmovies, k_true, d) = (1_500, 120, 4, 6);
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let beta = Mat::from_fn(d, k_true, |_, _| normal(&mut rng, 0.0, 0.6));
    let features = Mat::from_fn(nusers, d, |_, _| normal(&mut rng, 0.0, 1.0));
    let mut u = Mat::zeros(nusers, k_true);
    for i in 0..nusers {
        for c in 0..k_true {
            let mut acc = 0.0;
            for f in 0..d {
                acc += features[(i, f)] * beta[(f, c)];
            }
            u[(i, c)] = acc + normal(&mut rng, 0.0, 0.1);
        }
    }
    let v = Mat::from_fn(nmovies, k_true, |_, _| normal(&mut rng, 0.0, 0.6));

    let mut coo = Coo::new(nusers, nmovies);
    let mut test = Vec::new();
    for i in 0..nusers {
        let mut seen = [usize::MAX; 5];
        for slot in 0..5 {
            let mut m = rng.next_index(nmovies);
            while seen.contains(&m) {
                m = rng.next_index(nmovies);
            }
            seen[slot] = m;
            let r =
                6.5 + bpmf_linalg::vecops::dot(u.row(i), v.row(m)) + normal(&mut rng, 0.0, 0.15);
            if slot < 2 {
                coo.push(i, m, r);
            } else {
                test.push((i as u32, m as u32, r));
            }
        }
    }
    let train = Csr::from_coo_owned(coo);
    let train_t = train.transpose();
    let global_mean = {
        let (_, _, vals) = train.raw_parts();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    Workload {
        train,
        train_t,
        test,
        features,
        global_mean,
    }
}

fn main() {
    let w = plant(2026);
    println!(
        "cold-start workload: {} compounds x {} targets, {} train ratings \
         (2 per compound), {} held out",
        w.train.nrows(),
        w.train.ncols(),
        w.train.nnz(),
        w.test.len()
    );

    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    let data = TrainData::try_new(&w.train, &w.train_t, w.global_mean, &w.test)
        .expect("well-formed workload");

    let mut results = Vec::new();
    for informed in [false, true] {
        let mut builder = Bpmf::builder()
            .latent(6)
            .burnin(10)
            .samples(40)
            .seed(11)
            .threads(threads);
        if informed {
            // Side information is one builder call away.
            builder = builder.user_side_info(w.features.clone(), 1.0);
        }
        let spec = builder.build().expect("valid configuration");
        let runner = spec.runner();
        let mut trainer = spec.gibbs_trainer();
        let label = if informed {
            "BPMF + side info"
        } else {
            "plain BPMF    "
        };
        let report = trainer
            .fit(&data, runner.as_ref(), &mut NoCallback)
            .expect("training succeeds");
        println!("\n{label}: RMSE trace (every 5th iteration)");
        for (it, stat) in report.iters.iter().enumerate() {
            if it % 5 == 0 || it + 1 == report.iters.len() {
                println!("  iter {it:3}  sample RMSE {:.4}", stat.rmse_sample);
            }
        }
        let final_rmse = report.final_rmse();
        println!("{label}: final posterior-mean RMSE = {final_rmse:.4}");
        results.push(final_rmse);
    }

    println!(
        "\ncold-start improvement: {:.4} -> {:.4}  ({:.1}% better)",
        results[0],
        results[1],
        100.0 * (results[0] - results[1]) / results[0]
    );
}
