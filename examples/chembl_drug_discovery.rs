//! Drug-discovery scenario (the paper's motivating application): predict
//! compound-on-target activity (IC50-like values) from a sparse
//! compound × target bioactivity matrix shaped like ChEMBL v20.
//!
//! Demonstrates the features that workload stresses: extreme column skew
//! (popular protein targets with thousands of measurements) routed through
//! the adaptive kernels, and work stealing absorbing the imbalance —
//! driven through the unified `Bpmf::builder()` → `Trainer` facade.
//!
//! Run with: `cargo run --release -p bpmf --example chembl_drug_discovery`

use bpmf::{Bpmf, NoCallback, TrainData, Trainer, UpdateMethod};
use bpmf_dataset::chembl_like;

fn main() {
    let ds = chembl_like(0.02, 2016);
    println!("ChEMBL-like bioactivity matrix:");
    println!(
        "  {} compounds x {} protein targets",
        ds.nrows(),
        ds.ncols()
    );
    println!(
        "  {} activity measurements (+{} held out)",
        ds.nnz(),
        ds.test.len()
    );

    // The load-balance pathology the paper engineers around: degree skew.
    let mean_deg = ds.train_t.mean_row_nnz();
    let max_deg = ds.train_t.max_row_nnz();
    println!(
        "  measurements per target: mean {mean_deg:.1}, max {max_deg} ({:.0}x the mean)",
        max_deg as f64 / mean_deg
    );

    let spec = Bpmf::builder()
        .latent(16)
        .burnin(6)
        .samples(14)
        .seed(1)
        .threads(std::thread::available_parallelism().map_or(2, |n| n.get()))
        .build()
        .expect("valid configuration");

    // Which kernel does the heaviest target hit?
    let cfg = spec.to_gibbs_config();
    let method = bpmf::choose_method(max_deg, cfg.rank_one_threshold(), cfg.parallel_threshold);
    println!(
        "  heaviest target uses the {} kernel\n",
        match method {
            UpdateMethod::RankOne => "rank-one",
            UpdateMethod::CholSerial => "serial-Cholesky",
            UpdateMethod::CholParallel => "parallel-Cholesky",
        }
    );

    let data = TrainData::try_new(&ds.train, &ds.train_t, ds.global_mean, &ds.test)
        .expect("well-formed dataset");
    let runner = spec.runner();
    let mut trainer: Box<dyn Trainer> = Box::new(spec.gibbs_trainer());
    let report = trainer
        .fit(&data, runner.as_ref(), &mut NoCallback)
        .expect("training succeeds");

    println!(
        "trained with work stealing on {} threads:",
        report.parallelism
    );
    println!(
        "  mean throughput: {:.0} item updates/s",
        report.mean_items_per_sec()
    );
    println!("  final RMSE (posterior mean): {:.4}", report.final_rmse());
    println!(
        "  oracle floor:                {:.4}",
        ds.oracle_rmse().unwrap()
    );
    let steals: u64 = report.iters.iter().map(|s| s.steals).sum();
    println!("  work-stealing events: {steals} (imbalance absorbed at runtime)");

    // Rank candidate compounds for the busiest target, BPMF's actual job in
    // the ExCAPE pipeline.
    let rec = trainer.recommender().expect("fitted model");
    let target = (0..ds.ncols())
        .max_by_key(|&t| ds.train_t.row_nnz(t))
        .unwrap();
    let mut scored: Vec<(usize, f64)> = (0..ds.nrows().min(2000))
        .map(|c| (c, rec.predict(c, target)))
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop-5 predicted active compounds for target {target}:");
    for (compound, score) in scored.iter().take(5) {
        println!("  compound {compound:6}  predicted activity {score:.3}");
    }
}
