//! Movie recommendation on a MovieLens-ml-20m-shaped workload: train BPMF
//! through the unified builder — with predictions clamped to the 0.5–5
//! star scale via `.rating_bounds(...)` — then produce top-N
//! recommendations from the fitted `Recommender`.
//!
//! Run with: `cargo run --release -p bpmf --example movielens_recommender`

use bpmf::{Bpmf, NoCallback, TrainData, Trainer};
use bpmf_dataset::movielens_like;

fn main() {
    let ds = movielens_like(0.01, 99);
    println!("MovieLens-like rating matrix:");
    println!(
        "  {} users x {} movies, {} ratings on a 0.5-5 star scale",
        ds.nrows(),
        ds.ncols(),
        ds.nnz()
    );
    println!("  global mean rating: {:.2}\n", ds.global_mean);

    let spec = Bpmf::builder()
        .latent(16)
        .burnin(6)
        .samples(14)
        .seed(3)
        .threads(std::thread::available_parallelism().map_or(2, |n| n.get()))
        // Every prediction is clamped into the star scale — no more ad-hoc
        // clamping at call sites.
        .rating_bounds(0.5, 5.0)
        .build()
        .expect("valid configuration");

    let data = TrainData::try_new(&ds.train, &ds.train_t, ds.global_mean, &ds.test)
        .expect("well-formed dataset");
    let runner = spec.runner();
    let mut trainer = spec.gibbs_trainer();
    let report = trainer
        .fit(&data, runner.as_ref(), &mut NoCallback)
        .expect("training succeeds");
    println!(
        "final RMSE: {:.4} (oracle floor {:.4})",
        report.final_rmse(),
        ds.oracle_rmse().unwrap()
    );

    let rec = trainer.recommender().expect("fitted model");

    // Recommend for the most active user: unseen movies, ranked by
    // predicted rating (already clamped to the star scale by the model).
    let user = (0..ds.nrows())
        .max_by_key(|&u| ds.train.row_nnz(u))
        .unwrap();
    let (seen, _) = ds.train.row(user);
    let seen: std::collections::HashSet<u32> = seen.iter().copied().collect();
    println!(
        "\nuser {user} has rated {} movies; scoring the {} unseen ones...",
        seen.len(),
        ds.ncols() - seen.len()
    );

    let mut recs: Vec<(usize, f64)> = (0..ds.ncols())
        .filter(|m| !seen.contains(&(*m as u32)))
        .map(|m| (m, rec.predict(user, m)))
        .collect();
    recs.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!("top-10 recommendations for user {user}:");
    for (rank, (movie, stars)) in recs.iter().take(10).enumerate() {
        println!(
            "  {:2}. movie {movie:5}  predicted {stars:.2} stars",
            rank + 1
        );
    }

    // Ranking quality over all users with relevant (>= 4 star) held-out
    // ratings: the deployment metric behind the paper's "suggestions for
    // movies on Netflix" motivation.
    for k in [5usize, 10, 20] {
        let report =
            bpmf_baselines::evaluate_ranking(&ds.train, &ds.test, k, 4.0, |u, m| rec.predict(u, m));
        println!(
            "top-{k:2}: precision {:.3}  recall {:.3}  NDCG {:.3}  hit-rate {:.3}  ({} users)",
            report.precision, report.recall, report.ndcg, report.hit_rate, report.users_evaluated
        );
    }
}
