//! Movie recommendation on a MovieLens-ml-20m-shaped workload: train BPMF
//! through the unified builder — with predictions clamped to the 0.5–5
//! star scale via `.rating_bounds(...)` and training stopped by the stock
//! `Patience` callback — then serve top-N recommendations through
//! `bpmf::serve::RecommendService` (the same batch-scored, filtered path
//! the offline ranking evaluation measures).
//!
//! Run with: `cargo run --release -p bpmf --example movielens_recommender`

use bpmf::serve::{RankPolicy, RecommendService};
use bpmf::{Bpmf, Patience, TrainData, Trainer};
use bpmf_dataset::movielens_like;

fn main() {
    let ds = movielens_like(0.01, 99);
    println!("MovieLens-like rating matrix:");
    println!(
        "  {} users x {} movies, {} ratings on a 0.5-5 star scale",
        ds.nrows(),
        ds.ncols(),
        ds.nnz()
    );
    println!("  global mean rating: {:.2}\n", ds.global_mean);

    let spec = Bpmf::builder()
        .latent(16)
        .burnin(6)
        .samples(14)
        .seed(3)
        .threads(std::thread::available_parallelism().map_or(2, |n| n.get()))
        // Every prediction is clamped into the star scale — no more ad-hoc
        // clamping at call sites.
        .rating_bounds(0.5, 5.0)
        .build()
        .expect("valid configuration");

    let data = TrainData::try_new(&ds.train, &ds.train_t, ds.global_mean, &ds.test)
        .expect("well-formed dataset");
    let runner = spec.runner();
    let mut trainer = spec.gibbs_trainer();
    // The stock patience policy replaces the ad-hoc early-stop closure:
    // stop after 4 iterations without held-out improvement.
    let mut early_stop = Patience::new(4, 1e-4);
    let report = trainer
        .fit(&data, runner.as_ref(), &mut early_stop)
        .expect("training succeeds");
    println!(
        "final RMSE: {:.4} (oracle floor {:.4}){}",
        report.final_rmse(),
        ds.oracle_rmse().unwrap(),
        if report.early_stopped {
            " — stopped early by patience"
        } else {
            ""
        }
    );

    let rec = trainer.recommender().expect("fitted model");

    // Recommend for the most active user: unseen movies, ranked by
    // predicted rating (already clamped to the star scale by the model),
    // all through the serving layer.
    let user = (0..ds.nrows())
        .max_by_key(|&u| ds.train.row_nnz(u))
        .unwrap();
    println!(
        "\nuser {user} has rated {} movies; scoring the {} unseen ones...",
        ds.train.row_nnz(user),
        ds.ncols() - ds.train.row_nnz(user)
    );

    let mut service = RecommendService::for_train_data(rec, &data).policy(RankPolicy::Mean);
    println!("top-10 recommendations for user {user}:");
    for (rank, r) in service.top_n(user, 10).iter().enumerate() {
        println!(
            "  {:2}. movie {:5}  predicted {:.2} stars",
            rank + 1,
            r.item,
            r.score
        );
    }

    // The posterior turns the same list into an explore/exploit dial: UCB
    // boosts movies the posterior is still uncertain about.
    let mut explore =
        RecommendService::for_train_data(rec, &data).policy(RankPolicy::Ucb { beta: 1.0 });
    println!("top-5 under UCB (mean + 1.0·std):");
    for (rank, r) in explore.top_n(user, 5).iter().enumerate() {
        println!(
            "  {:2}. movie {:5}  ucb score {:.2}",
            rank + 1,
            r.item,
            r.score
        );
    }

    // Ranking quality over all users with relevant (>= 4 star) held-out
    // ratings: the deployment metric behind the paper's "suggestions for
    // movies on Netflix" motivation — measured through the very same
    // RecommendService path that served the lists above.
    for k in [5usize, 10, 20] {
        let report = bpmf_baselines::evaluate_ranking_model(&ds.train, &ds.test, k, 4.0, rec);
        println!(
            "top-{k:2}: precision {:.3}  recall {:.3}  NDCG {:.3}  hit-rate {:.3}  ({} users)",
            report.precision, report.recall, report.ndcg, report.hit_rate, report.users_evaluated
        );
    }
}
