//! The Normal–Wishart conjugate hyperprior of BPMF.
//!
//! BPMF places `Λ ~ W(W₀, ν₀)`, `μ | Λ ~ N(μ₀, (β₀Λ)⁻¹)` over each side's
//! Gaussian prior and resamples `(μ, Λ)` once per Gibbs sweep from the
//! closed-form posterior (Salakhutdinov & Mnih 2008, Eq. 14). The posterior
//! only needs the count / sum / scatter of the factor rows, so the
//! distributed runtime can reduce [`SuffStats`] across ranks and have every
//! rank draw an identical hyperparameter sample from a shared RNG stream.

use bpmf_linalg::{Cholesky, Mat};

use crate::mvn::sample_mvn_from_precision;
use crate::rng::Xoshiro256pp;
use crate::wishart::sample_wishart;

/// Sufficient statistics of a set of K-vectors: `n`, `Σθ`, `Σθθᵀ`.
///
/// Mergeable, so per-thread partials and per-rank partials combine exactly.
#[derive(Clone, Debug)]
pub struct SuffStats {
    n: usize,
    sum: Vec<f64>,
    /// Raw second moment `Σ θθᵀ`, lower triangle valid.
    scatter: Mat,
}

impl SuffStats {
    /// Empty statistics for dimension `k`.
    pub fn new(k: usize) -> Self {
        SuffStats {
            n: 0,
            sum: vec![0.0; k],
            scatter: Mat::zeros(k, k),
        }
    }

    /// Dimension `K`.
    pub fn dim(&self) -> usize {
        self.sum.len()
    }

    /// Number of accumulated rows.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Fold one factor row in.
    pub fn add_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.sum.len(), "row dimension mismatch");
        self.n += 1;
        for (s, v) in self.sum.iter_mut().zip(row) {
            *s += v;
        }
        self.scatter.syrk_lower(1.0, row);
    }

    /// Accumulate every row of an `N × K` factor matrix.
    pub fn from_rows(m: &Mat) -> Self {
        let mut s = SuffStats::new(m.cols());
        for i in 0..m.rows() {
            s.add_row(m.row(i));
        }
        s
    }

    /// Accumulate `m - offsets` row-wise: the statistics of the factor
    /// residuals around per-item prior means (Macau-style side information
    /// shifts item `i`'s prior mean by `offsets[i]`, so the Normal–Wishart
    /// update must see the residuals, not the raw factors).
    pub fn from_residual_rows(m: &Mat, offsets: &Mat) -> Self {
        assert_eq!(m.rows(), offsets.rows(), "offset row count mismatch");
        assert_eq!(m.cols(), offsets.cols(), "offset dimension mismatch");
        let mut s = SuffStats::new(m.cols());
        let mut resid = vec![0.0; m.cols()];
        for i in 0..m.rows() {
            for ((r, &v), &g) in resid.iter_mut().zip(m.row(i)).zip(offsets.row(i)) {
                *r = v - g;
            }
            s.add_row(&resid);
        }
        s
    }

    /// Merge another partial in (exact: all terms are sums).
    pub fn merge(&mut self, other: &SuffStats) {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.n += other.n;
        for (a, b) in self.sum.iter_mut().zip(&other.sum) {
            *a += b;
        }
        self.scatter.add_assign_scaled(&other.scatter, 1.0);
    }

    /// Serialize to a flat `f64` buffer (for all-reduce across ranks):
    /// `[n, sum..., scatter_lower...]`.
    pub fn to_flat(&self) -> Vec<f64> {
        let k = self.dim();
        let mut out = Vec::with_capacity(1 + k + k * (k + 1) / 2);
        out.push(self.n as f64);
        out.extend_from_slice(&self.sum);
        for i in 0..k {
            out.extend_from_slice(&self.scatter.row(i)[..=i]);
        }
        out
    }

    /// Inverse of [`SuffStats::to_flat`].
    pub fn from_flat(k: usize, flat: &[f64]) -> Self {
        assert_eq!(
            flat.len(),
            1 + k + k * (k + 1) / 2,
            "flat buffer length mismatch"
        );
        let n = flat[0].round() as usize;
        let sum = flat[1..1 + k].to_vec();
        let mut scatter = Mat::zeros(k, k);
        let mut idx = 1 + k;
        for i in 0..k {
            for j in 0..=i {
                scatter[(i, j)] = flat[idx];
                idx += 1;
            }
        }
        SuffStats { n, sum, scatter }
    }
}

/// Normal–Wishart hyperprior parameters.
#[derive(Clone, Debug)]
pub struct NormalWishart {
    /// Prior mean `μ₀`.
    pub mu0: Vec<f64>,
    /// Prior pseudo-count `β₀` on the mean.
    pub beta0: f64,
    /// *Inverse* of the Wishart scale `W₀` (stored inverted because the
    /// posterior update adds to `W₀⁻¹`).
    pub w0_inv: Mat,
    /// Wishart degrees of freedom `ν₀`.
    pub nu0: f64,
}

impl NormalWishart {
    /// The uninformative default the paper (and the original BPMF code)
    /// uses: `μ₀ = 0`, `β₀ = 2`, `ν₀ = K`, `W₀ = I`.
    pub fn default_for_dim(k: usize) -> Self {
        NormalWishart {
            mu0: vec![0.0; k],
            beta0: 2.0,
            w0_inv: Mat::identity(k),
            nu0: k as f64,
        }
    }

    /// Closed-form Normal–Wishart posterior given sufficient statistics.
    pub fn posterior(&self, stats: &SuffStats) -> NormalWishartPosterior {
        let k = self.mu0.len();
        assert_eq!(stats.dim(), k, "stats dimension mismatch");
        let n = stats.n as f64;

        // θ̄ and centered scatter  Σ(θ-θ̄)(θ-θ̄)ᵀ = Σθθᵀ − n·θ̄θ̄ᵀ.
        let theta_bar: Vec<f64> = if stats.n == 0 {
            vec![0.0; k]
        } else {
            stats.sum.iter().map(|s| s / n).collect()
        };

        let beta_star = self.beta0 + n;
        let nu_star = self.nu0 + n;
        let mu_star: Vec<f64> = self
            .mu0
            .iter()
            .zip(&theta_bar)
            .map(|(m0, tb)| (self.beta0 * m0 + n * tb) / beta_star)
            .collect();

        // (W*)⁻¹ = W₀⁻¹ + centered scatter + (β₀ n / β*)·(θ̄−μ₀)(θ̄−μ₀)ᵀ
        let mut w_star_inv = self.w0_inv.clone();
        w_star_inv.add_assign_scaled(&stats.scatter, 1.0);
        if stats.n > 0 {
            w_star_inv.syrk_lower(-n, &theta_bar);
            let diff: Vec<f64> = theta_bar
                .iter()
                .zip(&self.mu0)
                .map(|(t, m)| t - m)
                .collect();
            w_star_inv.syrk_lower(self.beta0 * n / beta_star, &diff);
        }

        // W* = (W*⁻¹)⁻¹, then factor it for Bartlett sampling.
        let w_star = Cholesky::factor(&w_star_inv)
            .expect("posterior W*^-1 must be SPD")
            .inverse();
        let w_star_chol = Cholesky::factor(&w_star).expect("posterior W* must be SPD");

        NormalWishartPosterior {
            mu_star,
            beta_star,
            nu_star,
            w_star_chol,
        }
    }
}

/// A computed Normal–Wishart posterior, ready to sample from.
#[derive(Clone, Debug)]
pub struct NormalWishartPosterior {
    /// Posterior mean location `μ*`.
    pub mu_star: Vec<f64>,
    /// Posterior pseudo-count `β*`.
    pub beta_star: f64,
    /// Posterior degrees of freedom `ν*`.
    pub nu_star: f64,
    /// Cholesky factor of the posterior Wishart scale `W*`.
    pub w_star_chol: Cholesky,
}

impl NormalWishartPosterior {
    /// Draw `(μ, Λ)`: `Λ ~ W(W*, ν*)` then `μ ~ N(μ*, (β*Λ)⁻¹)`.
    ///
    /// Returns the mean vector and the full symmetric precision matrix `Λ`.
    pub fn sample(&self, rng: &mut Xoshiro256pp) -> (Vec<f64>, Mat) {
        let k = self.mu_star.len();
        let mut lambda = sample_wishart(rng, &self.w_star_chol, self.nu_star);
        lambda.symmetrize_from_lower();

        let mut prec = lambda.clone();
        prec.scale(self.beta_star);
        let prec_chol = Cholesky::factor(&prec).expect("β*Λ must be SPD");

        let mut mu = vec![0.0; k];
        sample_mvn_from_precision(rng, &self.mu_star, &prec_chol, &mut mu);
        (mu, lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normal::normal;

    #[test]
    fn suff_stats_merge_equals_bulk() {
        let k = 3;
        let rows: Vec<Vec<f64>> = (0..10)
            .map(|i| (0..k).map(|j| (i * k + j) as f64 * 0.1 - 0.7).collect())
            .collect();
        let mut bulk = SuffStats::new(k);
        for r in &rows {
            bulk.add_row(r);
        }
        let mut a = SuffStats::new(k);
        let mut b = SuffStats::new(k);
        for (i, r) in rows.iter().enumerate() {
            if i % 2 == 0 {
                a.add_row(r)
            } else {
                b.add_row(r)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), bulk.count());
        let fa = a.to_flat();
        let fb = bulk.to_flat();
        for (x, y) in fa.iter().zip(&fb) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn flat_roundtrip_preserves_stats() {
        let k = 4;
        let mut s = SuffStats::new(k);
        s.add_row(&[1.0, -2.0, 0.5, 3.0]);
        s.add_row(&[0.0, 1.0, -1.0, 2.0]);
        let rt = SuffStats::from_flat(k, &s.to_flat());
        assert_eq!(rt.count(), 2);
        for (x, y) in rt.to_flat().iter().zip(&s.to_flat()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn posterior_concentrates_on_data_moments() {
        // Generate many rows from N(m, s²I); with N → large the posterior
        // mean ≈ sample mean and E[Λ] = ν*·W* ≈ (s²I)⁻¹.
        let k = 3;
        let (m, sd) = (2.0, 0.5);
        let mut rng = Xoshiro256pp::seed_from_u64(101);
        let mut stats = SuffStats::new(k);
        let mut row = vec![0.0; k];
        for _ in 0..50_000 {
            for r in row.iter_mut() {
                *r = normal(&mut rng, m, sd);
            }
            stats.add_row(&row);
        }
        let prior = NormalWishart::default_for_dim(k);
        let post = prior.posterior(&stats);

        for mu in &post.mu_star {
            assert!((mu - m).abs() < 0.02, "mu* = {mu}");
        }

        // E[Λ] = ν* W*: diagonal should be ≈ 1/s² = 4.
        let w_star = post.w_star_chol.reconstruct();
        for i in 0..k {
            let e_lambda_ii = post.nu_star * w_star[(i, i)];
            assert!(
                (e_lambda_ii - 1.0 / (sd * sd)).abs() < 0.2,
                "E[Λ_ii] = {e_lambda_ii}"
            );
        }
    }

    #[test]
    fn empty_stats_reduce_to_prior() {
        let k = 2;
        let prior = NormalWishart::default_for_dim(k);
        let post = prior.posterior(&SuffStats::new(k));
        assert_eq!(post.beta_star, prior.beta0);
        assert_eq!(post.nu_star, prior.nu0);
        assert!(post.mu_star.iter().all(|&m| m == 0.0));
        // W* should equal W₀ = I.
        let w = post.w_star_chol.reconstruct();
        assert!(w.max_abs_diff(&Mat::identity(k)) < 1e-10);
    }

    #[test]
    fn samples_are_finite_and_lambda_spd() {
        let k = 5;
        let mut rng = Xoshiro256pp::seed_from_u64(55);
        let mut stats = SuffStats::new(k);
        let mut row = vec![0.0; k];
        for _ in 0..100 {
            for r in row.iter_mut() {
                *r = normal(&mut rng, 0.0, 1.0);
            }
            stats.add_row(&row);
        }
        let post = NormalWishart::default_for_dim(k).posterior(&stats);
        for _ in 0..50 {
            let (mu, lambda) = post.sample(&mut rng);
            assert!(mu.iter().all(|v| v.is_finite()));
            assert!(Cholesky::factor(&lambda).is_ok());
        }
    }
}
