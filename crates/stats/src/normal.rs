//! Normal deviates via the Marsaglia polar method.

use crate::rng::Xoshiro256pp;

/// One standard normal draw.
///
/// The polar method produces deviates in pairs; the spare is cached on the
/// generator so consecutive calls consume it first. BPMF draws `K` of these
/// per item update (the "randomly sampled noise" of Algorithm 1), so the
/// cache matters.
#[inline]
pub fn standard_normal(rng: &mut Xoshiro256pp) -> f64 {
    if let Some(z) = rng.spare_normal.take() {
        return z;
    }
    loop {
        let u = 2.0 * rng.next_f64() - 1.0;
        let v = 2.0 * rng.next_f64() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            let m = (-2.0 * s.ln() / s).sqrt();
            rng.spare_normal = Some(v * m);
            return u * m;
        }
    }
}

/// Draw from `N(mu, sd²)`.
#[inline]
pub fn normal(rng: &mut Xoshiro256pp, mu: f64, sd: f64) -> f64 {
    mu + sd * standard_normal(rng)
}

/// Fill a slice with i.i.d. standard normals (noise vector of an item
/// update).
pub fn fill_standard_normal(rng: &mut Xoshiro256pp, out: &mut [f64]) {
    for z in out.iter_mut() {
        *z = standard_normal(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moments(xs: &[f64]) -> (f64, f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let skew = xs.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n / var.powf(1.5);
        (mean, var, skew)
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let xs: Vec<f64> = (0..200_000).map(|_| standard_normal(&mut rng)).collect();
        let (mean, var, skew) = moments(&xs);
        assert!(mean.abs() < 0.01, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.02, "var = {var}");
        assert!(skew.abs() < 0.03, "skew = {skew}");
    }

    #[test]
    fn location_and_scale_are_applied() {
        let mut rng = Xoshiro256pp::seed_from_u64(21);
        let xs: Vec<f64> = (0..100_000).map(|_| normal(&mut rng, 3.0, 0.5)).collect();
        let (mean, var, _) = moments(&xs);
        assert!((mean - 3.0).abs() < 0.01);
        assert!((var - 0.25).abs() < 0.01);
    }

    #[test]
    fn tail_mass_is_roughly_gaussian() {
        // P(|Z| > 2) ≈ 0.0455
        let mut rng = Xoshiro256pp::seed_from_u64(31);
        let n = 200_000;
        let tail = (0..n)
            .filter(|_| standard_normal(&mut rng).abs() > 2.0)
            .count() as f64
            / n as f64;
        assert!((tail - 0.0455).abs() < 0.005, "tail = {tail}");
    }

    #[test]
    fn fill_writes_every_slot() {
        let mut rng = Xoshiro256pp::seed_from_u64(41);
        let mut buf = [f64::NAN; 33];
        fill_standard_normal(&mut rng, &mut buf);
        assert!(buf.iter().all(|z| z.is_finite()));
    }
}
