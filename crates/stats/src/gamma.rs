//! Gamma and chi-squared deviates (Marsaglia & Tsang, 2000).

use crate::normal::standard_normal;
use crate::rng::Xoshiro256pp;

/// Draw from `Gamma(shape, scale)` (mean = `shape * scale`).
///
/// Uses the Marsaglia–Tsang squeeze method for `shape ≥ 1` and the boost
/// `Gamma(a) = Gamma(a + 1) · U^{1/a}` for `shape < 1`. The Bartlett
/// decomposition behind [`crate::sample_wishart`] consumes one of these per
/// diagonal element, with shapes around `ν/2 ≈ K/2`.
pub fn gamma(rng: &mut Xoshiro256pp, shape: f64, scale: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive, got {shape}");
    assert!(scale > 0.0, "gamma scale must be positive, got {scale}");
    if shape < 1.0 {
        // Boost: X ~ Gamma(a+1), U^(1/a) * X ~ Gamma(a).
        let boost = rng.next_open_f64().powf(1.0 / shape);
        return gamma_shape_ge1(rng, shape + 1.0) * scale * boost;
    }
    gamma_shape_ge1(rng, shape) * scale
}

fn gamma_shape_ge1(rng: &mut Xoshiro256pp, shape: f64) -> f64 {
    debug_assert!(shape >= 1.0);
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let t = 1.0 + c * x;
        if t <= 0.0 {
            continue;
        }
        let v = t * t * t;
        let u = rng.next_open_f64();
        let x2 = x * x;
        // Cheap squeeze accepts ~98% of candidates without the logs.
        if u < 1.0 - 0.0331 * x2 * x2 {
            return d * v;
        }
        if u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Draw from the chi-squared distribution with `dof` degrees of freedom
/// (`dof` need not be an integer — Bartlett uses `ν - i` for row `i`).
pub fn chi_squared(rng: &mut Xoshiro256pp, dof: f64) -> f64 {
    assert!(dof > 0.0, "chi-squared dof must be positive, got {dof}");
    gamma(rng, dof / 2.0, 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_moments(
        rng: &mut Xoshiro256pp,
        n: usize,
        mut f: impl FnMut(&mut Xoshiro256pp) -> f64,
    ) -> (f64, f64) {
        let xs: Vec<f64> = (0..n).map(|_| f(rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        (mean, var)
    }

    #[test]
    fn gamma_moments_for_large_shape() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let (shape, scale) = (7.5, 2.0);
        let (mean, var) = sample_moments(&mut rng, 200_000, |r| gamma(r, shape, scale));
        assert!((mean - shape * scale).abs() < 0.08, "mean = {mean}");
        assert!((var - shape * scale * scale).abs() < 0.8, "var = {var}");
    }

    #[test]
    fn gamma_moments_for_small_shape() {
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let (shape, scale) = (0.4, 1.5);
        let (mean, var) = sample_moments(&mut rng, 400_000, |r| gamma(r, shape, scale));
        assert!((mean - shape * scale).abs() < 0.02, "mean = {mean}");
        assert!((var - shape * scale * scale).abs() < 0.05, "var = {var}");
    }

    #[test]
    fn gamma_draws_are_positive() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        for &shape in &[0.1, 0.9, 1.0, 3.0, 50.0] {
            for _ in 0..1000 {
                assert!(gamma(&mut rng, shape, 1.0) > 0.0);
            }
        }
    }

    #[test]
    fn chi_squared_mean_and_variance() {
        // mean = k, var = 2k
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let k = 9.0;
        let (mean, var) = sample_moments(&mut rng, 200_000, |r| chi_squared(r, k));
        assert!((mean - k).abs() < 0.05, "mean = {mean}");
        assert!((var - 2.0 * k).abs() < 0.5, "var = {var}");
    }

    #[test]
    #[should_panic(expected = "shape must be positive")]
    fn zero_shape_is_rejected() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let _ = gamma(&mut rng, 0.0, 1.0);
    }
}
