#![warn(missing_docs)]

//! Random number generation and sampling for the BPMF Gibbs sampler.
//!
//! The paper's C++ implementation draws its randomness from the STL
//! `<random>` facilities; this crate is that substrate, built from scratch:
//!
//! * [`Xoshiro256pp`] — the Blackman–Vigna xoshiro256++ generator with
//!   `jump`/`long_jump`, so every thread and every MPI rank gets a provably
//!   disjoint stream (2¹²⁸ / 2¹⁹² draws apart). Parallel Gibbs sampling is
//!   only exchangeable-correct if streams never collide.
//! * [`normal`], [`gamma`], [`chi_squared`] — scalar distributions
//!   (Marsaglia polar method; Marsaglia–Tsang squeeze for Gamma).
//! * [`sample_wishart`] — Bartlett-decomposition Wishart draws for the
//!   hyperprior precision matrices.
//! * [`sample_mvn_from_precision`] — multivariate normal draws given a
//!   Cholesky-factored *precision* matrix, the exact operation at the heart
//!   of every BPMF item update.
//! * [`NormalWishart`] — the conjugate hyperprior with its closed-form
//!   posterior (Salakhutdinov & Mnih, Eqs. 13–14) and joint sampling.
//!
//! # Example
//!
//! ```
//! use bpmf_stats::{Xoshiro256pp, normal};
//!
//! let mut rng = Xoshiro256pp::seed_from_u64(42);
//! let draws: Vec<f64> = (0..1000).map(|_| normal(&mut rng, 0.0, 1.0)).collect();
//! let mean = draws.iter().sum::<f64>() / draws.len() as f64;
//! assert!(mean.abs() < 0.2);
//! ```

mod gamma;
mod mvn;
mod normal;
mod normal_wishart;
mod rng;
mod wishart;

pub use gamma::{chi_squared, gamma};
pub use mvn::{sample_mvn_from_cholesky_cov, sample_mvn_from_precision};
pub use normal::{fill_standard_normal, normal, standard_normal};
pub use normal_wishart::{NormalWishart, NormalWishartPosterior, SuffStats};
pub use rng::Xoshiro256pp;
pub use wishart::sample_wishart;
