//! Wishart sampling via the Bartlett decomposition.

use bpmf_linalg::{Cholesky, Mat};

use crate::gamma::chi_squared;
use crate::normal::standard_normal;
use crate::rng::Xoshiro256pp;

/// Draw `W ~ Wishart(scale = V, dof = ν)` where `scale_chol` is the Cholesky
/// factor of `V` and `ν > K - 1`. `E[W] = ν·V`.
///
/// Bartlett: with `V = L Lᵀ`, form lower-triangular `A` with
/// `A[i][i] = √χ²(ν − i)` and `A[i][j] ~ N(0,1)` below the diagonal; then
/// `W = (L A)(L A)ᵀ`. BPMF draws one of these per Gibbs iteration per side
/// (users / movies) to refresh the prior precision `Λ`.
pub fn sample_wishart(rng: &mut Xoshiro256pp, scale_chol: &Cholesky, dof: f64) -> Mat {
    let k = scale_chol.dim();
    assert!(
        dof > k as f64 - 1.0,
        "Wishart dof must exceed K-1 (dof = {dof}, K = {k})"
    );

    // Lower-triangular Bartlett factor A.
    let mut a = Mat::zeros(k, k);
    for i in 0..k {
        a[(i, i)] = chi_squared(rng, dof - i as f64).sqrt();
        for j in 0..i {
            a[(i, j)] = standard_normal(rng);
        }
    }

    // X = L · A (both lower triangular, so X is lower triangular).
    let l = scale_chol.l();
    let mut x = Mat::zeros(k, k);
    for i in 0..k {
        for j in 0..=i {
            let mut s = 0.0;
            // Σ_t L[i][t] A[t][j] over t in j..=i (A lower, L lower)
            for t in j..=i {
                s += l[(i, t)] * a[(t, j)];
            }
            x[(i, j)] = s;
        }
    }

    // W = X Xᵀ.
    x.matmul_transb(&x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_is_dof_times_scale() {
        let k = 4;
        let mut v = Mat::identity(k);
        v[(1, 0)] = 0.3;
        v[(0, 1)] = 0.3;
        v[(2, 2)] = 2.0;
        let chol = Cholesky::factor(&v).unwrap();
        let dof = 8.0;

        let mut rng = Xoshiro256pp::seed_from_u64(23);
        let n = 20_000;
        let mut mean = Mat::zeros(k, k);
        for _ in 0..n {
            let w = sample_wishart(&mut rng, &chol, dof);
            mean.add_assign_scaled(&w, 1.0 / n as f64);
        }

        let mut expected = v.clone();
        expected.scale(dof);
        assert!(
            mean.max_abs_diff(&expected) < 0.15,
            "mean {mean:?} expected {expected:?}"
        );
    }

    #[test]
    fn draws_are_symmetric_positive_definite() {
        let k = 6;
        let chol = Cholesky::factor(&Mat::identity(k)).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(29);
        for _ in 0..200 {
            let w = sample_wishart(&mut rng, &chol, k as f64 + 1.0);
            // symmetric
            let wt = w.transpose();
            assert!(w.max_abs_diff(&wt) < 1e-12);
            // positive definite
            assert!(Cholesky::factor(&w).is_ok());
        }
    }

    #[test]
    #[should_panic(expected = "dof must exceed")]
    fn insufficient_dof_is_rejected() {
        let chol = Cholesky::factor(&Mat::identity(5)).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(31);
        let _ = sample_wishart(&mut rng, &chol, 3.0);
    }
}
