//! Multivariate normal sampling.

use bpmf_linalg::Cholesky;

use crate::normal::fill_standard_normal;
use crate::rng::Xoshiro256pp;

/// Draw `x ~ N(mean, P⁻¹)` given the Cholesky factor of the *precision*
/// matrix `P = L Lᵀ`, writing into `out`.
///
/// This is the core of the BPMF item update: the conditional posterior of an
/// item is expressed by its precision, and sampling reduces to one
/// back-substitution — `Lᵀ y = z` gives `Cov[y] = (L Lᵀ)⁻¹` — with no
/// explicit covariance ever formed.
pub fn sample_mvn_from_precision(
    rng: &mut Xoshiro256pp,
    mean: &[f64],
    precision_chol: &Cholesky,
    out: &mut [f64],
) {
    let k = precision_chol.dim();
    assert_eq!(mean.len(), k, "mean length mismatch");
    assert_eq!(out.len(), k, "output length mismatch");
    fill_standard_normal(rng, out);
    precision_chol.solve_lt_in_place(out);
    for (o, m) in out.iter_mut().zip(mean) {
        *o += m;
    }
}

/// Draw `x ~ N(mean, L Lᵀ)` given the Cholesky factor of the *covariance*
/// matrix, writing into `out`. Used where the covariance is natural (e.g.
/// sampling `μ | Λ` in the Normal–Wishart with covariance `(β Λ)⁻¹` already
/// inverted).
pub fn sample_mvn_from_cholesky_cov(
    rng: &mut Xoshiro256pp,
    mean: &[f64],
    cov_chol: &Cholesky,
    out: &mut [f64],
) {
    let k = cov_chol.dim();
    assert_eq!(mean.len(), k, "mean length mismatch");
    assert_eq!(out.len(), k, "output length mismatch");
    let mut z = vec![0.0; k];
    fill_standard_normal(rng, &mut z);
    // x = mean + L z
    let l = cov_chol.l();
    for i in 0..k {
        let row = &l.row(i)[..=i];
        out[i] = mean[i] + bpmf_linalg::vecops::dot(row, &z[..=i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpmf_linalg::Mat;

    fn empirical_cov(samples: &[Vec<f64>]) -> Mat {
        let k = samples[0].len();
        let n = samples.len() as f64;
        let mut mean = vec![0.0; k];
        for s in samples {
            for (m, v) in mean.iter_mut().zip(s) {
                *m += v / n;
            }
        }
        let mut cov = Mat::zeros(k, k);
        for s in samples {
            for i in 0..k {
                for j in 0..k {
                    cov[(i, j)] += (s[i] - mean[i]) * (s[j] - mean[j]) / n;
                }
            }
        }
        cov
    }

    #[test]
    fn precision_sampling_has_correct_covariance() {
        // P = [[2, 0.5], [0.5, 1]]; Cov = P⁻¹.
        let mut p = Mat::identity(2);
        p[(0, 0)] = 2.0;
        p[(1, 0)] = 0.5;
        p[(0, 1)] = 0.5;
        let chol = Cholesky::factor(&p).unwrap();
        let expected_cov = chol.inverse();

        let mut rng = Xoshiro256pp::seed_from_u64(17);
        let mean = [1.0, -2.0];
        let samples: Vec<Vec<f64>> = (0..100_000)
            .map(|_| {
                let mut out = vec![0.0; 2];
                sample_mvn_from_precision(&mut rng, &mean, &chol, &mut out);
                out
            })
            .collect();

        let emp_mean_0 = samples.iter().map(|s| s[0]).sum::<f64>() / samples.len() as f64;
        assert!((emp_mean_0 - 1.0).abs() < 0.01);
        let cov = empirical_cov(&samples);
        assert!(
            cov.max_abs_diff(&expected_cov) < 0.02,
            "{cov:?} vs {expected_cov:?}"
        );
    }

    #[test]
    fn covariance_sampling_has_correct_covariance() {
        let mut c = Mat::identity(3);
        c[(0, 0)] = 1.5;
        c[(1, 0)] = 0.4;
        c[(0, 1)] = 0.4;
        c[(2, 2)] = 0.25;
        let chol = Cholesky::factor(&c).unwrap();

        let mut rng = Xoshiro256pp::seed_from_u64(18);
        let mean = [0.0, 5.0, -1.0];
        let samples: Vec<Vec<f64>> = (0..100_000)
            .map(|_| {
                let mut out = vec![0.0; 3];
                sample_mvn_from_cholesky_cov(&mut rng, &mean, &chol, &mut out);
                out
            })
            .collect();

        let cov = empirical_cov(&samples);
        assert!(cov.max_abs_diff(&c) < 0.03);
        let emp_mean_1 = samples.iter().map(|s| s[1]).sum::<f64>() / samples.len() as f64;
        assert!((emp_mean_1 - 5.0).abs() < 0.02);
    }
}
