//! xoshiro256++ pseudo-random generator (Blackman & Vigna, 2019).
//!
//! Chosen over the STL's Mersenne Twister (what the paper's C++ uses) for two
//! reasons that matter in a parallel sampler:
//!
//! * `jump()` / `long_jump()` advance the state by 2¹²⁸ / 2¹⁹² steps in
//!   constant time, giving every worker thread and every distributed rank a
//!   disjoint sub-stream from one master seed — reproducible runs at any
//!   thread/rank count without stream collisions;
//! * 4 × u64 of state keeps per-item-update RNG state in registers.

const JUMP: [u64; 4] = [
    0x180ec6d33cfd0aba,
    0xd5a61266f0c9392c,
    0xa9582618e03fc9aa,
    0x39abdc4529b1661c,
];

const LONG_JUMP: [u64; 4] = [
    0x76e15d3efefdcbbf,
    0xc5004e441c522fb3,
    0x77710069854ee241,
    0x39109bb02acbe635,
];

/// xoshiro256++ generator with a cached spare normal deviate.
///
/// The spare slot exists because the polar normal method produces deviates in
/// pairs; BPMF draws `K` normals per item update, so caching halves the
/// uniform consumption on the hottest sampling path.
#[derive(Clone, Debug)]
pub struct Xoshiro256pp {
    s: [u64; 4],
    pub(crate) spare_normal: Option<f64>,
}

#[inline(always)]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl Xoshiro256pp {
    /// Seed the full 256-bit state from a single `u64` via SplitMix64, the
    /// initialization the xoshiro authors recommend.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256pp {
            s,
            spare_normal: None,
        }
    }

    /// Construct from an explicit state. Panics on the forbidden all-zero
    /// state.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro state must not be all zero"
        );
        Xoshiro256pp {
            s,
            spare_normal: None,
        }
    }

    /// Snapshot the complete generator state (including the cached spare
    /// normal deviate) for checkpointing. Restoring via
    /// [`Xoshiro256pp::restore`] resumes the exact stream.
    pub fn snapshot(&self) -> ([u64; 4], Option<f64>) {
        (self.s, self.spare_normal)
    }

    /// Rebuild a generator from a [`Xoshiro256pp::snapshot`].
    pub fn restore(snapshot: ([u64; 4], Option<f64>)) -> Self {
        let (s, spare_normal) = snapshot;
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro state must not be all zero"
        );
        Xoshiro256pp { s, spare_normal }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `(0, 1)` — safe to pass to `ln()`.
    #[inline]
    pub fn next_open_f64(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Uniform integer in `[0, bound)` by Lemire's multiply-shift rejection.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection zone keeps the result exactly uniform.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_bounded(bound as u64) as usize
    }

    /// Advance 2¹²⁸ steps: partitions one stream into non-overlapping
    /// sub-streams for threads.
    pub fn jump(&mut self) {
        self.polynomial_jump(&JUMP);
    }

    /// Advance 2¹⁹² steps: partitions into coarser sub-streams for
    /// distributed ranks (each rank can then `jump()` per thread).
    pub fn long_jump(&mut self) {
        self.polynomial_jump(&LONG_JUMP);
    }

    fn polynomial_jump(&mut self, poly: &[u64; 4]) {
        let mut acc = [0u64; 4];
        for &word in poly {
            for b in 0..64 {
                if word & (1u64 << b) != 0 {
                    acc[0] ^= self.s[0];
                    acc[1] ^= self.s[1];
                    acc[2] ^= self.s[2];
                    acc[3] ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = acc;
        self.spare_normal = None;
    }

    /// `n` mutually disjoint streams derived from one seed, each 2¹²⁸ draws
    /// apart. Stream 0 is the seed stream itself.
    pub fn streams(seed: u64, n: usize) -> Vec<Xoshiro256pp> {
        let mut base = Xoshiro256pp::seed_from_u64(seed);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(base.clone());
            base.jump();
        }
        out
    }

    /// Like [`Xoshiro256pp::streams`] but separated by `long_jump` (2¹⁹²
    /// draws), leaving room for each rank to carve per-thread `jump`
    /// sub-streams underneath.
    pub fn rank_streams(seed: u64, n: usize) -> Vec<Xoshiro256pp> {
        let mut base = Xoshiro256pp::seed_from_u64(seed);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(base.clone());
            base.long_jump();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_outputs_for_known_state() {
        // Hand-evaluated from the reference C implementation with
        // s = [1, 2, 3, 4].
        let mut rng = Xoshiro256pp::from_state([1, 2, 3, 4]);
        assert_eq!(rng.next_u64(), 41943041);
        assert_eq!(rng.next_u64(), 58720359);
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Xoshiro256pp::seed_from_u64(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn unit_interval_bounds_hold() {
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        for _ in 0..10_000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bounded_draws_are_in_range_and_cover() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.next_bounded(10) as usize;
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 buckets should be hit");
    }

    #[test]
    fn jumped_streams_do_not_overlap_locally() {
        let mut a = Xoshiro256pp::seed_from_u64(1234);
        let mut b = a.clone();
        b.jump();
        let from_a: std::collections::HashSet<u64> = (0..4096).map(|_| a.next_u64()).collect();
        for _ in 0..4096 {
            assert!(!from_a.contains(&b.next_u64()));
        }
    }

    #[test]
    fn streams_are_pairwise_distinct() {
        let mut streams = Xoshiro256pp::streams(5, 8);
        let firsts: Vec<u64> = streams.iter_mut().map(|s| s.next_u64()).collect();
        let unique: std::collections::HashSet<_> = firsts.iter().collect();
        assert_eq!(unique.len(), firsts.len());
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = Xoshiro256pp::seed_from_u64(2024);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 5e-3, "mean = {mean}");
    }

    #[test]
    #[should_panic(expected = "all zero")]
    fn all_zero_state_rejected() {
        let _ = Xoshiro256pp::from_state([0; 4]);
    }
}
