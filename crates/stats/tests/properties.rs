//! Property tests for the sampling substrate.

use bpmf_linalg::{Cholesky, Mat};
use bpmf_stats::{
    chi_squared, gamma, normal, sample_mvn_from_precision, sample_wishart, standard_normal,
    NormalWishart, SuffStats, Xoshiro256pp,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gamma_draws_positive_and_finite(shape in 0.05f64..50.0, scale in 0.05f64..10.0, seed in 0u64..10_000) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        for _ in 0..64 {
            let x = gamma(&mut rng, shape, scale);
            prop_assert!(x.is_finite() && x > 0.0, "gamma({shape}, {scale}) = {x}");
        }
    }

    #[test]
    fn chi_squared_positive(dof in 0.2f64..100.0, seed in 0u64..10_000) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        for _ in 0..32 {
            let x = chi_squared(&mut rng, dof);
            prop_assert!(x.is_finite() && x > 0.0);
        }
    }

    #[test]
    fn normal_is_finite_and_scales(mu in -100.0f64..100.0, sd in 0.001f64..50.0, seed in 0u64..10_000) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        for _ in 0..32 {
            let x = normal(&mut rng, mu, sd);
            prop_assert!(x.is_finite());
            // 12σ excursions have probability ~1e-32: effectively impossible.
            prop_assert!((x - mu).abs() < 12.0 * sd, "x = {x}, mu = {mu}, sd = {sd}");
        }
    }

    #[test]
    fn bounded_draw_is_in_range(bound in 1u64..1_000_000, seed in 0u64..10_000) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert!(rng.next_bounded(bound) < bound);
        }
    }

    #[test]
    fn streams_never_collide_on_prefixes(seed in 0u64..10_000, n in 2usize..6) {
        let mut streams = Xoshiro256pp::streams(seed, n);
        let prefixes: Vec<Vec<u64>> = streams
            .iter_mut()
            .map(|s| (0..32).map(|_| s.next_u64()).collect())
            .collect();
        for i in 0..n {
            for j in i + 1..n {
                prop_assert_ne!(&prefixes[i], &prefixes[j]);
            }
        }
    }

    #[test]
    fn wishart_draws_are_spd(k in 1usize..8, extra_dof in 0.1f64..20.0, seed in 0u64..10_000) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let chol = Cholesky::factor(&Mat::identity(k)).unwrap();
        let dof = k as f64 - 1.0 + extra_dof;
        let w = sample_wishart(&mut rng, &chol, dof);
        prop_assert!(Cholesky::factor(&w).is_ok(), "draw not SPD for k={k}, dof={dof}");
    }

    #[test]
    fn mvn_precision_draws_are_finite(k in 1usize..10, seed in 0u64..10_000) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut prec = Mat::identity(k);
        for i in 0..k {
            prec[(i, i)] = 0.5 + i as f64 * 0.25;
        }
        let chol = Cholesky::factor(&prec).unwrap();
        let mean: Vec<f64> = (0..k).map(|i| i as f64 - 2.0).collect();
        let mut out = vec![0.0; k];
        sample_mvn_from_precision(&mut rng, &mean, &chol, &mut out);
        prop_assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn suff_stats_merge_is_associative(
        rows in proptest::collection::vec(proptest::collection::vec(-3.0f64..3.0, 3), 3..30),
    ) {
        let k = 3;
        // ((a ∪ b) ∪ c) == (a ∪ (b ∪ c)) at the to_flat level.
        let third = rows.len() / 3;
        let (a, rest) = rows.split_at(third.max(1).min(rows.len() - 1));
        let (b, c) = rest.split_at((rest.len() / 2).max(1).min(rest.len()));
        let stats_of = |rs: &[Vec<f64>]| {
            let mut s = SuffStats::new(k);
            for r in rs {
                s.add_row(r);
            }
            s
        };
        let mut left = stats_of(a);
        left.merge(&stats_of(b));
        left.merge(&stats_of(c));
        let mut right_tail = stats_of(b);
        right_tail.merge(&stats_of(c));
        let mut right = stats_of(a);
        right.merge(&right_tail);
        let (lf, rf) = (left.to_flat(), right.to_flat());
        for (x, y) in lf.iter().zip(&rf) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn posterior_sampling_is_seed_deterministic(seed in 0u64..10_000) {
        let k = 4;
        let mut gen = Xoshiro256pp::seed_from_u64(seed ^ 0xAAAA);
        let mut stats = SuffStats::new(k);
        let mut row = vec![0.0; k];
        for _ in 0..50 {
            for r in row.iter_mut() {
                *r = standard_normal(&mut gen);
            }
            stats.add_row(&row);
        }
        let post = NormalWishart::default_for_dim(k).posterior(&stats);
        let (mu1, l1) = post.sample(&mut Xoshiro256pp::seed_from_u64(seed));
        let (mu2, l2) = post.sample(&mut Xoshiro256pp::seed_from_u64(seed));
        prop_assert_eq!(mu1, mu2);
        prop_assert!(l1.max_abs_diff(&l2) == 0.0);
    }
}
