#![warn(missing_docs)]

//! Argument parsing and output helpers for `bpmf-train`.
//!
//! Hand-rolled flag parsing (the dependency budget stays with the numeric
//! crates); exposed as a library so the parsing rules are unit-testable.

use std::fmt;
use std::io::Write;

use bpmf::EngineKind;
use bpmf_linalg::Mat;

/// Usage text.
pub const USAGE: &str = "\
bpmf-train — Bayesian Probabilistic Matrix Factorization trainer

USAGE:
  bpmf-train --train FILE.mtx [OPTIONS]

OPTIONS:
  --train FILE        MatrixMarket training ratings (required)
  --test FILE         MatrixMarket held-out ratings (same dimensions)
  --test-fraction F   split F of --train off as the test set [default 0.1]
  --k N               latent dimension [default 16]
  --burnin N          burn-in iterations [default 8]
  --samples N         averaged sampling iterations [default 24]
  --threads N         worker threads [default: all cores]
  --engine NAME       ws | static | graphlab [default ws]
  --seed N            RNG seed [default 42]
  --save-factors PFX  write posterior-mean factors to PFX_{users,movies}.tsv
  --user-features F   TSV of per-user features (Macau-style side info)
  --lambda-beta X     link-matrix ridge when --user-features is set [default 1]
  --checkpoint FILE   write a JSON checkpoint after the run (and every
                      --checkpoint-every iterations)
  --checkpoint-every N  periodic checkpoint interval [default: end only]
  --resume FILE       continue an interrupted run from its checkpoint
  --diagnostics       print ESS / autocorrelation-time summary of the
                      sample-RMSE trace after the run
  --help              show this text
";

/// Parsed command line.
#[derive(Clone, Debug)]
pub struct Options {
    /// Path to the MatrixMarket training ratings.
    pub train: String,
    /// Optional path to a held-out MatrixMarket test set.
    pub test: Option<String>,
    /// Fraction split off `train` when no test file is given.
    pub test_fraction: f64,
    /// Latent dimension K.
    pub k: usize,
    /// Burn-in iterations.
    pub burnin: usize,
    /// Averaged sampling iterations.
    pub samples: usize,
    /// Worker threads.
    pub threads: usize,
    /// Shared-memory runtime.
    pub engine: EngineKind,
    /// RNG seed.
    pub seed: u64,
    /// Prefix for posterior-mean factor TSVs, if requested.
    pub save_factors: Option<String>,
    /// TSV of per-user features for Macau-style side information.
    pub user_features: Option<String>,
    /// Link-matrix ridge used with `--user-features`.
    pub lambda_beta: f64,
    /// Checkpoint file to write.
    pub checkpoint: Option<String>,
    /// Periodic checkpoint interval (`None` = only at the end).
    pub checkpoint_every: Option<usize>,
    /// Checkpoint file to resume from.
    pub resume: Option<String>,
    /// Print convergence diagnostics after the run.
    pub diagnostics: bool,
}

/// CLI error with a human message.
#[derive(Debug)]
pub struct CliError(String);

impl CliError {
    /// Wrap a message.
    pub fn new(msg: impl Into<String>) -> Self {
        CliError(msg.into())
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(e.to_string())
    }
}

/// Parse arguments; `Ok(None)` means `--help` was requested.
pub fn parse_args(args: &[String]) -> Result<Option<Options>, CliError> {
    let mut opts = Options {
        train: String::new(),
        test: None,
        test_fraction: 0.1,
        k: 16,
        burnin: 8,
        samples: 24,
        threads: std::thread::available_parallelism().map_or(2, |n| n.get()),
        engine: EngineKind::WorkStealing,
        seed: 42,
        save_factors: None,
        user_features: None,
        lambda_beta: 1.0,
        checkpoint: None,
        checkpoint_every: None,
        resume: None,
        diagnostics: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next().ok_or_else(|| CliError::new(format!("{flag} requires a value")))
        };
        match flag.as_str() {
            "--help" | "-h" => return Ok(None),
            "--train" => opts.train = value()?.clone(),
            "--test" => opts.test = Some(value()?.clone()),
            "--test-fraction" => {
                opts.test_fraction = parse_num(flag, value()?)?;
                if !(0.0..1.0).contains(&opts.test_fraction) {
                    return Err(CliError::new("--test-fraction must be in [0, 1)"));
                }
            }
            "--k" => opts.k = parse_num(flag, value()?)?,
            "--burnin" => opts.burnin = parse_num(flag, value()?)?,
            "--samples" => opts.samples = parse_num(flag, value()?)?,
            "--threads" => opts.threads = parse_num(flag, value()?)?,
            "--seed" => opts.seed = parse_num(flag, value()?)?,
            "--save-factors" => opts.save_factors = Some(value()?.clone()),
            "--user-features" => opts.user_features = Some(value()?.clone()),
            "--lambda-beta" => {
                opts.lambda_beta = parse_num(flag, value()?)?;
                if opts.lambda_beta <= 0.0 {
                    return Err(CliError::new("--lambda-beta must be positive"));
                }
            }
            "--checkpoint" => opts.checkpoint = Some(value()?.clone()),
            "--checkpoint-every" => opts.checkpoint_every = Some(parse_num(flag, value()?)?),
            "--resume" => opts.resume = Some(value()?.clone()),
            "--diagnostics" => opts.diagnostics = true,
            "--engine" => {
                opts.engine = match value()?.as_str() {
                    "ws" | "work-stealing" => EngineKind::WorkStealing,
                    "static" => EngineKind::Static,
                    "graphlab" => EngineKind::GraphLabLike,
                    other => {
                        return Err(CliError::new(format!(
                            "unknown engine '{other}' (ws | static | graphlab)"
                        )))
                    }
                };
            }
            other => return Err(CliError::new(format!("unknown flag '{other}'"))),
        }
    }
    if opts.train.is_empty() {
        return Err(CliError::new("--train is required"));
    }
    if opts.k == 0 {
        return Err(CliError::new("--k must be positive"));
    }
    Ok(Some(opts))
}

fn parse_num<T: std::str::FromStr>(flag: &str, s: &str) -> Result<T, CliError> {
    s.parse().map_err(|_| CliError::new(format!("invalid value '{s}' for {flag}")))
}

/// Write a factor matrix as TSV (one item per line, K columns).
pub fn write_factors(path: &str, m: &Mat) -> Result<(), CliError> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    for i in 0..m.rows() {
        let row = m.row(i);
        for (c, v) in row.iter().enumerate() {
            if c > 0 {
                write!(w, "\t")?;
            }
            write!(w, "{v}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Read a TSV of per-item features: one line per item, `d` tab- or
/// space-separated columns, same column count on every line.
pub fn read_features_tsv(path: &str) -> Result<Mat, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::new(format!("cannot read {path}: {e}")))?;
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let row: Result<Vec<f64>, _> =
            line.split_whitespace().map(str::parse::<f64>).collect();
        let row = row
            .map_err(|e| CliError::new(format!("{path}:{}: bad number: {e}", lineno + 1)))?;
        if let Some(first) = rows.first() {
            if row.len() != first.len() {
                return Err(CliError::new(format!(
                    "{path}:{}: expected {} columns, found {}",
                    lineno + 1,
                    first.len(),
                    row.len()
                )));
            }
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(CliError::new(format!("{path}: no feature rows")));
    }
    let (n, d) = (rows.len(), rows[0].len());
    Ok(Mat::from_fn(n, d, |i, j| rows[i][j]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn minimal_invocation_parses() {
        let opts = parse_args(&argv("--train r.mtx")).unwrap().unwrap();
        assert_eq!(opts.train, "r.mtx");
        assert_eq!(opts.k, 16);
        assert_eq!(opts.engine, EngineKind::WorkStealing);
    }

    #[test]
    fn all_flags_parse() {
        let opts = parse_args(&argv(
            "--train a.mtx --test b.mtx --k 8 --burnin 3 --samples 5 --threads 2 \
             --engine static --seed 7 --save-factors out --test-fraction 0.2",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(opts.test.as_deref(), Some("b.mtx"));
        assert_eq!(opts.k, 8);
        assert_eq!(opts.burnin, 3);
        assert_eq!(opts.samples, 5);
        assert_eq!(opts.threads, 2);
        assert_eq!(opts.engine, EngineKind::Static);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.save_factors.as_deref(), Some("out"));
    }

    #[test]
    fn extension_flags_parse() {
        let opts = parse_args(&argv(
            "--train a.mtx --user-features f.tsv --lambda-beta 0.5              --checkpoint c.json --checkpoint-every 10 --resume old.json --diagnostics",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(opts.user_features.as_deref(), Some("f.tsv"));
        assert_eq!(opts.lambda_beta, 0.5);
        assert_eq!(opts.checkpoint.as_deref(), Some("c.json"));
        assert_eq!(opts.checkpoint_every, Some(10));
        assert_eq!(opts.resume.as_deref(), Some("old.json"));
        assert!(opts.diagnostics);
    }

    #[test]
    fn nonpositive_lambda_beta_is_an_error() {
        assert!(parse_args(&argv("--train a.mtx --lambda-beta 0")).is_err());
        assert!(parse_args(&argv("--train a.mtx --lambda-beta -1")).is_err());
    }

    #[test]
    fn features_tsv_roundtrip() {
        let dir = std::env::temp_dir().join("bpmf_cli_feat_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("features.tsv");
        std::fs::write(&path, "1.0	2.0
3.0	4.0

-1.5	0.25
").unwrap();
        let m = read_features_tsv(path.to_str().unwrap()).unwrap();
        assert_eq!((m.rows(), m.cols()), (3, 2));
        assert_eq!(m[(2, 0)], -1.5);
        assert_eq!(m[(2, 1)], 0.25);
    }

    #[test]
    fn ragged_features_tsv_is_an_error() {
        let dir = std::env::temp_dir().join("bpmf_cli_feat_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ragged.tsv");
        std::fs::write(&path, "1 2 3
4 5
").unwrap();
        let err = read_features_tsv(path.to_str().unwrap()).unwrap_err();
        assert!(err.to_string().contains("expected 3 columns"));
    }

    #[test]
    fn help_short_circuits() {
        assert!(parse_args(&argv("--help")).unwrap().is_none());
    }

    #[test]
    fn missing_train_is_an_error() {
        assert!(parse_args(&argv("--k 4")).is_err());
    }

    #[test]
    fn unknown_flag_is_an_error() {
        assert!(parse_args(&argv("--train a.mtx --bogus 1")).is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse_args(&argv("--train a.mtx --k")).is_err());
    }

    #[test]
    fn bad_engine_is_an_error() {
        assert!(parse_args(&argv("--train a.mtx --engine spark")).is_err());
    }

    #[test]
    fn write_factors_roundtrip() {
        let m = Mat::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        let dir = std::env::temp_dir().join("bpmf_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("factors.tsv");
        write_factors(path.to_str().unwrap(), &m).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[2], "4\t5");
    }
}
