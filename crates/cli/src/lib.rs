#![warn(missing_docs)]

//! Argument parsing and output helpers for `bpmf-train`.
//!
//! Hand-rolled flag parsing (the dependency budget stays with the numeric
//! crates); exposed as a library so the parsing rules are unit-testable.

use std::fmt;
use std::io::Write;

use bpmf::{Algorithm, EngineKind};
use bpmf_linalg::Mat;

/// Usage text.
pub const USAGE: &str = "\
bpmf-train — matrix-factorization trainer (BPMF Gibbs / ALS-WR / SGD /
SG-MCMC / distributed BPMF) with a posterior-serving mode, a serving
daemon, and an out-of-core slab pipeline

USAGE:
  bpmf-train --train FILE.mtx|FILE.slab [OPTIONS]
  bpmf-train pack --train FILE.mtx --out FILE.slab [PACK OPTIONS]
  bpmf-train recommend --train FILE [OPTIONS] [RECOMMEND OPTIONS]
  bpmf-train serve-daemon --train FILE [OPTIONS] [SERVE OPTIONS]
  bpmf-train serve-router --shard-addr HOST:PORT... [ROUTER OPTIONS]
  bpmf-train serve-fleet --replica I/N@HOST:PORT[=CKPT]... [FLEET OPTIONS]
             -- DAEMON ARGS...
  bpmf-train serve-client --addr HOST:PORT [CLIENT OPTIONS]

A `--train` path ending in `.slab` is opened as a packed rating slab and
memory-mapped instead of parsed: training streams rating blocks from the
page cache and the matrix never materializes in heap RAM. Slab training
requires an explicit --test file (the held-out split happens at pack
time) and cannot serve --exclude-seen or `--shard` (both need the in-RAM
matrix).

The `pack` subcommand converts a MatrixMarket file into that slab format
once, so every later run mmaps it in O(1):
  --out FILE.slab     slab file to write (required)
  --blocks N          partition extents to precompute (aligns streamed
                      row ranges with the sampler's scheduler blocks)
                      [default 8]
  --test-out T.mtx    also split a held-out set off the input (seeded by
                      --seed, sized by --test-fraction) and write it as
                      MatrixMarket; the slab then holds only the training
                      ratings — pass `--test T.mtx` when training

The `recommend` subcommand trains exactly as above, then serves top-N
recommendations through the RecommendService layer (results stream out
as each micro-batch completes):
  --user N            user to recommend for (repeatable; users are served
                      in micro-batches — a single GEMM catalogue pass per
                      MICRO_BATCH-user block, sized from the kernel's
                      cache geometry) [default: 0]
  --top-n N           list length [default 10]
  --exclude-seen      skip items the user already rated in training
  --policy NAME       mean | ucb[:beta] | thompson[:seed] [default mean]

The `serve-daemon` subcommand trains (or resumes a checkpoint), then
serves recommend requests forever over TCP: newline-delimited JSON
requests are coalesced into GEMM micro-batches (flush at MICRO_BATCH
pending or the batch window, whichever first). --top-n/--exclude-seen/--policy
set the daemon's per-request defaults (--user is not accepted: clients
name users per request). Prints `serving on HOST:PORT` to stdout
once ready; stops gracefully on ctrl-c/SIGTERM or a {\"cmd\":\"shutdown\"}
request, draining everything already accepted:
  --addr HOST:PORT    listen address (port 0 = ephemeral)
                      [default 127.0.0.1:7878]
  --batch-window MS   coalescing deadline in milliseconds; 0 disables
                      coalescing (per-request serving) [default 2]
  --workers N         batch-executing worker threads [default: cores, max 4]
  --queue-cap N       bounded request queue; full = backpressure
                      [default 1024]
  --shard I/N         serve only shard I of an N-way catalogue partition
                      (contiguous, GEMM-aligned item ranges; replies carry
                      global item ids). Pair with `serve-router` over all
                      N shards for transparent scatter-gather serving

The `serve-router` subcommand runs the scatter-gather front-end over a
fleet of shard daemons (no training): it speaks the daemon wire protocol
to clients, fans each request out to the least-loaded replica of every
shard range, and k-way-merges the per-range top-N lists — bit-identical
to one whole-catalogue daemon. A request is transparently retried on a
surviving replica when a link dies mid-flight, so `partial_result`
surfaces only when every replica of a range is down.
Prints `serving on HOST:PORT` once ready; stops like the daemon does:
  --addr HOST:PORT    listen address (port 0 = ephemeral)
                      [default 127.0.0.1:7878]
  --shard-addr SPEC   one shard daemon. Either HOST:PORT repeated once
                      per range in shard order (one replica each), or
                      I/N@HOST:PORT naming the range it replicates
                      (repeatable per range; all N must agree, every
                      range 0..N must be covered; forms cannot be mixed)
  --inflight-cap N    admission control: max requests in flight; over
                      budget replies a typed `overloaded` error
                      [default 256]
  --request-timeout MS  patience for shard replies before a retry (budget
                      permitting) or a typed `timeout` error [default 5000]
  --retry-budget N    re-scatters one request may spend across replica
                      failures and timeouts; 0 disables failover
                      [default 2]
  --top-n N           fill-in list length for requests that omit n
                      [default 10]

Both serving processes accept a deterministic fault-injection plan for
chaos drills (also via the BPMF_FAULT_PLAN env var; off when absent):
  --fault-plan SPEC   comma-separated KIND@TRIGGER rules, e.g.
                      'close@3' (sever a link at the 3rd request),
                      'drop@2%5,seed=7' (drop reply at request 2 then
                      every 5th), 'delay:20@p0.5' (20 ms delay, seeded
                      coin per request). KIND: delay:MS|drop|close|panic;
                      TRIGGER: N | N%M | pP

The `serve-fleet` subcommand supervises a whole replica fleet from one
process: it spawns one `serve-daemon` child per --replica on that
replica's fixed address, reaps children when they die (no zombies), and
restarts each on its ORIGINAL port under a per-replica restart budget
with seeded, jittered exponential backoff. A replica that exhausts its
budget — or whose checkpoint fails its integrity check before a
respawn — is quarantined with a typed diagnostic (`crash_loop` /
`corrupt_artifact`) while its twins keep serving. Everything after `--`
goes verbatim to every child daemon; it must include --train, while
--shard/--addr/--resume are owned by the supervisor (from --replica):
  --replica SPEC      I/N@HOST:PORT[=CKPT]: one child serving range I
                      of N at HOST:PORT, optionally resuming checkpoint
                      CKPT (integrity-verified before every (re)spawn).
                      Repeatable; all N must agree, every range needs at
                      least one replica, addresses must be unique
  --restart-limit N   consecutive-failure budget per replica before it
                      is quarantined; a healthy probe refunds the budget
                      [default 5]
  --backoff-base MS   first restart delay; doubles per consecutive
                      failure, jittered by --seed [default 200]
  --backoff-max MS    restart-delay ceiling [default 5000]
  --probe-interval MS liveness-probe period per running replica
                      [default 500]
  --probe-failures N  consecutive probe misses before the replica is
                      killed and restarted [default 3]

The `serve-client` subcommand talks to a running daemon or router (no
training): one concurrent connection per --user, printed in request
order in the same format as `recommend` — so the two outputs diff
cleanly. Connections retry with exponential backoff while the server
starts up:
  --addr HOST:PORT    daemon/router address [default 127.0.0.1:7878]
  --user/--top-n/--exclude-seen/--policy   as above, sent per request
  --health            print the server's structured health report (one
                      JSON line; a router nests per-shard reports)
  --stats             print the server's counter snapshot (one JSON line)
  --reload PATH       ask the daemon to hot-swap its model from the
                      checkpoint at PATH (server-local; CRC-verified and
                      shard-checked before the swap, zero dropped
                      requests); prints the new model epoch
  --fold-in SPEC      fold a brand-new user into the served posterior
                      from SPEC = 'ITEM:RATING,ITEM:RATING,...' and
                      print their top-N — answered live, no retrain
  --shutdown          after any requests, ask the server to shut down

OPTIONS:
  --train FILE        MatrixMarket (.mtx) or packed slab (.slab) training
                      ratings (required)
  --test FILE         MatrixMarket held-out ratings (same dimensions;
                      required when --train is a .slab)
  --test-fraction F   split F of --train off as the test set [default 0.1]
  --algorithm NAME    gibbs | als | sgd | sgmcmc | distributed
                      [default gibbs]
  --k N               latent dimension [default 16]
  --burnin N          burn-in iterations (gibbs/sgmcmc) [default 8]
  --samples N         averaged sampling iterations (gibbs/sgmcmc)
                      [default 24]
  --sweeps N          full U+V sweeps (als) [default 20]
  --epochs N          epochs (sgd) [default 30]
  --lambda X          ridge strength (als/sgd/sgmcmc) [algorithm default]
  --learning-rate X   initial learning rate (sgd) [default 0.01]
  --minibatch N       ratings per SGLD mini-batch (sgmcmc) [default 1024]
  --step-size X       initial SGLD step size (sgmcmc) [default 0.1]
  --step-decay X      inverse-time SGLD step decay per epoch-equivalent
                      (sgmcmc) [default 0.05]
  --min-rating X      clamp predictions below X (use with --max-rating)
  --max-rating X      clamp predictions above X (use with --min-rating)
  --threads N         worker threads [default: all cores]
  --engine NAME       ws | static | graphlab [default ws]
  --seed N            RNG seed [default 42]
  --save-factors PFX  write the fitted factors to PFX_{users,movies}.tsv
  --user-features F   TSV of per-user features (Macau side info; gibbs only)
  --lambda-beta X     link-matrix ridge when --user-features is set [default 1]
  --checkpoint FILE   write a JSON checkpoint after the run (and every
                      --checkpoint-every iterations; gibbs only)
  --checkpoint-every N  periodic checkpoint interval [default: end only]
  --resume FILE       continue an interrupted run from its checkpoint
  --diagnostics       print ESS / autocorrelation-time summary of the
                      RMSE trace after the run
  --help              show this text
";

/// Which mode the binary runs in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Command {
    /// Train and report (the default).
    #[default]
    Train,
    /// Pack a MatrixMarket file into the mmap-able slab format.
    Pack,
    /// Train, then serve top-N recommendations through `RecommendService`.
    Recommend,
    /// Train, then run the persistent TCP serving daemon.
    ServeDaemon,
    /// Run the scatter-gather router over shard daemons (no training).
    ServeRouter,
    /// Supervise a fleet of `serve-daemon` children (no training).
    ServeFleet,
    /// Talk to a running daemon or router (no training).
    ServeClient,
}

/// Options of the `recommend` subcommand.
#[derive(Clone, Debug)]
pub struct RecommendOptions {
    /// Users to recommend for (empty = user 0).
    pub users: Vec<usize>,
    /// Recommendation list length.
    pub top_n: usize,
    /// Skip items the user already rated in training.
    pub exclude_seen: bool,
    /// Ranking policy (`mean` | `ucb[:beta]` | `thompson[:seed]`).
    pub policy: String,
}

impl Default for RecommendOptions {
    fn default() -> Self {
        RecommendOptions {
            users: Vec::new(),
            top_n: 10,
            exclude_seen: false,
            policy: "mean".to_string(),
        }
    }
}

/// Options of the `serve-daemon` / `serve-client` subcommands.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Listen (daemon) or connect (client) address.
    pub addr: String,
    /// Coalescing deadline in milliseconds (0 = per-request serving).
    pub batch_window_ms: f64,
    /// Batch-executing worker threads.
    pub workers: usize,
    /// Bounded request-queue capacity.
    pub queue_cap: usize,
    /// Daemon: serve only shard `(i, n)` of an n-way catalogue partition.
    pub shard: Option<(u32, u32)>,
    /// Router: raw `--shard-addr` values in the order given.
    pub shard_addrs: Vec<String>,
    /// Router: replica addresses grouped by shard range (derived from
    /// `shard_addrs` by [`group_shard_addrs`] at parse time).
    pub shard_groups: Vec<Vec<String>>,
    /// Router: admission-control in-flight budget.
    pub inflight_cap: usize,
    /// Router: patience for shard replies, in milliseconds.
    pub request_timeout_ms: f64,
    /// Router: re-scatters one request may spend across replica failures
    /// and timeouts (0 disables failover).
    pub retry_budget: u32,
    /// Daemon/router: validated fault-injection spec (`--fault-plan`),
    /// parsed into a `FaultPlan` at launch.
    pub fault_plan: Option<String>,
    /// Client: print the server's structured health report.
    pub health: bool,
    /// Client: print the server's counter snapshot.
    pub stats: bool,
    /// Client: checkpoint path for a live model reload (`--reload`).
    pub reload: Option<String>,
    /// Client: cold-start observations for a fold-in request
    /// (`--fold-in 'ITEM:RATING,...'`), validated at parse time.
    pub fold_in: Option<Vec<(u32, f64)>>,
    /// Client: ask the daemon to shut down after any requests.
    pub shutdown: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7878".to_string(),
            batch_window_ms: 2.0,
            workers: std::thread::available_parallelism().map_or(1, |n| n.get().min(4)),
            queue_cap: 1024,
            shard: None,
            shard_addrs: Vec::new(),
            shard_groups: Vec::new(),
            inflight_cap: 256,
            request_timeout_ms: 5000.0,
            retry_budget: 2,
            fault_plan: None,
            health: false,
            stats: false,
            reload: None,
            fold_in: None,
            shutdown: false,
        }
    }
}

/// One `--replica` of the `serve-fleet` subcommand: the catalogue range
/// a child serves, the fixed address it must come back on after every
/// restart, and (optionally) the checkpoint it resumes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetReplica {
    /// `(shard_id, num_shards)` of the range this child serves.
    pub shard: (u32, u32),
    /// Fixed listen address (`HOST:PORT`; respawns reuse it verbatim).
    pub addr: String,
    /// Checkpoint the child resumes, integrity-checked before every
    /// (re)spawn; `None` trains from scratch on each launch.
    pub checkpoint: Option<String>,
}

/// Options of the `serve-fleet` subcommand.
#[derive(Clone, Debug)]
pub struct FleetOptions {
    /// Parsed `--replica` specs in the order given.
    pub replicas: Vec<FleetReplica>,
    /// Consecutive-failure budget per replica before quarantine.
    pub restart_limit: u32,
    /// First restart delay, in milliseconds.
    pub backoff_base_ms: f64,
    /// Restart-delay ceiling, in milliseconds.
    pub backoff_max_ms: f64,
    /// Liveness-probe period per running replica, in milliseconds.
    pub probe_interval_ms: f64,
    /// Consecutive probe misses before a kill-and-restart.
    pub probe_failures: u32,
    /// Everything after `--`, passed verbatim to each child daemon.
    pub child_args: Vec<String>,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            replicas: Vec::new(),
            restart_limit: 5,
            backoff_base_ms: 200.0,
            backoff_max_ms: 5000.0,
            probe_interval_ms: 500.0,
            probe_failures: 3,
            child_args: Vec::new(),
        }
    }
}

/// Parsed command line.
#[derive(Clone, Debug)]
pub struct Options {
    /// Selected subcommand.
    pub command: Command,
    /// `recommend` subcommand options (also the serving daemon's
    /// per-request defaults and the client's request parameters).
    pub recommend: RecommendOptions,
    /// `serve-daemon` / `serve-client` subcommand options.
    pub serve: ServeOptions,
    /// `serve-fleet` subcommand options.
    pub fleet: FleetOptions,
    /// Path to the MatrixMarket training ratings.
    pub train: String,
    /// Optional path to a held-out MatrixMarket test set.
    pub test: Option<String>,
    /// Fraction split off `train` when no test file is given.
    pub test_fraction: f64,
    /// Selected algorithm.
    pub algorithm: Algorithm,
    /// Latent dimension K.
    pub k: usize,
    /// Burn-in iterations (Gibbs).
    pub burnin: usize,
    /// Averaged sampling iterations (Gibbs).
    pub samples: usize,
    /// Full sweeps (ALS), if overridden.
    pub sweeps: Option<usize>,
    /// Epochs (SGD), if overridden.
    pub epochs: Option<usize>,
    /// Ridge strength (ALS/SGD/SG-MCMC), if overridden.
    pub lambda: Option<f64>,
    /// Initial learning rate (SGD), if overridden.
    pub learning_rate: Option<f64>,
    /// Ratings per SGLD mini-batch (SG-MCMC), if overridden.
    pub minibatch: Option<usize>,
    /// Initial SGLD step size (SG-MCMC), if overridden.
    pub step_size: Option<f64>,
    /// Inverse-time SGLD step decay (SG-MCMC), if overridden.
    pub step_decay: Option<f64>,
    /// `pack`: slab file to write.
    pub pack_out: Option<String>,
    /// `pack`: partition extents to precompute in the slab.
    pub pack_blocks: usize,
    /// `pack`: also write a held-out MatrixMarket split here.
    pub test_out: Option<String>,
    /// Lower rating clamp.
    pub min_rating: Option<f64>,
    /// Upper rating clamp.
    pub max_rating: Option<f64>,
    /// Worker threads.
    pub threads: usize,
    /// Shared-memory runtime.
    pub engine: EngineKind,
    /// RNG seed.
    pub seed: u64,
    /// Prefix for fitted-factor TSVs, if requested.
    pub save_factors: Option<String>,
    /// TSV of per-user features for Macau-style side information.
    pub user_features: Option<String>,
    /// Link-matrix ridge used with `--user-features`.
    pub lambda_beta: f64,
    /// Checkpoint file to write.
    pub checkpoint: Option<String>,
    /// Periodic checkpoint interval (`None` = only at the end).
    pub checkpoint_every: Option<usize>,
    /// Checkpoint file to resume from.
    pub resume: Option<String>,
    /// Print convergence diagnostics after the run.
    pub diagnostics: bool,
}

/// CLI error with a human message.
#[derive(Debug)]
pub struct CliError(String);

impl CliError {
    /// Wrap a message.
    pub fn new(msg: impl Into<String>) -> Self {
        CliError(msg.into())
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(e.to_string())
    }
}

impl From<bpmf::BpmfError> for CliError {
    fn from(e: bpmf::BpmfError) -> Self {
        CliError(e.to_string())
    }
}

/// Parse arguments; `Ok(None)` means `--help` was requested.
pub fn parse_args(args: &[String]) -> Result<Option<Options>, CliError> {
    let mut opts = Options {
        command: Command::Train,
        recommend: RecommendOptions::default(),
        serve: ServeOptions::default(),
        fleet: FleetOptions::default(),
        train: String::new(),
        test: None,
        test_fraction: 0.1,
        algorithm: Algorithm::Gibbs,
        k: 16,
        burnin: 8,
        samples: 24,
        sweeps: None,
        epochs: None,
        lambda: None,
        learning_rate: None,
        minibatch: None,
        step_size: None,
        step_decay: None,
        pack_out: None,
        pack_blocks: 8,
        test_out: None,
        min_rating: None,
        max_rating: None,
        threads: std::thread::available_parallelism().map_or(2, |n| n.get()),
        engine: EngineKind::WorkStealing,
        seed: 42,
        save_factors: None,
        user_features: None,
        lambda_beta: 1.0,
        checkpoint: None,
        checkpoint_every: None,
        resume: None,
        diagnostics: false,
    };
    let mut args = args;
    match args.first().map(String::as_str) {
        Some("pack") => {
            opts.command = Command::Pack;
            args = &args[1..];
        }
        Some("recommend") => {
            opts.command = Command::Recommend;
            args = &args[1..];
        }
        Some("serve-daemon") => {
            opts.command = Command::ServeDaemon;
            args = &args[1..];
        }
        Some("serve-router") => {
            opts.command = Command::ServeRouter;
            args = &args[1..];
        }
        Some("serve-fleet") => {
            opts.command = Command::ServeFleet;
            args = &args[1..];
        }
        Some("serve-client") => {
            opts.command = Command::ServeClient;
            args = &args[1..];
        }
        _ => {}
    }
    let mut recommend_flag: Option<&String> = None;
    let mut pack_flag: Option<&String> = None;
    let mut daemon_flag: Option<&String> = None;
    let mut client_flag: Option<&String> = None;
    let mut router_flag: Option<&String> = None;
    let mut serve_flag: Option<&String> = None;
    let mut fault_flag: Option<&String> = None;
    let mut fleet_flag: Option<&String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        // The client never trains: accepting (and ignoring) training
        // flags would be a silent no-op, unlike every other misplaced
        // flag, so reject anything outside its small vocabulary up front.
        if opts.command == Command::ServeClient
            && !matches!(
                flag.as_str(),
                "--help"
                    | "-h"
                    | "--addr"
                    | "--shutdown"
                    | "--user"
                    | "--top-n"
                    | "--exclude-seen"
                    | "--policy"
                    | "--health"
                    | "--stats"
                    | "--reload"
                    | "--fold-in"
            )
        {
            return Err(CliError::new(format!(
                "{flag} is not valid with `serve-client` (valid flags: --addr --user \
                 --top-n --exclude-seen --policy --health --stats --reload --fold-in \
                 --shutdown)"
            )));
        }
        // `pack` is a pure format conversion: a training or serving flag
        // here would be a silent no-op, so reject anything outside its
        // small vocabulary up front.
        if opts.command == Command::Pack
            && !matches!(
                flag.as_str(),
                "--help"
                    | "-h"
                    | "--train"
                    | "--out"
                    | "--blocks"
                    | "--test-out"
                    | "--test-fraction"
                    | "--seed"
            )
        {
            return Err(CliError::new(format!(
                "{flag} is not valid with `pack` (valid flags: --train --out \
                 --blocks --test-out --test-fraction --seed)"
            )));
        }
        // The router never trains either: same up-front rejection.
        if opts.command == Command::ServeRouter
            && !matches!(
                flag.as_str(),
                "--help"
                    | "-h"
                    | "--addr"
                    | "--shard-addr"
                    | "--inflight-cap"
                    | "--request-timeout"
                    | "--retry-budget"
                    | "--fault-plan"
                    | "--top-n"
            )
        {
            return Err(CliError::new(format!(
                "{flag} is not valid with `serve-router` (valid flags: --addr \
                 --shard-addr --inflight-cap --request-timeout --retry-budget \
                 --fault-plan --top-n)"
            )));
        }
        // The fleet supervisor never trains in-process: training flags
        // for the children go after `--` verbatim, and the flags before
        // it are the supervisor's own small vocabulary.
        if opts.command == Command::ServeFleet
            && !matches!(
                flag.as_str(),
                "--help"
                    | "-h"
                    | "--"
                    | "--replica"
                    | "--restart-limit"
                    | "--backoff-base"
                    | "--backoff-max"
                    | "--probe-interval"
                    | "--probe-failures"
                    | "--seed"
            )
        {
            return Err(CliError::new(format!(
                "{flag} is not valid with `serve-fleet` (valid flags: --replica \
                 --restart-limit --backoff-base --backoff-max --probe-interval \
                 --probe-failures --seed; child daemon args go after `--`)"
            )));
        }
        if opts.command == Command::ServeFleet && flag == "--" {
            // Everything after `--` is the child daemons' command line,
            // passed verbatim (plus the supervisor-owned per-replica
            // --shard/--addr/--resume) to every spawn.
            opts.fleet.child_args = it.map(String::clone).collect();
            break;
        }
        let mut value = || {
            it.next()
                .ok_or_else(|| CliError::new(format!("{flag} requires a value")))
        };
        match flag.as_str() {
            "--help" | "-h" => return Ok(None),
            "--train" => opts.train = value()?.clone(),
            "--test" => opts.test = Some(value()?.clone()),
            "--test-fraction" => {
                opts.test_fraction = parse_num(flag, value()?)?;
                if !(0.0..1.0).contains(&opts.test_fraction) {
                    return Err(CliError::new("--test-fraction must be in [0, 1)"));
                }
            }
            "--algorithm" => {
                opts.algorithm = value()?
                    .parse()
                    .map_err(|e| CliError::new(format!("{e}")))?;
            }
            "--k" => opts.k = parse_num(flag, value()?)?,
            "--burnin" => opts.burnin = parse_num(flag, value()?)?,
            "--samples" => opts.samples = parse_num(flag, value()?)?,
            "--sweeps" => opts.sweeps = Some(parse_num(flag, value()?)?),
            "--epochs" => opts.epochs = Some(parse_num(flag, value()?)?),
            "--lambda" => opts.lambda = Some(parse_num(flag, value()?)?),
            "--learning-rate" => opts.learning_rate = Some(parse_num(flag, value()?)?),
            "--minibatch" => {
                opts.minibatch = Some(parse_num(flag, value()?)?);
                if opts.minibatch == Some(0) {
                    return Err(CliError::new("--minibatch must be positive"));
                }
            }
            "--step-size" => opts.step_size = Some(parse_num(flag, value()?)?),
            "--step-decay" => opts.step_decay = Some(parse_num(flag, value()?)?),
            "--out" => {
                pack_flag = Some(flag);
                opts.pack_out = Some(value()?.clone());
            }
            "--blocks" => {
                pack_flag = Some(flag);
                opts.pack_blocks = parse_num(flag, value()?)?;
                if opts.pack_blocks == 0 {
                    return Err(CliError::new("--blocks must be positive"));
                }
            }
            "--test-out" => {
                pack_flag = Some(flag);
                opts.test_out = Some(value()?.clone());
            }
            "--min-rating" => opts.min_rating = Some(parse_num(flag, value()?)?),
            "--max-rating" => opts.max_rating = Some(parse_num(flag, value()?)?),
            "--threads" => opts.threads = parse_num(flag, value()?)?,
            "--seed" => opts.seed = parse_num(flag, value()?)?,
            "--save-factors" => opts.save_factors = Some(value()?.clone()),
            "--user-features" => opts.user_features = Some(value()?.clone()),
            "--lambda-beta" => {
                opts.lambda_beta = parse_num(flag, value()?)?;
                if opts.lambda_beta <= 0.0 {
                    return Err(CliError::new("--lambda-beta must be positive"));
                }
            }
            "--user" => {
                recommend_flag = Some(flag);
                opts.recommend.users.push(parse_num(flag, value()?)?);
            }
            "--top-n" => {
                recommend_flag = Some(flag);
                opts.recommend.top_n = parse_num(flag, value()?)?;
                if opts.recommend.top_n == 0 {
                    return Err(CliError::new("--top-n must be positive"));
                }
            }
            "--exclude-seen" => {
                recommend_flag = Some(flag);
                opts.recommend.exclude_seen = true;
            }
            "--policy" => {
                recommend_flag = Some(flag);
                opts.recommend.policy = value()?.clone();
                opts.recommend
                    .policy
                    .parse::<bpmf::serve::RankPolicy>()
                    .map_err(|e| CliError::new(e.to_string()))?;
            }
            "--addr" => {
                serve_flag = Some(flag);
                opts.serve.addr = value()?.clone();
            }
            "--batch-window" => {
                daemon_flag = Some(flag);
                opts.serve.batch_window_ms = parse_num(flag, value()?)?;
                if !opts.serve.batch_window_ms.is_finite() || opts.serve.batch_window_ms < 0.0 {
                    return Err(CliError::new("--batch-window must be >= 0 milliseconds"));
                }
            }
            "--workers" => {
                daemon_flag = Some(flag);
                opts.serve.workers = parse_num(flag, value()?)?;
                if opts.serve.workers == 0 {
                    return Err(CliError::new("--workers must be positive"));
                }
            }
            "--queue-cap" => {
                daemon_flag = Some(flag);
                opts.serve.queue_cap = parse_num(flag, value()?)?;
                if opts.serve.queue_cap == 0 {
                    return Err(CliError::new("--queue-cap must be positive"));
                }
            }
            "--shard" => {
                daemon_flag = Some(flag);
                opts.serve.shard = Some(parse_shard(value()?)?);
            }
            "--shard-addr" => {
                router_flag = Some(flag);
                opts.serve.shard_addrs.push(value()?.clone());
            }
            "--inflight-cap" => {
                router_flag = Some(flag);
                opts.serve.inflight_cap = parse_num(flag, value()?)?;
                if opts.serve.inflight_cap == 0 {
                    return Err(CliError::new("--inflight-cap must be positive"));
                }
            }
            "--request-timeout" => {
                router_flag = Some(flag);
                opts.serve.request_timeout_ms = parse_num(flag, value()?)?;
                if !opts.serve.request_timeout_ms.is_finite()
                    || opts.serve.request_timeout_ms <= 0.0
                {
                    return Err(CliError::new(
                        "--request-timeout must be positive milliseconds",
                    ));
                }
            }
            "--retry-budget" => {
                router_flag = Some(flag);
                opts.serve.retry_budget = parse_num(flag, value()?)?;
            }
            "--replica" => {
                fleet_flag = Some(flag);
                opts.fleet.replicas.push(parse_fleet_replica(value()?)?);
            }
            "--restart-limit" => {
                fleet_flag = Some(flag);
                opts.fleet.restart_limit = parse_num(flag, value()?)?;
            }
            "--backoff-base" => {
                fleet_flag = Some(flag);
                opts.fleet.backoff_base_ms = parse_num(flag, value()?)?;
                if !opts.fleet.backoff_base_ms.is_finite() || opts.fleet.backoff_base_ms <= 0.0 {
                    return Err(CliError::new(
                        "--backoff-base must be positive milliseconds",
                    ));
                }
            }
            "--backoff-max" => {
                fleet_flag = Some(flag);
                opts.fleet.backoff_max_ms = parse_num(flag, value()?)?;
                if !opts.fleet.backoff_max_ms.is_finite() || opts.fleet.backoff_max_ms <= 0.0 {
                    return Err(CliError::new("--backoff-max must be positive milliseconds"));
                }
            }
            "--probe-interval" => {
                fleet_flag = Some(flag);
                opts.fleet.probe_interval_ms = parse_num(flag, value()?)?;
                if !opts.fleet.probe_interval_ms.is_finite() || opts.fleet.probe_interval_ms <= 0.0
                {
                    return Err(CliError::new(
                        "--probe-interval must be positive milliseconds",
                    ));
                }
            }
            "--probe-failures" => {
                fleet_flag = Some(flag);
                opts.fleet.probe_failures = parse_num(flag, value()?)?;
                if opts.fleet.probe_failures == 0 {
                    return Err(CliError::new("--probe-failures must be positive"));
                }
            }
            "--fault-plan" => {
                fault_flag = Some(flag);
                let spec = value()?.clone();
                // Validate at parse time: a chaos drill with a typo'd
                // plan must die here, not run vacuously.
                spec.parse::<bpmf::serve::faults::FaultPlan>()
                    .map_err(|e| CliError::new(format!("--fault-plan: {e}")))?;
                opts.serve.fault_plan = Some(spec);
            }
            "--health" => {
                client_flag = Some(flag);
                opts.serve.health = true;
            }
            "--stats" => {
                client_flag = Some(flag);
                opts.serve.stats = true;
            }
            "--reload" => {
                client_flag = Some(flag);
                opts.serve.reload = Some(value()?.clone());
            }
            "--fold-in" => {
                client_flag = Some(flag);
                // Validate at parse time: a typo'd observation list must
                // die here, not as a daemon-side error reply.
                opts.serve.fold_in = Some(parse_fold_in_spec(value()?)?);
            }
            "--shutdown" => {
                client_flag = Some(flag);
                opts.serve.shutdown = true;
            }
            "--checkpoint" => opts.checkpoint = Some(value()?.clone()),
            "--checkpoint-every" => opts.checkpoint_every = Some(parse_num(flag, value()?)?),
            "--resume" => opts.resume = Some(value()?.clone()),
            "--diagnostics" => opts.diagnostics = true,
            "--engine" => {
                opts.engine = match value()?.as_str() {
                    "ws" | "work-stealing" => EngineKind::WorkStealing,
                    "static" => EngineKind::Static,
                    "graphlab" => EngineKind::GraphLabLike,
                    other => {
                        return Err(CliError::new(format!(
                            "unknown engine '{other}' (ws | static | graphlab)"
                        )))
                    }
                };
            }
            other => return Err(CliError::new(format!("unknown flag '{other}'"))),
        }
    }
    // The recommend knobs double as the daemon's request defaults and the
    // client's request parameters. The router only takes --top-n (its
    // fill-in default for requests that omit n) — the up-front whitelist
    // above already rejected the rest for serve-router.
    if !matches!(
        opts.command,
        Command::Recommend | Command::ServeDaemon | Command::ServeClient | Command::ServeRouter
    ) {
        if let Some(flag) = recommend_flag {
            return Err(CliError::new(format!(
                "{flag} is only valid with the `recommend`, `serve-daemon`, \
                 or `serve-client` subcommands"
            )));
        }
    }
    if !matches!(
        opts.command,
        Command::ServeDaemon | Command::ServeRouter | Command::ServeClient
    ) {
        if let Some(flag) = serve_flag {
            return Err(CliError::new(format!(
                "{flag} is only valid with the `serve-daemon`, `serve-router`, \
                 or `serve-client` subcommands"
            )));
        }
    }
    if opts.command != Command::ServeDaemon {
        if let Some(flag) = daemon_flag {
            return Err(CliError::new(format!(
                "{flag} is only valid with the `serve-daemon` subcommand"
            )));
        }
    }
    if opts.command != Command::ServeRouter {
        if let Some(flag) = router_flag {
            return Err(CliError::new(format!(
                "{flag} is only valid with the `serve-router` subcommand"
            )));
        }
    }
    if opts.command == Command::ServeRouter && opts.serve.shard_addrs.is_empty() {
        return Err(CliError::new(
            "serve-router needs at least one --shard-addr (one per shard, in shard order)",
        ));
    }
    if opts.command == Command::ServeRouter {
        opts.serve.shard_groups = group_shard_addrs(&opts.serve.shard_addrs)?;
    }
    if opts.command != Command::ServeFleet {
        if let Some(flag) = fleet_flag {
            return Err(CliError::new(format!(
                "{flag} is only valid with the `serve-fleet` subcommand"
            )));
        }
    } else {
        validate_fleet(&opts.fleet)?;
    }
    if !matches!(opts.command, Command::ServeDaemon | Command::ServeRouter) {
        if let Some(flag) = fault_flag {
            return Err(CliError::new(format!(
                "{flag} is only valid with the `serve-daemon` or `serve-router` subcommands"
            )));
        }
    }
    if opts.command != Command::ServeClient {
        if let Some(flag) = client_flag {
            return Err(CliError::new(format!(
                "{flag} is only valid with the `serve-client` subcommand"
            )));
        }
    }
    if opts.command != Command::Pack {
        if let Some(flag) = pack_flag {
            return Err(CliError::new(format!(
                "{flag} is only valid with the `pack` subcommand"
            )));
        }
    }
    if opts.command == Command::Pack && opts.pack_out.is_none() {
        return Err(CliError::new("pack requires --out FILE.slab"));
    }
    // The daemon serves whatever users clients request; a --user on its
    // command line would be silently meaningless.
    if opts.command == Command::ServeDaemon && !opts.recommend.users.is_empty() {
        return Err(CliError::new(
            "--user is not valid with `serve-daemon` (clients name users per request)",
        ));
    }
    // The client, router, and fleet supervisor never train in-process;
    // everything else needs data. (Fleet children get --train through
    // the `--` passthrough, checked in validate_fleet.)
    if opts.train.is_empty()
        && !matches!(
            opts.command,
            Command::ServeClient | Command::ServeRouter | Command::ServeFleet
        )
    {
        return Err(CliError::new("--train is required"));
    }
    if opts.k == 0 {
        return Err(CliError::new("--k must be positive"));
    }
    if opts.min_rating.is_some() != opts.max_rating.is_some() {
        return Err(CliError::new(
            "--min-rating and --max-rating must be given together",
        ));
    }
    if let (Some(lo), Some(hi)) = (opts.min_rating, opts.max_rating) {
        if lo >= hi {
            return Err(CliError::new("--min-rating must be below --max-rating"));
        }
    }
    Ok(Some(opts))
}

fn parse_num<T: std::str::FromStr>(flag: &str, s: &str) -> Result<T, CliError> {
    s.parse()
        .map_err(|_| CliError::new(format!("invalid value '{s}' for {flag}")))
}

/// Group `--shard-addr` values into per-range replica lists.
///
/// Two forms, never mixed:
/// * legacy `HOST:PORT` — each address is its own range, in the order
///   given (one replica per range, exactly the pre-replication CLI);
/// * replicated `I/N@HOST:PORT` — the address replicates range `I` of
///   `N`. Every entry must agree on `N`, and every range `0..N` must be
///   covered by at least one replica: a silently missing range would
///   turn every request into a typed failure.
pub fn group_shard_addrs(addrs: &[String]) -> Result<Vec<Vec<String>>, CliError> {
    let replicated = addrs.iter().filter(|a| a.contains('@')).count();
    if replicated == 0 {
        return Ok(addrs.iter().map(|a| vec![a.clone()]).collect());
    }
    if replicated != addrs.len() {
        return Err(CliError::new(
            "--shard-addr forms cannot be mixed: use either HOST:PORT for every \
             shard or I/N@HOST:PORT for every replica",
        ));
    }
    let mut num_shards: Option<u32> = None;
    let mut groups: Vec<Vec<String>> = Vec::new();
    for spec in addrs {
        let (range, addr) = spec.split_once('@').expect("checked above");
        let (i, n) = parse_shard(range).map_err(|_| {
            CliError::new(format!(
                "invalid value '{spec}' for --shard-addr (expected I/N@HOST:PORT, \
                 e.g. 0/2@127.0.0.1:7878)"
            ))
        })?;
        if addr.trim().is_empty() {
            return Err(CliError::new(format!(
                "invalid value '{spec}' for --shard-addr: empty address after '@'"
            )));
        }
        match num_shards {
            None => {
                num_shards = Some(n);
                groups.resize(n as usize, Vec::new());
            }
            Some(expect) if expect != n => {
                return Err(CliError::new(format!(
                    "--shard-addr {spec}: declares {n} shard range(s) but an earlier \
                     replica declared {expect}"
                )));
            }
            Some(_) => {}
        }
        groups[i as usize].push(addr.to_string());
    }
    for (i, group) in groups.iter().enumerate() {
        if group.is_empty() {
            return Err(CliError::new(format!(
                "--shard-addr: range {i}/{} has no replica; every range needs at \
                 least one",
                num_shards.unwrap_or(0)
            )));
        }
    }
    Ok(groups)
}

/// Parse a `--replica I/N@HOST:PORT[=CKPT]` value.
pub fn parse_fleet_replica(spec: &str) -> Result<FleetReplica, CliError> {
    let bad = || {
        CliError::new(format!(
            "invalid value '{spec}' for --replica (expected I/N@HOST:PORT[=CKPT], \
             e.g. 0/2@127.0.0.1:7878=model.json)"
        ))
    };
    let (range, rest) = spec.split_once('@').ok_or_else(bad)?;
    let shard = parse_shard(range).map_err(|_| bad())?;
    let (addr, checkpoint) = match rest.split_once('=') {
        Some((addr, ckpt)) if !ckpt.trim().is_empty() => (addr, Some(ckpt.to_string())),
        Some(_) => return Err(bad()),
        None => (rest, None),
    };
    if addr.trim().is_empty() {
        return Err(bad());
    }
    Ok(FleetReplica {
        shard,
        addr: addr.to_string(),
        checkpoint,
    })
}

/// Parse a `--fold-in 'ITEM:RATING,ITEM:RATING,...'` value.
///
/// Every pair must be `u32:f64` with a finite rating; duplicated items
/// are rejected here so the daemon never sees a contradictory
/// observation set for one user.
pub fn parse_fold_in_spec(spec: &str) -> Result<Vec<(u32, f64)>, CliError> {
    let bad = |why: &str| {
        CliError::new(format!(
            "invalid value '{spec}' for --fold-in ({why}; expected \
             ITEM:RATING,ITEM:RATING,... e.g. 3:4.0,17:2.5)"
        ))
    };
    let mut pairs = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            return Err(bad("empty observation"));
        }
        let (item, rating) = part.split_once(':').ok_or_else(|| bad("missing ':'"))?;
        let item: u32 = item
            .trim()
            .parse()
            .map_err(|_| bad("item id must be a non-negative integer"))?;
        let rating: f64 = rating
            .trim()
            .parse()
            .map_err(|_| bad("rating must be a number"))?;
        if !rating.is_finite() {
            return Err(bad("rating must be finite"));
        }
        if !seen.insert(item) {
            return Err(bad("item listed twice"));
        }
        pairs.push((item, rating));
    }
    Ok(pairs)
}

/// Cross-flag validation for `serve-fleet`: a coherent replica set (same
/// N everywhere, every range covered, no two children fighting over one
/// port) and a child command line the supervisor can actually spawn.
fn validate_fleet(fleet: &FleetOptions) -> Result<(), CliError> {
    if fleet.replicas.is_empty() {
        return Err(CliError::new(
            "serve-fleet needs at least one --replica I/N@HOST:PORT[=CKPT]",
        ));
    }
    let n = fleet.replicas[0].shard.1;
    let mut covered = vec![false; n as usize];
    let mut seen = std::collections::HashSet::new();
    for r in &fleet.replicas {
        if r.shard.1 != n {
            return Err(CliError::new(format!(
                "--replica {}/{}@{}: declares {} shard range(s) but an earlier \
                 replica declared {n}",
                r.shard.0, r.shard.1, r.addr, r.shard.1
            )));
        }
        covered[r.shard.0 as usize] = true;
        if !seen.insert(r.addr.as_str()) {
            return Err(CliError::new(format!(
                "--replica: two replicas on {} would fight over one port; \
                 addresses must be unique",
                r.addr
            )));
        }
    }
    if let Some(i) = covered.iter().position(|c| !c) {
        return Err(CliError::new(format!(
            "--replica: range {i}/{n} has no replica; every range needs at least one"
        )));
    }
    // The supervisor appends --shard/--addr/--resume per replica; a copy
    // in the passthrough would silently override them for every child.
    if let Some(owned) = fleet
        .child_args
        .iter()
        .find(|a| matches!(a.as_str(), "--shard" | "--addr" | "--resume"))
    {
        return Err(CliError::new(format!(
            "{owned} after `--` is owned by the supervisor: put the range, address, \
             and checkpoint in --replica I/N@HOST:PORT[=CKPT] instead"
        )));
    }
    if !fleet.child_args.iter().any(|a| a == "--train") {
        return Err(CliError::new(
            "serve-fleet needs the child daemon command line after `--`, including \
             --train (e.g. `-- --train r.mtx --k 8`)",
        ));
    }
    if fleet.backoff_base_ms > fleet.backoff_max_ms {
        return Err(CliError::new(
            "--backoff-base must not exceed --backoff-max",
        ));
    }
    Ok(())
}

/// Parse a `--shard I/N` value (shard index / total shards).
fn parse_shard(s: &str) -> Result<(u32, u32), CliError> {
    let bad = || {
        CliError::new(format!(
            "invalid value '{s}' for --shard (expected I/N, e.g. 0/4)"
        ))
    };
    let (i, n) = s.split_once('/').ok_or_else(bad)?;
    let i: u32 = i.trim().parse().map_err(|_| bad())?;
    let n: u32 = n.trim().parse().map_err(|_| bad())?;
    if n == 0 || i >= n {
        return Err(CliError::new(format!(
            "--shard {s}: shard index must satisfy 0 <= I < N"
        )));
    }
    Ok((i, n))
}

/// Render one top-N recommendation list in the canonical CLI format —
/// the single definition shared by the offline `recommend` path and the
/// daemon's `serve-client`, so their outputs stay byte-identical (the CI
/// daemon e2e gate diffs one against the other).
pub fn write_top_n_list(
    out: &mut impl Write,
    top_n: usize,
    user: u64,
    policy: &str,
    items: &[(u32, f64)],
) -> std::io::Result<()> {
    writeln!(out, "top-{top_n} for user {user} (policy {policy}):")?;
    for (rank, (item, score)) in items.iter().enumerate() {
        writeln!(out, "  {:2}. item {item:6}  score {score:.4}", rank + 1)?;
    }
    Ok(())
}

/// Write a factor matrix as TSV (one item per line, K columns).
pub fn write_factors(path: &str, m: &Mat) -> Result<(), CliError> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    for i in 0..m.rows() {
        let row = m.row(i);
        for (c, v) in row.iter().enumerate() {
            if c > 0 {
                write!(w, "\t")?;
            }
            write!(w, "{v}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Read a TSV of per-item features: one line per item, `d` tab- or
/// space-separated columns, same column count on every line.
pub fn read_features_tsv(path: &str) -> Result<Mat, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::new(format!("cannot read {path}: {e}")))?;
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let row: Result<Vec<f64>, _> = line.split_whitespace().map(str::parse::<f64>).collect();
        let row =
            row.map_err(|e| CliError::new(format!("{path}:{}: bad number: {e}", lineno + 1)))?;
        if let Some(first) = rows.first() {
            if row.len() != first.len() {
                return Err(CliError::new(format!(
                    "{path}:{}: expected {} columns, found {}",
                    lineno + 1,
                    first.len(),
                    row.len()
                )));
            }
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(CliError::new(format!("{path}: no feature rows")));
    }
    let (n, d) = (rows.len(), rows[0].len());
    Ok(Mat::from_fn(n, d, |i, j| rows[i][j]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn minimal_invocation_parses() {
        let opts = parse_args(&argv("--train r.mtx")).unwrap().unwrap();
        assert_eq!(opts.train, "r.mtx");
        assert_eq!(opts.k, 16);
        assert_eq!(opts.algorithm, Algorithm::Gibbs);
        assert_eq!(opts.engine, EngineKind::WorkStealing);
    }

    #[test]
    fn all_flags_parse() {
        let opts = parse_args(&argv(
            "--train a.mtx --test b.mtx --k 8 --burnin 3 --samples 5 --threads 2 \
             --engine static --seed 7 --save-factors out --test-fraction 0.2",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(opts.test.as_deref(), Some("b.mtx"));
        assert_eq!(opts.k, 8);
        assert_eq!(opts.burnin, 3);
        assert_eq!(opts.samples, 5);
        assert_eq!(opts.threads, 2);
        assert_eq!(opts.engine, EngineKind::Static);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.save_factors.as_deref(), Some("out"));
    }

    #[test]
    fn algorithm_flags_parse() {
        let opts = parse_args(&argv(
            "--train a.mtx --algorithm als --sweeps 12 --lambda 0.2 --min-rating 1 --max-rating 5",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(opts.algorithm, Algorithm::Als);
        assert_eq!(opts.sweeps, Some(12));
        assert_eq!(opts.lambda, Some(0.2));
        assert_eq!(opts.min_rating, Some(1.0));
        assert_eq!(opts.max_rating, Some(5.0));

        let sgd = parse_args(&argv(
            "--train a.mtx --algorithm sgd --epochs 9 --learning-rate 0.05",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(sgd.algorithm, Algorithm::Sgd);
        assert_eq!(sgd.epochs, Some(9));
        assert_eq!(sgd.learning_rate, Some(0.05));
    }

    #[test]
    fn bad_algorithm_is_an_error() {
        assert!(parse_args(&argv("--train a.mtx --algorithm spark")).is_err());
    }

    #[test]
    fn rating_bounds_must_come_together_and_be_ordered() {
        assert!(parse_args(&argv("--train a.mtx --min-rating 1")).is_err());
        assert!(parse_args(&argv("--train a.mtx --max-rating 5")).is_err());
        assert!(parse_args(&argv("--train a.mtx --min-rating 5 --max-rating 1")).is_err());
        assert!(parse_args(&argv("--train a.mtx --min-rating 1 --max-rating 5")).is_ok());
    }

    #[test]
    fn extension_flags_parse() {
        let opts = parse_args(&argv(
            "--train a.mtx --user-features f.tsv --lambda-beta 0.5              --checkpoint c.json --checkpoint-every 10 --resume old.json --diagnostics",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(opts.user_features.as_deref(), Some("f.tsv"));
        assert_eq!(opts.lambda_beta, 0.5);
        assert_eq!(opts.checkpoint.as_deref(), Some("c.json"));
        assert_eq!(opts.checkpoint_every, Some(10));
        assert_eq!(opts.resume.as_deref(), Some("old.json"));
        assert!(opts.diagnostics);
    }

    #[test]
    fn nonpositive_lambda_beta_is_an_error() {
        assert!(parse_args(&argv("--train a.mtx --lambda-beta 0")).is_err());
        assert!(parse_args(&argv("--train a.mtx --lambda-beta -1")).is_err());
    }

    #[test]
    fn features_tsv_roundtrip() {
        let dir = std::env::temp_dir().join("bpmf_cli_feat_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("features.tsv");
        std::fs::write(
            &path,
            "1.0	2.0
3.0	4.0

-1.5	0.25
",
        )
        .unwrap();
        let m = read_features_tsv(path.to_str().unwrap()).unwrap();
        assert_eq!((m.rows(), m.cols()), (3, 2));
        assert_eq!(m[(2, 0)], -1.5);
        assert_eq!(m[(2, 1)], 0.25);
    }

    #[test]
    fn ragged_features_tsv_is_an_error() {
        let dir = std::env::temp_dir().join("bpmf_cli_feat_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ragged.tsv");
        std::fs::write(
            &path,
            "1 2 3
4 5
",
        )
        .unwrap();
        let err = read_features_tsv(path.to_str().unwrap()).unwrap_err();
        assert!(err.to_string().contains("expected 3 columns"));
    }

    #[test]
    fn recommend_subcommand_parses() {
        let opts = parse_args(&argv(
            "recommend --train a.mtx --algorithm als --user 3 --user 7 --top-n 5 \
             --exclude-seen --policy ucb:0.5",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(opts.command, Command::Recommend);
        assert_eq!(opts.recommend.users, vec![3, 7]);
        assert_eq!(opts.recommend.top_n, 5);
        assert!(opts.recommend.exclude_seen);
        assert_eq!(opts.recommend.policy, "ucb:0.5");
        assert_eq!(opts.algorithm, Algorithm::Als);
    }

    #[test]
    fn recommend_defaults_are_sane() {
        let opts = parse_args(&argv("recommend --train a.mtx"))
            .unwrap()
            .unwrap();
        assert_eq!(opts.command, Command::Recommend);
        assert!(opts.recommend.users.is_empty());
        assert_eq!(opts.recommend.top_n, 10);
        assert!(!opts.recommend.exclude_seen);
        assert_eq!(opts.recommend.policy, "mean");
    }

    #[test]
    fn recommend_flags_require_the_subcommand() {
        assert!(parse_args(&argv("--train a.mtx --top-n 5")).is_err());
        assert!(parse_args(&argv("--train a.mtx --exclude-seen")).is_err());
        assert!(parse_args(&argv("--train a.mtx --policy ucb")).is_err());
    }

    #[test]
    fn bad_policy_and_zero_top_n_are_errors() {
        assert!(parse_args(&argv("recommend --train a.mtx --policy argmax")).is_err());
        assert!(parse_args(&argv("recommend --train a.mtx --policy ucb:x")).is_err());
        assert!(parse_args(&argv("recommend --train a.mtx --top-n 0")).is_err());
    }

    #[test]
    fn serve_daemon_subcommand_parses() {
        let opts = parse_args(&argv(
            "serve-daemon --train a.mtx --addr 127.0.0.1:0 --batch-window 5 \
             --workers 2 --queue-cap 32 --policy ucb:0.5 --top-n 7 --exclude-seen",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(opts.command, Command::ServeDaemon);
        assert_eq!(opts.serve.addr, "127.0.0.1:0");
        assert_eq!(opts.serve.batch_window_ms, 5.0);
        assert_eq!(opts.serve.workers, 2);
        assert_eq!(opts.serve.queue_cap, 32);
        assert_eq!(opts.recommend.policy, "ucb:0.5");
        assert_eq!(opts.recommend.top_n, 7);
        assert!(opts.recommend.exclude_seen);
    }

    #[test]
    fn serve_client_parses_without_train() {
        let opts = parse_args(&argv(
            "serve-client --addr 127.0.0.1:4000 --user 3 --user 9 --top-n 2 \
             --policy thompson:7 --shutdown",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(opts.command, Command::ServeClient);
        assert_eq!(opts.serve.addr, "127.0.0.1:4000");
        assert_eq!(opts.recommend.users, vec![3, 9]);
        assert!(opts.serve.shutdown);
        assert!(opts.train.is_empty());
        // A zero batch window (per-request serving) is legal for daemons.
        let zero = parse_args(&argv("serve-daemon --train a.mtx --batch-window 0"))
            .unwrap()
            .unwrap();
        assert_eq!(zero.serve.batch_window_ms, 0.0);
    }

    #[test]
    fn serve_flags_require_their_subcommands() {
        // Daemon-only knobs rejected elsewhere.
        assert!(parse_args(&argv("--train a.mtx --batch-window 5")).is_err());
        assert!(parse_args(&argv("serve-client --workers 2")).is_err());
        // --shutdown is client-only.
        assert!(parse_args(&argv("serve-daemon --train a.mtx --shutdown")).is_err());
        // --addr needs one of the serve subcommands.
        assert!(parse_args(&argv("recommend --train a.mtx --addr 1.2.3.4:5")).is_err());
        // The trainer modes still require --train.
        assert!(parse_args(&argv("serve-daemon --addr 127.0.0.1:0")).is_err());
        // The daemon doesn't take --user (clients name users per request)…
        assert!(parse_args(&argv("serve-daemon --train a.mtx --user 3")).is_err());
        // …and the client rejects training flags instead of ignoring them.
        assert!(parse_args(&argv("serve-client --addr 1.2.3.4:5 --k 8")).is_err());
        assert!(parse_args(&argv("serve-client --train a.mtx --user 1")).is_err());
    }

    #[test]
    fn bad_serve_values_are_errors() {
        assert!(parse_args(&argv("serve-daemon --train a.mtx --batch-window -1")).is_err());
        assert!(parse_args(&argv("serve-daemon --train a.mtx --workers 0")).is_err());
        assert!(parse_args(&argv("serve-daemon --train a.mtx --queue-cap 0")).is_err());
        assert!(parse_args(&argv("serve-daemon --train a.mtx --policy argmax")).is_err());
    }

    #[test]
    fn serve_daemon_shard_parses() {
        let opts = parse_args(&argv("serve-daemon --train a.mtx --shard 1/4"))
            .unwrap()
            .unwrap();
        assert_eq!(opts.serve.shard, Some((1, 4)));
        // Unsharded by default.
        let plain = parse_args(&argv("serve-daemon --train a.mtx"))
            .unwrap()
            .unwrap();
        assert_eq!(plain.serve.shard, None);
        // Malformed or out-of-range specs are errors.
        for bad in ["4", "1:4", "4/4", "5/4", "x/4", "1/0", "1/x"] {
            assert!(
                parse_args(&argv(&format!("serve-daemon --train a.mtx --shard {bad}"))).is_err(),
                "--shard {bad} should be rejected"
            );
        }
        // --shard is daemon-only.
        assert!(parse_args(&argv("--train a.mtx --shard 0/2")).is_err());
        assert!(parse_args(&argv("serve-client --addr a:1 --shard 0/2")).is_err());
    }

    #[test]
    fn serve_router_subcommand_parses() {
        let opts = parse_args(&argv(
            "serve-router --addr 127.0.0.1:0 --shard-addr 127.0.0.1:1 \
             --shard-addr 127.0.0.1:2 --inflight-cap 8 --request-timeout 1500 --top-n 7",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(opts.command, Command::ServeRouter);
        assert_eq!(opts.serve.addr, "127.0.0.1:0");
        assert_eq!(opts.serve.shard_addrs, vec!["127.0.0.1:1", "127.0.0.1:2"]);
        // Legacy form: each address is its own single-replica range.
        assert_eq!(
            opts.serve.shard_groups,
            vec![
                vec!["127.0.0.1:1".to_string()],
                vec!["127.0.0.1:2".to_string()]
            ]
        );
        assert_eq!(opts.serve.inflight_cap, 8);
        assert_eq!(opts.serve.request_timeout_ms, 1500.0);
        // --top-n is the router's fill-in default for requests that omit n.
        assert_eq!(opts.recommend.top_n, 7);
        // No training: --train is neither required nor accepted.
        assert!(opts.train.is_empty());
        assert!(parse_args(&argv("serve-router --shard-addr a:1 --train a.mtx")).is_err());
        // At least one shard address is required.
        assert!(parse_args(&argv("serve-router --addr 127.0.0.1:0")).is_err());
        // The rest of the recommend knobs stay client/daemon-only.
        assert!(parse_args(&argv("serve-router --shard-addr a:1 --user 3")).is_err());
        assert!(parse_args(&argv("serve-router --shard-addr a:1 --policy mean")).is_err());
        // Router-only flags are rejected elsewhere.
        assert!(parse_args(&argv("serve-daemon --train a.mtx --shard-addr a:1")).is_err());
        assert!(parse_args(&argv("--train a.mtx --inflight-cap 8")).is_err());
        // Bad values are errors.
        assert!(parse_args(&argv("serve-router --shard-addr a:1 --inflight-cap 0")).is_err());
        assert!(parse_args(&argv("serve-router --shard-addr a:1 --request-timeout 0")).is_err());
    }

    #[test]
    fn replicated_shard_addrs_group_by_range() {
        let opts = parse_args(&argv(
            "serve-router --shard-addr 0/2@127.0.0.1:1 --shard-addr 1/2@127.0.0.1:2 \
             --shard-addr 0/2@127.0.0.1:3 --retry-budget 5",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(
            opts.serve.shard_groups,
            vec![
                vec!["127.0.0.1:1".to_string(), "127.0.0.1:3".to_string()],
                vec!["127.0.0.1:2".to_string()],
            ]
        );
        assert_eq!(opts.serve.retry_budget, 5);
        // Default budget without the flag.
        let plain = parse_args(&argv("serve-router --shard-addr 127.0.0.1:1"))
            .unwrap()
            .unwrap();
        assert_eq!(plain.serve.retry_budget, 2);
        // Mixing the forms, disagreeing on N, leaving a range uncovered,
        // and malformed range specs are all errors.
        for bad in [
            "serve-router --shard-addr 0/2@a:1 --shard-addr b:2",
            "serve-router --shard-addr 0/2@a:1 --shard-addr 1/3@b:2",
            "serve-router --shard-addr 0/2@a:1 --shard-addr 0/2@b:2",
            "serve-router --shard-addr 2/2@a:1",
            "serve-router --shard-addr x/2@a:1",
            "serve-router --shard-addr 0/2@",
        ] {
            assert!(parse_args(&argv(bad)).is_err(), "{bad} should be rejected");
        }
        // --retry-budget is router-only.
        assert!(parse_args(&argv("serve-daemon --train a.mtx --retry-budget 1")).is_err());
    }

    #[test]
    fn serve_fleet_subcommand_parses() {
        let opts = parse_args(&argv(
            "serve-fleet --replica 0/2@127.0.0.1:7001=m.json \
             --replica 0/2@127.0.0.1:7002=m.json --replica 1/2@127.0.0.1:7003 \
             --restart-limit 3 --backoff-base 50 --backoff-max 900 \
             --probe-interval 100 --probe-failures 2 --seed 7 \
             -- --train r.mtx --k 4 --top-n 5",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(opts.command, Command::ServeFleet);
        assert_eq!(opts.fleet.replicas.len(), 3);
        assert_eq!(
            opts.fleet.replicas[0],
            FleetReplica {
                shard: (0, 2),
                addr: "127.0.0.1:7001".to_string(),
                checkpoint: Some("m.json".to_string()),
            }
        );
        assert_eq!(opts.fleet.replicas[2].checkpoint, None);
        assert_eq!(opts.fleet.restart_limit, 3);
        assert_eq!(opts.fleet.backoff_base_ms, 50.0);
        assert_eq!(opts.fleet.backoff_max_ms, 900.0);
        assert_eq!(opts.fleet.probe_interval_ms, 100.0);
        assert_eq!(opts.fleet.probe_failures, 2);
        assert_eq!(opts.seed, 7);
        // The passthrough is verbatim, order preserved, --train included.
        assert_eq!(opts.fleet.child_args, argv("--train r.mtx --k 4 --top-n 5"));
        // The supervisor itself never trains.
        assert!(opts.train.is_empty());
    }

    #[test]
    fn serve_fleet_defaults_are_sane() {
        let opts = parse_args(&argv(
            "serve-fleet --replica 0/1@127.0.0.1:7001 -- --train r.mtx",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(opts.fleet.restart_limit, 5);
        assert_eq!(opts.fleet.backoff_base_ms, 200.0);
        assert_eq!(opts.fleet.backoff_max_ms, 5000.0);
        assert_eq!(opts.fleet.probe_interval_ms, 500.0);
        assert_eq!(opts.fleet.probe_failures, 3);
    }

    #[test]
    fn serve_fleet_rejects_incoherent_invocations() {
        for bad in [
            // No replicas / no child args / child args without --train.
            "serve-fleet -- --train r.mtx",
            "serve-fleet --replica 0/1@a:1",
            "serve-fleet --replica 0/1@a:1 -- --k 4",
            // Malformed replica specs.
            "serve-fleet --replica a:1 -- --train r.mtx",
            "serve-fleet --replica 1/1@a:1 -- --train r.mtx",
            "serve-fleet --replica 0/1@ -- --train r.mtx",
            "serve-fleet --replica 0/1@a:1= -- --train r.mtx",
            // N disagreement, uncovered range, duplicate address.
            "serve-fleet --replica 0/2@a:1 --replica 1/3@a:2 -- --train r.mtx",
            "serve-fleet --replica 0/2@a:1 -- --train r.mtx",
            "serve-fleet --replica 0/2@a:1 --replica 1/2@a:1 -- --train r.mtx",
            // Supervisor-owned flags in the passthrough.
            "serve-fleet --replica 0/1@a:1 -- --train r.mtx --shard 0/1",
            "serve-fleet --replica 0/1@a:1 -- --train r.mtx --addr b:2",
            "serve-fleet --replica 0/1@a:1 -- --train r.mtx --resume c.json",
            // Bad knob values and training flags before the `--`.
            "serve-fleet --replica 0/1@a:1 --backoff-base 0 -- --train r.mtx",
            "serve-fleet --replica 0/1@a:1 --probe-failures 0 -- --train r.mtx",
            "serve-fleet --replica 0/1@a:1 --backoff-base 900 --backoff-max 100 \
             -- --train r.mtx",
            "serve-fleet --replica 0/1@a:1 --train r.mtx -- --train r.mtx",
            "serve-fleet --replica 0/1@a:1 --addr b:2 -- --train r.mtx",
        ] {
            assert!(parse_args(&argv(bad)).is_err(), "{bad} should be rejected");
        }
        // Fleet flags need the subcommand.
        assert!(parse_args(&argv("--train r.mtx --replica 0/1@a:1")).is_err());
        assert!(parse_args(&argv("--train r.mtx --restart-limit 2")).is_err());
        assert!(parse_args(&argv("serve-router --shard-addr a:1 --probe-interval 9")).is_err());
    }

    #[test]
    fn fault_plan_flag_parses_and_validates() {
        let opts = parse_args(&argv(
            "serve-router --shard-addr 127.0.0.1:1 --fault-plan close@3,seed=7",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(opts.serve.fault_plan.as_deref(), Some("close@3,seed=7"));
        let daemon = parse_args(&argv(
            "serve-daemon --train a.mtx --fault-plan delay:20@p0.5",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(daemon.serve.fault_plan.as_deref(), Some("delay:20@p0.5"));
        // A malformed plan dies at parse time, not silently at runtime.
        assert!(parse_args(&argv(
            "serve-router --shard-addr a:1 --fault-plan explode@3"
        ))
        .is_err());
        // Serving-only flag.
        assert!(parse_args(&argv("--train a.mtx --fault-plan drop@1")).is_err());
        assert!(parse_args(&argv("serve-client --addr a:1 --fault-plan drop@1")).is_err());
    }

    #[test]
    fn serve_client_health_and_stats_parse() {
        let opts = parse_args(&argv("serve-client --addr 127.0.0.1:9 --health --stats"))
            .unwrap()
            .unwrap();
        assert!(opts.serve.health);
        assert!(opts.serve.stats);
        assert!(opts.recommend.users.is_empty());
        // Client-only flags are rejected elsewhere.
        assert!(parse_args(&argv("serve-daemon --train a.mtx --health")).is_err());
        assert!(parse_args(&argv("serve-router --shard-addr a:1 --stats")).is_err());
    }

    #[test]
    fn serve_client_reload_and_fold_in_parse() {
        let opts = parse_args(&argv("serve-client --addr 127.0.0.1:9 --reload v2.json"))
            .unwrap()
            .unwrap();
        assert_eq!(opts.serve.reload.as_deref(), Some("v2.json"));
        let opts = parse_args(&argv(
            "serve-client --addr 127.0.0.1:9 --fold-in 3:4.0,17:2.5 --top-n 5",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(opts.serve.fold_in, Some(vec![(3, 4.0), (17, 2.5)]));
        // Client-only: daemons and routers load models their own way.
        assert!(parse_args(&argv("serve-daemon --train a.mtx --reload v2.json")).is_err());
        assert!(parse_args(&argv("serve-router --shard-addr a:1 --fold-in 1:2")).is_err());
    }

    #[test]
    fn fold_in_specs_validate_at_parse_time() {
        assert_eq!(parse_fold_in_spec("7:3").unwrap(), vec![(7, 3.0)]);
        assert_eq!(
            parse_fold_in_spec(" 1:4.5 , 2:-0.5 ").unwrap(),
            vec![(1, 4.5), (2, -0.5)]
        );
        for bad in [
            "", ",", "3", "3:", ":4", "a:4", "3:b", "3:NaN", "3:inf", "-1:4", "3:4,3:5",
        ] {
            assert!(
                parse_fold_in_spec(bad).is_err(),
                "--fold-in {bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn pack_subcommand_parses() {
        let opts = parse_args(&argv(
            "pack --train r.mtx --out r.slab --blocks 4 --test-out t.mtx \
             --test-fraction 0.2 --seed 9",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(opts.command, Command::Pack);
        assert_eq!(opts.pack_out.as_deref(), Some("r.slab"));
        assert_eq!(opts.pack_blocks, 4);
        assert_eq!(opts.test_out.as_deref(), Some("t.mtx"));
        assert_eq!(opts.test_fraction, 0.2);
        assert_eq!(opts.seed, 9);
        // --out is required, --blocks must be positive, and training or
        // serving flags are rejected rather than silently ignored.
        assert!(parse_args(&argv("pack --train r.mtx")).is_err());
        assert!(parse_args(&argv("pack --train r.mtx --out r.slab --blocks 0")).is_err());
        assert!(parse_args(&argv("pack --train r.mtx --out r.slab --k 8")).is_err());
        assert!(parse_args(&argv("pack --train r.mtx --out r.slab --addr a:1")).is_err());
        // Pack-only flags need the subcommand.
        assert!(parse_args(&argv("--train r.mtx --out r.slab")).is_err());
        assert!(parse_args(&argv("--train r.mtx --blocks 4")).is_err());
        assert!(parse_args(&argv("--train r.mtx --test-out t.mtx")).is_err());
    }

    #[test]
    fn sgmcmc_flags_parse() {
        let opts = parse_args(&argv(
            "--train a.slab --test t.mtx --algorithm sgmcmc --minibatch 512 \
             --step-size 0.05 --step-decay 0.1",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(opts.algorithm, Algorithm::Sgmcmc);
        assert_eq!(opts.minibatch, Some(512));
        assert_eq!(opts.step_size, Some(0.05));
        assert_eq!(opts.step_decay, Some(0.1));
        assert!(parse_args(&argv("--train a.mtx --minibatch 0")).is_err());
    }

    #[test]
    fn distributed_algorithm_parses() {
        let opts = parse_args(&argv("--train a.mtx --algorithm distributed --threads 3"))
            .unwrap()
            .unwrap();
        assert_eq!(opts.algorithm, Algorithm::Distributed);
        assert_eq!(opts.threads, 3);
    }

    #[test]
    fn help_short_circuits() {
        assert!(parse_args(&argv("--help")).unwrap().is_none());
    }

    #[test]
    fn missing_train_is_an_error() {
        assert!(parse_args(&argv("--k 4")).is_err());
    }

    #[test]
    fn unknown_flag_is_an_error() {
        assert!(parse_args(&argv("--train a.mtx --bogus 1")).is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse_args(&argv("--train a.mtx --k")).is_err());
    }

    #[test]
    fn bad_engine_is_an_error() {
        assert!(parse_args(&argv("--train a.mtx --engine spark")).is_err());
    }

    #[test]
    fn write_factors_roundtrip() {
        let m = Mat::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        let dir = std::env::temp_dir().join("bpmf_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("factors.tsv");
        write_factors(path.to_str().unwrap(), &m).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[2], "4\t5");
    }
}
