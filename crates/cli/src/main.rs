//! `bpmf-train` — train (and serve) a recommender on a MatrixMarket
//! rating matrix.
//!
//! One binary, five algorithms: BPMF Gibbs sampling (default), ALS-WR,
//! biased SGD, mini-batch SG-MCMC (`--algorithm sgmcmc`, SGLD), and the
//! paper's distributed BPMF (`--algorithm distributed`, ranks =
//! `--threads`), all dispatched through the unified `Bpmf::builder()` →
//! `Trainer` → `Recommender` facade. Prints per-iteration RMSE as
//! training streams through an `IterCallback` and can write the fitted
//! factors for downstream ranking. The `pack` subcommand converts a
//! MatrixMarket file into the mmap-ready CSR slab format; passing
//! `--train FILE.slab` afterwards trains out-of-core off the mapping
//! (`bpmf::store::MappedSlab`), bit-identical to the in-RAM run. The
//! `recommend` subcommand additionally serves filtered top-N lists
//! through `bpmf::serve::RecommendService`; `serve-daemon` keeps the
//! fitted model resident and serves request-coalesced traffic over TCP
//! (`bpmf::serve::daemon`); `serve-router` scatter-gathers the same wire
//! protocol across a fleet of `--shard i/N` daemons
//! (`bpmf::serve::router`); `serve-fleet` supervises a whole replica
//! fleet as child processes — reaping, budgeted restarts on the original
//! ports, quarantine on crash loops or corrupt checkpoints
//! (`bpmf::serve::supervise`); `serve-client` is the matching test/ops
//! client.
//!
//! ```text
//! bpmf-train [recommend|serve-daemon|serve-client] --train ratings.mtx
//!            [--test held_out.mtx | --test-fraction 0.1]
//!            [--algorithm gibbs|als|sgd|distributed] [--k 16] [--burnin 8]
//!            [--samples 24] [--sweeps 20] [--epochs 30] [--lambda X]
//!            [--learning-rate X] [--min-rating X --max-rating Y]
//!            [--threads N] [--engine ws|static|graphlab] [--seed 42]
//!            [--save-factors PREFIX]
//!            [--user-features F.tsv [--lambda-beta 1.0]]
//!            [--checkpoint C.json [--checkpoint-every N]] [--resume C.json]
//!            [--diagnostics]
//!            [--user U]... [--top-n 10] [--exclude-seen]
//!            [--policy mean|ucb[:beta]|thompson[:seed]]
//!            [--addr 127.0.0.1:7878] [--batch-window 2] [--workers N]
//!            [--queue-cap 1024] [--shard I/N] [--health] [--stats]
//!            [--shutdown]
//! bpmf-train serve-router --addr 127.0.0.1:7900
//!            --shard-addr HOST:PORT... | --shard-addr I/N@HOST:PORT...
//!            [--inflight-cap 256] [--request-timeout 5000]
//!            [--retry-budget 2] [--top-n 10] [--fault-plan SPEC]
//! ```
//!
//! With `I/N@HOST:PORT` shard addresses, several replicas may serve the
//! same catalogue range; the router balances across them and fails over
//! transparently when one dies. `--fault-plan` (or the `BPMF_FAULT_PLAN`
//! env var) arms deterministic fault injection for chaos drills.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use bpmf::checkpoint::{AsyncCheckpointWriter, SamplerCheckpoint};
use bpmf::serve::coalesce::CoalesceConfig;
use bpmf::serve::daemon::{self, DaemonConfig, ReloadContext, ServingModel};
use bpmf::serve::faults::FaultPlan;
use bpmf::serve::net;
use bpmf::serve::router::{self, RouterConfig};
use bpmf::serve::shard::{slice_train_columns, ShardSpec, ShardView};
use bpmf::serve::supervise::{self, ReplicaSpec, SuperviseConfig};
use bpmf::serve::{wire, RankPolicy, RecommendService, ServeRequest, MICRO_BATCH};
use bpmf::{
    Algorithm, Bpmf, FitControl, FitSnapshot, IterCallback, IterStats, MappedSlab, ModelHandle,
    RatingStore, Trainer,
};
use bpmf_baselines::make_trainer;
use bpmf_cli::{parse_args, CliError, Command, Options};
use bpmf_sparse::{read_matrix_market, slab_extents, write_matrix_market, write_slab, Csr};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            print!("{}", bpmf_cli::USAGE);
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{}", bpmf_cli::USAGE);
            return ExitCode::FAILURE;
        }
    };
    let result = match opts.command {
        Command::Pack => run_pack(&opts),
        Command::ServeClient => run_client(&opts),
        Command::ServeRouter => run_router(&opts),
        Command::ServeFleet => run_fleet(&opts),
        _ => run(&opts),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Streams per-iteration stats to stdout, collects the RMSE trace for
/// diagnostics, and hands periodic checkpoints to the background
/// [`AsyncCheckpointWriter`] (training never stalls on checkpoint I/O; the
/// final checkpoint is still written synchronously after the run).
struct CliCallback<'a> {
    out: std::io::StdoutLock<'a>,
    trace: Vec<f64>,
    printed: usize,
    total_iterations: usize,
    checkpoint: Option<&'a str>,
    checkpoint_every: Option<usize>,
    checkpoint_writer: Option<&'a AsyncCheckpointWriter>,
    final_checkpoint: Option<SamplerCheckpoint>,
    error: Option<CliError>,
}

impl IterCallback for CliCallback<'_> {
    fn on_iteration(&mut self, s: &IterStats, snapshot: &dyn FitSnapshot) -> FitControl {
        writeln!(
            self.out,
            "{}\t{:.6}\t{:.6}\t{:.0}",
            s.iter, s.rmse_sample, s.rmse_mean, s.items_per_sec
        )
        .ok();
        self.trace.push(s.rmse_sample);
        self.printed += 1;
        // A failed background checkpoint write aborts on the very next
        // iteration with the real I/O error, instead of training on for
        // minutes and only surfacing the failure at finish().
        if let Some(writer) = self.checkpoint_writer {
            if let Some(msg) = writer.pending_error() {
                self.error = Some(CliError::new(format!(
                    "periodic checkpoint write failed: {msg}"
                )));
                return FitControl::Stop;
            }
        }
        if let Some(path) = self.checkpoint {
            let last = s.iter + 1 >= self.total_iterations;
            let periodic = self
                .checkpoint_every
                .is_some_and(|every| every > 0 && self.printed.is_multiple_of(every) && !last);
            if periodic || last {
                if let Some(ckpt) = snapshot.sampler_checkpoint() {
                    if last {
                        // Written (with a log line) after the run completes.
                        self.final_checkpoint = Some(ckpt);
                    } else if let Some(writer) = self.checkpoint_writer {
                        if writer.submit(path, ckpt) {
                            eprintln!("checkpoint queued for {path} (iteration {})", s.iter);
                        } else {
                            // The writer thread already failed; the I/O
                            // error surfaces from finish() below.
                            self.error =
                                Some(CliError::new("checkpoint writer stopped; aborting run"));
                            return FitControl::Stop;
                        }
                    }
                }
            }
        }
        FitControl::Continue
    }
}

/// Where the training ratings live for this run: materialized CSR pairs
/// parsed from MatrixMarket text, or an mmap'd slab packed ahead of time.
/// Everything downstream sees `&dyn RatingStore`, so the sampler code path
/// is byte-for-byte the same either way.
enum TrainSource {
    InRam { train: Csr, train_t: Csr },
    Slab(MappedSlab),
}

/// Read a held-out `.mtx` file and flatten it to test triples, validating
/// its shape against the training matrix.
fn read_test_mtx(path: &str, nrows: usize, ncols: usize) -> Result<Vec<(u32, u32, f64)>, CliError> {
    let f =
        std::fs::File::open(path).map_err(|e| CliError::new(format!("cannot open {path}: {e}")))?;
    let t = read_matrix_market(BufReader::new(f))
        .map_err(|e| CliError::new(format!("cannot parse {path}: {e}")))?;
    if t.nrows() != nrows || t.ncols() != ncols {
        return Err(CliError::new(
            "test matrix dimensions do not match training matrix",
        ));
    }
    Ok(t.iter().map(|(i, j, v)| (i as u32, j, v)).collect())
}

fn run(opts: &Options) -> Result<(), CliError> {
    let (source, test, global_mean) = if opts.train.ends_with(".slab") {
        // Out-of-core path: map the packed slab and train straight off the
        // page cache. The split already happened at pack time, so a test
        // file is mandatory — re-splitting here would need the ratings
        // resident, which is exactly what this mode avoids.
        let test_path = opts.test.as_deref().ok_or_else(|| {
            CliError::new(
                "slab training requires --test FILE.mtx \
                 (split at pack time with `pack --test-out`)",
            )
        })?;
        if opts.recommend.exclude_seen {
            return Err(CliError::new(
                "--exclude-seen needs the training matrix resident; \
                 it is not available when training from a .slab",
            ));
        }
        if opts.serve.shard.is_some() {
            return Err(CliError::new(
                "--shard slices the resident training matrix; \
                 it is not available when training from a .slab",
            ));
        }
        let slab = MappedSlab::open(std::path::Path::new(&opts.train))
            .map_err(|e| CliError::new(format!("cannot map {}: {e}", opts.train)))?;
        eprintln!(
            "mapped {}: {} x {}, {} ratings in {} extents ({} B resident vs {} B in-RAM)",
            opts.train,
            slab.r().nrows(),
            slab.r().ncols(),
            slab.r().nnz(),
            slab.extents().len(),
            slab.heap_bytes(),
            slab.in_ram_matrix_bytes(),
        );
        let test = read_test_mtx(test_path, slab.r().nrows(), slab.r().ncols())?;
        let global_mean = slab.global_mean();
        (TrainSource::Slab(slab), test, global_mean)
    } else {
        let file = std::fs::File::open(&opts.train)
            .map_err(|e| CliError::new(format!("cannot open {}: {e}", opts.train)))?;
        let full = read_matrix_market(BufReader::new(file))
            .map_err(|e| CliError::new(format!("cannot parse {}: {e}", opts.train)))?;
        eprintln!(
            "loaded {}: {} x {}, {} ratings",
            opts.train,
            full.nrows(),
            full.ncols(),
            full.nnz()
        );

        // Held-out set: explicit file, or a split of the training matrix.
        let (train, test) = match &opts.test {
            Some(path) => {
                let test = read_test_mtx(path, full.nrows(), full.ncols())?;
                (full, test)
            }
            None => {
                let mut coo =
                    bpmf_sparse::Coo::with_capacity(full.nrows(), full.ncols(), full.nnz());
                for (i, j, v) in full.iter() {
                    coo.push(i, j as usize, v);
                }
                bpmf_dataset::split_train_test(&coo, opts.test_fraction, opts.seed ^ 0xBEEF)
            }
        };
        let train_t = train.transpose();
        let global_mean = if train.nnz() == 0 {
            0.0
        } else {
            train.iter().map(|(_, _, v)| v).sum::<f64>() / train.nnz() as f64
        };
        (TrainSource::InRam { train, train_t }, test, global_mean)
    };

    // Uniform view over both sources. `train_csr` is the resident matrix
    // when we have one — exclude-seen and shard slicing need it, and both
    // were rejected above in slab mode.
    let slab_views = match &source {
        TrainSource::Slab(slab) => Some((slab.r(), slab.rt())),
        TrainSource::InRam { .. } => None,
    };
    let (r_store, rt_store): (&dyn RatingStore, &dyn RatingStore) = match (&source, &slab_views) {
        (TrainSource::InRam { train, train_t }, _) => (train, train_t),
        (TrainSource::Slab(_), Some((sr, srt))) => (sr, srt),
        (TrainSource::Slab(_), None) => unreachable!(),
    };
    let train_csr: Option<&Csr> = match &source {
        TrainSource::InRam { train, .. } => Some(train),
        TrainSource::Slab(_) => None,
    };
    let n_users = r_store.nrows();
    let n_items = r_store.ncols();
    eprintln!("train {} / test {} observations", r_store.nnz(), test.len());

    // One builder for every algorithm.
    let mut builder = Bpmf::builder()
        .algorithm(opts.algorithm)
        .latent(opts.k)
        .burnin(opts.burnin)
        .samples(opts.samples)
        .seed(opts.seed)
        .engine(opts.engine)
        .threads(opts.threads);
    if let Some(n) = opts.sweeps {
        builder = builder.sweeps(n);
    }
    if let Some(n) = opts.epochs {
        builder = builder.epochs(n);
    }
    if let Some(l) = opts.lambda {
        builder = builder.lambda(l);
    }
    if let Some(lr) = opts.learning_rate {
        builder = builder.learning_rate(lr);
    }
    if let (Some(lo), Some(hi)) = (opts.min_rating, opts.max_rating) {
        builder = builder.rating_bounds(lo, hi);
    }
    if let Some(n) = opts.minibatch {
        builder = builder.minibatch(n);
    }
    if let Some(s) = opts.step_size {
        builder = builder.sgld_step_size(s);
    }
    if let Some(d) = opts.step_decay {
        builder = builder.sgld_step_decay(d);
    }
    if let Some(path) = &opts.user_features {
        let features = bpmf_cli::read_features_tsv(path)?;
        if features.rows() != n_users {
            return Err(CliError::new(format!(
                "{path}: {} feature rows but {} users in the rating matrix",
                features.rows(),
                n_users
            )));
        }
        eprintln!("side information: {} features per user", features.cols());
        builder = builder.user_side_info(features, opts.lambda_beta);
    }
    let mut resumed_iter: Option<usize> = None;
    let mut resumed_shard: Option<ShardSpec> = None;
    if let Some(path) = &opts.resume {
        // The envelope checksum is verified here: a torn, truncated, or
        // bit-flipped checkpoint is a typed integrity error, never a
        // resume from garbage posterior state.
        let ckpt = bpmf::checkpoint::read_checkpoint(std::path::Path::new(path))
            .map_err(|e| CliError::new(format!("cannot resume: {e}")))?;
        eprintln!("resuming from {path} at iteration {}", ckpt.iter);
        resumed_iter = Some(ckpt.iter);
        resumed_shard = ckpt.shard;
        builder = builder.resume(ckpt);
    }
    // A checkpoint stamped for one catalogue slice must not silently serve
    // another (or the whole catalogue).
    if let Some(saved) = resumed_shard {
        let matches = opts.command == Command::ServeDaemon
            && opts.serve.shard == Some((saved.shard_id, saved.num_shards));
        if !matches {
            return Err(CliError::new(format!(
                "checkpoint is stamped for shard {saved}; pass `serve-daemon --shard {}/{}`",
                saved.shard_id, saved.num_shards
            )));
        }
    }
    let spec = builder.build()?;

    let runner = spec.runner();
    let mut trainer = make_trainer(&spec);
    let total_iterations = match opts.algorithm {
        Algorithm::Gibbs | Algorithm::Distributed | Algorithm::Sgmcmc => spec.burnin + spec.samples,
        Algorithm::Als => spec.sweeps.unwrap_or(20),
        Algorithm::Sgd => spec.epochs.unwrap_or(30),
    };

    // Periodic checkpoints go through a background writer thread so the
    // sampler never stalls on serialization + fsync-ish I/O; the final
    // checkpoint is still written synchronously after the run below.
    let ckpt_writer = opts
        .checkpoint
        .as_ref()
        .map(|_| AsyncCheckpointWriter::spawn());
    let report;
    let trace;
    let final_checkpoint;
    {
        let stdout = std::io::stdout();
        let mut cb = CliCallback {
            out: stdout.lock(),
            trace: Vec::new(),
            printed: 0,
            total_iterations,
            checkpoint: opts.checkpoint.as_deref(),
            checkpoint_every: opts.checkpoint_every,
            checkpoint_writer: ckpt_writer.as_ref(),
            final_checkpoint: None,
            error: None,
        };
        writeln!(cb.out, "iter\trmse_sample\trmse_mean\titems_per_sec").ok();
        report = trainer.fit(
            &bpmf::TrainData::try_new(r_store, rt_store, global_mean, &test)?,
            runner.as_ref(),
            &mut cb,
        )?;
        if let Some(e) = cb.error {
            return Err(e);
        }
        final_checkpoint = cb.final_checkpoint;
        trace = cb.trace;
    }
    // Drain the async writer before the final synchronous write, so a
    // still-queued periodic checkpoint can never land after (and clobber)
    // the final one.
    if let Some(writer) = ckpt_writer {
        let flushed = writer
            .finish()
            .map_err(|e| CliError::new(format!("periodic checkpoint write failed: {e}")))?;
        if flushed > 0 {
            eprintln!("{flushed} periodic checkpoint(s) written in the background");
        }
    }
    let final_iter = final_checkpoint.as_ref().map(|c| c.iter);
    if let (Some(path), Some(mut ckpt)) = (&opts.checkpoint, final_checkpoint) {
        // A checkpoint written by a sharded daemon carries its slice so
        // a later `--resume` cannot silently serve the wrong range.
        if opts.command == Command::ServeDaemon {
            if let Some((i, n)) = opts.serve.shard {
                ckpt.shard = Some(ShardSpec::for_shard(i, n, n_items, ckpt.iter as u64));
            }
        }
        write_checkpoint(path, &ckpt)?;
        eprintln!("final checkpoint written to {path}");
    }
    eprintln!(
        "fitted {} via {} in {:.2}s (final RMSE {:.6})",
        report.algorithm,
        report.engine,
        report.total_seconds,
        report.final_rmse()
    );

    if opts.diagnostics && !trace.is_empty() {
        let burn = match opts.algorithm {
            Algorithm::Gibbs | Algorithm::Distributed => opts.burnin.min(trace.len()),
            _ => 0,
        };
        let post = &trace[burn..];
        if post.len() >= 2 {
            let s = bpmf::diagnostics::summarize_trace(post);
            eprintln!(
                "diagnostics (post-burn-in sample RMSE, {} draws): mean {:.6}, sd {:.6}, \
                 ESS {:.1}, tau {:.2}, MCSE {:.6}",
                post.len(),
                s.mean,
                s.sd,
                s.ess,
                s.tau,
                s.mcse
            );
        } else {
            eprintln!("diagnostics: not enough post-burn-in draws (increase --samples)");
        }
    }

    if opts.command == Command::Recommend {
        let rec = trainer
            .recommender()
            .ok_or_else(|| CliError::new("training produced no model to recommend from"))?;
        let policy: RankPolicy = opts.recommend.policy.parse()?;
        let mut service = RecommendService::new(rec, n_items);
        if opts.recommend.exclude_seen {
            // Unreachable in slab mode: --exclude-seen was rejected above.
            let train = train_csr
                .ok_or_else(|| CliError::new("--exclude-seen requires a resident matrix"))?;
            service = service.exclude_seen(train);
        }
        let users = if opts.recommend.users.is_empty() {
            vec![0usize]
        } else {
            opts.recommend.users.clone()
        };
        // Validate every requested user before printing anything: a bad id
        // is a hard error (nonzero exit), never a silent clamp or skip.
        for &user in &users {
            if user >= n_users {
                return Err(CliError::new(format!(
                    "--user {user} is out of range ({n_users} users)"
                )));
            }
        }
        let reqs: Vec<ServeRequest> = users
            .iter()
            .map(|&u| ServeRequest {
                user: u as u32,
                top_n: opts.recommend.top_n,
                policy,
                exclude_seen: opts.recommend.exclude_seen,
            })
            .collect();
        // Stream results out as each MICRO_BATCH-user block completes (one
        // GEMM catalogue pass per block) instead of buffering the whole
        // run; per-request Thompson streams make each list identical to a
        // single-user invocation regardless of batching.
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        for chunk in reqs.chunks(MICRO_BATCH) {
            let lists = service.recommend_each(chunk);
            for (req, list) in chunk.iter().zip(&lists) {
                let items: Vec<(u32, f64)> = list.iter().map(|r| (r.item, r.score)).collect();
                bpmf_cli::write_top_n_list(
                    &mut out,
                    req.top_n,
                    req.user as u64,
                    &opts.recommend.policy,
                    &items,
                )?;
            }
            out.flush().ok();
        }
    }

    if let Some(prefix) = &opts.save_factors {
        let rec = trainer
            .recommender()
            .ok_or_else(|| CliError::new("training produced no model"))?;
        let (u, v) = rec.factors().ok_or_else(|| {
            CliError::new(
                "the fitted model exposes no factor matrices \
                     (for gibbs, no post-burn-in samples were taken; increase --samples)",
            )
        })?;
        bpmf_cli::write_factors(&format!("{prefix}_users.tsv"), u)?;
        bpmf_cli::write_factors(&format!("{prefix}_movies.tsv"), v)?;
        eprintln!("wrote {prefix}_users.tsv and {prefix}_movies.tsv");
    }

    // Last, because it blocks until shutdown: every other requested
    // artifact (checkpoints, factors) is already on disk by the time the
    // daemon starts serving.
    if opts.command == Command::ServeDaemon {
        // Epoch tag for the served factors: the exact iteration count they
        // correspond to, so the router can flag mixed-epoch shard fleets.
        let epoch = final_iter.unwrap_or(total_iterations.max(resumed_iter.unwrap_or(0))) as u64;
        // Everything a live `reload` needs to rebuild a PosteriorModel
        // from a checkpoint exactly as training would have: these are
        // run configuration, not chain state, so they are not in the
        // checkpoint envelope.
        let reload = ReloadContext {
            global_mean,
            rating_bounds: spec.rating_bounds,
            alpha: spec.alpha,
        };
        run_daemon(
            opts,
            trainer.as_ref(),
            train_csr,
            n_users,
            n_items,
            epoch,
            reload,
        )?;
    }
    Ok(())
}

/// Process-wide graceful-shutdown flag: flipped by SIGINT/SIGTERM (and by
/// a client's `shutdown` command, via the daemon).
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Route SIGINT (ctrl-c) and SIGTERM to the shutdown flag so the daemon
/// drains in-flight batches instead of dying mid-reply. Raw `signal(2)`
/// against the platform libc std already links — the store is
/// async-signal-safe, and no crate dependency is needed.
#[cfg(unix)]
fn install_shutdown_handler() {
    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, Ordering::Relaxed);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_shutdown_handler() {}

/// Resolve the fault-injection plan for a serving process: an explicit
/// `--fault-plan` wins, else the `BPMF_FAULT_PLAN` env var, else off. A
/// malformed plan from either source is fatal — a chaos drill that thinks
/// it is injecting faults but isn't would pass vacuously.
fn resolve_fault_plan(opts: &Options) -> Result<Option<FaultPlan>, CliError> {
    if let Some(spec) = &opts.serve.fault_plan {
        let plan = spec
            .parse::<FaultPlan>()
            .map_err(|e| CliError::new(format!("--fault-plan: {e}")))?;
        return Ok(Some(plan));
    }
    FaultPlan::from_env().map_err(|e| CliError::new(format!("BPMF_FAULT_PLAN: {e}")))
}

/// The `pack` subcommand: parse a MatrixMarket file once, optionally carve
/// off a held-out split, and write both CSR orientations as an mmap-ready
/// slab. Training then opens the slab with `--train FILE.slab` and never
/// pays the text-parse (or full-residency) cost again.
fn run_pack(opts: &Options) -> Result<(), CliError> {
    let out = opts
        .pack_out
        .as_deref()
        .expect("parser guarantees --out for pack");
    let file = std::fs::File::open(&opts.train)
        .map_err(|e| CliError::new(format!("cannot open {}: {e}", opts.train)))?;
    let full = read_matrix_market(BufReader::new(file))
        .map_err(|e| CliError::new(format!("cannot parse {}: {e}", opts.train)))?;
    eprintln!(
        "loaded {}: {} x {}, {} ratings",
        opts.train,
        full.nrows(),
        full.ncols(),
        full.nnz()
    );

    // With --test-out, split here (same seed derivation as `run`, so a
    // pack + slab-train reproduces an in-RAM train on the same flags) and
    // persist the held-out triples as MatrixMarket next to the slab.
    let train = match &opts.test_out {
        Some(test_path) => {
            let mut coo = bpmf_sparse::Coo::with_capacity(full.nrows(), full.ncols(), full.nnz());
            for (i, j, v) in full.iter() {
                coo.push(i, j as usize, v);
            }
            let (train, test) =
                bpmf_dataset::split_train_test(&coo, opts.test_fraction, opts.seed ^ 0xBEEF);
            let mut tcoo = bpmf_sparse::Coo::with_capacity(full.nrows(), full.ncols(), test.len());
            for &(i, j, v) in &test {
                tcoo.push(i as usize, j as usize, v);
            }
            let tcsr = Csr::from_coo_owned(tcoo);
            let f = std::fs::File::create(test_path)
                .map_err(|e| CliError::new(format!("cannot create {test_path}: {e}")))?;
            let mut w = std::io::BufWriter::new(f);
            write_matrix_market(&mut w, &tcsr)
                .map_err(|e| CliError::new(format!("cannot write {test_path}: {e}")))?;
            w.flush()?;
            eprintln!("wrote {} held-out observations to {test_path}", test.len());
            train
        }
        None => full,
    };

    let train_t = train.transpose();
    let global_mean = if train.nnz() == 0 {
        0.0
    } else {
        train.iter().map(|(_, _, v)| v).sum::<f64>() / train.nnz() as f64
    };
    let extents = slab_extents(&train, opts.pack_blocks);
    let f = std::fs::File::create(out)
        .map_err(|e| CliError::new(format!("cannot create {out}: {e}")))?;
    let mut w = std::io::BufWriter::new(f);
    write_slab(&mut w, &train, &train_t, global_mean, &extents)
        .map_err(|e| CliError::new(format!("cannot write {out}: {e}")))?;
    w.flush()?;
    drop(w);
    // Disk-fault arm for drills (BPMF_FAULT_PLAN): a scheduled truncate/
    // corrupt lands on the freshly written slab exactly as a failing disk
    // would; a scheduled ENOSPC fails the pack and removes the partial
    // output instead of leaving an artifact that looks complete.
    if let Err(e) = bpmf::serve::faults::mangle_artifact_file(std::path::Path::new(out)) {
        std::fs::remove_file(out).ok();
        return Err(CliError::new(format!("cannot write {out}: {e}")));
    }
    let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    eprintln!(
        "packed {out}: {} x {}, {} ratings in {} extents ({bytes} bytes, mean {global_mean:.6})",
        train.nrows(),
        train.ncols(),
        train.nnz(),
        extents.len(),
    );
    Ok(())
}

/// The `serve-daemon` subcommand, once training has finished: wrap the
/// fitted model in the coalescing TCP daemon and block until shutdown.
fn run_daemon(
    opts: &Options,
    trainer: &dyn Trainer,
    train: Option<&Csr>,
    n_users: usize,
    n_items: usize,
    epoch: u64,
    reload: ReloadContext,
) -> Result<(), CliError> {
    let model = trainer
        .shared_model()
        .ok_or_else(|| CliError::new("training produced no model to serve"))?;
    let default_policy: RankPolicy = opts.recommend.policy.parse()?;
    // With `--shard i/N`, serve only our contiguous column slice: the
    // ShardView narrows every scoring path to [item_lo, item_hi) — bit-
    // identical to those columns of a whole-catalogue pass — and the
    // sliced training matrix keeps exclude-seen local. The daemon rebases
    // reply item ids back to global via the spec's `item_lo`. Sharding
    // needs the resident matrix, so slab-trained runs rejected it up front.
    let sharded = match opts.serve.shard {
        Some((i, n)) => {
            let train = train
                .ok_or_else(|| CliError::new("--shard requires a resident training matrix"))?;
            let spec = ShardSpec::for_shard(i, n, n_items, epoch);
            let local = slice_train_columns(train, spec.item_lo as usize, spec.item_hi as usize);
            Some((spec, local))
        }
        None => None,
    };
    // The daemon owns the model behind an epoch-stamped swappable handle:
    // a later `reload` request publishes a fresh checkpoint in place with
    // zero dropped requests. Sharded daemons wrap the swapped-in model in
    // a fresh ShardView with the same (validated) range.
    let world = match &sharded {
        Some((spec, local_train)) => {
            eprintln!("serving shard {spec}");
            let view: std::sync::Arc<dyn bpmf::Recommender + Send + Sync> = std::sync::Arc::new(
                ShardView::new(model, spec.item_lo as usize, spec.item_hi as usize),
            );
            ServingModel {
                model: ModelHandle::new(view, epoch),
                train: Some(local_train),
                n_users,
                n_items: spec.width(),
                shard: Some(*spec),
                reload: Some(reload),
            }
        }
        None => ServingModel {
            model: ModelHandle::new(model, epoch),
            train,
            n_users,
            n_items,
            shard: None,
            reload: Some(reload),
        },
    };
    let faults = resolve_fault_plan(opts)?;
    if faults.is_some() {
        eprintln!("serve-daemon: FAULT INJECTION ARMED (drill mode, not production)");
    }
    let cfg = DaemonConfig {
        coalesce: CoalesceConfig {
            max_batch: MICRO_BATCH,
            batch_window: Duration::from_secs_f64(opts.serve.batch_window_ms / 1e3),
            queue_cap: opts.serve.queue_cap,
        },
        workers: opts.serve.workers,
        default_policy,
        default_top_n: opts.recommend.top_n,
        exclude_seen: opts.recommend.exclude_seen,
        faults,
    };
    // SO_REUSEADDR so a replacement replica can reclaim a crashed
    // predecessor's address without waiting out TIME_WAIT — the router's
    // replica list is fixed at startup, so restarts must reuse the port.
    let listener = net::bind_reuseaddr(opts.serve.addr.as_str())
        .map_err(|e| CliError::new(format!("cannot bind {}: {e}", opts.serve.addr)))?;
    let addr = listener.local_addr()?;
    install_shutdown_handler();
    // Scripts (and the CI e2e harness) discover an ephemeral port from
    // this line, so it goes to stdout and is flushed before serving.
    println!("serving on {addr}");
    std::io::stdout().flush()?;
    eprintln!(
        "serve-daemon: batch window {} ms, {} worker(s), queue cap {}, \
         default policy {}; stop with ctrl-c or a {{\"cmd\":\"shutdown\"}} request",
        opts.serve.batch_window_ms, opts.serve.workers, opts.serve.queue_cap, opts.recommend.policy
    );
    let report = daemon::serve(&world, listener, &cfg, &SHUTDOWN)
        .map_err(|e| CliError::new(format!("daemon failed: {e}")))?;
    eprintln!(
        "daemon drained: {} requests in {} batches (largest {}) over {} connections, \
         {} rejected",
        report.requests, report.batches, report.largest_batch, report.connections, report.rejected
    );
    Ok(())
}

/// The `serve-router` subcommand: scatter-gather front end over a fleet
/// of shard daemons, speaking the same newline-JSON wire protocol on both
/// sides so `serve-client` (and any PR-5 client) works unchanged.
fn run_router(opts: &Options) -> Result<(), CliError> {
    let listener = net::bind_reuseaddr(opts.serve.addr.as_str())
        .map_err(|e| CliError::new(format!("cannot bind {}: {e}", opts.serve.addr)))?;
    let addr = listener.local_addr()?;
    install_shutdown_handler();
    // Same port-discovery line as the daemon so scripts treat both alike.
    println!("serving on {addr}");
    std::io::stdout().flush()?;
    let faults = resolve_fault_plan(opts)?;
    if faults.is_some() {
        eprintln!("serve-router: FAULT INJECTION ARMED (drill mode, not production)");
    }
    let cfg = RouterConfig {
        inflight_cap: opts.serve.inflight_cap,
        request_timeout: Duration::from_secs_f64(opts.serve.request_timeout_ms / 1e3),
        retry_budget: opts.serve.retry_budget,
        default_top_n: opts.recommend.top_n,
        faults,
        ..RouterConfig::default()
    };
    let groups = &opts.serve.shard_groups;
    let replicas: usize = groups.iter().map(Vec::len).sum();
    eprintln!(
        "serve-router: {} range(s) x {} replica(s), in-flight cap {}, request \
         timeout {} ms, retry budget {}; stop with ctrl-c or a \
         {{\"cmd\":\"shutdown\"}} request",
        groups.len(),
        replicas,
        opts.serve.inflight_cap,
        opts.serve.request_timeout_ms,
        opts.serve.retry_budget
    );
    let report = router::serve(listener, groups, &cfg, &SHUTDOWN)
        .map_err(|e| CliError::new(format!("router failed: {e}")))?;
    eprintln!(
        "router drained: {} requests over {} connections, {} rejected \
         ({} overload), {} shard failures, {} reconnects, {} failovers, \
         {} retries",
        report.requests,
        report.connections,
        report.rejected,
        report.overload_rejected,
        report.shard_failures,
        report.reconnects,
        report.failovers,
        report.retries
    );
    Ok(())
}

/// The `serve-fleet` subcommand: spawn one `serve-daemon` child per
/// `--replica` and keep the fleet alive — reap exits, respawn on the
/// original ports under the per-replica restart budget with jittered
/// backoff, kill-and-restart replicas that stop answering health probes,
/// and quarantine crash-loopers or replicas whose checkpoint fails its
/// integrity check (typed `crash_loop` / `corrupt_artifact` diagnostics
/// on stderr, one JSON line each) — until SIGINT/SIGTERM.
fn run_fleet(opts: &Options) -> Result<(), CliError> {
    let exe = std::env::current_exe()
        .map_err(|e| CliError::new(format!("cannot locate own binary: {e}")))?
        .to_string_lossy()
        .into_owned();
    let specs: Vec<ReplicaSpec> = opts
        .fleet
        .replicas
        .iter()
        .map(|r| {
            // Child = this binary's serve-daemon with the verbatim
            // passthrough args, plus the supervisor-owned per-replica
            // range, address, and checkpoint. Respawns reuse the argv
            // unchanged, so a replica always returns on its own port.
            let mut argv = vec![exe.clone(), "serve-daemon".to_string()];
            argv.extend(opts.fleet.child_args.iter().cloned());
            argv.push("--shard".to_string());
            argv.push(format!("{}/{}", r.shard.0, r.shard.1));
            argv.push("--addr".to_string());
            argv.push(r.addr.clone());
            if let Some(ckpt) = &r.checkpoint {
                argv.push("--resume".to_string());
                argv.push(ckpt.clone());
            }
            ReplicaSpec {
                id: format!("{}/{}@{}", r.shard.0, r.shard.1, r.addr),
                addr: r.addr.clone(),
                argv,
                checkpoint: r.checkpoint.as_ref().map(std::path::PathBuf::from),
                // Replicas of one catalogue range form a reload group:
                // the supervisor rolls checkpoint changes across a group
                // one replica at a time, so the range keeps serving.
                group: r.shard.0,
            }
        })
        .collect();
    let cfg = SuperviseConfig {
        restart_limit: opts.fleet.restart_limit,
        backoff_base: Duration::from_secs_f64(opts.fleet.backoff_base_ms / 1e3),
        backoff_max: Duration::from_secs_f64(opts.fleet.backoff_max_ms / 1e3),
        probe_interval: Duration::from_secs_f64(opts.fleet.probe_interval_ms / 1e3),
        probe_failures: opts.fleet.probe_failures,
        seed: opts.seed,
        ..SuperviseConfig::default()
    };
    install_shutdown_handler();
    // Scripts block on this line (stdout, flushed) the same way they
    // block on a daemon's `serving on` announcement.
    println!("supervising {} replica(s)", specs.len());
    std::io::stdout().flush()?;
    eprintln!(
        "serve-fleet: restart budget {}, backoff {}..{} ms, probe every {} ms \
         ({} misses kill); stop with ctrl-c/SIGTERM",
        opts.fleet.restart_limit,
        opts.fleet.backoff_base_ms,
        opts.fleet.backoff_max_ms,
        opts.fleet.probe_interval_ms,
        opts.fleet.probe_failures
    );
    // Lifecycle events stream to stderr as JSON lines; ops tooling (and
    // the CI supervisor gate) greps the stable `code` slugs.
    let mut events = |d: wire::Diagnostic| {
        let line = serde_json::to_string(&d).unwrap_or_else(|_| d.detail.clone());
        eprintln!("supervisor: {line}");
    };
    let report = supervise::supervise(&specs, &cfg, &SHUTDOWN, &mut events)
        .map_err(|e| CliError::new(format!("supervisor failed: {e}")))?;
    eprintln!(
        "fleet drained: {} spawn(s), {} restart(s) ({} probe-triggered), \
         {} quarantined",
        report.spawns, report.restarts, report.probe_restarts, report.quarantined
    );
    // Losing every replica is a failure even though the supervisor itself
    // exited cleanly; losing some is a degraded-but-serving shutdown.
    if report.quarantined as usize == specs.len() {
        return Err(CliError::new(
            "every replica is quarantined; nothing left to supervise",
        ));
    }
    Ok(())
}

/// Connect with retry and seeded jittered exponential backoff (10 ms
/// envelope doubling to 500 ms, ~10 s budget) so scripts can launch a
/// daemon or router and immediately fire clients, with no sleep-based
/// startup synchronization. The jitter seed mixes the process id with
/// the target address: the 16+ concurrent clients CI fires at one
/// starting server retry desynchronized instead of stampeding it in
/// lockstep. Only "not up yet" failures are retried; anything else
/// fails fast.
fn connect_with_retry(addr: &str) -> Result<TcpStream, CliError> {
    let deadline = Instant::now() + Duration::from_secs(10);
    // FNV-1a over the address, salted with the pid.
    let seed = addr.bytes().fold(
        0xcbf2_9ce4_8422_2325u64 ^ u64::from(std::process::id()),
        |h, b| (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3),
    );
    let mut attempt = 0u32;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                let transient = matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionRefused
                        | std::io::ErrorKind::ConnectionReset
                        | std::io::ErrorKind::ConnectionAborted
                        | std::io::ErrorKind::TimedOut
                );
                let backoff = net::jittered_backoff(
                    attempt,
                    Duration::from_millis(10),
                    Duration::from_millis(500),
                    seed,
                );
                if !transient || Instant::now() + backoff >= deadline {
                    return Err(CliError::new(format!("cannot connect to {addr}: {e}")));
                }
                std::thread::sleep(backoff);
                attempt = attempt.saturating_add(1);
            }
        }
    }
}

/// One synchronous request round trip on its own connection.
fn client_request(addr: &str, req: &wire::Request) -> Result<wire::Response, CliError> {
    let stream = connect_with_retry(addr)?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    let mut write_half = stream
        .try_clone()
        .map_err(|e| CliError::new(format!("socket clone failed: {e}")))?;
    writeln!(write_half, "{}", wire::encode(req))?;
    write_half.flush()?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line)?;
    if line.is_empty() {
        return Err(CliError::new(
            "daemon closed the connection without replying",
        ));
    }
    wire::decode_response(&line).map_err(CliError::new)
}

/// The `serve-client` subcommand: one concurrent connection per `--user`
/// (CI fires 16+ at once through this), results printed in request order
/// in exactly the `recommend` output format, then an optional shutdown.
fn run_client(opts: &Options) -> Result<(), CliError> {
    let addr = opts.serve.addr.as_str();
    let users = &opts.recommend.users;
    if users.is_empty()
        && !opts.serve.shutdown
        && !opts.serve.health
        && !opts.serve.stats
        && opts.serve.reload.is_none()
        && opts.serve.fold_in.is_none()
    {
        return Err(CliError::new(
            "serve-client needs at least one --user (or --health/--stats/--reload/\
             --fold-in/--shutdown)",
        ));
    }
    let results: Vec<Result<wire::Response, CliError>> = std::thread::scope(|s| {
        let handles: Vec<_> = users
            .iter()
            .map(|&user| {
                s.spawn(move || {
                    let req = wire::Request {
                        v: wire::WIRE_VERSION,
                        id: user as u64,
                        cmd: String::new(),
                        user: Some(user as u32),
                        top_n: opts.recommend.top_n,
                        policy: opts.recommend.policy.clone(),
                        exclude_seen: Some(opts.recommend.exclude_seen),
                        ..wire::Request::default()
                    };
                    client_request(addr, &req)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });
    // Validate every reply before printing anything — the same
    // no-partial-output invariant the `recommend` subcommand keeps, so
    // the two outputs stay diffable even on mixed-validity request sets.
    let mut replies = Vec::with_capacity(users.len());
    for (&user, result) in users.iter().zip(results) {
        let resp = result?;
        if let Some(err) = resp.error {
            // Surface the stable failure class too; scripts grep for it.
            let code = resp.code.map(|c| format!(" [{c}]")).unwrap_or_default();
            return Err(CliError::new(format!(
                "user {user}: daemon replied: {err}{code}"
            )));
        }
        replies.push(resp);
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for (&user, resp) in users.iter().zip(&replies) {
        let items: Vec<(u32, f64)> = resp.items.iter().map(|i| (i.item, i.score)).collect();
        bpmf_cli::write_top_n_list(
            &mut out,
            opts.recommend.top_n,
            user as u64,
            &opts.recommend.policy,
            &items,
        )?;
    }
    out.flush()?;
    drop(out);
    // Diagnostics print the structured report verbatim (one JSON line per
    // command) so ops tooling can pipe them straight into a parser.
    if opts.serve.health {
        let resp = command_roundtrip(addr, wire::CMD_HEALTH)?;
        let report = resp
            .health
            .ok_or_else(|| CliError::new("health reply carried no report"))?;
        println!(
            "{}",
            serde_json::to_string(&report).map_err(|e| CliError::new(e.to_string()))?
        );
    }
    if opts.serve.stats {
        let resp = command_roundtrip(addr, wire::CMD_STATS)?;
        let report = resp
            .stats
            .ok_or_else(|| CliError::new("stats reply carried no report"))?;
        println!(
            "{}",
            serde_json::to_string(&report).map_err(|e| CliError::new(e.to_string()))?
        );
    }
    // Live model swap: the daemon loads + CRC-verifies the checkpoint off
    // the request path and swaps it in atomically; the reply's model
    // epoch is the proof the swap landed.
    if let Some(path) = &opts.serve.reload {
        let req = wire::Request {
            v: wire::WIRE_VERSION,
            cmd: wire::CMD_RELOAD.to_string(),
            path: path.clone(),
            ..wire::Request::default()
        };
        let resp = client_request(addr, &req)?;
        if let Some(err) = resp.error {
            let code = resp.code.map(|c| format!(" [{c}]")).unwrap_or_default();
            return Err(CliError::new(format!("reload refused: {err}{code}")));
        }
        let epoch = resp
            .model_epoch
            .ok_or_else(|| CliError::new("reload reply carried no model epoch"))?;
        eprintln!("daemon reloaded {path}; now serving model epoch {epoch}");
    }
    // Cold-start fold-in: the daemon answers from the served posterior
    // with one conjugate kernel call — validate the reply shape (factors
    // present, list within --top-n) before printing, like `--user` does.
    if let Some(pairs) = &opts.serve.fold_in {
        let req = wire::Request {
            v: wire::WIRE_VERSION,
            cmd: wire::CMD_FOLD_IN.to_string(),
            ratings: pairs
                .iter()
                .map(|&(item, rating)| wire::RatedItem { item, rating })
                .collect(),
            top_n: opts.recommend.top_n,
            ..wire::Request::default()
        };
        let resp = client_request(addr, &req)?;
        if let Some(err) = resp.error {
            let code = resp.code.map(|c| format!(" [{c}]")).unwrap_or_default();
            return Err(CliError::new(format!("fold-in refused: {err}{code}")));
        }
        if resp.factors.is_empty() {
            return Err(CliError::new("fold-in reply carried no user factors"));
        }
        if resp.items.len() > opts.recommend.top_n {
            return Err(CliError::new(format!(
                "fold-in reply carried {} items but --top-n was {}",
                resp.items.len(),
                opts.recommend.top_n
            )));
        }
        let epoch = resp
            .model_epoch
            .ok_or_else(|| CliError::new("fold-in reply carried no model epoch"))?;
        eprintln!(
            "folded in {} observation(s) against model epoch {epoch} ({} factors)",
            pairs.len(),
            resp.factors.len()
        );
        let items: Vec<(u32, f64)> = resp.items.iter().map(|i| (i.item, i.score)).collect();
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        bpmf_cli::write_top_n_list(
            &mut out,
            opts.recommend.top_n,
            u64::from(resp.user),
            "fold-in",
            &items,
        )?;
        out.flush()?;
    }
    if opts.serve.shutdown {
        let req = wire::Request {
            cmd: wire::CMD_SHUTDOWN.to_string(),
            ..wire::Request::default()
        };
        let resp = client_request(addr, &req)?;
        if let Some(err) = resp.error {
            return Err(CliError::new(format!("shutdown refused: {err}")));
        }
        eprintln!("daemon acknowledged shutdown");
    }
    Ok(())
}

/// One command-only round trip (health/stats/shutdown-style requests),
/// converting an error reply into a hard CLI error.
fn command_roundtrip(addr: &str, cmd: &str) -> Result<wire::Response, CliError> {
    let req = wire::Request {
        v: wire::WIRE_VERSION,
        cmd: cmd.to_string(),
        ..wire::Request::default()
    };
    let resp = client_request(addr, &req)?;
    if let Some(err) = resp.error {
        let code = resp.code.map(|c| format!(" [{c}]")).unwrap_or_default();
        return Err(CliError::new(format!("{cmd} failed: {err}{code}")));
    }
    Ok(resp)
}

fn write_checkpoint(path: &str, ckpt: &SamplerCheckpoint) -> Result<(), CliError> {
    // Write-then-rename (inside the library helper) so an interrupt
    // mid-write cannot corrupt the previous checkpoint.
    bpmf::checkpoint::write_checkpoint_sync(std::path::Path::new(path), ckpt)
        .map_err(|e| CliError::new(format!("cannot write checkpoint {path}: {e}")))
}
