//! `bpmf-train` — train BPMF on a MatrixMarket rating matrix.
//!
//! Intended for the real datasets the paper evaluates (ChEMBL IC50 export,
//! MovieLens ml-20m converted to `.mtx`). Prints per-iteration RMSE and can
//! write the posterior-mean factors for downstream ranking.
//!
//! ```text
//! bpmf-train --train ratings.mtx [--test held_out.mtx | --test-fraction 0.1]
//!            [--k 16] [--burnin 8] [--samples 24] [--threads N]
//!            [--engine ws|static|graphlab] [--seed 42]
//!            [--save-factors PREFIX]
//!            [--user-features F.tsv [--lambda-beta 1.0]]
//!            [--checkpoint C.json [--checkpoint-every N]] [--resume C.json]
//!            [--diagnostics]
//! ```

use std::io::{BufReader, Write};
use std::process::ExitCode;

use bpmf::checkpoint::SamplerCheckpoint;
use bpmf::{BpmfConfig, FeatureSideInfo, GibbsSampler, TrainData};
use bpmf_cli::{parse_args, CliError, Options};
use bpmf_sparse::read_matrix_market;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            print!("{}", bpmf_cli::USAGE);
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{}", bpmf_cli::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(opts: &Options) -> Result<(), CliError> {
    let file = std::fs::File::open(&opts.train)
        .map_err(|e| CliError::new(format!("cannot open {}: {e}", opts.train)))?;
    let full = read_matrix_market(BufReader::new(file))
        .map_err(|e| CliError::new(format!("cannot parse {}: {e}", opts.train)))?;
    eprintln!(
        "loaded {}: {} x {}, {} ratings",
        opts.train,
        full.nrows(),
        full.ncols(),
        full.nnz()
    );

    // Held-out set: explicit file, or a split of the training matrix.
    let (train, test) = match &opts.test {
        Some(path) => {
            let f = std::fs::File::open(path)
                .map_err(|e| CliError::new(format!("cannot open {path}: {e}")))?;
            let t = read_matrix_market(BufReader::new(f))
                .map_err(|e| CliError::new(format!("cannot parse {path}: {e}")))?;
            if t.nrows() != full.nrows() || t.ncols() != full.ncols() {
                return Err(CliError::new("test matrix dimensions do not match training matrix"));
            }
            let test: Vec<(u32, u32, f64)> =
                t.iter().map(|(i, j, v)| (i as u32, j, v)).collect();
            (full, test)
        }
        None => {
            let mut coo = bpmf_sparse::Coo::with_capacity(full.nrows(), full.ncols(), full.nnz());
            for (i, j, v) in full.iter() {
                coo.push(i, j as usize, v);
            }
            bpmf_dataset::split_train_test(&coo, opts.test_fraction, opts.seed ^ 0xBEEF)
        }
    };
    let train_t = train.transpose();
    let global_mean = if train.nnz() == 0 {
        0.0
    } else {
        train.iter().map(|(_, _, v)| v).sum::<f64>() / train.nnz() as f64
    };
    eprintln!("train {} / test {} observations", train.nnz(), test.len());

    let cfg = BpmfConfig {
        num_latent: opts.k,
        burnin: opts.burnin,
        samples: opts.samples,
        seed: opts.seed,
        ..Default::default()
    };
    let iterations = cfg.iterations();
    let data = TrainData::new(&train, &train_t, global_mean, &test);
    let runner = opts.engine.build(opts.threads);
    let mut sampler = match &opts.resume {
        None => GibbsSampler::new(cfg, data),
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::new(format!("cannot read {path}: {e}")))?;
            let ckpt: SamplerCheckpoint = serde_json::from_str(&text)
                .map_err(|e| CliError::new(format!("cannot parse {path}: {e}")))?;
            eprintln!("resuming from {path} at iteration {}", ckpt.iter);
            GibbsSampler::resume(cfg, data, &ckpt)
        }
    };
    if let Some(path) = &opts.user_features {
        let features = bpmf_cli::read_features_tsv(path)?;
        if features.rows() != train.nrows() {
            return Err(CliError::new(format!(
                "{path}: {} feature rows but {} users in the rating matrix",
                features.rows(),
                train.nrows()
            )));
        }
        eprintln!("side information: {} features per user", features.cols());
        sampler.attach_user_side_info(FeatureSideInfo::new(features, opts.k, opts.lambda_beta));
    }

    let remaining = iterations.saturating_sub(sampler.iterations_done());
    let mut rmse_trace = Vec::with_capacity(remaining);
    {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        writeln!(out, "iter\trmse_sample\trmse_mean\titems_per_sec").ok();
        for step in 0..remaining {
            let s = sampler.step(runner.as_ref());
            rmse_trace.push(s.rmse_sample);
            writeln!(
                out,
                "{}\t{:.6}\t{:.6}\t{:.0}",
                s.iter, s.rmse_sample, s.rmse_mean, s.items_per_sec
            )
            .ok();
            if let (Some(path), Some(every)) = (&opts.checkpoint, opts.checkpoint_every) {
                if every > 0 && (step + 1) % every == 0 && step + 1 < remaining {
                    write_checkpoint(path, &sampler)?;
                    eprintln!("checkpoint written to {path} (iteration {})", s.iter);
                }
            }
        }
    }

    if let Some(path) = &opts.checkpoint {
        write_checkpoint(path, &sampler)?;
        eprintln!("final checkpoint written to {path}");
    }

    if opts.diagnostics && !rmse_trace.is_empty() {
        let burn = opts.burnin.min(rmse_trace.len());
        let post = &rmse_trace[burn..];
        if post.len() >= 2 {
            let s = bpmf::diagnostics::summarize_trace(post);
            eprintln!(
                "diagnostics (post-burn-in sample RMSE, {} draws): mean {:.6}, sd {:.6}, \
                 ESS {:.1}, tau {:.2}, MCSE {:.6}",
                post.len(),
                s.mean,
                s.sd,
                s.ess,
                s.tau,
                s.mcse
            );
        } else {
            eprintln!("diagnostics: not enough post-burn-in draws (increase --samples)");
        }
    }

    if let Some(prefix) = &opts.save_factors {
        let (u, v) = sampler
            .posterior_mean_factors()
            .ok_or_else(|| CliError::new("no post-burn-in samples; increase --samples"))?;
        bpmf_cli::write_factors(&format!("{prefix}_users.tsv"), &u)?;
        bpmf_cli::write_factors(&format!("{prefix}_movies.tsv"), &v)?;
        eprintln!("wrote {prefix}_users.tsv and {prefix}_movies.tsv");
    }
    Ok(())
}

fn write_checkpoint(path: &str, sampler: &GibbsSampler<'_>) -> Result<(), CliError> {
    let json = serde_json::to_string(&sampler.checkpoint())
        .map_err(|e| CliError::new(format!("cannot serialize checkpoint: {e}")))?;
    // Write-then-rename so an interrupt mid-write cannot corrupt the
    // previous checkpoint.
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, json)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}
