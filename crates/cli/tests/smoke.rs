//! End-to-end smoke test: run the `bpmf-train` binary against a generated
//! MatrixMarket file and check it trains, reports RMSE, and writes factors.

use std::process::Command;

#[test]
fn trains_from_matrix_market_and_writes_factors() {
    let dir = std::env::temp_dir().join(format!("bpmf_cli_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mtx = dir.join("ratings.mtx");
    let prefix = dir.join("factors");

    // Small synthetic workload exported to MatrixMarket.
    let ds = bpmf_dataset::chembl_like(0.003, 31);
    let mut buf = Vec::new();
    bpmf_sparse::write_matrix_market(&mut buf, &ds.train).unwrap();
    std::fs::write(&mtx, &buf).unwrap();

    let output = Command::new(env!("CARGO_BIN_EXE_bpmf-train"))
        .args([
            "--train",
            mtx.to_str().unwrap(),
            "--k",
            "6",
            "--burnin",
            "2",
            "--samples",
            "4",
            "--threads",
            "2",
            "--engine",
            "ws",
            "--save-factors",
            prefix.to_str().unwrap(),
        ])
        .output()
        .expect("binary should run");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    // stdout: a header plus one line per iteration with finite RMSE.
    let stdout = String::from_utf8_lossy(&output.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 1 + 6, "header + 6 iterations: {stdout}");
    let last: Vec<&str> = lines.last().unwrap().split('\t').collect();
    let rmse: f64 = last[2].parse().unwrap();
    assert!(rmse.is_finite() && rmse > 0.0);

    // Factor files exist with the right shapes.
    let users = std::fs::read_to_string(format!("{}_users.tsv", prefix.display())).unwrap();
    let movies = std::fs::read_to_string(format!("{}_movies.tsv", prefix.display())).unwrap();
    assert_eq!(users.lines().count(), ds.nrows());
    assert_eq!(movies.lines().count(), ds.ncols());
    assert_eq!(users.lines().next().unwrap().split('\t').count(), 6);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recommend_subcommand_serves_top_n_for_each_policy() {
    let dir = std::env::temp_dir().join(format!("bpmf_cli_rec_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mtx = dir.join("ratings.mtx");

    let ds = bpmf_dataset::chembl_like(0.003, 31);
    let mut buf = Vec::new();
    bpmf_sparse::write_matrix_market(&mut buf, &ds.train).unwrap();
    std::fs::write(&mtx, &buf).unwrap();

    for policy in ["mean", "ucb:0.5", "thompson:7"] {
        let output = Command::new(env!("CARGO_BIN_EXE_bpmf-train"))
            .args([
                "recommend",
                "--train",
                mtx.to_str().unwrap(),
                "--k",
                "4",
                "--burnin",
                "2",
                "--samples",
                "4",
                "--threads",
                "1",
                "--user",
                "0",
                "--user",
                "2",
                "--top-n",
                "5",
                "--exclude-seen",
                "--policy",
                policy,
            ])
            .output()
            .expect("binary should run");
        assert!(
            output.status.success(),
            "policy {policy} stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(
            stdout.contains(&format!("top-5 for user 0 (policy {policy})")),
            "{stdout}"
        );
        assert!(stdout.contains("top-5 for user 2"), "{stdout}");
        // Two users × (1 header + 5 items), after the training trace.
        let rec_lines = stdout
            .lines()
            .skip_while(|l| !l.starts_with("top-5"))
            .count();
        assert_eq!(rec_lines, 12, "{stdout}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn multi_user_recommend_batches_and_matches_per_user_runs() {
    let dir = std::env::temp_dir().join(format!("bpmf_cli_batch_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mtx = dir.join("ratings.mtx");

    let ds = bpmf_dataset::chembl_like(0.003, 13);
    let mut buf = Vec::new();
    bpmf_sparse::write_matrix_market(&mut buf, &ds.train).unwrap();
    std::fs::write(&mtx, &buf).unwrap();

    let run = |users: &[&str]| {
        let mut args = vec![
            "recommend",
            "--train",
            mtx.to_str().unwrap(),
            "--k",
            "4",
            "--burnin",
            "2",
            "--samples",
            "4",
            "--threads",
            "1",
            "--seed",
            "5",
            "--top-n",
            "4",
            "--exclude-seen",
        ];
        for u in users {
            args.push("--user");
            args.push(u);
        }
        let output = Command::new(env!("CARGO_BIN_EXE_bpmf-train"))
            .args(&args)
            .output()
            .expect("binary should run");
        assert!(
            output.status.success(),
            "users {users:?} stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8_lossy(&output.stdout)
            .lines()
            .skip_while(|l| !l.starts_with("top-4"))
            // Drop the printed scores: the batched path sums through the
            // GEMM and the single-user path through the transposed scan,
            // so a score landing exactly on a {:.4} rounding boundary
            // could print differently; headers, ranks, and item ids must
            // still agree exactly.
            .map(|l| l.split("score").next().unwrap().trim_end().to_string())
            .collect::<Vec<String>>()
    };

    // Three users: routed through `recommend_batch` (one score_block GEMM
    // for the whole block). Must print the same lists, in request order,
    // as three independent single-user runs of the same training seed.
    let batched = run(&["1", "4", "2"]);
    assert_eq!(batched.len(), 3 * (1 + 4), "three headers + 4 items each");
    let singles: Vec<String> = ["1", "4", "2"].iter().flat_map(|u| run(&[u])).collect();
    assert_eq!(batched, singles);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn distributed_algorithm_trains_from_the_cli() {
    let dir = std::env::temp_dir().join(format!("bpmf_cli_dist_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mtx = dir.join("ratings.mtx");

    let ds = bpmf_dataset::chembl_like(0.003, 47);
    let mut buf = Vec::new();
    bpmf_sparse::write_matrix_market(&mut buf, &ds.train).unwrap();
    std::fs::write(&mtx, &buf).unwrap();

    let output = Command::new(env!("CARGO_BIN_EXE_bpmf-train"))
        .args([
            "--train",
            mtx.to_str().unwrap(),
            "--algorithm",
            "distributed",
            "--k",
            "4",
            "--burnin",
            "2",
            "--samples",
            "3",
            "--threads",
            "2",
        ])
        .output()
        .expect("binary should run");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("fitted distributed via distributed"),
        "{stderr}"
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert_eq!(stdout.lines().count(), 1 + 5, "header + 5 iters: {stdout}");
}

#[test]
fn recommend_rejects_out_of_range_user_with_nonzero_exit_and_no_partial_output() {
    let dir = std::env::temp_dir().join(format!("bpmf_cli_oor_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mtx = dir.join("ratings.mtx");

    let ds = bpmf_dataset::chembl_like(0.003, 13);
    let mut buf = Vec::new();
    bpmf_sparse::write_matrix_market(&mut buf, &ds.train).unwrap();
    std::fs::write(&mtx, &buf).unwrap();

    let output = Command::new(env!("CARGO_BIN_EXE_bpmf-train"))
        .args([
            "recommend",
            "--train",
            mtx.to_str().unwrap(),
            "--k",
            "4",
            "--burnin",
            "1",
            "--samples",
            "2",
            "--threads",
            "1",
            "--user",
            "0",
            "--user",
            "1000000",
        ])
        .output()
        .expect("binary should run");
    assert!(!output.status.success(), "out-of-range user must fail");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("out of range"), "{stderr}");
    // The bad id is rejected before any list is printed: scripted
    // consumers never see partial output.
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(!stdout.contains("top-"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_daemon_binary_end_to_end_matches_offline_recommend() {
    let dir = std::env::temp_dir().join(format!("bpmf_cli_daemon_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mtx = dir.join("ratings.mtx");
    let ckpt = dir.join("model.json");

    let ds = bpmf_dataset::chembl_like(0.003, 31);
    let mut buf = Vec::new();
    bpmf_sparse::write_matrix_market(&mut buf, &ds.train).unwrap();
    std::fs::write(&mtx, &buf).unwrap();

    let train_args = |extra: &[&str]| {
        let mut v = vec![
            "--train".to_string(),
            mtx.to_str().unwrap().to_string(),
            "--k".into(),
            "4".into(),
            "--burnin".into(),
            "2".into(),
            "--samples".into(),
            "4".into(),
            "--threads".into(),
            "1".into(),
            "--seed".into(),
            "9".into(),
        ];
        v.extend(extra.iter().map(|s| s.to_string()));
        v
    };

    // Train once, checkpoint the chain; every later invocation resumes it
    // (zero further iterations), so daemon and offline serve the
    // bit-identical model.
    let trained = Command::new(env!("CARGO_BIN_EXE_bpmf-train"))
        .args(train_args(&["--checkpoint", ckpt.to_str().unwrap()]))
        .output()
        .unwrap();
    assert!(
        trained.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&trained.stderr)
    );

    let users: Vec<String> = (0..8).map(|u| u.to_string()).collect();
    let user_flags: Vec<String> = users
        .iter()
        .flat_map(|u| ["--user".to_string(), u.clone()])
        .collect();
    let policies = ["mean", "ucb:0.5", "thompson:9"];

    // Offline references through the plain `recommend` subcommand.
    let mut offline = Vec::new();
    for policy in policies {
        let mut args = vec!["recommend".to_string()];
        args.extend(train_args(&["--resume", ckpt.to_str().unwrap()]));
        args.extend(user_flags.clone());
        args.extend(["--top-n".into(), "5".into(), "--exclude-seen".into()]);
        args.extend(["--policy".into(), policy.to_string()]);
        let out = Command::new(env!("CARGO_BIN_EXE_bpmf-train"))
            .args(&args)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "offline {policy} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let lists: Vec<String> = String::from_utf8_lossy(&out.stdout)
            .lines()
            .skip_while(|l| !l.starts_with("top-"))
            .map(str::to_string)
            .collect();
        assert_eq!(lists.len(), 8 * 6, "8 users × (header + 5 items)");
        offline.push(lists);
    }

    // Daemon on an ephemeral port, resumed from the same checkpoint.
    let mut daemon_args = vec!["serve-daemon".to_string()];
    daemon_args.extend(train_args(&["--resume", ckpt.to_str().unwrap()]));
    daemon_args.extend([
        "--addr".into(),
        "127.0.0.1:0".into(),
        "--batch-window".into(),
        "5".into(),
        "--workers".into(),
        "2".into(),
    ]);
    // Kill the daemon even when an assertion below panics, so a failing
    // test run never leaks a listening bpmf-train process.
    struct KillOnDrop(std::process::Child);
    impl Drop for KillOnDrop {
        fn drop(&mut self) {
            let _ = self.0.kill();
            let _ = self.0.wait();
        }
    }
    let mut daemon = KillOnDrop(
        Command::new(env!("CARGO_BIN_EXE_bpmf-train"))
            .args(&daemon_args)
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("daemon spawns"),
    );
    // The daemon announces its bound address on stdout once ready.
    let mut daemon_stdout = std::io::BufReader::new(daemon.0.stdout.take().unwrap());
    let addr = loop {
        let mut line = String::new();
        use std::io::BufRead as _;
        assert!(
            daemon_stdout.read_line(&mut line).unwrap() > 0,
            "daemon exited before announcing its address"
        );
        if let Some(rest) = line.trim().strip_prefix("serving on ") {
            break rest.to_string();
        }
    };

    // 8 concurrent clients per policy; output format matches `recommend`.
    for (policy, offline_lists) in policies.iter().zip(&offline) {
        let mut args = vec![
            "serve-client".to_string(),
            "--addr".into(),
            addr.clone(),
            "--top-n".into(),
            "5".into(),
            "--exclude-seen".into(),
            "--policy".into(),
            policy.to_string(),
        ];
        args.extend(user_flags.clone());
        let out = Command::new(env!("CARGO_BIN_EXE_bpmf-train"))
            .args(&args)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "client {policy} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let got: Vec<String> = String::from_utf8_lossy(&out.stdout)
            .lines()
            .map(str::to_string)
            .collect();
        assert_eq!(
            &got, offline_lists,
            "daemon must serve exactly the offline rankings ({policy})"
        );
    }

    // Graceful shutdown: ack + daemon exit code 0.
    let shut = Command::new(env!("CARGO_BIN_EXE_bpmf-train"))
        .args(["serve-client", "--addr", &addr, "--shutdown"])
        .output()
        .unwrap();
    assert!(
        shut.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&shut.stderr)
    );
    let status = daemon.0.wait().expect("daemon exits");
    assert!(status.success(), "daemon exit status: {status:?}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn help_and_error_paths() {
    let help = Command::new(env!("CARGO_BIN_EXE_bpmf-train"))
        .arg("--help")
        .output()
        .unwrap();
    assert!(help.status.success());
    assert!(String::from_utf8_lossy(&help.stdout).contains("USAGE"));

    let missing = Command::new(env!("CARGO_BIN_EXE_bpmf-train"))
        .args(["--train", "/nonexistent/x.mtx"])
        .output()
        .unwrap();
    assert!(!missing.status.success());
    assert!(String::from_utf8_lossy(&missing.stderr).contains("cannot open"));
}

#[test]
fn checkpoint_resume_and_side_info_roundtrip() {
    let dir = std::env::temp_dir().join(format!("bpmf_cli_ckpt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mtx = dir.join("ratings.mtx");
    let features = dir.join("features.tsv");
    let ckpt = dir.join("state.json");

    let ds = bpmf_dataset::chembl_like(0.003, 77);
    let mut buf = Vec::new();
    bpmf_sparse::write_matrix_market(&mut buf, &ds.train).unwrap();
    std::fs::write(&mtx, &buf).unwrap();

    // Per-user feature file (3 features, deterministic values).
    let mut tsv = String::new();
    for i in 0..ds.nrows() {
        tsv.push_str(&format!(
            "{:.4}\t{:.4}\t{:.4}\n",
            (i as f64 * 0.37).sin(),
            (i as f64 * 0.11).cos(),
            (i as f64).rem_euclid(5.0) / 5.0 - 0.4,
        ));
    }
    std::fs::write(&features, &tsv).unwrap();

    let base_args = |extra: &[&str]| {
        let mut v = vec![
            "--train".to_string(),
            mtx.to_str().unwrap().to_string(),
            "--k".into(),
            "4".into(),
            "--burnin".into(),
            "2".into(),
            "--threads".into(),
            "1".into(),
            "--engine".into(),
            "static".into(),
            "--user-features".into(),
            features.to_str().unwrap().to_string(),
            "--diagnostics".into(),
        ];
        v.extend(extra.iter().map(|s| s.to_string()));
        v
    };

    // Phase 1: short run that writes a checkpoint.
    let out1 = std::process::Command::new(env!("CARGO_BIN_EXE_bpmf-train"))
        .args(base_args(&[
            "--samples",
            "2",
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ]))
        .output()
        .unwrap();
    assert!(
        out1.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out1.stderr)
    );
    let stderr1 = String::from_utf8_lossy(&out1.stderr);
    assert!(
        stderr1.contains("side information: 3 features per user"),
        "{stderr1}"
    );
    assert!(stderr1.contains("final checkpoint written"), "{stderr1}");
    assert!(ckpt.exists());

    // Phase 2: resume with a larger budget; must pick up at iteration 4.
    let out2 = std::process::Command::new(env!("CARGO_BIN_EXE_bpmf-train"))
        .args(base_args(&[
            "--samples",
            "6",
            "--resume",
            ckpt.to_str().unwrap(),
        ]))
        .output()
        .unwrap();
    assert!(
        out2.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out2.stderr)
    );
    let stderr2 = String::from_utf8_lossy(&out2.stderr);
    assert!(stderr2.contains("resuming from"), "{stderr2}");
    assert!(stderr2.contains("diagnostics"), "{stderr2}");
    // 8 configured iterations - 4 already done = 4 printed lines + header.
    let stdout2 = String::from_utf8_lossy(&out2.stdout);
    assert_eq!(stdout2.lines().count(), 1 + 4, "{stdout2}");

    std::fs::remove_dir_all(&dir).ok();
}
