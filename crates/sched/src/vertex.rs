//! Bulk-synchronous vertex engine — the GraphLab analogue of paper §III.
//!
//! GraphLab expresses BPMF as a vertex program over the bipartite rating
//! graph and pays, per vertex: scheduling through a shared queue, *edge
//! consistency* (locks on the vertex and every neighbor), and gather-list
//! materialization. This engine reproduces those costs faithfully:
//!
//! * a single central queue (one mutex) dispenses small vertex batches —
//!   no per-worker deques, no stealing;
//! * before a vertex executes, its neighbor set is copied, sorted, and
//!   locked in ascending order (deadlock-free total order), then released
//!   after the update — the edge-consistency protocol of GraphLab's locking
//!   engine;
//! * a barrier separates sweeps (the synchronous engine the paper compares
//!   against).
//!
//! The per-rating locking cost is what makes this engine fall behind the
//! specialized runtimes on power-law rating data — the gap of Fig. 3 (and
//! the motivation the PowerGraph authors later gave for abandoning this
//! design).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::stats::{RunStats, WorkerStats};
use crate::ItemRunner;

type Job = &'static (dyn Fn(usize, usize) + Sync);

/// Batch of vertices handed out per queue access. Small, like a GraphLab
/// scheduler dispatch; the central lock is hit `n / BATCH` times per sweep.
const BATCH: usize = 8;

struct GasSweep {
    /// CSR-style neighbor lists (empty when running without a graph).
    offsets: &'static [usize],
    indices: &'static [u32],
    job: Option<Job>,
    neighbor_locks: Arc<Vec<Mutex<()>>>,
}

struct Shared {
    gate: Mutex<(u64, bool)>,
    wake: Condvar,
    queue: Mutex<std::ops::Range<usize>>,
    sweep: Mutex<GasSweep>,
    workers_left: AtomicUsize,
    panicked: AtomicBool,
    done: Mutex<bool>,
    done_cv: Condvar,
    busy_ns: Vec<AtomicUsize>,
    items: Vec<AtomicUsize>,
}

/// GraphLab-style synchronous vertex engine with edge-consistency locking.
pub struct VertexEngine {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    run_lock: Mutex<()>,
    /// Lock arrays cached by neighbor-domain size (users pass locks movies
    /// and vice versa, so two sizes alternate).
    lock_cache: Mutex<HashMap<usize, Arc<Vec<Mutex<()>>>>>,
    nthreads: usize,
}

impl VertexEngine {
    /// Spawn an engine with `nthreads` workers (at least 1).
    pub fn new(nthreads: usize) -> Self {
        let nthreads = nthreads.max(1);
        let shared = Arc::new(Shared {
            gate: Mutex::new((0, false)),
            wake: Condvar::new(),
            queue: Mutex::new(0..0),
            sweep: Mutex::new(GasSweep {
                offsets: &[],
                indices: &[],
                job: None,
                neighbor_locks: Arc::new(Vec::new()),
            }),
            workers_left: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            done: Mutex::new(true),
            done_cv: Condvar::new(),
            busy_ns: (0..nthreads).map(|_| AtomicUsize::new(0)).collect(),
            items: (0..nthreads).map(|_| AtomicUsize::new(0)).collect(),
        });
        let handles = (0..nthreads)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bpmf-gas-{id}"))
                    .spawn(move || worker_loop(id, shared))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        VertexEngine {
            shared,
            handles,
            run_lock: Mutex::new(()),
            lock_cache: Mutex::new(HashMap::new()),
            nthreads,
        }
    }

    /// Sweep a vertex program over `0..n` with edge-consistency locking
    /// against the neighbor lists `offsets`/`indices` (CSR layout over a
    /// neighbor domain of `neighbor_domain` vertices).
    pub fn run_gas(
        &self,
        n: usize,
        neighbor_domain: usize,
        offsets: &[usize],
        indices: &[u32],
        f: &(dyn Fn(usize, usize) + Sync),
    ) -> RunStats {
        assert_eq!(offsets.len(), n + 1, "offsets must have n + 1 entries");
        let _serial = self.run_lock.lock();
        if n == 0 {
            return RunStats {
                elapsed: Duration::ZERO,
                per_worker: vec![WorkerStats::default(); self.nthreads],
            };
        }

        let locks = {
            let mut cache = self.lock_cache.lock();
            Arc::clone(cache.entry(neighbor_domain).or_insert_with(|| {
                Arc::new((0..neighbor_domain).map(|_| Mutex::new(())).collect())
            }))
        };

        let shared = &self.shared;
        for (b, i) in shared.busy_ns.iter().zip(&shared.items) {
            b.store(0, Ordering::Relaxed);
            i.store(0, Ordering::Relaxed);
        }
        shared.panicked.store(false, Ordering::Relaxed);
        shared.workers_left.store(self.nthreads, Ordering::Release);
        *shared.queue.lock() = 0..n;

        {
            let mut sweep = shared.sweep.lock();
            // SAFETY: workers dereference these borrows only before they
            // decrement `workers_left`; we block below until it reaches
            // zero, so the borrows outlive every dereference. All cleared
            // before returning.
            unsafe {
                sweep.offsets = std::mem::transmute::<&[usize], &'static [usize]>(offsets);
                sweep.indices = std::mem::transmute::<&[u32], &'static [u32]>(indices);
                sweep.job = Some(std::mem::transmute::<&(dyn Fn(usize, usize) + Sync), Job>(
                    f,
                ));
            }
            sweep.neighbor_locks = locks;
        }
        *shared.done.lock() = false;

        let t0 = Instant::now();
        {
            let mut g = shared.gate.lock();
            g.0 += 1;
            shared.wake.notify_all();
        }
        {
            let mut done = shared.done.lock();
            while !*done {
                shared.done_cv.wait(&mut done);
            }
        }
        let elapsed = t0.elapsed();
        {
            let mut sweep = shared.sweep.lock();
            sweep.offsets = &[];
            sweep.indices = &[];
            sweep.job = None;
            sweep.neighbor_locks = Arc::new(Vec::new());
        }

        if shared.panicked.load(Ordering::Acquire) {
            panic!("a worker panicked during VertexEngine sweep");
        }

        RunStats {
            elapsed,
            per_worker: (0..self.nthreads)
                .map(|t| WorkerStats {
                    busy: Duration::from_nanos(shared.busy_ns[t].load(Ordering::Relaxed) as u64),
                    items: shared.items[t].load(Ordering::Relaxed) as u64,
                    steals: 0,
                })
                .collect(),
        }
    }
}

impl ItemRunner for VertexEngine {
    /// Sweep with edge-consistency locking when an adjacency is supplied;
    /// without one the engine still pays the central queue but skips edge
    /// locks.
    fn run_items(
        &self,
        n: usize,
        _weights: Option<&[f64]>,
        adj: Option<crate::Adjacency<'_>>,
        f: &(dyn Fn(usize, usize) + Sync),
    ) -> RunStats {
        match adj {
            Some(a) => self.run_gas(n, a.neighbor_domain, a.offsets, a.indices, f),
            None => {
                let offsets = vec![0usize; n + 1];
                self.run_gas(n, 0, &offsets, &[], f)
            }
        }
    }

    fn threads(&self) -> usize {
        self.nthreads
    }

    fn name(&self) -> &'static str {
        "graphlab-like"
    }
}

impl Drop for VertexEngine {
    fn drop(&mut self) {
        {
            let mut g = self.shared.gate.lock();
            g.1 = true;
            self.shared.wake.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(id: usize, shared: Arc<Shared>) {
    let mut last_epoch = 0u64;
    let mut gather: Vec<u32> = Vec::new();
    loop {
        {
            let mut g = shared.gate.lock();
            while g.0 == last_epoch && !g.1 {
                shared.wake.wait(&mut g);
            }
            if g.1 {
                return;
            }
            last_epoch = g.0;
        }
        let (offsets, indices, job, locks) = {
            let sweep = shared.sweep.lock();
            match sweep.job {
                Some(job) => (
                    sweep.offsets,
                    sweep.indices,
                    job,
                    Arc::clone(&sweep.neighbor_locks),
                ),
                None => {
                    finish_worker(&shared);
                    continue;
                }
            }
        };

        let mut executed = 0usize;
        let t0 = Instant::now();
        loop {
            // Central scheduler: pop one small batch under the global lock.
            let batch = {
                let mut q = shared.queue.lock();
                let start = q.start;
                let end = (start + BATCH).min(q.end);
                q.start = end;
                start..end
            };
            if batch.is_empty() {
                break;
            }
            for v in batch {
                // Gather materialization: copy + sort the neighbor list.
                gather.clear();
                gather.extend_from_slice(&indices[offsets[v]..offsets[v + 1]]);
                gather.sort_unstable();
                gather.dedup();
                // Edge consistency: lock neighbors in ascending order.
                let guards: Vec<_> = gather.iter().map(|&u| locks[u as usize].lock()).collect();
                let result = catch_unwind(AssertUnwindSafe(|| job(id, v)));
                drop(guards);
                if result.is_err() {
                    shared.panicked.store(true, Ordering::Release);
                }
                executed += 1;
            }
        }
        shared.busy_ns[id].fetch_add(t0.elapsed().as_nanos() as usize, Ordering::Relaxed);
        shared.items[id].fetch_add(executed, Ordering::Relaxed);
        finish_worker(&shared);
    }
}

fn finish_worker(shared: &Shared) {
    if shared.workers_left.fetch_sub(1, Ordering::AcqRel) == 1 {
        let mut done = shared.done.lock();
        *done = true;
        shared.done_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn every_vertex_runs_exactly_once() {
        let engine = VertexEngine::new(4);
        let n = 2000;
        let counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let stats = engine.run_items(n, None, None, &|_, v| {
            counts[v].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        assert_eq!(stats.total_items(), n as u64);
    }

    #[test]
    fn gas_respects_edge_consistency() {
        // Star graph: every vertex neighbors hub 0 of the counterpart side.
        // Edge consistency means updates are fully serialized through the
        // hub lock — observable as no two vertices inside the critical
        // section at once.
        let n = 64;
        let offsets: Vec<usize> = (0..=n).collect();
        let indices = vec![0u32; n];
        let engine = VertexEngine::new(4);
        let inside = AtomicUsize::new(0);
        let max_inside = AtomicUsize::new(0);
        engine.run_gas(n, 1, &offsets, &indices, &|_, _| {
            let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
            max_inside.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_micros(50));
            inside.fetch_sub(1, Ordering::SeqCst);
        });
        assert_eq!(
            max_inside.load(Ordering::SeqCst),
            1,
            "hub lock must serialize"
        );
    }

    #[test]
    fn gas_with_disjoint_neighbors_runs_in_parallel() {
        // Each vertex has its own private neighbor: no serialization.
        let n = 256;
        let offsets: Vec<usize> = (0..=n).collect();
        let indices: Vec<u32> = (0..n as u32).collect();
        let engine = VertexEngine::new(4);
        let counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        engine.run_gas(n, n, &offsets, &indices, &|_, v| {
            counts[v].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn engine_is_reusable() {
        let engine = VertexEngine::new(2);
        for _ in 0..3 {
            let hits = AtomicUsize::new(0);
            engine.run_items(100, None, None, &|_, _| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 100);
        }
    }

    #[test]
    fn panic_in_vertex_program_propagates() {
        let engine = VertexEngine::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            engine.run_items(50, None, None, &|_, v| {
                if v == 25 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
    }
}
