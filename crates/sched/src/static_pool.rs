//! Static-partition pool — the OpenMP analogue of paper §III.
//!
//! Each sweep splits `0..n` into exactly one contiguous chunk per thread —
//! either by item count (OpenMP `schedule(static)`) or by the workload
//! model's weights — and every thread processes only its own chunk. There is
//! no stealing: a thread that finishes early idles at the barrier. The
//! difference between this runtime's `busy_fraction` and the work-stealing
//! pool's is the OpenMP-vs-TBB gap of Fig. 3.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::stats::{RunStats, WorkerStats};
use crate::ItemRunner;

type Job = &'static (dyn Fn(usize, usize) + Sync);

struct Sweep {
    ranges: Vec<std::ops::Range<usize>>,
    job: Option<Job>,
}

struct Shared {
    gate: Mutex<(u64, bool)>, // (epoch, shutdown)
    wake: Condvar,
    sweep: Mutex<Sweep>,
    workers_left: AtomicUsize,
    panicked: AtomicBool,
    done: Mutex<bool>,
    done_cv: Condvar,
    busy_ns: Vec<AtomicUsize>,
    items: Vec<AtomicUsize>,
}

/// Fixed-partition thread pool (no work stealing).
pub struct StaticPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    run_lock: Mutex<()>,
    nthreads: usize,
}

impl StaticPool {
    /// Spawn a pool with `nthreads` workers (at least 1).
    pub fn new(nthreads: usize) -> Self {
        let nthreads = nthreads.max(1);
        let shared = Arc::new(Shared {
            gate: Mutex::new((0, false)),
            wake: Condvar::new(),
            sweep: Mutex::new(Sweep {
                ranges: Vec::new(),
                job: None,
            }),
            workers_left: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            done: Mutex::new(true),
            done_cv: Condvar::new(),
            busy_ns: (0..nthreads).map(|_| AtomicUsize::new(0)).collect(),
            items: (0..nthreads).map(|_| AtomicUsize::new(0)).collect(),
        });
        let handles = (0..nthreads)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bpmf-static-{id}"))
                    .spawn(move || worker_loop(id, shared))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        StaticPool {
            shared,
            handles,
            run_lock: Mutex::new(()),
            nthreads,
        }
    }

    /// Contiguous per-thread ranges: equal count, or equal modeled weight.
    fn split(&self, n: usize, weights: Option<&[f64]>) -> Vec<std::ops::Range<usize>> {
        match weights {
            None => {
                let base = n / self.nthreads;
                let extra = n % self.nthreads;
                let mut out = Vec::with_capacity(self.nthreads);
                let mut start = 0;
                for t in 0..self.nthreads {
                    let len = base + usize::from(t < extra);
                    out.push(start..start + len);
                    start += len;
                }
                out
            }
            Some(w) => {
                assert_eq!(w.len(), n, "weights length must equal item count");
                let total: f64 = w.iter().sum();
                let mut out = Vec::with_capacity(self.nthreads);
                let mut start = 0usize;
                let mut acc = 0.0;
                for t in 0..self.nthreads {
                    let target = total * (t as f64 + 1.0) / self.nthreads as f64;
                    let mut end = start;
                    let cap = n - (self.nthreads - 1 - t).min(n - start.min(n));
                    while end < cap && (acc < target || end == start) {
                        acc += w[end];
                        end += 1;
                    }
                    if t == self.nthreads - 1 {
                        end = n;
                    }
                    out.push(start..end.max(start));
                    start = end.max(start);
                }
                out
            }
        }
    }
}

impl ItemRunner for StaticPool {
    fn run_items(
        &self,
        n: usize,
        weights: Option<&[f64]>,
        _adj: Option<crate::Adjacency<'_>>,
        f: &(dyn Fn(usize, usize) + Sync),
    ) -> RunStats {
        let _serial = self.run_lock.lock();
        if n == 0 {
            return RunStats {
                elapsed: Duration::ZERO,
                per_worker: vec![WorkerStats::default(); self.nthreads],
            };
        }
        let shared = &self.shared;
        for (b, i) in shared.busy_ns.iter().zip(&shared.items) {
            b.store(0, Ordering::Relaxed);
            i.store(0, Ordering::Relaxed);
        }
        shared.panicked.store(false, Ordering::Relaxed);
        shared.workers_left.store(self.nthreads, Ordering::Release);

        {
            let mut sweep = shared.sweep.lock();
            sweep.ranges = self.split(n, weights);
            // SAFETY: workers dereference the borrow only before decrementing
            // `workers_left`; we block until it reaches zero, so the borrow
            // outlives every dereference. Cleared before returning.
            sweep.job =
                Some(unsafe { std::mem::transmute::<&(dyn Fn(usize, usize) + Sync), Job>(f) });
        }
        *shared.done.lock() = false;

        let t0 = Instant::now();
        {
            let mut g = shared.gate.lock();
            g.0 += 1;
            shared.wake.notify_all();
        }
        {
            let mut done = shared.done.lock();
            while !*done {
                shared.done_cv.wait(&mut done);
            }
        }
        let elapsed = t0.elapsed();
        shared.sweep.lock().job = None;

        if shared.panicked.load(Ordering::Acquire) {
            panic!("a worker panicked during StaticPool::run_items");
        }

        RunStats {
            elapsed,
            per_worker: (0..self.nthreads)
                .map(|t| WorkerStats {
                    busy: Duration::from_nanos(shared.busy_ns[t].load(Ordering::Relaxed) as u64),
                    items: shared.items[t].load(Ordering::Relaxed) as u64,
                    steals: 0,
                })
                .collect(),
        }
    }

    fn threads(&self) -> usize {
        self.nthreads
    }

    fn name(&self) -> &'static str {
        "static"
    }
}

impl Drop for StaticPool {
    fn drop(&mut self) {
        {
            let mut g = self.shared.gate.lock();
            g.1 = true;
            self.shared.wake.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(id: usize, shared: Arc<Shared>) {
    let mut last_epoch = 0u64;
    loop {
        {
            let mut g = shared.gate.lock();
            while g.0 == last_epoch && !g.1 {
                shared.wake.wait(&mut g);
            }
            if g.1 {
                return;
            }
            last_epoch = g.0;
        }
        let (range, job) = {
            let sweep = shared.sweep.lock();
            match sweep.job {
                Some(job) => (sweep.ranges.get(id).cloned().unwrap_or(0..0), job),
                None => (
                    0..0,
                    (&|_: usize, _: usize| {}) as &(dyn Fn(usize, usize) + Sync),
                ),
            }
        };
        let len = range.len();
        let t0 = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            for i in range {
                job(id, i);
            }
        }));
        shared.busy_ns[id].fetch_add(t0.elapsed().as_nanos() as usize, Ordering::Relaxed);
        shared.items[id].fetch_add(len, Ordering::Relaxed);
        if result.is_err() {
            shared.panicked.store(true, Ordering::Release);
        }
        if shared.workers_left.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut done = shared.done.lock();
            *done = true;
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn every_item_runs_exactly_once() {
        let pool = StaticPool::new(4);
        let n = 5000;
        let counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let stats = pool.run_items(n, None, None, &|_, i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        assert_eq!(stats.total_items(), n as u64);
        assert_eq!(stats.total_steals(), 0);
    }

    #[test]
    fn weighted_split_assigns_fewer_heavy_items_per_thread() {
        let pool = StaticPool::new(2);
        // First 10 items cost 100, the remaining 90 cost 1 each.
        let mut weights = vec![100.0; 10];
        weights.extend(vec![1.0; 90]);
        let ranges = pool.split(100, Some(&weights));
        // Thread 0 should get roughly the first ~5 heavy items, not 50 items.
        assert!(ranges[0].len() < 20, "ranges = {ranges:?}");
        assert_eq!(ranges[0].end, ranges[1].start);
        assert_eq!(ranges[1].end, 100);
    }

    #[test]
    fn uniform_split_covers_domain() {
        let pool = StaticPool::new(3);
        let ranges = pool.split(10, None);
        assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), 10);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, 10);
    }

    #[test]
    fn more_threads_than_items() {
        let pool = StaticPool::new(8);
        let hits = AtomicUsize::new(0);
        pool.run_items(3, None, None, &|_, _| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn pool_reusable_and_panic_propagates() {
        let pool = StaticPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_items(10, None, None, &|_, i| {
                if i == 5 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        let ok = AtomicUsize::new(0);
        pool.run_items(7, None, None, &|_, _| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 7);
    }
}
