//! Per-run accounting shared by all runtimes.

use std::time::Duration;

/// What one worker did during a sweep.
#[derive(Clone, Debug, Default)]
pub struct WorkerStats {
    /// Wall time spent executing item updates (not waiting/stealing).
    pub busy: Duration,
    /// Items this worker executed.
    pub items: u64,
    /// Successful steals (work-stealing runtime only; 0 elsewhere).
    pub steals: u64,
}

/// Accounting for one sweep over the items.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Wall time of the whole sweep.
    pub elapsed: Duration,
    /// Per-worker breakdown.
    pub per_worker: Vec<WorkerStats>,
}

impl RunStats {
    /// Total items executed across workers.
    pub fn total_items(&self) -> u64 {
        self.per_worker.iter().map(|w| w.items).sum()
    }

    /// Total successful steals across workers.
    pub fn total_steals(&self) -> u64 {
        self.per_worker.iter().map(|w| w.steals).sum()
    }

    /// Mean busy time / wall time over workers: 1.0 means no idle time.
    ///
    /// This is the single number that explains the Fig. 3 ordering — static
    /// scheduling leaves threads idle whenever the up-front split mispredicts
    /// item cost, stealing does not.
    pub fn busy_fraction(&self) -> f64 {
        if self.per_worker.is_empty() || self.elapsed.is_zero() {
            return 1.0;
        }
        let busy: f64 = self.per_worker.iter().map(|w| w.busy.as_secs_f64()).sum();
        busy / (self.elapsed.as_secs_f64() * self.per_worker.len() as f64)
    }

    /// Max worker busy time / mean worker busy time (1.0 = perfectly even).
    pub fn imbalance(&self) -> f64 {
        if self.per_worker.is_empty() {
            return 1.0;
        }
        let times: Vec<f64> = self
            .per_worker
            .iter()
            .map(|w| w.busy.as_secs_f64())
            .collect();
        let total: f64 = times.iter().sum();
        if total <= 0.0 {
            return 1.0;
        }
        let mean = total / times.len() as f64;
        times.iter().cloned().fold(0.0f64, f64::max) / mean
    }

    /// Items per second of wall time.
    pub fn items_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.total_items() as f64 / self.elapsed.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_from_per_worker() {
        let stats = RunStats {
            elapsed: Duration::from_secs(2),
            per_worker: vec![
                WorkerStats {
                    busy: Duration::from_secs(2),
                    items: 10,
                    steals: 1,
                },
                WorkerStats {
                    busy: Duration::from_secs(1),
                    items: 5,
                    steals: 0,
                },
            ],
        };
        assert_eq!(stats.total_items(), 15);
        assert_eq!(stats.total_steals(), 1);
        assert!((stats.busy_fraction() - 0.75).abs() < 1e-12);
        assert!((stats.imbalance() - 2.0 / 1.5).abs() < 1e-12);
        assert!((stats.items_per_sec() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_benign() {
        let stats = RunStats::default();
        assert_eq!(stats.total_items(), 0);
        assert_eq!(stats.busy_fraction(), 1.0);
        assert_eq!(stats.imbalance(), 1.0);
        assert_eq!(stats.items_per_sec(), 0.0);
    }
}
