//! Persistent work-stealing pool — the TBB analogue of paper §III.
//!
//! Design (following the shape of TBB's task scheduler, scaled to what BPMF
//! needs):
//!
//! * one OS thread per worker, parked on a condvar between sweeps;
//! * sweeps hand out *ranges* of item indices: a worker pops a range, splits
//!   it in half until it is at most `grain` items, executes the left piece
//!   and leaves the right pieces in its LIFO deque for itself or thieves;
//! * idle workers steal from the global injector first (fresh chunks), then
//!   from victim deques round-robin;
//! * completion is detected by counting executed items, so uneven splits
//!   and stolen chunks need no extra coordination.
//!
//! The non-`'static` closure is passed to the persistent workers by
//! lifetime-erasing a `&dyn Fn` (see `SAFETY` in [`WorkStealingPool::run_items`]);
//! `run_items` does not return until every item is executed, so the
//! reference never outlives the borrow it was created from.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::deque::{Injector, Steal, Stealer, Worker as Deque};
use crossbeam::utils::CachePadded;
use parking_lot::{Condvar, Mutex};

use crate::stats::{RunStats, WorkerStats};
use crate::ItemRunner;

type Chunk = std::ops::Range<usize>;
type Job = &'static (dyn Fn(usize, usize) + Sync);

struct Gate {
    epoch: Mutex<(u64, bool)>, // (sweep epoch, shutdown)
    wake: Condvar,
}

struct DoneGate {
    flag: Mutex<bool>,
    cv: Condvar,
}

#[derive(Default)]
struct WorkerCounters {
    busy_ns: AtomicU64,
    items: AtomicU64,
    steals: AtomicU64,
}

struct Shared {
    injector: Injector<Chunk>,
    stealers: Vec<Stealer<Chunk>>,
    job: Mutex<Option<Job>>,
    grain: AtomicUsize,
    remaining: AtomicUsize,
    panicked: AtomicBool,
    /// Workers currently inside a sweep. `run_items` returns when the item
    /// counter hits zero — which can be *before* every worker has observed
    /// the end of the sweep — so the next sweep must wait for this to drain
    /// or a laggard could execute fresh chunks with the previous sweep's
    /// (stale, possibly dangling) job pointer.
    in_sweep: AtomicUsize,
    gate: Gate,
    done: DoneGate,
    counters: Vec<CachePadded<WorkerCounters>>,
}

/// Work-stealing thread pool with persistent workers.
pub struct WorkStealingPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Serializes sweeps: the pool supports one sweep at a time.
    run_lock: Mutex<()>,
    nthreads: usize,
}

impl WorkStealingPool {
    /// Spawn a pool with `nthreads` workers (at least 1).
    pub fn new(nthreads: usize) -> Self {
        let nthreads = nthreads.max(1);
        let deques: Vec<Deque<Chunk>> = (0..nthreads).map(|_| Deque::new_lifo()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            in_sweep: AtomicUsize::new(0),
            stealers,
            job: Mutex::new(None),
            grain: AtomicUsize::new(1),
            remaining: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            gate: Gate {
                epoch: Mutex::new((0, false)),
                wake: Condvar::new(),
            },
            done: DoneGate {
                flag: Mutex::new(true),
                cv: Condvar::new(),
            },
            counters: (0..nthreads)
                .map(|_| CachePadded::new(WorkerCounters::default()))
                .collect(),
        });
        let handles = deques
            .into_iter()
            .enumerate()
            .map(|(id, deque)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("bpmf-ws-{id}"))
                    .spawn(move || worker_loop(id, deque, shared))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        WorkStealingPool {
            shared,
            handles,
            run_lock: Mutex::new(()),
            nthreads,
        }
    }

    /// Sweep `f` over `0..n` with an explicit splitting grain.
    pub fn run_with_grain<F>(&self, n: usize, grain: usize, f: F) -> RunStats
    where
        F: Fn(usize, usize) + Sync,
    {
        let _serial = self.run_lock.lock();
        // Retire laggards of the previous sweep before touching shared
        // state (see `Shared::in_sweep`).
        while self.shared.in_sweep.load(Ordering::Acquire) != 0 {
            std::thread::yield_now();
        }
        if n == 0 {
            return RunStats {
                elapsed: Duration::ZERO,
                per_worker: vec![WorkerStats::default(); self.nthreads],
            };
        }
        let shared = &self.shared;
        for c in shared.counters.iter() {
            c.busy_ns.store(0, Ordering::Relaxed);
            c.items.store(0, Ordering::Relaxed);
            c.steals.store(0, Ordering::Relaxed);
        }
        shared.grain.store(grain.max(1), Ordering::Relaxed);
        shared.panicked.store(false, Ordering::Relaxed);
        shared.remaining.store(n, Ordering::Release);

        // Seed the injector with ~4 chunks per worker so the first steals
        // find work immediately; splitting handles the rest.
        let nchunks = (self.nthreads * 4).min(n);
        let per = n.div_ceil(nchunks);
        let mut start = 0;
        while start < n {
            let end = (start + per).min(n);
            shared.injector.push(start..end);
            start = end;
        }

        // SAFETY: the worker threads dereference this borrow only while
        // `remaining > 0`; we block below until `remaining == 0` (the done
        // gate), so the borrow outlives every dereference. The job slot is
        // cleared before returning.
        let job: Job = unsafe { std::mem::transmute::<&(dyn Fn(usize, usize) + Sync), Job>(&f) };
        *shared.job.lock() = Some(job);
        *shared.done.flag.lock() = false;

        let t0 = Instant::now();
        {
            let mut g = shared.gate.epoch.lock();
            g.0 += 1;
            shared.gate.wake.notify_all();
        }
        {
            let mut done = shared.done.flag.lock();
            while !*done {
                shared.done.cv.wait(&mut done);
            }
        }
        let elapsed = t0.elapsed();
        *shared.job.lock() = None;

        if shared.panicked.load(Ordering::Acquire) {
            panic!("a worker panicked during WorkStealingPool::run_items");
        }

        RunStats {
            elapsed,
            per_worker: shared
                .counters
                .iter()
                .map(|c| WorkerStats {
                    busy: Duration::from_nanos(c.busy_ns.load(Ordering::Relaxed)),
                    items: c.items.load(Ordering::Relaxed),
                    steals: c.steals.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// A reasonable default grain: big enough to amortize deque traffic,
    /// small enough that stealing can still balance (≈ 8 splits per worker).
    fn default_grain(&self, n: usize) -> usize {
        (n / (self.nthreads * 8)).clamp(1, 1024)
    }
}

impl ItemRunner for WorkStealingPool {
    fn run_items(
        &self,
        n: usize,
        _weights: Option<&[f64]>,
        _adj: Option<crate::Adjacency<'_>>,
        f: &(dyn Fn(usize, usize) + Sync),
    ) -> RunStats {
        // Stealing adapts at runtime; neither the static weight model nor
        // neighbor locking is needed.
        self.run_with_grain(n, self.default_grain(n), f)
    }

    fn threads(&self) -> usize {
        self.nthreads
    }

    fn name(&self) -> &'static str {
        "work-stealing"
    }
}

impl Drop for WorkStealingPool {
    fn drop(&mut self) {
        {
            let mut g = self.shared.gate.epoch.lock();
            g.1 = true;
            self.shared.gate.wake.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(id: usize, deque: Deque<Chunk>, shared: Arc<Shared>) {
    let mut last_epoch = 0u64;
    // Cheap xorshift for victim selection.
    let mut rng_state = (id as u64).wrapping_mul(0x9E3779B97F4A7C15) | 1;
    loop {
        {
            let mut g = shared.gate.epoch.lock();
            while g.0 == last_epoch && !g.1 {
                shared.gate.wake.wait(&mut g);
            }
            if g.1 {
                return;
            }
            last_epoch = g.0;
            // Registered while still holding the gate lock: the master only
            // advances the epoch after draining `in_sweep` to zero, so a
            // worker is either counted for the current sweep or has not yet
            // seen it — never half-entered into a stale one.
            shared.in_sweep.fetch_add(1, Ordering::AcqRel);
        }
        let job = *shared.job.lock();
        if let Some(job) = job {
            let grain = shared.grain.load(Ordering::Relaxed);
            sweep(id, &deque, &shared, job, grain, &mut rng_state);
        }
        shared.in_sweep.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Execute work until the sweep's item counter reaches zero.
fn sweep(
    id: usize,
    deque: &Deque<Chunk>,
    shared: &Shared,
    job: Job,
    grain: usize,
    rng_state: &mut u64,
) {
    let counters = &shared.counters[id];
    let mut idle_spins = 0u32;
    loop {
        let chunk = deque.pop().or_else(|| {
            find_work(id, deque, shared, rng_state).inspect(|_| {
                counters.steals.fetch_add(1, Ordering::Relaxed);
            })
        });
        match chunk {
            Some(mut cur) => {
                idle_spins = 0;
                // Split until at most `grain` items remain, leaving right
                // halves for thieves.
                while cur.len() > grain {
                    let mid = cur.start + cur.len() / 2;
                    deque.push(mid..cur.end);
                    cur = cur.start..mid;
                }
                let len = cur.len();
                let t0 = Instant::now();
                let result = catch_unwind(AssertUnwindSafe(|| {
                    for i in cur {
                        job(id, i);
                    }
                }));
                counters
                    .busy_ns
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                counters.items.fetch_add(len as u64, Ordering::Relaxed);
                if result.is_err() {
                    shared.panicked.store(true, Ordering::Release);
                }
                if shared.remaining.fetch_sub(len, Ordering::AcqRel) == len {
                    let mut done = shared.done.flag.lock();
                    *done = true;
                    shared.done.cv.notify_all();
                }
            }
            None => {
                if shared.remaining.load(Ordering::Acquire) == 0 {
                    return;
                }
                // Nothing stealable yet but the sweep is not over: another
                // worker is inside a big leaf. Back off politely.
                idle_spins += 1;
                if idle_spins < 64 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(20));
                }
            }
        }
    }
}

/// Steal: injector first (fresh chunks), then victim deques round-robin
/// from a random start.
fn find_work(
    id: usize,
    deque: &Deque<Chunk>,
    shared: &Shared,
    rng_state: &mut u64,
) -> Option<Chunk> {
    loop {
        match shared.injector.steal_batch_and_pop(deque) {
            Steal::Success(c) => return Some(c),
            Steal::Retry => continue,
            Steal::Empty => break,
        }
    }
    let n = shared.stealers.len();
    *rng_state ^= *rng_state << 13;
    *rng_state ^= *rng_state >> 7;
    *rng_state ^= *rng_state << 17;
    let start = (*rng_state as usize) % n;
    for k in 0..n {
        let victim = (start + k) % n;
        if victim == id {
            continue;
        }
        loop {
            match shared.stealers[victim].steal() {
                Steal::Success(c) => return Some(c),
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn every_item_runs_exactly_once() {
        let pool = WorkStealingPool::new(4);
        let n = 10_000;
        let counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let stats = pool.run_items(n, None, None, &|_, i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        assert_eq!(stats.total_items(), n as u64);
    }

    #[test]
    fn pool_is_reusable_across_sweeps() {
        let pool = WorkStealingPool::new(3);
        for round in 0..5 {
            let n = 100 * (round + 1);
            let hits = AtomicUsize::new(0);
            pool.run_items(n, None, None, &|_, _| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), n);
        }
    }

    #[test]
    fn zero_items_is_a_noop() {
        let pool = WorkStealingPool::new(2);
        let stats = pool.run_items(0, None, None, &|_, _| panic!("must not run"));
        assert_eq!(stats.total_items(), 0);
    }

    #[test]
    fn imbalanced_items_get_stolen() {
        // Item 0 blocks its worker until some *other* worker has executed
        // an item — i.e. until a steal has observably happened — with a
        // generous timeout so a broken scheduler still fails rather than
        // hangs. This is deterministic on any core count (a pure
        // cost-imbalance version is timing luck on single-core hosts: one
        // worker can drain every chunk before the others are scheduled).
        let pool = WorkStealingPool::new(4);
        let n = 4096;
        let big_worker = AtomicUsize::new(usize::MAX);
        let other_ran = AtomicBool::new(false);
        let stats = pool.run_with_grain(n, 16, |worker, i| {
            if i == 0 {
                big_worker.store(worker, Ordering::SeqCst);
                let t0 = Instant::now();
                while !other_ran.load(Ordering::SeqCst) && t0.elapsed() < Duration::from_secs(10) {
                    std::thread::yield_now();
                }
            } else if big_worker.load(Ordering::SeqCst) != usize::MAX
                && worker != big_worker.load(Ordering::SeqCst)
            {
                other_ran.store(true, Ordering::SeqCst);
            }
        });
        assert_eq!(stats.total_items(), n as u64);
        // More than one worker must have executed items.
        let active = stats.per_worker.iter().filter(|w| w.items > 0).count();
        assert!(
            active > 1,
            "expected stealing to spread work, stats: {stats:?}"
        );
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = WorkStealingPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_items(100, None, None, &|_, i| {
                if i == 50 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // Pool survives and is reusable after a propagated panic.
        let ok = AtomicUsize::new(0);
        pool.run_items(10, None, None, &|_, _| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = WorkStealingPool::new(1);
        let sum = AtomicUsize::new(0);
        pool.run_items(1000, None, None, &|_, i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }
}
