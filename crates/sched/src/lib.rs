#![warn(missing_docs)]

//! Shared-memory runtimes for BPMF (paper §III).
//!
//! The paper compares three ways of driving the per-item update loop on one
//! node. This crate implements all three behind one trait so the sampler is
//! runtime-agnostic:
//!
//! * [`WorkStealingPool`] — the paper's TBB analogue: persistent workers,
//!   per-worker LIFO deques, a global injector, random stealing, and
//!   recursive chunk splitting. Load imbalance (items with wildly different
//!   rating counts) is absorbed by stealing.
//! * [`StaticPool`] — the OpenMP analogue: each thread receives one
//!   contiguous chunk per run (optionally weighted by the workload model)
//!   and a barrier closes the loop. No stealing: whatever imbalance the
//!   up-front split leaves is paid in idle time, which is exactly the gap
//!   Fig. 3 shows between OpenMP and TBB.
//! * [`VertexEngine`] — the GraphLab-analogue baseline: a bulk-synchronous
//!   vertex engine that charges per-vertex locking and a single shared work
//!   queue, modelling the consistency machinery a general graph framework
//!   pays that a specialized sampler does not.
//!
//! All three report [`RunStats`] (per-worker busy time, items, steals) so
//! the Fig. 3 harness can show *why* the ordering comes out the way it does.

mod static_pool;
mod stats;
mod vertex;
mod workstealing;

pub use static_pool::StaticPool;
pub use stats::{RunStats, WorkerStats};
pub use vertex::VertexEngine;
pub use workstealing::WorkStealingPool;

/// CSR-style neighbor lists of the items being swept, for runtimes that
/// charge consistency costs per neighbor (the GraphLab-like engine).
#[derive(Clone, Copy, Debug)]
pub struct Adjacency<'a> {
    /// `offsets[i]..offsets[i+1]` indexes `indices` for item `i`.
    pub offsets: &'a [usize],
    /// Neighbor ids (counterpart-side items).
    pub indices: &'a [u32],
    /// Size of the neighbor id domain.
    pub neighbor_domain: usize,
}

/// A runtime that can sweep `f` over `0..n` items, exactly once each.
///
/// `f(worker, item)` must be safe to call concurrently from different
/// workers on different items; `weights` (modeled per-item cost, paper
/// §IV-B) lets weight-aware runtimes pre-balance their distribution, and
/// `adj` lets consistency-charging runtimes lock neighbors.
pub trait ItemRunner: Send + Sync {
    /// Sweep items `0..n`, returning per-worker accounting.
    fn run_items(
        &self,
        n: usize,
        weights: Option<&[f64]>,
        adj: Option<Adjacency<'_>>,
        f: &(dyn Fn(usize, usize) + Sync),
    ) -> RunStats;

    /// Number of worker threads.
    fn threads(&self) -> usize;

    /// Human-readable runtime name (used in benchmark tables).
    fn name(&self) -> &'static str;
}
