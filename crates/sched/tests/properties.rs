//! Property tests for the runtimes' core contract: every item executes
//! exactly once, no matter the item count, thread count, grain, or weights.

use std::sync::atomic::{AtomicU32, Ordering};

use bpmf_sched::{ItemRunner, StaticPool, VertexEngine, WorkStealingPool};
use proptest::prelude::*;

fn check_exactly_once(runner: &dyn ItemRunner, n: usize, weights: Option<&[f64]>) {
    let counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let stats = runner.run_items(n, weights, None, &|_, i| {
        counts[i].fetch_add(1, Ordering::Relaxed);
    });
    for (i, c) in counts.iter().enumerate() {
        assert_eq!(
            c.load(Ordering::Relaxed),
            1,
            "item {i} ran a wrong number of times"
        );
    }
    assert_eq!(stats.total_items(), n as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn work_stealing_runs_every_item_once(n in 0usize..3000, threads in 1usize..6, grain in 1usize..64) {
        let pool = WorkStealingPool::new(threads);
        let counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        pool.run_with_grain(n, grain, |_, i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        for c in &counts {
            prop_assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn static_pool_runs_every_item_once(n in 0usize..3000, threads in 1usize..6) {
        check_exactly_once(&StaticPool::new(threads), n, None);
    }

    #[test]
    fn static_pool_weighted_runs_every_item_once(
        weights in proptest::collection::vec(0.0f64..100.0, 1..500),
        threads in 1usize..6,
    ) {
        check_exactly_once(&StaticPool::new(threads), weights.len(), Some(&weights));
    }

    #[test]
    fn vertex_engine_runs_every_item_once(n in 0usize..1500, threads in 1usize..5) {
        check_exactly_once(&VertexEngine::new(threads), n, None);
    }

    #[test]
    fn results_are_order_independent_sums(n in 1usize..2000, threads in 1usize..6) {
        // Commutative reduction must not depend on the runtime.
        let expected: u64 = (0..n as u64).sum();
        for runner in [
            Box::new(WorkStealingPool::new(threads)) as Box<dyn ItemRunner>,
            Box::new(StaticPool::new(threads)),
        ] {
            let sum = std::sync::atomic::AtomicU64::new(0);
            runner.run_items(n, None, None, &|_, i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
            prop_assert_eq!(sum.load(Ordering::Relaxed), expected);
        }
    }
}
