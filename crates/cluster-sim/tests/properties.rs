//! Property tests for the cluster simulator's invariants.

use bpmf_cluster_sim::{simulate_iteration, ComputeModel, PhaseLoad, Topology};
use proptest::prelude::*;

/// Random but consistent phase load for `nodes` nodes.
fn phase(nodes: usize) -> impl Strategy<Value = PhaseLoad> {
    let ratings = proptest::collection::vec(0.0f64..50_000.0, nodes);
    let items = proptest::collection::vec(1.0f64..2_000.0, nodes);
    let ws = proptest::collection::vec(1.0e5f64..1.0e9, nodes);
    let sends = proptest::collection::vec(
        proptest::collection::vec((0..nodes as u32, 0u32..200), 0..nodes.min(6)),
        nodes,
    );
    (ratings, items, ws, sends).prop_map(
        move |(node_ratings, node_items, node_working_set, mut node_sends)| {
            // Drop self-sends (the plan never produces them).
            for (src, sends) in node_sends.iter_mut().enumerate() {
                sends.retain(|&(dst, _)| dst as usize != src);
            }
            PhaseLoad {
                node_ratings,
                node_items,
                node_sends,
                node_working_set,
                bytes_per_item: 136,
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn makespan_is_at_least_the_slowest_node_compute(nodes in 1usize..32, ph in (4usize..32).prop_flat_map(phase)) {
        // Use a phase sized for `nodes` by regenerating when sizes mismatch.
        prop_assume!(ph.nodes() >= nodes);
        let ph = shrink_phase(&ph, nodes);
        let topo = Topology::bluegene_q_like();
        let model = ComputeModel::default_calibration();
        let res = simulate_iteration(&topo, &model, std::slice::from_ref(&ph), 64);
        // Makespan can never beat the slowest node's pure compute time.
        let slowest = (0..nodes)
            .map(|n| model.node_compute_seconds(
                ph.node_ratings[n], ph.node_items[n], ph.node_working_set[n], topo.cores_per_node))
            .fold(0.0f64, f64::max);
        prop_assert!(res.makespan_s >= slowest - 1e-12,
            "makespan {} < slowest compute {slowest}", res.makespan_s);
    }

    #[test]
    fn fractions_are_normalized(nodes in 1usize..16, ph in (4usize..16).prop_flat_map(phase)) {
        prop_assume!(ph.nodes() >= nodes);
        let ph = shrink_phase(&ph, nodes);
        let topo = Topology::bluegene_q_like();
        let model = ComputeModel::default_calibration();
        let res = simulate_iteration(&topo, &model, &[ph.clone(), ph], 16);
        for n in &res.nodes {
            let (c, b, m) = n.fractions();
            prop_assert!((0.0..=1.0 + 1e-9).contains(&c));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&b));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&m));
            prop_assert!((c + b + m - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn items_are_conserved(nodes in 1usize..16, ph in (4usize..16).prop_flat_map(phase)) {
        prop_assume!(ph.nodes() >= nodes);
        let ph = shrink_phase(&ph, nodes);
        let expected: f64 = ph.node_items.iter().sum();
        let topo = Topology::bluegene_q_like();
        let model = ComputeModel::default_calibration();
        let res = simulate_iteration(&topo, &model, &[ph], 64);
        prop_assert!((res.total_items - expected).abs() < 1e-9);
    }

    #[test]
    fn larger_buffers_never_slow_the_schedule(nodes in 2usize..12, ph in (4usize..12).prop_flat_map(phase)) {
        prop_assume!(ph.nodes() >= nodes);
        let ph = shrink_phase(&ph, nodes);
        let topo = Topology::bluegene_q_like();
        let model = ComputeModel::default_calibration();
        let small = simulate_iteration(&topo, &model, std::slice::from_ref(&ph), 1);
        let large = simulate_iteration(&topo, &model, &[ph], 128);
        // Fewer messages (same bytes) can only reduce software overhead.
        prop_assert!(large.makespan_s <= small.makespan_s + 1e-12);
    }

    #[test]
    fn faster_network_never_hurts(nodes in 2usize..12, ph in (4usize..12).prop_flat_map(phase)) {
        prop_assume!(ph.nodes() >= nodes);
        let ph = shrink_phase(&ph, nodes);
        let model = ComputeModel::default_calibration();
        let slow = Topology { intra_rack_bw: 1e8, inter_rack_bw: 1e8, ..Topology::bluegene_q_like() };
        let fast = Topology { intra_rack_bw: 1e11, inter_rack_bw: 1e11, ..Topology::bluegene_q_like() };
        let t_slow = simulate_iteration(&slow, &model, std::slice::from_ref(&ph), 16);
        let t_fast = simulate_iteration(&fast, &model, &[ph], 16);
        prop_assert!(t_fast.makespan_s <= t_slow.makespan_s + 1e-12);
    }
}

/// Truncate a generated phase to exactly `nodes` nodes (destinations are
/// remapped into range).
fn shrink_phase(ph: &PhaseLoad, nodes: usize) -> PhaseLoad {
    let mut out = PhaseLoad {
        node_ratings: ph.node_ratings[..nodes].to_vec(),
        node_items: ph.node_items[..nodes].to_vec(),
        node_sends: ph.node_sends[..nodes].to_vec(),
        node_working_set: ph.node_working_set[..nodes].to_vec(),
        bytes_per_item: ph.bytes_per_item,
    };
    for (src, sends) in out.node_sends.iter_mut().enumerate() {
        for (dst, _) in sends.iter_mut() {
            *dst %= nodes as u32;
        }
        sends.retain(|&(dst, _)| dst as usize != src);
    }
    out
}
