//! The phase-level event simulation.
//!
//! Time is continuous `f64` seconds. Within a phase every node computes its
//! items as a fluid (the per-item granularity below a phase does not change
//! makespans at these scales) while its outgoing buffered messages are
//! generated at evenly spaced points of the compute window — exactly how the
//! real driver produces them ("send when the buffer is full"). Messages then
//! queue on three serialized resources, in event order:
//!
//! 1. the sender's NIC (intra-rack bandwidth),
//! 2. the sender rack's shared uplink, when the destination is in another
//!    rack (inter-rack bandwidth),
//! 3. a latency hop.
//!
//! A node finishes a phase when its own compute is done *and* every item it
//! expects this phase has arrived (the driver's per-source drain). Phases
//! chain per node without global barriers, matching the asynchronous
//! protocol.

use crate::model::{ComputeModel, PhaseLoad, Topology};

/// Per-node time split over the simulated run (Fig. 5's categories).
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeAccounting {
    /// Seconds of compute with no communication in flight.
    pub compute: f64,
    /// Seconds of compute while messages to/from this node were in flight.
    pub both: f64,
    /// Seconds blocked waiting for arrivals after local compute finished.
    pub comm: f64,
}

impl NodeAccounting {
    /// Fractions `(compute, both, comm)`.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let total = self.compute + self.both + self.comm;
        if total <= 0.0 {
            return (1.0, 0.0, 0.0);
        }
        (self.compute / total, self.both / total, self.comm / total)
    }
}

/// Outcome of simulating a full iteration (all phases).
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Wall time from start to the last node finishing its last phase.
    pub makespan_s: f64,
    /// Total item updates performed.
    pub total_items: f64,
    /// Items per second.
    pub items_per_sec: f64,
    /// Per-node accounting.
    pub nodes: Vec<NodeAccounting>,
    /// Total messages that crossed rack boundaries.
    pub inter_rack_messages: u64,
}

impl SimResult {
    /// Machine-wide average fractions `(compute, both, comm)`.
    pub fn mean_fractions(&self) -> (f64, f64, f64) {
        let mut acc = (0.0, 0.0, 0.0);
        for n in &self.nodes {
            let f = n.fractions();
            acc.0 += f.0;
            acc.1 += f.1;
            acc.2 += f.2;
        }
        let c = self.nodes.len().max(1) as f64;
        (acc.0 / c, acc.1 / c, acc.2 / c)
    }
}

struct Message {
    src: usize,
    dst: usize,
    bytes: f64,
    /// When the sender's compute progress makes this buffer available.
    gen_time: f64,
}

/// Simulate one Gibbs iteration (a sequence of phases) and return makespan
/// plus per-node accounting.
#[allow(clippy::needless_range_loop)]
pub fn simulate_iteration(
    topo: &Topology,
    model: &ComputeModel,
    phases: &[PhaseLoad],
    send_buffer_items: usize,
) -> SimResult {
    assert!(!phases.is_empty(), "need at least one phase");
    let nodes = phases[0].nodes();
    assert!(nodes > 0, "need at least one node");
    let send_buffer_items = send_buffer_items.max(1);

    let nracks = topo.rack_of(nodes - 1) + 1;
    let mut phase_start = vec![0.0f64; nodes];
    let mut acct = vec![NodeAccounting::default(); nodes];
    let mut total_items = 0.0;
    let mut inter_rack_messages = 0u64;

    for phase in phases {
        phase.validate();
        assert_eq!(
            phase.nodes(),
            nodes,
            "all phases must use the same node count"
        );
        total_items += phase.node_items.iter().sum::<f64>();

        // Per-node compute windows (message software overhead charged to the
        // sender's compute, like the real driver where send calls interleave
        // updates).
        let mut compute_secs = vec![0.0f64; nodes];
        let mut msgs_out = vec![0u64; nodes];
        let mut messages: Vec<Message> = Vec::new();
        for src in 0..nodes {
            for &(dst, items) in &phase.node_sends[src] {
                let n_msgs = (items as usize).div_ceil(send_buffer_items);
                msgs_out[src] += n_msgs as u64;
                let mut left = items as usize;
                for m in 0..n_msgs {
                    let in_msg = left.min(send_buffer_items);
                    left -= in_msg;
                    messages.push(Message {
                        src,
                        dst: dst as usize,
                        bytes: (in_msg * phase.bytes_per_item) as f64,
                        // Buffers fill as compute progresses: spread evenly.
                        gen_time: (m as f64 + 1.0) / (n_msgs as f64 + 1.0),
                    });
                }
            }
        }
        for src in 0..nodes {
            compute_secs[src] = model.node_compute_seconds(
                phase.node_ratings[src],
                phase.node_items[src],
                phase.node_working_set[src],
                topo.cores_per_node,
            ) + msgs_out[src] as f64 * model.seconds_per_message;
        }

        // Materialize generation times inside each sender's window.
        for msg in messages.iter_mut() {
            msg.gen_time = phase_start[msg.src] + compute_secs[msg.src] * msg.gen_time;
        }
        // Serialize on resources in event order.
        messages.sort_by(|a, b| a.gen_time.total_cmp(&b.gen_time));
        let mut nic_free = phase_start.clone();
        let mut uplink_free = vec![0.0f64; nracks];
        let mut last_arrival = vec![f64::NEG_INFINITY; nodes];
        // Seconds each node's transport hardware (NIC, uplink share) was
        // actively serving its transfers — the basis of the "both" bucket.
        let mut comm_service = vec![0.0f64; nodes];

        for msg in &messages {
            let nic_start = msg.gen_time.max(nic_free[msg.src]);
            let nic_done = nic_start + msg.bytes / topo.intra_rack_bw;
            nic_free[msg.src] = nic_done;
            comm_service[msg.src] += nic_done - nic_start;

            let src_rack = topo.rack_of(msg.src);
            let dst_rack = topo.rack_of(msg.dst);
            let wire_done = if src_rack == dst_rack {
                nic_done
            } else {
                inter_rack_messages += 1;
                let up_start = nic_done.max(uplink_free[src_rack]);
                let up_done = up_start + msg.bytes / topo.inter_rack_bw;
                uplink_free[src_rack] = up_done;
                comm_service[msg.src] += up_done - up_start;
                up_done
            };
            let arrival = wire_done + topo.latency_s;
            // Receiving costs the destination transport service too.
            comm_service[msg.dst] += msg.bytes / topo.intra_rack_bw;
            last_arrival[msg.dst] = last_arrival[msg.dst].max(arrival);
        }

        // Phase completion + accounting per node. "Both" is the part of the
        // compute window during which this node's transfers were actually
        // being served (communication genuinely hidden under computation);
        // waiting after compute ends is blocked "comm" time.
        for node in 0..nodes {
            let compute_end = phase_start[node] + compute_secs[node];
            let phase_end = compute_end.max(last_arrival[node]);
            let overlap = comm_service[node].min(compute_secs[node]);
            acct[node].both += overlap;
            acct[node].compute += compute_secs[node] - overlap;
            acct[node].comm += phase_end - compute_end;
            phase_start[node] = phase_end;
        }
    }

    let makespan = phase_start.iter().cloned().fold(0.0f64, f64::max);
    SimResult {
        makespan_s: makespan,
        total_items,
        items_per_sec: if makespan > 0.0 {
            total_items / makespan
        } else {
            0.0
        },
        nodes: acct,
        inter_rack_messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn even_phase(nodes: usize, items_per_node: f64, sends_per_pair: u32) -> PhaseLoad {
        let node_sends = (0..nodes)
            .map(|src| {
                (0..nodes)
                    .filter(|&d| d != src && sends_per_pair > 0)
                    .map(|d| (d as u32, sends_per_pair))
                    .collect()
            })
            .collect();
        PhaseLoad {
            node_ratings: vec![items_per_node * 100.0; nodes],
            node_items: vec![items_per_node; nodes],
            node_sends,
            node_working_set: vec![1.0e6; nodes],
            bytes_per_item: 136,
        }
    }

    fn default_setup() -> (Topology, ComputeModel) {
        (
            Topology::bluegene_q_like(),
            ComputeModel::default_calibration(),
        )
    }

    #[test]
    fn no_communication_means_pure_compute() {
        let (topo, model) = default_setup();
        let phase = even_phase(4, 1000.0, 0);
        let res = simulate_iteration(&topo, &model, &[phase], 64);
        let (c, b, m) = res.mean_fractions();
        assert!((c - 1.0).abs() < 1e-9, "compute fraction = {c}");
        assert_eq!(b, 0.0);
        assert_eq!(m, 0.0);
        assert_eq!(res.inter_rack_messages, 0);
    }

    #[test]
    fn makespan_matches_hand_computed_single_node() {
        let (topo, model) = default_setup();
        let phase = even_phase(1, 500.0, 0);
        let res = simulate_iteration(&topo, &model, &[phase.clone(), phase], 64);
        let per_phase = model.node_compute_seconds(50_000.0, 500.0, 1.0e6, topo.cores_per_node);
        assert!((res.makespan_s - 2.0 * per_phase).abs() < 1e-12);
        assert_eq!(res.total_items, 1000.0);
    }

    #[test]
    fn intra_rack_scaling_is_nearly_linear() {
        // Fixed total work, no cross-rack traffic: 16 nodes ≈ 16× of 1.
        let (topo, model) = default_setup();
        let total_items = 64_000.0;
        let run = |nodes: usize| {
            let phase = even_phase(nodes, total_items / nodes as f64, 2);
            simulate_iteration(&topo, &model, &[phase], 64).items_per_sec
        };
        let t1 = run(1);
        let t16 = run(16);
        let speedup = t16 / t1;
        assert!(speedup > 10.0, "speedup = {speedup}");
    }

    #[test]
    fn cache_fit_produces_superlinear_region() {
        // Working set shrinks with node count; at 1 node it spills far past
        // cache, at 32 nodes it fits → more-than-32× throughput.
        let (topo, model) = default_setup();
        let total_items = 200_000.0;
        let total_ws = 40.0 * model.cache_bytes; // 40× one node's cache
        let run = |nodes: usize| {
            let mut phase = even_phase(nodes, total_items / nodes as f64, 0);
            phase.node_working_set = vec![total_ws / nodes as f64; nodes];
            simulate_iteration(&topo, &model, &[phase], 64).items_per_sec
        };
        let t1 = run(1);
        let t32 = run(32);
        assert!(
            t32 > 32.0 * t1,
            "expected super-linear: 32-node {t32} vs 32 × 1-node {}",
            32.0 * t1
        );
    }

    #[test]
    fn crossing_rack_boundary_degrades_efficiency() {
        // Same per-node work and traffic; past 32 nodes messages start
        // crossing racks and efficiency per node must drop.
        let (topo, model) = default_setup();
        let heavy_traffic = 40u32;
        let run = |nodes: usize| {
            let phase = even_phase(nodes, 2_000.0, heavy_traffic);
            let r = simulate_iteration(&topo, &model, &[phase], 8);
            r.items_per_sec / nodes as f64
        };
        let per_node_at_32 = run(32);
        let per_node_at_128 = run(128);
        assert!(
            per_node_at_128 < per_node_at_32 * 0.9,
            "expected degradation: {per_node_at_128} vs {per_node_at_32}"
        );
    }

    #[test]
    fn comm_fraction_grows_with_node_count() {
        // Strong scaling with realistic traffic shape: per-node compute
        // shrinks 1/n while per-pair traffic stays constant (an item is
        // needed wherever its counterparts live), so per-node traffic grows
        // with n — the blocked-communication share must rise.
        let (topo, model) = default_setup();
        let total_items = 400_000.0;
        let frac_blocked = |nodes: usize| {
            let phase = even_phase(nodes, total_items / nodes as f64, 20);
            let r = simulate_iteration(&topo, &model, &[phase], 16);
            let (_, _, c) = r.mean_fractions();
            c
        };
        let small = frac_blocked(4);
        let large = frac_blocked(256);
        assert!(
            large > small,
            "blocked-comm share should grow: {small} → {large}"
        );
    }

    #[test]
    fn fractions_sum_to_one() {
        let (topo, model) = default_setup();
        let phase = even_phase(8, 1000.0, 5);
        let res = simulate_iteration(&topo, &model, &[phase.clone(), phase], 4);
        for n in &res.nodes {
            let (a, b, c) = n.fractions();
            assert!((a + b + c - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn buffering_reduces_message_overhead() {
        let (topo, model) = default_setup();
        let phase = even_phase(16, 500.0, 64);
        let buffered = simulate_iteration(&topo, &model, std::slice::from_ref(&phase), 64);
        let item_granular = simulate_iteration(&topo, &model, &[phase], 1);
        assert!(
            buffered.makespan_s < item_granular.makespan_s,
            "buffered {} vs unbuffered {}",
            buffered.makespan_s,
            item_granular.makespan_s
        );
    }
}
