//! Machine and workload models.

use serde::{Deserialize, Serialize};

/// Two-level interconnect: per-node NICs inside a rack, one shared uplink
/// per rack for cross-rack traffic.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Topology {
    /// Nodes per rack (32 on BlueGene/Q — "one node rack on this system").
    pub nodes_per_rack: usize,
    /// Hardware threads per node contributing to the item sweeps.
    pub cores_per_node: usize,
    /// NIC bandwidth per node for intra-rack traffic (bytes/s).
    pub intra_rack_bw: f64,
    /// Shared uplink bandwidth per rack for cross-rack traffic (bytes/s).
    pub inter_rack_bw: f64,
    /// Per-message latency (seconds), covering MPI software + wire.
    pub latency_s: f64,
}

impl Topology {
    /// A BlueGene/Q-shaped machine. Bandwidths are fitted to the machine
    /// class, not vendor sheets: the 5D-torus injection bandwidth per node
    /// (10 links × 2 GB/s on the real machine) makes intra-rack traffic
    /// cheap relative to compute, while the per-rack uplink share makes
    /// cross-rack traffic expensive — which is what produces the published
    /// Fig. 4 knee at one rack (see EXPERIMENTS.md).
    pub fn bluegene_q_like() -> Self {
        Topology {
            nodes_per_rack: 32,
            cores_per_node: 16,
            intra_rack_bw: 8.0e9,
            inter_rack_bw: 4.0e9, // shared by the whole rack
            latency_s: 4.0e-6,
        }
    }

    /// A small commodity cluster (the paper's Lynx: 20 nodes, 12 cores).
    pub fn lynx_like() -> Self {
        Topology {
            nodes_per_rack: 20,
            cores_per_node: 12,
            intra_rack_bw: 1.2e9,
            inter_rack_bw: 2.4e9,
            latency_s: 20.0e-6,
        }
    }

    /// Rack index of a node.
    #[inline]
    pub fn rack_of(&self, node: usize) -> usize {
        node / self.nodes_per_rack
    }
}

/// Calibrated per-node compute cost model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ComputeModel {
    /// Seconds per rating accumulation on one core (measured by `fig2`).
    pub seconds_per_rating: f64,
    /// Fixed seconds per item update on one core (solve + sampling).
    pub seconds_per_item: f64,
    /// Per-message software overhead in seconds (send + receive side).
    pub seconds_per_message: f64,
    /// Effective cache per node in bytes (BG/Q: 32 MB L2).
    pub cache_bytes: f64,
    /// Memory-bound penalty multiplier when the working set spills far
    /// beyond cache (cost approaches `(1 + mem_penalty) ×` the in-cache
    /// cost).
    pub mem_penalty: f64,
    /// Fraction of ideal per-node thread scaling actually achieved.
    pub parallel_efficiency: f64,
}

impl ComputeModel {
    /// Constants of the paper era (Westmere/BG-Q class cores), used when no
    /// host calibration is supplied. `cache_bytes` is the *effective*
    /// capacity per node (smaller than the 32 MB L2 spec: the sampler shares
    /// it with the rating stream), fitted so the full-size MovieLens working
    /// set transitions from memory-bound to cache-resident across the 1–32
    /// node range — the paper's super-linear region.
    pub fn default_calibration() -> Self {
        ComputeModel {
            seconds_per_rating: 2.0e-7,
            seconds_per_item: 6.0e-6,
            seconds_per_message: 3.0e-6,
            cache_bytes: 12.0 * 1024.0 * 1024.0,
            mem_penalty: 0.5,
            parallel_efficiency: 0.85,
        }
    }

    /// Cache-capacity multiplier: 1.0 when the per-node working set fits in
    /// cache, rising smoothly toward `1 + mem_penalty` as it spills.
    pub fn cache_multiplier(&self, working_set_bytes: f64) -> f64 {
        if working_set_bytes <= self.cache_bytes {
            1.0
        } else {
            1.0 + self.mem_penalty * (1.0 - self.cache_bytes / working_set_bytes)
        }
    }

    /// Effective speedup from `cores` threads: one core is the baseline,
    /// each additional core contributes `parallel_efficiency` of a core
    /// (Amdahl-flavored linear model, adequate at BPMF's thread counts).
    pub fn thread_speedup(&self, cores: usize) -> f64 {
        1.0 + (cores.max(1) as f64 - 1.0) * self.parallel_efficiency
    }

    /// Seconds of one node's compute for a phase: `cost_units` charged at
    /// the calibrated rates, divided over the node's cores, scaled by the
    /// cache multiplier.
    pub fn node_compute_seconds(
        &self,
        ratings: f64,
        items: f64,
        working_set_bytes: f64,
        cores: usize,
    ) -> f64 {
        let serial = ratings * self.seconds_per_rating + items * self.seconds_per_item;
        serial * self.cache_multiplier(working_set_bytes) / self.thread_speedup(cores)
    }
}

/// One phase (one side's sweep) of the distributed schedule, aggregated per
/// node. Built by the harness from the actual partition and communication
/// plan of the workload being simulated.
#[derive(Clone, Debug, Default)]
pub struct PhaseLoad {
    /// Per node: total rating accumulations this phase.
    pub node_ratings: Vec<f64>,
    /// Per node: items updated this phase.
    pub node_items: Vec<f64>,
    /// Per node: list of `(destination node, items to send)`.
    pub node_sends: Vec<Vec<(u32, u32)>>,
    /// Per node: factor bytes touched this phase (own items + counterpart
    /// rows read), for the cache model.
    pub node_working_set: Vec<f64>,
    /// Payload bytes per shipped item (`(K + 1) × 8`).
    pub bytes_per_item: usize,
}

impl PhaseLoad {
    /// Number of nodes this phase is laid out for.
    pub fn nodes(&self) -> usize {
        self.node_ratings.len()
    }

    /// Sanity-check internal consistency.
    pub fn validate(&self) {
        let n = self.nodes();
        assert_eq!(self.node_items.len(), n, "node_items length mismatch");
        assert_eq!(self.node_sends.len(), n, "node_sends length mismatch");
        assert_eq!(
            self.node_working_set.len(),
            n,
            "node_working_set length mismatch"
        );
        for sends in &self.node_sends {
            for &(dst, _) in sends {
                assert!((dst as usize) < n, "send destination {dst} out of range");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_multiplier_is_monotone() {
        let m = ComputeModel::default_calibration();
        let small = m.cache_multiplier(1.0e6);
        let fits = m.cache_multiplier(m.cache_bytes);
        let spill2 = m.cache_multiplier(2.0 * m.cache_bytes);
        let spill100 = m.cache_multiplier(100.0 * m.cache_bytes);
        assert_eq!(small, 1.0);
        assert_eq!(fits, 1.0);
        assert!(spill2 > 1.0);
        assert!(spill100 > spill2);
        assert!(spill100 <= 1.0 + m.mem_penalty + 1e-12);
    }

    #[test]
    fn node_compute_scales_with_cores() {
        let m = ComputeModel::default_calibration();
        let t1 = m.node_compute_seconds(1e6, 1e4, 1e6, 1);
        let t16 = m.node_compute_seconds(1e6, 1e4, 1e6, 16);
        let expected = m.thread_speedup(16); // 1 + 15 × 0.85
        assert!((t1 / t16 - expected).abs() < 1e-9, "ratio {}", t1 / t16);
        assert_eq!(m.thread_speedup(1), 1.0);
    }

    #[test]
    fn rack_assignment() {
        let t = Topology::bluegene_q_like();
        assert_eq!(t.rack_of(0), 0);
        assert_eq!(t.rack_of(31), 0);
        assert_eq!(t.rack_of(32), 1);
        assert_eq!(t.rack_of(1023), 31);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn phase_validation_catches_bad_destination() {
        let phase = PhaseLoad {
            node_ratings: vec![1.0, 1.0],
            node_items: vec![1.0, 1.0],
            node_sends: vec![vec![(5, 1)], vec![]],
            node_working_set: vec![1.0, 1.0],
            bytes_per_item: 136,
        };
        phase.validate();
    }
}
