#![warn(missing_docs)]

//! Discrete-event performance simulation of distributed BPMF on a
//! BlueGene/Q-like machine (the substitution for the paper's Fermi system).
//!
//! The host container cannot run 1024 MPI nodes, so Figs. 4–5 are
//! extrapolated by simulating the *same schedule* the real driver in
//! `bpmf::distributed` executes: per-node weighted item sweeps, buffered
//! sends generated as computation progresses, and a per-source drain at the
//! end of each phase. Three hardware effects — all absent from the in-process
//! runtime but decisive on the real machine — are modeled explicitly:
//!
//! 1. **Cache capacity** ([`ComputeModel::cache_bytes`]): per-node factor
//!    working set shrinks as nodes are added; once it fits in cache the
//!    per-rating cost drops, producing the paper's *super-linear* region
//!    below one rack.
//! 2. **Two-level network** ([`Topology`]): every node owns a NIC with
//!    intra-rack bandwidth, every rack shares one uplink. Traffic that stays
//!    inside a 32-node rack scales with node count; cross-rack traffic
//!    serializes on the uplinks — the collapse past one rack in Fig. 4.
//! 3. **Per-message cost** ([`ComputeModel::seconds_per_message`]): the MPI
//!    software overhead that makes item-granular sends untenable (§IV-C) and
//!    that dominates at high node counts in Fig. 5.
//!
//! The simulator is calibrated with per-rating/per-item costs measured on
//! the host by the Fig. 2 harness; EXPERIMENTS.md records the fitted
//! constants next to each reproduced figure.

mod model;
mod sim;
pub mod workload;

pub use model::{ComputeModel, PhaseLoad, Topology};
pub use sim::{simulate_iteration, NodeAccounting, SimResult};
pub use workload::phase_loads;
