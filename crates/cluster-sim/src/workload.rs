//! Build simulation inputs from a real rating matrix.
//!
//! This is the bridge between the actual workload (a [`Csr`] rating matrix)
//! and the simulator: it runs the *same* partitioning and communication
//! planning the distributed driver uses (`bpmf::distributed`), then
//! aggregates the result per node — so the simulated schedule transfers
//! item-for-item to what the real code would do on that node count.

use bpmf_sparse::{BlockPartition, CommPlan, Csr, WorkModel};

use crate::model::PhaseLoad;

/// Per-iteration phase loads (movie phase, then user phase — Algorithm 1's
/// order) for running the workload `r` on `nodes` nodes with latent
/// dimension `k`.
pub fn phase_loads(r: &Csr, rt: &Csr, nodes: usize, k: usize) -> [PhaseLoad; 2] {
    assert!(nodes > 0, "need at least one node");
    let wm = WorkModel::default();
    let user_parts = BlockPartition::weighted(&wm.row_weights(r), nodes);
    let movie_parts = BlockPartition::weighted(&wm.row_weights(rt), nodes);
    let user_plan = CommPlan::build(r, &user_parts, &movie_parts);
    let movie_plan = CommPlan::build(rt, &movie_parts, &user_parts);

    let movie_phase = side_phase(rt, &movie_parts, &movie_plan, nodes, k);
    let user_phase = side_phase(r, &user_parts, &user_plan, nodes, k);
    [movie_phase, user_phase]
}

/// Aggregate one side's sweep per node.
fn side_phase(
    matrix: &Csr,
    parts: &BlockPartition,
    plan: &CommPlan,
    nodes: usize,
    k: usize,
) -> PhaseLoad {
    let mut node_ratings = vec![0.0f64; nodes];
    let mut node_items = vec![0.0f64; nodes];
    let mut node_sends: Vec<Vec<(u32, u32)>> = vec![Vec::new(); nodes];
    let mut node_working_set = vec![0.0f64; nodes];

    // Distinct counterpart rows touched per node, via a timestamp array
    // (O(nnz) total instead of a per-node hash set).
    let mut stamp = vec![u32::MAX; matrix.ncols()];
    for node in 0..nodes {
        let range = parts.range(node);
        let mut distinct_counterparts = 0usize;
        let mut nnz = 0usize;
        for i in range.clone() {
            let (cols, _) = matrix.row(i);
            nnz += cols.len();
            for &c in cols {
                if stamp[c as usize] != node as u32 {
                    stamp[c as usize] = node as u32;
                    distinct_counterparts += 1;
                }
            }
        }
        node_ratings[node] = nnz as f64;
        node_items[node] = range.len() as f64;
        for dest in 0..nodes {
            let items = plan.sends_between(node, dest);
            if items > 0 {
                node_sends[node].push((dest as u32, items as u32));
            }
        }
        // Working set: own factor rows + counterpart rows read + the rating
        // slice itself (u32 index + f64 value per entry).
        node_working_set[node] = ((range.len() + distinct_counterparts) * k * 8 + nnz * 12) as f64;
    }

    PhaseLoad {
        node_ratings,
        node_items,
        node_sends,
        node_working_set,
        bytes_per_item: (k + 1) * 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpmf_sparse::Coo;

    fn grid_matrix(m: usize, n: usize, stride: usize) -> Csr {
        let mut coo = Coo::new(m, n);
        for i in 0..m {
            for j in (0..n).step_by(stride) {
                coo.push(i, (i + j) % n, 1.0);
            }
        }
        Csr::from_coo_owned(coo)
    }

    #[test]
    fn totals_are_conserved_across_node_counts() {
        let r = grid_matrix(60, 40, 3);
        let rt = r.transpose();
        for nodes in [1usize, 2, 4, 8] {
            let [movie, user] = phase_loads(&r, &rt, nodes, 8);
            assert_eq!(
                user.node_items.iter().sum::<f64>() as usize,
                60,
                "{nodes} nodes"
            );
            assert_eq!(movie.node_items.iter().sum::<f64>() as usize, 40);
            assert_eq!(user.node_ratings.iter().sum::<f64>() as usize, r.nnz());
            assert_eq!(movie.node_ratings.iter().sum::<f64>() as usize, r.nnz());
            movie.validate();
            user.validate();
        }
    }

    #[test]
    fn single_node_has_no_sends() {
        let r = grid_matrix(30, 20, 2);
        let rt = r.transpose();
        let [movie, user] = phase_loads(&r, &rt, 1, 4);
        assert!(movie.node_sends[0].is_empty());
        assert!(user.node_sends[0].is_empty());
    }

    #[test]
    fn working_set_shrinks_with_more_nodes() {
        let r = grid_matrix(200, 150, 2);
        let rt = r.transpose();
        let ws = |nodes: usize| {
            let [_, user] = phase_loads(&r, &rt, nodes, 16);
            user.node_working_set.iter().cloned().fold(0.0f64, f64::max)
        };
        assert!(ws(8) < ws(1), "per-node working set must shrink");
    }

    #[test]
    fn cross_sends_appear_beyond_one_node() {
        let r = grid_matrix(64, 48, 1); // dense-ish: guaranteed cross traffic
        let rt = r.transpose();
        let [movie, user] = phase_loads(&r, &rt, 4, 8);
        let total_sends: u32 = user
            .node_sends
            .iter()
            .chain(movie.node_sends.iter())
            .flat_map(|s| s.iter().map(|&(_, c)| c))
            .sum();
        assert!(total_sends > 0);
    }
}
