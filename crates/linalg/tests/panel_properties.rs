//! Property-based agreement between the blocked panel kernels and the
//! naive per-rating reference.
//!
//! The blocked kernels are pure re-associations of the per-rating loops, so
//! they must agree to near machine precision (1e-12) for every shape —
//! including the degenerate `d = 0` and `d = 1` panels, single-column
//! matrices, and row counts that are not a multiple of any internal block
//! or unroll factor.

use bpmf_linalg::{
    gemv_t_acc, gemv_t_acc_scalar, syrk_ld_lower, syrk_ld_lower_scalar, vecops, Mat, PANEL_BLOCK,
};
use proptest::prelude::*;

/// A random `(k, d, panel, weights)` tuple. `d` deliberately straddles the
/// cache block: 0, 1, tiny, just-below/above `PANEL_BLOCK`, and several
/// blocks plus an odd remainder.
fn panel_case() -> impl Strategy<Value = (usize, Vec<f64>, Vec<f64>)> {
    (1usize..=17, 0usize..=(3 * PANEL_BLOCK + 5)).prop_flat_map(|(k, d)| {
        (
            Just(k),
            proptest::collection::vec(-2.0f64..2.0, k * d),
            proptest::collection::vec(-3.0f64..3.0, d),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn blocked_syrk_matches_per_rating((k, panel, _w) in panel_case()) {
        let mut blocked = Mat::from_fn(k, k, |i, j| ((i * 31 + j) as f64).sin());
        let mut naive = blocked.clone();
        syrk_ld_lower(&mut blocked, 1.3, &panel, k);
        for row in panel.chunks_exact(k) {
            naive.syrk_lower(1.3, row);
        }
        prop_assert!(
            blocked.max_abs_diff(&naive) < 1e-12,
            "k={k} d={} diff={}",
            panel.len() / k,
            blocked.max_abs_diff(&naive)
        );
    }

    #[test]
    fn fused_gemv_t_matches_per_rating((k, panel, w) in panel_case()) {
        let mut fused: Vec<f64> = (0..k).map(|i| i as f64 * 0.25 - 1.0).collect();
        let mut naive = fused.clone();
        gemv_t_acc(&mut fused, &panel, &w);
        for (row, &wl) in panel.chunks_exact(k).zip(&w) {
            vecops::axpy(wl, row, &mut naive);
        }
        for (a, b) in fused.iter().zip(&naive) {
            prop_assert!((a - b).abs() < 1e-12, "k={k}: {a} vs {b}");
        }
    }

    #[test]
    fn dispatched_syrk_matches_forced_scalar((k, panel, _w) in panel_case()) {
        // The runtime-dispatched kernel (AVX2 when available, or whatever
        // BPMF_NO_SIMD leaves live) against the pinned scalar arm: both are
        // re-associations of the same sum, so 1e-12 agreement must hold for
        // every shape including the ragged triangle edges.
        let mut dispatched = Mat::from_fn(k, k, |i, j| ((i * 17 + j) as f64).cos());
        let mut scalar = dispatched.clone();
        syrk_ld_lower(&mut dispatched, 0.7, &panel, k);
        syrk_ld_lower_scalar(&mut scalar, 0.7, &panel, k);
        prop_assert!(
            dispatched.max_abs_diff(&scalar) < 1e-12,
            "k={k} d={} diff={}",
            panel.len() / k,
            dispatched.max_abs_diff(&scalar)
        );
    }

    #[test]
    fn dispatched_gemv_t_matches_forced_scalar((k, panel, w) in panel_case()) {
        let mut dispatched: Vec<f64> = (0..k).map(|i| (i as f64 * 0.4).sin()).collect();
        let mut scalar = dispatched.clone();
        gemv_t_acc(&mut dispatched, &panel, &w);
        gemv_t_acc_scalar(&mut scalar, &panel, &w);
        for (a, b) in dispatched.iter().zip(&scalar) {
            prop_assert!((a - b).abs() < 1e-12, "k={k}: {a} vs {b}");
        }
    }

    #[test]
    fn unrolled_axpy_matches_scalar((k, _p, w) in panel_case()) {
        // The 4-chain axpy must be exact (same operations, same order per
        // element) for any length, including lengths < 4.
        let x: Vec<f64> = (0..w.len()).map(|i| (i as f64 * 0.7).cos()).collect();
        let mut fast: Vec<f64> = (0..w.len()).map(|i| i as f64).collect();
        let mut slow = fast.clone();
        vecops::axpy(1.75, &x, &mut fast);
        for (yi, xi) in slow.iter_mut().zip(&x) {
            *yi += 1.75 * xi;
        }
        prop_assert_eq!(fast, slow);
        let _ = k;
    }

    #[test]
    fn blocked_matvec_matches_per_row((k, panel, w) in panel_case()) {
        // `matvec_into`'s eight-row blocking against the one-dot-per-row
        // reference, over non-multiple-of-8 row counts.
        let d = w.len();
        let m = Mat::from_row_major(d, k, panel);
        let x: Vec<f64> = (0..k).map(|i| (i as f64 * 1.3).sin()).collect();
        let mut blocked = vec![0.0; d];
        m.matvec_into(&x, &mut blocked);
        for (i, yi) in blocked.iter().enumerate() {
            let naive = vecops::dot(m.row(i), &x);
            prop_assert!((yi - naive).abs() < 1e-12, "row {i}: {yi} vs {naive}");
        }
    }

    #[test]
    fn transposed_matvec_matches_per_row((k, panel, w) in panel_case()) {
        // The lane-parallel serving scan (`transposed` + `matvec_t_into`)
        // against the one-dot-per-row reference, over non-multiple-of-4
        // inner dimensions (k) and arbitrary row counts.
        let d = w.len();
        let m = Mat::from_row_major(d, k, panel);
        let x: Vec<f64> = (0..k).map(|i| (i as f64 * 0.9).cos()).collect();
        let mut scanned = vec![0.0; d];
        m.transposed().matvec_t_into(&x, &mut scanned);
        for (i, yi) in scanned.iter().enumerate() {
            let naive = vecops::dot(m.row(i), &x);
            prop_assert!((yi - naive).abs() < 1e-12, "row {i}: {yi} vs {naive}");
        }
    }

    #[test]
    fn gathered_matvec_matches_per_row((k, panel, w) in panel_case()) {
        // `gather_matvec_into` over an arbitrary (duplicating, reversed)
        // index set against per-row dots, including remainder lanes.
        let d = w.len();
        let m = Mat::from_row_major(d, k, panel);
        let x: Vec<f64> = (0..k).map(|i| (i as f64 * 1.1).sin()).collect();
        let idx: Vec<u32> = (0..d as u32).rev().chain(0..d.min(3) as u32).collect();
        let mut gathered = vec![0.0; idx.len()];
        m.gather_matvec_into(&idx, &x, &mut gathered);
        for (slot, (&i, yi)) in idx.iter().zip(&gathered).enumerate() {
            let naive = vecops::dot(m.row(i as usize), &x);
            prop_assert!((yi - naive).abs() < 1e-12, "slot {slot} row {i}: {yi} vs {naive}");
        }
    }
}
