//! Property-based agreement between the blocked GEMM subsystem and the
//! naive triple loop.
//!
//! Every arm (runtime-dispatched AVX-512/AVX2, forced scalar, pre-packed
//! `B`) computes the same re-associated sum, so all must agree with the
//! naive reference to 1e-12 for every shape — including `m`/`n`/`k` of 0
//! and 1, row counts that are not a multiple of any register-tile height,
//! column counts straddling the 16/8/4-wide vector tails, and `k` values
//! crossing the `GEMM_KC` cache-block boundary (where the kernel starts
//! reloading partial sums from `C`).

use bpmf_linalg::{gemm_into, gemm_into_scalar, gemm_packed_into, PackedB};
use proptest::prelude::*;

/// Random `(m, n, k, a, b)` with shapes biased toward tile remainders.
fn gemm_case() -> impl Strategy<Value = (usize, usize, usize, Vec<f64>, Vec<f64>)> {
    (0usize..=13, 0usize..=40, 0usize..=9).prop_flat_map(|(m, n, k)| {
        (
            Just(m),
            Just(n),
            Just(k),
            proptest::collection::vec(-2.0f64..2.0, m * k),
            proptest::collection::vec(-2.0f64..2.0, k * n),
        )
    })
}

fn naive(m: usize, n: usize, k: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut c = vec![0.0; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0;
            for l in 0..k {
                s += a[i * k + l] * b[l * n + j];
            }
            c[i * n + j] = s;
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn all_arms_match_the_naive_triple_loop((m, n, k, a, b) in gemm_case()) {
        let want = naive(m, n, k, &a, &b);
        let mut dispatched = vec![f64::NAN; m * n];
        gemm_into(m, n, k, &a, &b, &mut dispatched);
        let mut scalar = vec![f64::NAN; m * n];
        gemm_into_scalar(m, n, k, &a, &b, &mut scalar);
        let packed = PackedB::pack(k, n, &b);
        let mut via_packed = vec![f64::NAN; m * n];
        gemm_packed_into(m, &a, &packed, &mut via_packed);
        for (idx, &w) in want.iter().enumerate() {
            prop_assert!(
                (dispatched[idx] - w).abs() < 1e-12,
                "dispatched m={m} n={n} k={k} idx={idx}: {} vs {w}", dispatched[idx]
            );
            prop_assert!(
                (scalar[idx] - w).abs() < 1e-12,
                "scalar m={m} n={n} k={k} idx={idx}: {} vs {w}", scalar[idx]
            );
            prop_assert!(
                (via_packed[idx] - w).abs() < 1e-12,
                "packed m={m} n={n} k={k} idx={idx}: {} vs {w}", via_packed[idx]
            );
        }
    }
}

/// `k` crossing the `GEMM_KC = 256` boundary exercises the reload-from-C
/// accumulation path in every arm; too slow for many proptest cases, so
/// one deterministic shape pins it.
#[test]
fn kc_boundary_reload_path_matches_naive() {
    let (m, n, k) = (7, 21, 300);
    let a: Vec<f64> = (0..m * k).map(|i| ((i as f64) * 0.37).sin()).collect();
    let b: Vec<f64> = (0..k * n).map(|i| ((i as f64) * 0.23).cos()).collect();
    let want = naive(m, n, k, &a, &b);
    let mut dispatched = vec![f64::NAN; m * n];
    gemm_into(m, n, k, &a, &b, &mut dispatched);
    let mut scalar = vec![f64::NAN; m * n];
    gemm_into_scalar(m, n, k, &a, &b, &mut scalar);
    let packed = PackedB::pack(k, n, &b);
    let mut via_packed = vec![f64::NAN; m * n];
    gemm_packed_into(m, &a, &packed, &mut via_packed);
    for (idx, &w) in want.iter().enumerate() {
        // k = 300 sums of O(1) terms: 1e-12 absolute still holds easily.
        assert!((dispatched[idx] - w).abs() < 1e-12, "dispatched idx={idx}");
        assert!((scalar[idx] - w).abs() < 1e-12, "scalar idx={idx}");
        assert!((via_packed[idx] - w).abs() < 1e-12, "packed idx={idx}");
    }
}
