//! Property-based tests for the dense kernels.
//!
//! Strategy: random well-conditioned SPD matrices are built as `B Bᵀ + c·I`;
//! every invariant the sampler relies on (factor/solve consistency, rank-one
//! update equivalence, serial/parallel agreement) must hold over the whole
//! generated family, not just hand-picked examples.

use bpmf_linalg::{
    chol_downdate, chol_update, cholesky_in_place, cholesky_in_place_parallel, vecops, Cholesky,
    Mat,
};
use proptest::prelude::*;

fn spd_matrix(max_n: usize) -> impl Strategy<Value = Mat> {
    (
        1..=max_n,
        proptest::collection::vec(-1.0f64..1.0, max_n * max_n),
    )
        .prop_map(move |(n, raw)| {
            let b = Mat::from_fn(n, n, |i, j| raw[i * max_n + j]);
            let mut a = b.matmul_transb(&b);
            for i in 0..n {
                a[(i, i)] += n as f64 + 1.0;
            }
            a
        })
}

fn vector(max_n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-2.0f64..2.0, max_n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cholesky_reconstructs_input(a in spd_matrix(12)) {
        let chol = Cholesky::factor(&a).unwrap();
        prop_assert!(chol.reconstruct().max_abs_diff(&a) < 1e-8);
    }

    #[test]
    fn solve_then_multiply_roundtrips((a, x) in spd_matrix(12).prop_flat_map(|a| {
        let n = a.rows();
        (Just(a), proptest::collection::vec(-3.0f64..3.0, n))
    })) {
        let chol = Cholesky::factor(&a).unwrap();
        let mut b = a.matvec(&x);
        chol.solve_in_place(&mut b);
        for (got, want) in b.iter().zip(&x) {
            prop_assert!((got - want).abs() < 1e-7);
        }
    }

    #[test]
    fn rank_one_update_equals_refactor((a, x) in spd_matrix(10).prop_flat_map(|a| {
        let n = a.rows();
        (Just(a), proptest::collection::vec(-1.5f64..1.5, n))
    })) {
        let mut updated = a.clone();
        updated.syrk_lower(1.0, &x);
        let direct = Cholesky::factor(&updated).unwrap();

        let mut inc = Cholesky::factor(&a).unwrap();
        let mut scratch = x.clone();
        chol_update(inc.l_mut(), &mut scratch);
        prop_assert!(inc.l().max_abs_diff(direct.l()) < 1e-7);
    }

    #[test]
    fn update_then_downdate_is_identity((a, x) in spd_matrix(10).prop_flat_map(|a| {
        let n = a.rows();
        (Just(a), proptest::collection::vec(-1.5f64..1.5, n))
    })) {
        let original = Cholesky::factor(&a).unwrap();
        let mut chol = original.clone();
        let mut s = x.clone();
        chol_update(chol.l_mut(), &mut s);
        let mut s = x.clone();
        chol_downdate(chol.l_mut(), &mut s).unwrap();
        prop_assert!(chol.l().max_abs_diff(original.l()) < 1e-7);
    }

    #[test]
    fn parallel_cholesky_equals_serial(a in spd_matrix(40), threads in 1usize..4, block in 8usize..24) {
        let mut serial = a.clone();
        cholesky_in_place(&mut serial).unwrap();
        let mut par = a.clone();
        cholesky_in_place_parallel(&mut par, threads, block).unwrap();
        prop_assert!(par.max_abs_diff(&serial) < 1e-8);
    }

    #[test]
    fn dot_is_symmetric_and_linear(x in vector(16), y in vector(16), a in -3.0f64..3.0) {
        let d1 = vecops::dot(&x, &y);
        let d2 = vecops::dot(&y, &x);
        prop_assert!((d1 - d2).abs() < 1e-10);

        let scaled: Vec<f64> = x.iter().map(|v| a * v).collect();
        let d3 = vecops::dot(&scaled, &y);
        prop_assert!((d3 - a * d1).abs() < 1e-8 * (1.0 + d1.abs()).max(1.0));
    }

    #[test]
    fn log_det_is_additive_under_scaling(a in spd_matrix(8), s in 0.5f64..4.0) {
        let n = a.rows();
        let mut scaled = a.clone();
        scaled.scale(s);
        let ld_a = Cholesky::factor(&a).unwrap().log_det();
        let ld_s = Cholesky::factor(&scaled).unwrap().log_det();
        // |sA| = s^n |A|
        prop_assert!((ld_s - (ld_a + n as f64 * s.ln())).abs() < 1e-8);
    }
}
