//! Concurrent disjoint-row writer for factor matrices.

use crate::Mat;

/// Raw-pointer view of a factor matrix that lets multiple workers write
/// *disjoint* rows concurrently.
///
/// The borrow checker cannot express "each worker writes only the rows of
/// the items it executes", which is the access pattern of every factor
/// sweep in this workspace (Gibbs and ALS both execute every item exactly
/// once per sweep, and item `i` writes only row `i`). This wrapper makes
/// the pattern explicit and keeps the `unsafe` confined to one audited
/// place.
pub struct MatWriter {
    ptr: *mut f64,
    rows: usize,
    cols: usize,
}

// SAFETY: `MatWriter` is only used inside a sweep whose runner guarantees
// each row index is handed to exactly one worker invocation (ItemRunner's
// exactly-once contract), so no two threads ever alias a row.
unsafe impl Send for MatWriter {}
unsafe impl Sync for MatWriter {}

impl MatWriter {
    /// Capture the matrix; the `&mut` borrow pins exclusive access for the
    /// writer's lifetime.
    pub fn new(m: &mut Mat) -> Self {
        let rows = m.rows();
        let cols = m.cols();
        MatWriter {
            ptr: m.as_mut_slice().as_mut_ptr(),
            rows,
            cols,
        }
    }

    /// Mutable view of row `i`.
    ///
    /// # Safety
    ///
    /// At most one live reference per row: the caller must guarantee no two
    /// concurrent calls receive the same `i`, and that no other reference to
    /// the underlying matrix is alive.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn row_mut(&self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        std::slice::from_raw_parts_mut(self.ptr.add(i * self.cols), self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_rows_can_be_written_in_parallel() {
        let rows = 64;
        let cols = 8;
        let mut m = Mat::zeros(rows, cols);
        let writer = MatWriter::new(&mut m);
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let writer = &writer;
                scope.spawn(move || {
                    for i in (t..rows).step_by(4) {
                        // SAFETY: strided ranges are disjoint across threads.
                        let row = unsafe { writer.row_mut(i) };
                        for (c, v) in row.iter_mut().enumerate() {
                            *v = (i * cols + c) as f64;
                        }
                    }
                });
            }
        });
        for i in 0..rows {
            for c in 0..cols {
                assert_eq!(m[(i, c)], (i * cols + c) as f64);
            }
        }
    }
}
