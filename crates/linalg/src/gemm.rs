//! Blocked, register-tiled GEMM: the micro-batch serving engine.
//!
//! `gemm_into` computes `C = A · B` for row-major operands — `A` is
//! `m × k` (a gathered block of user factor rows), `B` is `k × n` (the
//! transposed item factors, cached once per model), `C` is `m × n` (one
//! score row per user). This is the kernel behind
//! `Recommender::score_block`: a block of users pays **one** streaming
//! pass over the catalogue instead of `m` per-user scans, which is what
//! the per-user `matvec_t_into` path degrades into once the factor panel
//! falls out of L2.
//!
//! # Kernel shape and why
//!
//! The micro-kernel holds an `MR × NR = 6 × 8` tile of `C` in registers:
//! twelve 4-lane `f64` accumulators, fed per `k`-step by two loads of `B`
//! (one 8-column row segment) and six broadcasts of `A`. On AVX2 that is
//! 12 accumulator `ymm`s + 2 loaded `ymm`s + 1 broadcast register — 15 of
//! the 16 architectural registers — and twelve independent FMA chains,
//! comfortably covering the 4–5 cycle FMA latency on both issue ports
//! (eight chains is the bare minimum there; twelve leaves slack for cache
//! misses). Per `k`-step the kernel issues 8 load µops against 12 FMAs,
//! so it is FMA-bound, not load-bound. Each `B` row segment is reused
//! across the 6 `A` rows, so `B` — the large operand, `n` is the
//! catalogue — is streamed `m / 6` times instead of `m` times.
//!
//! Two cache-blocking levels wrap the register tile:
//!
//! * the `k` loop is blocked at [`GEMM_KC`] (256 doubles = one 2 KiB
//!   `A`-row slab) so a register tile's partial sums spill to `C` at most
//!   `k / KC` times; for BPMF's `k ≤ 128` the whole reduction happens in
//!   registers in a single pass;
//! * the column loop is blocked at [`GEMM_NC`], so the `KC × NC` panel of
//!   `B` (≤ 512 KiB) stays cache-resident while **every** row strip of
//!   `A` passes over it — for catalogues whose `K × N` factor panel
//!   exceeds L2, `B` is read from memory once per call instead of once
//!   per 6 users.
//!
//! `B` slabs are **packed** into a contiguous blocked layout (classic
//! BLIS discipline) so the micro-kernel's loads walk one linear buffer
//! instead of striding `8·n` bytes per `k`-step; serving callers pack the
//! item factors once ([`PackedB`], `OnceLock`-cached per model) and every
//! call after that is pure micro-kernel time via [`gemm_packed_into`].
//!
//! Output **column panels** (aligned to [`GEMM_NC`], so a chunk is at
//! least one 2 KiB column block and packed slabs never straddle chunks)
//! are fanned out over the persistent
//! [`crate::kernel_pool`] when the problem is big enough
//! ([`GEMM_PAR_FLOPS`]); each worker owns a disjoint column range of `C`,
//! so no synchronization happens inside the kernel.
//!
//! Dispatch goes through the shared [`crate::simd::simd_level`] layer:
//! on AVX-512F hardware an 8 × 16 strip of 8-lane accumulators takes over
//! (32 architectural registers: double the lanes, half the front-end µops
//! per element, `k` unrolled ×2), else the AVX2+FMA 6 × 8 arm, else the
//! portable scalar arm (`BPMF_NO_SIMD=1` forces scalar everywhere;
//! non-x86_64 is always scalar).
//!
//! # Re-measuring on new hardware
//!
//! The tile constants were validated on the `perf_snapshot` GEMM section:
//!
//! ```text
//! cargo run --release -p bpmf-bench --bin perf_snapshot
//! ```
//!
//! reports micro-batch throughput across block sizes 1/8/64/256 and the
//! SIMD-vs-scalar kernel ratio (`BENCH_serve.json`). On the 1-core
//! AVX-512 reference host this measures ~2.1–2.3× for the 64-user block
//! over the looped per-user scan at 4096×4096, `k = 32`. If a new host
//! shows less: check that the AVX-512 arm is live (`simd_enabled` in the
//! snapshot), and shrink [`GEMM_NC`] if the `B` panel starts missing L2
//! (it is also the parallel chunk granularity — raise it on machines
//! with more workers than the catalogue has column blocks). Widening
//! `GEMM_MR_512` past 8
//! measured *slower* here (front-end pressure beats the extra chains) —
//! re-measure before touching it.

use crate::pool::kernel_pool;
use crate::simd;

/// Register-tile rows: `A` rows (users) accumulated per micro-kernel call.
pub const GEMM_MR: usize = 6;

/// Register-tile columns: two 4-lane vectors of `C` per accumulator row.
pub const GEMM_NR: usize = 8;

/// `k`-dimension cache block (doubles). 256 keeps an `MR × KC` slab of `A`
/// (12 KiB) plus the streamed `B` rows L1-resident between `C` spills.
pub const GEMM_KC: usize = 256;

/// Column cache block (doubles): the `KC × NC` panel of `B` (≤ 512 KiB)
/// stays L2-resident across every row strip of `A`.
pub const GEMM_NC: usize = 256;

/// Flop threshold (`2·m·n·k`) below which the pool is not worth waking.
pub const GEMM_PAR_FLOPS: usize = 1 << 21;

/// `B` in the micro-kernel's blocked layout, packed once and reused
/// across GEMM calls.
///
/// Layout: for each [`GEMM_NC`] column block (width `w`), for each
/// [`GEMM_KC`] k-block, the `kc × w` slab is stored contiguously
/// row-major. The micro-kernel's `B` loads then walk one linear buffer —
/// L1/TLB-friendly — instead of striding `8·n` bytes between `k`-steps,
/// and serving skips the per-call packing pass entirely: a model packs
/// its (transposed) item factors once (`OnceLock`) and every
/// `score_block` after that is pure micro-kernel time.
#[derive(Clone, Debug)]
pub struct PackedB {
    data: Vec<f64>,
    k: usize,
    n: usize,
}

impl PackedB {
    /// Pack row-major `b` (`k × n`).
    pub fn pack(k: usize, n: usize, b: &[f64]) -> PackedB {
        assert_eq!(b.len(), k * n, "pack shape mismatch");
        let mut data = Vec::with_capacity(k * n);
        for jb in (0..n).step_by(GEMM_NC) {
            let jb1 = (jb + GEMM_NC).min(n);
            for kb in KBlocks::new(k) {
                for l in kb.k0..kb.k0 + kb.kc {
                    data.extend_from_slice(&b[l * n + jb..l * n + jb1]);
                }
            }
        }
        PackedB { data, k, n }
    }

    /// Pack `vᵀ` directly from a row-major `n × k` factor matrix `v` —
    /// one strided pass, no intermediate `k × n` transposed copy.
    pub fn pack_transposed_from(v: &crate::mat::Mat) -> PackedB {
        let (n, k) = (v.rows(), v.cols());
        let vs = v.as_slice();
        let mut data = Vec::with_capacity(k * n);
        for jb in (0..n).step_by(GEMM_NC) {
            let jb1 = (jb + GEMM_NC).min(n);
            for kb in KBlocks::new(k) {
                for l in kb.k0..kb.k0 + kb.kc {
                    data.extend((jb..jb1).map(|j| vs[j * k + l]));
                }
            }
        }
        PackedB { data, k, n }
    }

    /// Pack `vᵀ` for the contiguous column range `[lo, hi)` of a
    /// row-major `n × k` factor matrix — the sharded-serving path. `lo`
    /// must sit on a [`GEMM_NC`] block boundary; the resulting buffer is
    /// then exactly the `[k·lo, k·hi)` slice of the full
    /// [`PackedB::pack_transposed_from`] buffer, so every column block is
    /// tiled into the same panels with the same ragged edges and the
    /// micro-kernel arithmetic per column is **bit-identical** to the
    /// full-catalogue pack — the property the sharded serving tier's
    /// byte-identity gate rests on.
    pub fn pack_transposed_range_from(v: &crate::mat::Mat, lo: usize, hi: usize) -> PackedB {
        let (n, k) = (v.rows(), v.cols());
        assert!(lo <= hi && hi <= n, "pack range [{lo}, {hi}) out of 0..{n}");
        assert_eq!(lo % GEMM_NC, 0, "range start must be GEMM_NC-aligned");
        let vs = v.as_slice();
        let w = hi - lo;
        let mut data = Vec::with_capacity(k * w);
        for jb in (lo..hi).step_by(GEMM_NC) {
            let jb1 = (jb + GEMM_NC).min(hi);
            for kb in KBlocks::new(k) {
                for l in kb.k0..kb.k0 + kb.kc {
                    data.extend((jb..jb1).map(|j| vs[j * k + l]));
                }
            }
        }
        PackedB { data, k, n: w }
    }

    /// Inner (reduction) dimension `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Column count `n` (the catalogue).
    pub fn n(&self) -> usize {
        self.n
    }

    /// The packed `kc × w` slab of column block `[jb, jb + w)` × k-block
    /// starting at `k0`. `jb` must be a multiple of [`GEMM_NC`].
    fn slab(&self, jb: usize, w: usize, k0: usize, kc: usize) -> &[f64] {
        let off = self.k * jb + k0 * w;
        &self.data[off..off + kc * w]
    }
}

/// Where a panel's `B` slabs come from: packed fresh per call, or served
/// from a [`PackedB`] cache.
#[derive(Clone, Copy)]
enum BSource<'a> {
    Unpacked(&'a [f64]),
    Packed(&'a PackedB),
}

/// `c = a · b` for row-major `a` (`m × k`), `b` (`k × n`), `c` (`m × n`).
///
/// Overwrites `c` entirely (no accumulation into prior contents; `k = 0`
/// zeroes it). Runtime-dispatches to the AVX2+FMA micro-kernel when
/// available (see [`crate::simd::simd_enabled`]) and fans output column
/// panels out over the persistent kernel pool when `2·m·n·k` crosses
/// [`GEMM_PAR_FLOPS`]. `b` is packed into the blocked layout on the fly;
/// callers that reuse the same `b` across calls should pack once with
/// [`PackedB`] and call [`gemm_packed_into`] instead.
///
/// Panics if any slice length disagrees with the shapes.
pub fn gemm_into(m: usize, n: usize, k: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(b.len(), k * n, "gemm b shape mismatch");
    gemm_dispatch(m, n, k, a, BSource::Unpacked(b), c);
}

/// [`gemm_into`] against a pre-packed `B` — the serving fast path: no
/// per-call packing, and the micro-kernel streams the cache-blocked
/// layout directly.
pub fn gemm_packed_into(m: usize, a: &[f64], b: &PackedB, c: &mut [f64]) {
    gemm_dispatch(m, b.n, b.k, a, BSource::Packed(b), c);
}

/// The `score_block` core shared by the serving models: gather `users`
/// rows of `user_mat` (`M × K`) into a contiguous `B × K` block — the
/// GEMM's `A` operand, `B·K` doubles, tiny next to the `B·N` output —
/// and multiply against the packed item factors. `out[i·N .. (i+1)·N]`
/// receives user `users[i]`'s raw catalogue dot products; model-specific
/// epilogues (global mean, biases, clamping) stay with the caller.
pub fn gemm_gathered_rows_packed(
    user_mat: &crate::mat::Mat,
    users: &[u32],
    packed: &PackedB,
    out: &mut [f64],
) {
    let k = user_mat.cols();
    assert_eq!(k, packed.k(), "gathered-rows factor dimension mismatch");
    let mut block = vec![0.0; users.len() * k];
    for (i, &u) in users.iter().enumerate() {
        block[i * k..(i + 1) * k].copy_from_slice(user_mat.row(u as usize));
    }
    gemm_packed_into(users.len(), &block, packed, out);
}

/// Shared shape validation + kernel-pool fan-out over column blocks.
fn gemm_dispatch(m: usize, n: usize, k: usize, a: &[f64], src: BSource<'_>, c: &mut [f64]) {
    assert_eq!(a.len(), m * k, "gemm a shape mismatch");
    assert_eq!(c.len(), m * n, "gemm c shape mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0.0);
        return;
    }
    let pool = kernel_pool();
    // Chunk boundaries stay aligned to GEMM_NC column blocks so packed
    // slabs never straddle two chunks.
    let blocks = n.div_ceil(GEMM_NC);
    let nchunks = if 2 * m * n * k >= GEMM_PAR_FLOPS {
        (pool.workers() + 1).min(blocks)
    } else {
        1
    };
    if nchunks <= 1 {
        // SAFETY: `c` is exclusively borrowed and sized m·n (asserted).
        unsafe { gemm_panel(m, n, k, a, src, c.as_mut_ptr(), 0, n, false) };
        return;
    }
    let per = blocks.div_ceil(nchunks) * GEMM_NC;
    let out = SyncPtr(c.as_mut_ptr());
    let out = &out;
    pool.run(nchunks, &|chunk| {
        let j0 = chunk * per;
        let j1 = (j0 + per).min(n);
        if j0 >= j1 {
            return;
        }
        // SAFETY: chunk indices are delivered exactly once and each chunk
        // writes only columns [j0, j1) of every row — disjoint cells of
        // `c` — while `a`/`b` are only read. All chunks work through the
        // shared raw pointer (no one materializes a `&mut` over another
        // chunk's cells, so the exclusive references the kernels create
        // never alias), and `run` returns before `c`'s borrow ends.
        unsafe { gemm_panel(m, n, k, a, src, out.0, j0, j1, false) };
    });
}

/// [`gemm_into`] pinned to the portable scalar arm, serial — the reference
/// implementation the property tests and the `perf_snapshot` SIMD-ratio
/// section compare against.
pub fn gemm_into_scalar(m: usize, n: usize, k: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), m * k, "gemm a shape mismatch");
    assert_eq!(b.len(), k * n, "gemm b shape mismatch");
    assert_eq!(c.len(), m * n, "gemm c shape mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0.0);
        return;
    }
    // SAFETY: `c` is exclusively borrowed and sized m·n (asserted).
    unsafe { gemm_panel(m, n, k, a, BSource::Unpacked(b), c.as_mut_ptr(), 0, n, true) };
}

/// Shares a raw output pointer with pool chunks writing disjoint columns.
struct SyncPtr(*mut f64);

// SAFETY: every chunk writes a disjoint column range (see `gemm_into`).
unsafe impl Sync for SyncPtr {}

/// One k-block: `[k0, k0 + kc)`, and whether it is the first (overwriting
/// `c`) or a later one (accumulating into it).
#[derive(Clone, Copy)]
struct KBlock {
    k0: usize,
    kc: usize,
    first: bool,
}

/// Iterator over [`GEMM_KC`]-sized k-blocks.
struct KBlocks {
    k: usize,
    next: usize,
}

impl KBlocks {
    fn new(k: usize) -> Self {
        KBlocks { k, next: 0 }
    }
}

impl Iterator for KBlocks {
    type Item = KBlock;

    fn next(&mut self) -> Option<KBlock> {
        if self.next >= self.k {
            return None;
        }
        let k0 = self.next;
        let kc = GEMM_KC.min(self.k - k0);
        self.next += kc;
        Some(KBlock {
            k0,
            kc,
            first: k0 == 0,
        })
    }
}

/// Compute columns `[j0, j1)` of `c` — all column blocks and k-blocks —
/// dispatching the arm. The [`GEMM_NC`] column loop is outermost so one
/// `KC × NC` slab of `b` (packed fresh here, or pre-packed in a
/// [`PackedB`]) stays cache-resident across every row strip, and the
/// micro-kernel's `B` loads walk one linear ≤ 512 KiB buffer (classic
/// BLIS discipline) instead of striding `8·n` bytes between `k`-steps.
/// `j0` must be a multiple of [`GEMM_NC`] when `src` is packed.
///
/// # Safety
///
/// `cp` must be valid for reads and writes of `m · n` doubles, and no
/// other reference or concurrent writer may touch columns `[j0, j1)` of
/// any row while this runs (concurrent `gemm_panel` calls on the same
/// buffer are fine when their column ranges are disjoint — the kernels
/// only ever form references over their own column range).
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_panel(
    m: usize,
    n: usize,
    k: usize,
    a: &[f64],
    src: BSource<'_>,
    cp: *mut f64,
    j0: usize,
    j1: usize,
    force_scalar: bool,
) {
    let mut scratch: Vec<f64> = Vec::new();
    for jb in (j0..j1).step_by(GEMM_NC) {
        let jb1 = (jb + GEMM_NC).min(j1);
        let w = jb1 - jb;
        for kb in KBlocks::new(k) {
            let slab: &[f64] = match src {
                BSource::Packed(pb) => pb.slab(jb, w, kb.k0, kb.kc),
                BSource::Unpacked(b) => {
                    scratch.clear();
                    scratch.reserve(kb.kc * w);
                    for l in kb.k0..kb.k0 + kb.kc {
                        scratch.extend_from_slice(&b[l * n + jb..l * n + jb1]);
                    }
                    &scratch
                }
            };
            let level = if force_scalar {
                simd::SimdLevel::Scalar
            } else {
                simd::simd_level()
            };
            match level {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: `simd_level` guarantees the detected features.
                simd::SimdLevel::Avx512 => unsafe { block_avx512(m, n, a, slab, cp, jb, jb1, kb) },
                #[cfg(target_arch = "x86_64")]
                // SAFETY: as above.
                simd::SimdLevel::Avx2 => unsafe { block_avx2(m, n, a, slab, cp, jb, jb1, kb) },
                _ => unsafe { block_scalar(m, n, a, slab, cp, jb, jb1, kb) },
            }
        }
    }
}

/// Scalar micro-kernel arm: 6×8 accumulator tiles, broadcast-and-multiply
/// down the packed k-block slab. The layout mirrors the AVX2 arm so both
/// re-associate identically per tile (they still differ from a naive dot
/// loop).
///
/// # Safety
///
/// As [`gemm_panel`]: `cp` valid for `m · n` doubles, columns `[j0, j1)`
/// unaliased while this runs.
#[allow(clippy::too_many_arguments)]
unsafe fn block_scalar(
    m: usize,
    n: usize,
    a: &[f64],
    slab: &[f64],
    cp: *mut f64,
    j0: usize,
    j1: usize,
    kb: KBlock,
) {
    let k = a.len() / m;
    let w = j1 - j0;
    for i0 in (0..m).step_by(GEMM_MR) {
        let mr = GEMM_MR.min(m - i0);
        let mut j = j0;
        while j < j1 {
            let nr = GEMM_NR.min(j1 - j);
            let mut acc = [[0.0f64; GEMM_NR]; GEMM_MR];
            if !kb.first {
                for (r, row) in acc.iter_mut().enumerate().take(mr) {
                    for (s, slot) in row.iter_mut().enumerate().take(nr) {
                        *slot = *cp.add((i0 + r) * n + j + s);
                    }
                }
            }
            for l in 0..kb.kc {
                let brow = &slab[l * w + (j - j0)..l * w + (j - j0) + nr];
                for (r, row) in acc.iter_mut().enumerate().take(mr) {
                    let al = a[(i0 + r) * k + kb.k0 + l];
                    for (s, &bv) in row.iter_mut().zip(brow) {
                        *s += al * bv;
                    }
                }
            }
            for (r, row) in acc.iter().enumerate().take(mr) {
                for (s, &slot) in row.iter().enumerate().take(nr) {
                    *cp.add((i0 + r) * n + j + s) = slot;
                }
            }
            j += nr;
        }
    }
}

/// AVX2+FMA arm of one `(column block × k-block)` slab: full [`GEMM_MR`]
/// row strips through the statically-unrolled micro-kernel, the ragged
/// last strip through narrower instantiations. `slab` is the packed
/// `kb.kc × (j1 − j0)` copy of `b`'s block (row `l − kb.k0` holds `b`'s
/// columns `[j0, j1)` of row `l`, contiguously).
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX2 and FMA, that the shapes have
/// been validated (`a = m × k`, `c = m × n`, `j1 ≤ n`, `kb` in range),
/// and that `slab` was packed as described.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn block_avx2(
    m: usize,
    n: usize,
    a: &[f64],
    slab: &[f64],
    cp: *mut f64,
    j0: usize,
    j1: usize,
    kb: KBlock,
) {
    let k = a.len() / m;
    let mut i0 = 0usize;
    while i0 + GEMM_MR <= m {
        row_strip_avx2::<GEMM_MR>(n, k, a, slab, cp, i0, j0, j1, kb);
        i0 += GEMM_MR;
    }
    match m - i0 {
        0 => {}
        1 => row_strip_avx2::<1>(n, k, a, slab, cp, i0, j0, j1, kb),
        2 => row_strip_avx2::<2>(n, k, a, slab, cp, i0, j0, j1, kb),
        3 => row_strip_avx2::<3>(n, k, a, slab, cp, i0, j0, j1, kb),
        4 => row_strip_avx2::<4>(n, k, a, slab, cp, i0, j0, j1, kb),
        _ => row_strip_avx2::<5>(n, k, a, slab, cp, i0, j0, j1, kb),
    }
}

/// The `MR × 8` micro-kernel over one row strip: `MR` is a const so the
/// broadcast/FMA loops fully unroll into `2·MR` independent accumulator
/// chains (twelve at `MR = 6`).
///
/// # Safety
///
/// As [`block_avx2`], plus `i0 + MR ≤ m`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
unsafe fn row_strip_avx2<const MR: usize>(
    n: usize,
    k: usize,
    a: &[f64],
    slab: &[f64],
    cp: *mut f64,
    i0: usize,
    j0: usize,
    j1: usize,
    kb: KBlock,
) {
    use std::arch::x86_64::*;
    let w = j1 - j0;
    let (ap, bp) = (a.as_ptr(), slab.as_ptr());
    let mut j = j0;
    // Full MR×8 tiles: 2·MR accumulators, two B loads, MR broadcasts per
    // k-step — FMA-bound, not load-bound.
    while j + GEMM_NR <= j1 {
        let bt = bp.add(j - j0);
        let mut lo = [_mm256_setzero_pd(); MR];
        let mut hi = [_mm256_setzero_pd(); MR];
        if !kb.first {
            for r in 0..MR {
                lo[r] = _mm256_loadu_pd(cp.add((i0 + r) * n + j));
                hi[r] = _mm256_loadu_pd(cp.add((i0 + r) * n + j + 4));
            }
        }
        for l in 0..kb.kc {
            let b0 = _mm256_loadu_pd(bt.add(l * w));
            let b1 = _mm256_loadu_pd(bt.add(l * w + 4));
            for r in 0..MR {
                let av = _mm256_set1_pd(*ap.add((i0 + r) * k + kb.k0 + l));
                lo[r] = _mm256_fmadd_pd(av, b0, lo[r]);
                hi[r] = _mm256_fmadd_pd(av, b1, hi[r]);
            }
        }
        for r in 0..MR {
            _mm256_storeu_pd(cp.add((i0 + r) * n + j), lo[r]);
            _mm256_storeu_pd(cp.add((i0 + r) * n + j + 4), hi[r]);
        }
        j += GEMM_NR;
    }
    // One 4-column tile on the way out.
    if j + 4 <= j1 {
        let bt = bp.add(j - j0);
        let mut acc = [_mm256_setzero_pd(); MR];
        if !kb.first {
            for r in 0..MR {
                acc[r] = _mm256_loadu_pd(cp.add((i0 + r) * n + j));
            }
        }
        for l in 0..kb.kc {
            let bv = _mm256_loadu_pd(bt.add(l * w));
            for r in 0..MR {
                let av = _mm256_set1_pd(*ap.add((i0 + r) * k + kb.k0 + l));
                acc[r] = _mm256_fmadd_pd(av, bv, acc[r]);
            }
        }
        for r in 0..MR {
            _mm256_storeu_pd(cp.add((i0 + r) * n + j), acc[r]);
        }
        j += 4;
    }
    // Scalar ragged columns.
    while j < j1 {
        for r in 0..MR {
            let mut s = if kb.first {
                0.0
            } else {
                *cp.add((i0 + r) * n + j)
            };
            for l in 0..kb.kc {
                s += *ap.add((i0 + r) * k + kb.k0 + l) * *bp.add(l * w + (j - j0));
            }
            *cp.add((i0 + r) * n + j) = s;
        }
        j += 1;
    }
}

/// Register-tile rows of the AVX-512 arm: with 32 architectural 512-bit
/// registers the tile widens to 8 × 16 (16 accumulators + 2 loads + 1
/// broadcast), doubling lanes *and* halving front-end µops per element
/// relative to the AVX2 arm.
#[cfg(target_arch = "x86_64")]
const GEMM_MR_512: usize = 8;

/// AVX-512F arm of one `(column block × k-block)` slab; same slab
/// contract as [`block_avx2`].
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX-512F and the [`block_avx2`]
/// shape/packing contract holds.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn block_avx512(
    m: usize,
    n: usize,
    a: &[f64],
    slab: &[f64],
    cp: *mut f64,
    j0: usize,
    j1: usize,
    kb: KBlock,
) {
    let k = a.len() / m;
    let mut i0 = 0usize;
    while i0 + GEMM_MR_512 <= m {
        row_strip_avx512::<GEMM_MR_512>(n, k, a, slab, cp, i0, j0, j1, kb);
        i0 += GEMM_MR_512;
    }
    match m - i0 {
        0 => {}
        1 => row_strip_avx512::<1>(n, k, a, slab, cp, i0, j0, j1, kb),
        2 => row_strip_avx512::<2>(n, k, a, slab, cp, i0, j0, j1, kb),
        3 => row_strip_avx512::<3>(n, k, a, slab, cp, i0, j0, j1, kb),
        4 => row_strip_avx512::<4>(n, k, a, slab, cp, i0, j0, j1, kb),
        5 => row_strip_avx512::<5>(n, k, a, slab, cp, i0, j0, j1, kb),
        6 => row_strip_avx512::<6>(n, k, a, slab, cp, i0, j0, j1, kb),
        _ => row_strip_avx512::<7>(n, k, a, slab, cp, i0, j0, j1, kb),
    }
}

/// The `MR × 16` AVX-512 micro-kernel over one row strip.
///
/// # Safety
///
/// As [`block_avx512`], plus `i0 + MR ≤ m`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
unsafe fn row_strip_avx512<const MR: usize>(
    n: usize,
    k: usize,
    a: &[f64],
    slab: &[f64],
    cp: *mut f64,
    i0: usize,
    j0: usize,
    j1: usize,
    kb: KBlock,
) {
    use std::arch::x86_64::*;
    let w = j1 - j0;
    let (ap, bp) = (a.as_ptr(), slab.as_ptr());
    let mut j = j0;
    // Full MR×16 tiles: 2·MR accumulators, two 8-lane B loads, MR
    // broadcasts per k-step; the k loop is unrolled ×2 to halve the loop
    // control overhead per FMA.
    while j + 16 <= j1 {
        let bt = bp.add(j - j0);
        let mut lo = [_mm512_setzero_pd(); MR];
        let mut hi = [_mm512_setzero_pd(); MR];
        if !kb.first {
            for r in 0..MR {
                lo[r] = _mm512_loadu_pd(cp.add((i0 + r) * n + j));
                hi[r] = _mm512_loadu_pd(cp.add((i0 + r) * n + j + 8));
            }
        }
        let mut l = 0usize;
        while l + 2 <= kb.kc {
            let b0 = _mm512_loadu_pd(bt.add(l * w));
            let b1 = _mm512_loadu_pd(bt.add(l * w + 8));
            let b2 = _mm512_loadu_pd(bt.add((l + 1) * w));
            let b3 = _mm512_loadu_pd(bt.add((l + 1) * w + 8));
            for r in 0..MR {
                let av = _mm512_set1_pd(*ap.add((i0 + r) * k + kb.k0 + l));
                lo[r] = _mm512_fmadd_pd(av, b0, lo[r]);
                hi[r] = _mm512_fmadd_pd(av, b1, hi[r]);
                let av2 = _mm512_set1_pd(*ap.add((i0 + r) * k + kb.k0 + l + 1));
                lo[r] = _mm512_fmadd_pd(av2, b2, lo[r]);
                hi[r] = _mm512_fmadd_pd(av2, b3, hi[r]);
            }
            l += 2;
        }
        if l < kb.kc {
            let b0 = _mm512_loadu_pd(bt.add(l * w));
            let b1 = _mm512_loadu_pd(bt.add(l * w + 8));
            for r in 0..MR {
                let av = _mm512_set1_pd(*ap.add((i0 + r) * k + kb.k0 + l));
                lo[r] = _mm512_fmadd_pd(av, b0, lo[r]);
                hi[r] = _mm512_fmadd_pd(av, b1, hi[r]);
            }
        }
        for r in 0..MR {
            _mm512_storeu_pd(cp.add((i0 + r) * n + j), lo[r]);
            _mm512_storeu_pd(cp.add((i0 + r) * n + j + 8), hi[r]);
        }
        j += 16;
    }
    // One 8-column tile on the way out.
    if j + 8 <= j1 {
        let bt = bp.add(j - j0);
        let mut acc = [_mm512_setzero_pd(); MR];
        if !kb.first {
            for r in 0..MR {
                acc[r] = _mm512_loadu_pd(cp.add((i0 + r) * n + j));
            }
        }
        for l in 0..kb.kc {
            let bv = _mm512_loadu_pd(bt.add(l * w));
            for r in 0..MR {
                let av = _mm512_set1_pd(*ap.add((i0 + r) * k + kb.k0 + l));
                acc[r] = _mm512_fmadd_pd(av, bv, acc[r]);
            }
        }
        for r in 0..MR {
            _mm512_storeu_pd(cp.add((i0 + r) * n + j), acc[r]);
        }
        j += 8;
    }
    // Scalar ragged columns.
    while j < j1 {
        for r in 0..MR {
            let mut s = if kb.first {
                0.0
            } else {
                *cp.add((i0 + r) * n + j)
            };
            for l in 0..kb.kc {
                s += *ap.add((i0 + r) * k + kb.k0 + l) * *bp.add(l * w + (j - j0));
            }
            *cp.add((i0 + r) * n + j) = s;
        }
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: u64) -> Vec<f64> {
        (0..len)
            .map(|i| {
                let h = (i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15 ^ seed);
                ((h >> 12) as f64 / (1u64 << 52) as f64) - 0.5
            })
            .collect()
    }

    fn naive(m: usize, n: usize, k: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for l in 0..k {
                    s += a[i * k + l] * b[l * n + j];
                }
                c[i * n + j] = s;
            }
        }
        c
    }

    #[test]
    fn both_arms_match_naive_across_remainder_shapes() {
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (4, 8, 16),
            (3, 7, 5),
            (5, 13, 2),
            (8, 33, 31),
            (2, 9, 300), // crosses a KC boundary
        ] {
            let a = fill(m * k, 3);
            let b = fill(k * n, 5);
            let want = naive(m, n, k, &a, &b);
            let mut got = vec![f64::NAN; m * n];
            gemm_into(m, n, k, &a, &b, &mut got);
            let mut scalar = vec![f64::NAN; m * n];
            gemm_into_scalar(m, n, k, &a, &b, &mut scalar);
            for (g, w) in got.iter().chain(&scalar).zip(want.iter().chain(&want)) {
                assert!((g - w).abs() < 1e-12, "m={m} n={n} k={k}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn packed_b_matches_unpacked_across_shapes() {
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (5, 13, 2),
            (8, 300, 31),
            (7, 700, 32),
            (3, 513, 300), // crosses NC and KC boundaries
        ] {
            let a = fill(m * k, 7);
            let b = fill(k * n, 9);
            let mut want = vec![f64::NAN; m * n];
            gemm_into(m, n, k, &a, &b, &mut want);
            let pb = PackedB::pack(k, n, &b);
            assert_eq!((pb.k(), pb.n()), (k, n));
            let mut got = vec![f64::NAN; m * n];
            gemm_packed_into(m, &a, &pb, &mut got);
            assert_eq!(got, want, "m={m} n={n} k={k}: packed != unpacked");
            // Packing straight from the n × k factor layout must agree.
            let v = crate::mat::Mat::from_fn(n, k, |j, l| b[l * n + j]);
            let pb_t = PackedB::pack_transposed_from(&v);
            let mut got_t = vec![f64::NAN; m * n];
            gemm_packed_into(m, &a, &pb_t, &mut got_t);
            assert_eq!(got_t, want, "m={m} n={n} k={k}: transposed pack");
        }
    }

    #[test]
    fn range_pack_is_a_slice_of_the_full_pack() {
        // Catalogue spanning several NC blocks with a ragged tail.
        let (n, k) = (3 * GEMM_NC + 77, 9);
        let v = crate::mat::Mat::from_fn(n, k, |j, l| (j * k + l) as f64 * 0.5 - 3.0);
        let full = PackedB::pack_transposed_from(&v);
        for (lo, hi) in [
            (0, n),
            (0, GEMM_NC),
            (GEMM_NC, 3 * GEMM_NC),
            (2 * GEMM_NC, n),
            (3 * GEMM_NC, n),   // ragged final block
            (GEMM_NC, GEMM_NC), // empty shard
        ] {
            let part = PackedB::pack_transposed_range_from(&v, lo, hi);
            assert_eq!((part.k(), part.n()), (k, hi - lo));
            assert_eq!(
                part.data,
                full.data[k * lo..k * hi],
                "[{lo}, {hi}) is not the matching byte range of the full pack"
            );
        }
    }

    #[test]
    fn range_packed_gemm_is_bit_identical_to_full_gemm_columns() {
        // The sharded-serving invariant: scoring a GEMM_NC-aligned column
        // range must reproduce the full catalogue's scores *bit for bit*
        // (same panels, same fma chains), on whichever kernel arm is live.
        let (m, n, k) = (7, 2 * GEMM_NC + 190, 13);
        let a = fill(m * k, 21);
        let v = crate::mat::Mat::from_fn(n, k, |j, l| fill(1, (j * k + l) as u64)[0]);
        let full = PackedB::pack_transposed_from(&v);
        let mut want = vec![f64::NAN; m * n];
        gemm_packed_into(m, &a, &full, &mut want);
        for (lo, hi) in [(0usize, GEMM_NC), (GEMM_NC, 2 * GEMM_NC), (2 * GEMM_NC, n)] {
            let part = PackedB::pack_transposed_range_from(&v, lo, hi);
            let w = hi - lo;
            let mut got = vec![f64::NAN; m * w];
            gemm_packed_into(m, &a, &part, &mut got);
            for i in 0..m {
                for j in 0..w {
                    assert_eq!(
                        got[i * w + j].to_bits(),
                        want[i * n + lo + j].to_bits(),
                        "row {i} col {} not bit-identical for range [{lo}, {hi})",
                        lo + j
                    );
                }
            }
        }
    }

    #[test]
    fn zero_k_zeroes_the_output() {
        let mut c = vec![7.0; 6];
        gemm_into(2, 3, 0, &[], &[], &mut c);
        assert_eq!(c, vec![0.0; 6]);
    }

    #[test]
    fn empty_output_shapes_are_noops() {
        gemm_into(0, 4, 3, &[], &fill(12, 1), &mut []);
        gemm_into(4, 0, 3, &fill(12, 1), &[], &mut []);
    }

    #[test]
    fn parallel_threshold_crossing_matches_naive() {
        // Big enough that `gemm_into` fans out over the pool.
        let (m, n, k) = (16, 4096, 32);
        assert!(2 * m * n * k >= GEMM_PAR_FLOPS);
        let a = fill(m * k, 11);
        let b = fill(k * n, 13);
        let want = naive(m, n, k, &a, &b);
        let mut got = vec![f64::NAN; m * n];
        gemm_into(m, n, k, &a, &b, &mut got);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-10, "{g} vs {w}");
        }
    }
}
