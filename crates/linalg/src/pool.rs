//! Persistent fork-join pool for intra-item kernel parallelism.
//!
//! The parallel item-update kernel (paper Fig. 2, the ≥1000-rating path)
//! splits one item's rating accumulation across `kernel_threads` chunks.
//! Spawning fresh OS threads for every heavy item charges thread-creation
//! latency per item per sweep; this pool keeps a fixed set of workers parked
//! on a condvar and hands them chunk indices instead.
//!
//! The calling thread participates: it grabs chunk indices from the same
//! queue as the workers, so a request for `n` chunks makes progress even
//! when the pool has zero workers (single-core hosts) and the caller is
//! never idle while work remains. `run` does not return until every chunk
//! has executed, which is what makes the lifetime erasure of the job
//! closure sound (see `SAFETY` below — the same discipline as
//! `bpmf-sched`'s `WorkStealingPool`).
//!
//! Chunk handoff goes through a mutex rather than lock-free queues: a chunk
//! here is thousands of rating-row gathers plus a rank-d panel update, so
//! one uncontended lock per chunk is noise. (The scheduler-level deques,
//! where tasks are small and contention is the point, are lock-free — see
//! `crossbeam::deque`.)

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

type Job = &'static (dyn Fn(usize) + Sync);

thread_local! {
    /// True while this thread is executing a pool chunk. A nested
    /// `KernelPool::run` from inside a chunk would deadlock on the single
    /// job slot (the outer job cannot finish while the nested call waits,
    /// and the nested call cannot start until it does), so `run` checks
    /// this and falls back to executing the nested job inline.
    static IN_POOL_JOB: Cell<bool> = const { Cell::new(false) };
}

struct State {
    /// Incremented per `run`; workers use it to detect fresh jobs.
    epoch: u64,
    shutdown: bool,
    /// Lifetime-erased current job; `None` between runs.
    job: Option<Job>,
    /// Next chunk index to hand out.
    next: usize,
    /// Total chunks in the current job.
    nchunks: usize,
    /// Chunks fully executed (incremented even when the chunk panicked).
    done: usize,
    panicked: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between jobs.
    work_cv: Condvar,
    /// The caller parks here until `done == nchunks`.
    done_cv: Condvar,
}

/// Fork-join pool with persistent, parked workers.
pub struct KernelPool {
    shared: &'static Shared,
    handles: Vec<JoinHandle<()>>,
}

impl KernelPool {
    fn with_workers(nworkers: usize) -> Self {
        let shared: &'static Shared = Box::leak(Box::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                shutdown: false,
                job: None,
                next: 0,
                nchunks: 0,
                done: 0,
                panicked: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        }));
        let handles = (0..nworkers)
            .map(|id| {
                std::thread::Builder::new()
                    .name(format!("bpmf-kernel-{id}"))
                    .spawn(move || worker_loop(shared))
                    .expect("failed to spawn kernel pool worker")
            })
            .collect();
        KernelPool { shared, handles }
    }

    /// Execute `f(0..nchunks)` across the pool plus the calling thread.
    ///
    /// Returns once every chunk has run. Concurrent callers are serialized
    /// — the pool runs one job at a time. This is a deliberate trade-off:
    /// the pool is sized to the machine (`cores − 1` workers), so two jobs
    /// running concurrently would only oversubscribe the same cores; with
    /// serialization the second caller lends itself to the queue instead
    /// of thrashing. The cost is that simultaneous heavy items from
    /// different scheduler workers proceed one at a time (each still using
    /// every core) rather than interleaved. A panic inside `f` is
    /// re-raised on the caller after the remaining chunks finish.
    pub fn run(&self, nchunks: usize, f: &(dyn Fn(usize) + Sync)) {
        if nchunks == 0 {
            return;
        }
        if IN_POOL_JOB.with(Cell::get) {
            // Re-entrant call from inside a pool chunk (e.g. a pool-backed
            // kernel invoked from another kernel's chunk closure): execute
            // inline rather than deadlocking on the job slot. A panic
            // propagates directly off the calling chunk.
            for c in 0..nchunks {
                f(c);
            }
            return;
        }
        // SAFETY: executors re-read the job slot under the same lock in
        // which they grab a chunk index, so this reference is dereferenced
        // only while a chunk of *this* job is outstanding; `run` blocks
        // below until `done == nchunks`, i.e. until every such execution
        // has finished, so the borrow of `f` (and everything it captures)
        // outlives every dereference. The slot is cleared before returning.
        let job: Job = unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), Job>(f) };
        {
            let mut st = lock(&self.shared.state);
            // One job at a time: wait out any job still in flight (another
            // caller's), identified by a non-empty slot.
            while st.job.is_some() {
                st = self
                    .shared
                    .done_cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            st.epoch += 1;
            st.job = Some(job);
            st.next = 0;
            st.nchunks = nchunks;
            st.done = 0;
            st.panicked = false;
            self.shared.work_cv.notify_all();
        }

        // The caller works the same chunk queue as the pool threads.
        run_chunks(self.shared);

        let mut st = lock(&self.shared.state);
        while st.done < st.nchunks {
            st = self
                .shared
                .done_cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        st.job = None;
        let panicked = st.panicked;
        // Wake any caller queued on the job slot.
        self.shared.done_cv.notify_all();
        drop(st);
        if panicked {
            panic!("a kernel pool chunk panicked");
        }
    }

    /// Number of parked worker threads (the caller adds one more lane).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }
}

impl Drop for KernelPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        // `shared` itself was leaked and stays alive (it is 'static); only
        // the worker threads are reclaimed. The process-wide singleton is
        // never dropped, so this mostly serves tests and ad-hoc pools.
    }
}

fn lock(m: &Mutex<State>) -> std::sync::MutexGuard<'_, State> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Grab-and-execute chunks of the current job until none remain.
///
/// The job pointer is re-read in the same critical section that hands out
/// the chunk index, so a chunk is always executed with the closure of the
/// job it belongs to — a thread that slept through a job change can never
/// run a fresh chunk against a stale (dangling) pointer.
fn run_chunks(shared: &Shared) {
    loop {
        let (c, job) = {
            let mut st = lock(&shared.state);
            if st.next >= st.nchunks {
                return;
            }
            let Some(job) = st.job else { return };
            let c = st.next;
            st.next += 1;
            (c, job)
        };
        IN_POOL_JOB.with(|flag| flag.set(true));
        let ok = catch_unwind(AssertUnwindSafe(|| job(c))).is_ok();
        IN_POOL_JOB.with(|flag| flag.set(false));
        let mut st = lock(&shared.state);
        if !ok {
            st.panicked = true;
        }
        st.done += 1;
        if st.done == st.nchunks {
            shared.done_cv.notify_all();
        }
    }
}

fn worker_loop(shared: &'static Shared) {
    let mut seen_epoch = 0u64;
    loop {
        {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break;
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }
        run_chunks(shared);
    }
}

/// The process-wide kernel pool, created on first use with
/// `available_parallelism() - 1` workers (the caller is the remaining lane).
pub fn kernel_pool() -> &'static KernelPool {
    static POOL: OnceLock<KernelPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let lanes = std::thread::available_parallelism().map_or(1, |n| n.get());
        KernelPool::with_workers(lanes.saturating_sub(1))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_chunk_runs_exactly_once() {
        let pool = KernelPool::with_workers(3);
        for round in 1..6 {
            let n = round * 7;
            let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.run(n, &|c| {
                counts[c].fetch_add(1, Ordering::Relaxed);
            });
            assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn zero_workers_still_completes() {
        let pool = KernelPool::with_workers(0);
        let hits = AtomicUsize::new(0);
        pool.run(5, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn zero_chunks_is_a_noop() {
        let pool = KernelPool::with_workers(2);
        pool.run(0, &|_| panic!("must not run"));
    }

    #[test]
    fn nested_run_from_inside_a_chunk_executes_inline() {
        // A pool-backed kernel invoked from another kernel's chunk must
        // complete (inline) instead of deadlocking on the job slot.
        let pool = KernelPool::with_workers(2);
        let outer = AtomicUsize::new(0);
        let inner = AtomicUsize::new(0);
        pool.run(4, &|_| {
            outer.fetch_add(1, Ordering::Relaxed);
            pool.run(3, &|_| {
                inner.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(outer.load(Ordering::Relaxed), 4);
        assert_eq!(inner.load(Ordering::Relaxed), 4 * 3);
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        let pool = KernelPool::with_workers(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|c| {
                if c == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        let hits = AtomicUsize::new(0);
        pool.run(4, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn concurrent_callers_serialize_without_loss() {
        let pool = std::sync::Arc::new(KernelPool::with_workers(2));
        let total = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = std::sync::Arc::clone(&pool);
                let total = &total;
                scope.spawn(move || {
                    for _ in 0..10 {
                        pool.run(6, &|_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 10 * 6);
    }
}
