//! Minimal scoped row-partitioned parallelism.
//!
//! `linalg` deliberately does not depend on the scheduler crate (the
//! scheduler depends on nothing numeric, and the parallel Cholesky is used
//! *inside* scheduler-driven item updates). Instead it uses plain
//! `std::thread::scope` over contiguous row chunks: the matrices involved are
//! large enough (the paper only routes items with >1000 ratings here) that
//! thread spawn cost is noise.

/// Split `data` (a row-major buffer of rows of length `row_len`) into at most
/// `nthreads` contiguous row chunks and run `f(first_row, chunk)` on each in
/// parallel.
///
/// `f` receives the index of the first row in its chunk plus the mutable
/// chunk itself; chunks are disjoint so no synchronization is needed.
pub fn par_row_chunks<F>(data: &mut [f64], row_len: usize, nthreads: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    assert!(row_len > 0, "row_len must be positive");
    assert_eq!(
        data.len() % row_len,
        0,
        "buffer must be a whole number of rows"
    );
    let nrows = data.len() / row_len;
    if nrows == 0 {
        return;
    }
    let threads = nthreads.max(1).min(nrows);
    if threads == 1 {
        f(0, data);
        return;
    }
    let rows_per = nrows.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut row0 = 0;
        while !rest.is_empty() {
            let take = (rows_per * row_len).min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            rest = tail;
            let start = row0;
            row0 += take / row_len;
            let f = &f;
            scope.spawn(move || f(start, chunk));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_is_visited_exactly_once() {
        let rows = 37;
        let cols = 5;
        let mut data = vec![0.0f64; rows * cols];
        par_row_chunks(&mut data, cols, 4, |first, chunk| {
            for (r, row) in chunk.chunks_exact_mut(cols).enumerate() {
                for v in row.iter_mut() {
                    *v += (first + r) as f64 + 1.0;
                }
            }
        });
        for (i, row) in data.chunks_exact(cols).enumerate() {
            assert!(row.iter().all(|&v| v == i as f64 + 1.0), "row {i}");
        }
    }

    #[test]
    fn single_thread_and_empty_cases() {
        let mut data: Vec<f64> = (0..12).map(|i| i as f64).collect();
        par_row_chunks(&mut data, 3, 1, |_, chunk| {
            for v in chunk.iter_mut() {
                *v *= 2.0;
            }
        });
        assert_eq!(data[11], 22.0);

        let mut empty: Vec<f64> = vec![];
        par_row_chunks(&mut empty, 4, 8, |_, _| panic!("must not be called"));
    }

    #[test]
    fn more_threads_than_rows_is_fine() {
        let mut data = vec![1.0f64; 2 * 3];
        par_row_chunks(&mut data, 3, 16, |_, chunk| {
            for v in chunk.iter_mut() {
                *v += 1.0;
            }
        });
        assert!(data.iter().all(|&v| v == 2.0));
    }
}
