use std::fmt;
use std::ops::{Index, IndexMut};

use crate::vecops;

/// Row-major dense `f64` matrix.
///
/// The BPMF sampler manipulates two shapes: small square `K × K` precision
/// matrices (hot path) and tall `N × K` factor matrices whose rows are item
/// models. Row-major storage makes a factor row a contiguous `&[f64]`, which
/// is what every kernel in the sampler consumes.
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// All-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// `scale * I` of order `n`.
    pub fn scaled_identity(n: usize, scale: f64) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = scale;
        }
        m
    }

    /// Build a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Mat { rows, cols, data }
    }

    /// Build from a row-major flat slice. Panics if the length is not `rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "flat data length must be rows * cols"
        );
        Mat { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Two disjoint mutable rows; panics if `i == j`.
    pub fn two_rows_mut(&mut self, i: usize, j: usize) -> (&mut [f64], &mut [f64]) {
        assert_ne!(i, j, "rows must be distinct");
        let c = self.cols;
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        let (head, tail) = self.data.split_at_mut(hi * c);
        let lo_row = &mut head[lo * c..(lo + 1) * c];
        let hi_row = &mut tail[..c];
        if i < j {
            (lo_row, hi_row)
        } else {
            (hi_row, lo_row)
        }
    }

    /// Set every element to `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Copy every element from `other` (shapes must match). Used by the
    /// update kernels to reset scratch matrices without reallocating.
    pub fn copy_from(&mut self, other: &Mat) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        self.data.copy_from_slice(&other.data);
    }

    /// Multiply every element by `s`.
    pub fn scale(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// `self += s * other` element-wise.
    pub fn add_assign_scaled(&mut self, other: &Mat, s: f64) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Matrix-vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (yi, row) in y.iter_mut().zip(self.data.chunks_exact(self.cols)) {
            *yi = vecops::dot(row, x);
        }
        y
    }

    /// Matrix-vector product written into `y` (no allocation).
    ///
    /// Eight rows are processed per pass so `x` is streamed once for eight
    /// independent dot-product chains — enough in-flight FMA chains to
    /// cover the FMA latency on both issue ports, where the four-chain
    /// version (and per-row `vecops::dot`) is latency-bound.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(y.len(), self.rows, "matvec output mismatch");
        let c = self.cols;
        if c == 0 {
            y.fill(0.0);
            return;
        }
        let mut rows = self.data.chunks_exact(8 * c);
        let mut outs = y.chunks_exact_mut(8);
        for (oct, yo) in rows.by_ref().zip(outs.by_ref()) {
            let (r0, rest) = oct.split_at(c);
            let (r1, rest) = rest.split_at(c);
            let (r2, rest) = rest.split_at(c);
            let (r3, rest) = rest.split_at(c);
            let (r4, rest) = rest.split_at(c);
            let (r5, rest) = rest.split_at(c);
            let (r6, r7) = rest.split_at(c);
            let mut s = [0.0f64; 8];
            for (j, &xj) in x.iter().enumerate() {
                s[0] += xj * r0[j];
                s[1] += xj * r1[j];
                s[2] += xj * r2[j];
                s[3] += xj * r3[j];
                s[4] += xj * r4[j];
                s[5] += xj * r5[j];
                s[6] += xj * r6[j];
                s[7] += xj * r7[j];
            }
            yo.copy_from_slice(&s);
        }
        for (yi, row) in outs
            .into_remainder()
            .iter_mut()
            .zip(rows.remainder().chunks_exact(c))
        {
            *yi = vecops::dot(row, x);
        }
    }

    /// Transposed copy (`cols × rows`).
    pub fn transposed(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix-vector product *through the transposed layout*: `self` is
    /// `k × n` and `y[i] = Σ_j x[j] · self[(j, i)]`, i.e. `y = selfᵀ · x`.
    ///
    /// The serving-scan kernel: with the factor matrix stored transposed,
    /// every inner update `y[i] += x_j · row_j[i]` is an independent lane
    /// — no floating-point reduction — so it vectorizes without
    /// reassociation. Eight rows are fused per pass so `y` is read+written
    /// once per eight coefficients instead of once per one; on x86-64 with
    /// AVX2+FMA an explicit 4-lane FMA kernel takes over (gated on the
    /// shared [`crate::simd::simd_enabled`] dispatch, so `BPMF_NO_SIMD=1`
    /// pins the portable arm).
    pub fn matvec_t_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        assert_eq!(y.len(), self.cols, "matvec_t output mismatch");
        y.fill(0.0);
        if self.cols == 0 {
            return;
        }
        if crate::simd::simd_enabled() {
            #[cfg(target_arch = "x86_64")]
            {
                // SAFETY: `simd_enabled` guarantees AVX2+FMA.
                unsafe { self.matvec_t_into_avx2(x, y) };
                return;
            }
        }
        self.matvec_t_into_scalar(x, y);
    }

    /// Portable eight-row fused scan (lane-parallel, auto-vectorizable).
    fn matvec_t_into_scalar(&self, x: &[f64], y: &mut [f64]) {
        let c = self.cols;
        let mut octs = self.data.chunks_exact(8 * c);
        let mut coefs = x.chunks_exact(8);
        for (oct, xo) in octs.by_ref().zip(coefs.by_ref()) {
            let (r0, rest) = oct.split_at(c);
            let (r1, rest) = rest.split_at(c);
            let (r2, rest) = rest.split_at(c);
            let (r3, rest) = rest.split_at(c);
            let (r4, rest) = rest.split_at(c);
            let (r5, rest) = rest.split_at(c);
            let (r6, r7) = rest.split_at(c);
            for (i, yi) in y.iter_mut().enumerate() {
                *yi += xo[0] * r0[i]
                    + xo[1] * r1[i]
                    + xo[2] * r2[i]
                    + xo[3] * r3[i]
                    + xo[4] * r4[i]
                    + xo[5] * r5[i]
                    + xo[6] * r6[i]
                    + xo[7] * r7[i];
            }
        }
        for (&xj, row) in coefs
            .remainder()
            .iter()
            .zip(octs.remainder().chunks_exact(c))
        {
            vecops::axpy(xj, row, y);
        }
    }

    /// AVX2+FMA scan: eight broadcast coefficients folded into `y` in
    /// 32-element blocks (8 × 4-lane accumulators — enough independent FMA
    /// chains to cover the FMA latency on both ports).
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX2 and FMA.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn matvec_t_into_avx2(&self, x: &[f64], y: &mut [f64]) {
        use std::arch::x86_64::*;
        let c = self.cols;
        let mut octs = self.data.chunks_exact(8 * c);
        let mut coefs = x.chunks_exact(8);
        for (oct, xo) in octs.by_ref().zip(coefs.by_ref()) {
            let base = oct.as_ptr();
            let xv: [__m256d; 8] = std::array::from_fn(|r| _mm256_set1_pd(xo[r]));
            let yp = y.as_mut_ptr();
            let mut i = 0usize;
            while i + 32 <= c {
                let mut acc: [__m256d; 8] =
                    std::array::from_fn(|l| _mm256_loadu_pd(yp.add(i + 4 * l)));
                for (r, xr) in xv.iter().enumerate() {
                    let rp = base.add(r * c + i);
                    for (l, a) in acc.iter_mut().enumerate() {
                        *a = _mm256_fmadd_pd(*xr, _mm256_loadu_pd(rp.add(4 * l)), *a);
                    }
                }
                for (l, a) in acc.iter().enumerate() {
                    _mm256_storeu_pd(yp.add(i + 4 * l), *a);
                }
                i += 32;
            }
            while i + 4 <= c {
                let mut a = _mm256_loadu_pd(yp.add(i));
                for (r, xr) in xv.iter().enumerate() {
                    a = _mm256_fmadd_pd(*xr, _mm256_loadu_pd(base.add(r * c + i)), a);
                }
                _mm256_storeu_pd(yp.add(i), a);
                i += 4;
            }
            while i < c {
                let mut s = *y.get_unchecked(i);
                for (r, &xr) in xo.iter().enumerate() {
                    s += xr * *base.add(r * c + i);
                }
                *y.get_unchecked_mut(i) = s;
                i += 1;
            }
        }
        for (&xj, row) in coefs
            .remainder()
            .iter()
            .zip(octs.remainder().chunks_exact(c))
        {
            vecops::axpy(xj, row, y);
        }
    }

    /// Gathered matrix-vector product: `y[i] = row(rows_idx[i]) · x`.
    ///
    /// The batched-scoring kernel behind `Recommender::score_batch`: four
    /// gathered rows are processed per pass with four independent
    /// accumulator chains, so `x` is streamed once per quad (the same
    /// discipline as [`Mat::matvec_into`]) without materializing a panel
    /// copy of the gathered rows.
    pub fn gather_matvec_into(&self, rows_idx: &[u32], x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "gather_matvec dimension mismatch");
        assert_eq!(y.len(), rows_idx.len(), "gather_matvec output mismatch");
        let c = self.cols;
        if c == 0 {
            y.fill(0.0);
            return;
        }
        let mut quads = rows_idx.chunks_exact(4);
        let mut outs = y.chunks_exact_mut(4);
        for (quad, yq) in quads.by_ref().zip(outs.by_ref()) {
            let r0 = self.row(quad[0] as usize);
            let r1 = self.row(quad[1] as usize);
            let r2 = self.row(quad[2] as usize);
            let r3 = self.row(quad[3] as usize);
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0, 0.0, 0.0);
            for ((((&xj, a), b), e), f) in x.iter().zip(r0).zip(r1).zip(r2).zip(r3) {
                s0 += xj * a;
                s1 += xj * b;
                s2 += xj * e;
                s3 += xj * f;
            }
            yq[0] = s0;
            yq[1] = s1;
            yq[2] = s2;
            yq[3] = s3;
        }
        for (yi, &i) in outs.into_remainder().iter_mut().zip(quads.remainder()) {
            *yi = vecops::dot(self.row(i as usize), x);
        }
    }

    /// Dense matrix product `self * other`.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Mat::zeros(self.rows, other.cols);
        // i-k-j loop order: streams both `other` rows and `out` rows.
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                vecops::axpy(aik, other.row(k), out_row);
            }
        }
        out
    }

    /// Dense product with the second operand transposed: `self * otherᵀ`.
    pub fn matmul_transb(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.cols, "matmul_transb dimension mismatch");
        let mut out = Mat::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                out.data[i * other.rows + j] = vecops::dot(a_row, other.row(j));
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Symmetric rank-one accumulation on the **lower** triangle:
    /// `self[lower] += alpha * x xᵀ`.
    ///
    /// This is the inner operation of the precision build
    /// `Λ* = Λ + α Σ v vᵀ`; only the lower triangle is touched because the
    /// Cholesky kernels read only the lower triangle.
    pub fn syrk_lower(&mut self, alpha: f64, x: &[f64]) {
        let n = self.rows;
        assert_eq!(n, self.cols, "syrk_lower requires a square matrix");
        assert_eq!(x.len(), n, "syrk_lower vector length mismatch");
        for i in 0..n {
            let axi = alpha * x[i];
            let row = &mut self.data[i * n..i * n + i + 1];
            // `x[..=i]` has exactly `row.len()` elements: bounds checks fold away.
            for (r, &xj) in row.iter_mut().zip(&x[..=i]) {
                *r += axi * xj;
            }
        }
    }

    /// Copy the lower triangle onto the upper triangle, producing a fully
    /// symmetric matrix.
    pub fn symmetrize_from_lower(&mut self) {
        let n = self.rows;
        assert_eq!(n, self.cols, "symmetrize requires a square matrix");
        for i in 0..n {
            for j in 0..i {
                self.data[j * n + i] = self.data[i * n + j];
            }
        }
    }

    /// Largest absolute element-wise difference against `other`.
    pub fn max_abs_diff(&self, other: &Mat) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_identity() {
        let m = Mat::identity(4);
        let x = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(m.matvec(&x), x);
    }

    #[test]
    fn matmul_against_hand_computed() {
        let a = Mat::from_row_major(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Mat::from_row_major(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_transb_matches_matmul_of_transpose() {
        let a = Mat::from_fn(3, 4, |i, j| (i * 7 + j) as f64 * 0.25);
        let b = Mat::from_fn(5, 4, |i, j| (i + 2 * j) as f64 - 3.0);
        let direct = a.matmul_transb(&b);
        let via_transpose = a.matmul(&b.transpose());
        assert!(direct.max_abs_diff(&via_transpose) < 1e-12);
    }

    #[test]
    fn transpose_is_involution() {
        let a = Mat::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn syrk_lower_accumulates_outer_product() {
        let mut m = Mat::zeros(3, 3);
        let x = [1.0, 2.0, 3.0];
        m.syrk_lower(2.0, &x);
        m.symmetrize_from_lower();
        let expected = Mat::from_fn(3, 3, |i, j| 2.0 * x[i] * x[j]);
        assert!(m.max_abs_diff(&expected) < 1e-12);
    }

    #[test]
    fn two_rows_mut_returns_disjoint_rows() {
        let mut m = Mat::from_fn(4, 2, |i, j| (i * 2 + j) as f64);
        let (a, b) = m.two_rows_mut(3, 1);
        a[0] = -1.0;
        b[0] = -2.0;
        assert_eq!(m[(3, 0)], -1.0);
        assert_eq!(m[(1, 0)], -2.0);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn add_assign_scaled_and_scale() {
        let mut a = Mat::identity(2);
        let b = Mat::identity(2);
        a.add_assign_scaled(&b, 3.0);
        a.scale(0.5);
        assert_eq!(a[(0, 0)], 2.0);
        assert_eq!(a[(0, 1)], 0.0);
    }
}
