use std::fmt;

/// Errors produced by the dense kernels.
///
/// Dimension mismatches between caller-supplied operands are programmer
/// errors and panic via `assert!`; this enum covers the *data-dependent*
/// failures a caller is expected to handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// A Cholesky factorization hit a non-positive pivot.
    ///
    /// For BPMF this indicates a precision matrix that lost positive
    /// definiteness (numerically singular prior, or a downdate that removed
    /// more than was ever added).
    NotPositiveDefinite {
        /// Index of the offending pivot.
        pivot: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
        }
    }
}

impl std::error::Error for LinalgError {}
