//! Vector kernels used by the sampler's hot loops.
//!
//! These are the BLAS-1 pieces of the per-item update: `dot` for predictions
//! and precision builds, `axpy` for right-hand-side accumulation. They are
//! written so the compiler can see equal slice lengths and vectorize without
//! bounds checks (iterate over `zip`, assert lengths once up front).

/// Dot product. Panics if lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    // Four partial sums let LLVM keep independent FMA chains in flight;
    // K is a multiple of 4 in practice but the remainder loop keeps this
    // correct for any length.
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for i in 0..chunks {
        let ai = &a[i * 4..i * 4 + 4];
        let bi = &b[i * 4..i * 4 + 4];
        s0 += ai[0] * bi[0];
        s1 += ai[1] * bi[1];
        s2 += ai[2] * bi[2];
        s3 += ai[3] * bi[3];
    }
    let mut tail = 0.0;
    for i in chunks * 4..a.len() {
        tail += a[i] * b[i];
    }
    (s0 + s1) + (s2 + s3) + tail
}

/// `y += a * x`. Panics if lengths differ.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    // Same four-chain unroll as `dot`: the explicit 4-element chunks erase
    // the bounds checks and give LLVM four independent FMA lanes per
    // iteration instead of one serial load-fma-store chain.
    let chunks = x.len() / 4;
    for i in 0..chunks {
        let xi = &x[i * 4..i * 4 + 4];
        let yi = &mut y[i * 4..i * 4 + 4];
        yi[0] += a * xi[0];
        yi[1] += a * xi[1];
        yi[2] += a * xi[2];
        yi[3] += a * xi[3];
    }
    for i in chunks * 4..x.len() {
        y[i] += a * x[i];
    }
}

/// `y = x` element-wise copy. Panics if lengths differ.
#[inline]
pub fn copy(x: &[f64], y: &mut [f64]) {
    y.copy_from_slice(x);
}

/// Multiply every element by `a`.
#[inline]
pub fn scal(a: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= a;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// `x - y` into a fresh vector.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Mean of a slice; 0 for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive_for_odd_lengths() {
        let a: Vec<f64> = (0..11).map(|i| i as f64 * 0.5).collect();
        let b: Vec<f64> = (0..11).map(|i| 2.0 - i as f64).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-12);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn norm2_of_unit_axis() {
        assert!((norm2(&[0.0, 1.0, 0.0]) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "dot length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
