//! Runtime SIMD dispatch shared by every explicitly vectorized kernel.
//!
//! The crate's hand-written AVX2+FMA kernels ([`crate::gemm`], the panel
//! kernels [`crate::syrk_ld_lower`]/[`crate::gemv_t_acc`], and
//! [`crate::Mat::matvec_t_into`]) all gate on one predicate instead of
//! re-detecting features at every call site. The decision is made once per
//! process and cached:
//!
//! * on `x86_64`, the CPU must report **both** AVX2 and FMA (the kernels
//!   use fused multiply-adds on 4-lane `f64` vectors);
//! * setting the environment variable `BPMF_NO_SIMD` to anything but `0`
//!   or the empty string forces the scalar arm everywhere — this is how CI
//!   exercises the fallback path on hosts that do have AVX2, and how a
//!   deployment can rule out SIMD when chasing a numerical discrepancy
//!   (the scalar and vector arms re-associate sums differently).
//!
//! Non-`x86_64` targets always take the scalar arm.

use std::sync::OnceLock;

/// The widest vector arm the current process will dispatch to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable arms only (`BPMF_NO_SIMD`, or no AVX2+FMA hardware).
    Scalar,
    /// 4-lane `f64` AVX2+FMA kernels.
    Avx2,
    /// 8-lane `f64` AVX-512F kernels where a kernel has one (currently
    /// the GEMM); kernels without a 512-bit arm use their AVX2 arm.
    Avx512,
}

/// The dispatch level, decided once per process: AVX-512F when the CPU
/// has it (on top of AVX2+FMA), else AVX2+FMA, else scalar — and scalar
/// unconditionally when `BPMF_NO_SIMD` is set. Cached after the first
/// call, so flipping the variable mid-process has no effect — set it
/// before the first kernel runs (in practice: in the environment of the
/// process).
pub fn simd_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        if scalar_forced() || !simd_supported() {
            return SimdLevel::Scalar;
        }
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx512f") {
            return SimdLevel::Avx512;
        }
        SimdLevel::Avx2
    })
}

/// True when the explicit vector kernel arms should run: the CPU
/// supports them and `BPMF_NO_SIMD` is unset.
pub fn simd_enabled() -> bool {
    simd_level() != SimdLevel::Scalar
}

/// The `BPMF_NO_SIMD` override, read fresh (uncached) — test support.
fn scalar_forced() -> bool {
    std::env::var_os("BPMF_NO_SIMD").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Does this CPU support the vector arms at all (ignoring the override)?
pub fn simd_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_is_stable_and_implies_support() {
        let first = simd_enabled();
        assert_eq!(first, simd_enabled(), "cached decision must not flip");
        assert_eq!(first, simd_level() != SimdLevel::Scalar);
        if first {
            assert!(simd_supported(), "enabled requires hardware support");
        }
    }
}
