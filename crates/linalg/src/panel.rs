//! Blocked panel kernels for the item-update hot path.
//!
//! The Gibbs item update builds `Λ* = Λ + α Σ_j v_j v_jᵀ` and
//! `b = Λμ + α Σ_j (r_j − m) v_j` from the counterpart rows `v_j` of an
//! item's ratings. Folding ratings in one at a time (d rank-1 `syrk_lower`
//! calls + d `axpy` calls) touches the whole `K × K` accumulator once per
//! rating and gives the CPU a single dependent accumulation chain per
//! element. The D-BPMF implementation (Vander Aa et al.) instead gathers the
//! counterpart rows into a contiguous row-major `d × K` *panel* and performs
//! one rank-d update — BLAS-3 shape, so the panel is streamed once per
//! output tile and the accumulator element is computed with independent FMA
//! chains held in registers.
//!
//! Two kernels live here:
//!
//! * [`syrk_ld_lower`] — `C[lower] += α · PᵀP` for a row-major `d × K`
//!   panel `P`: 2×2 register tiles over the output, two independent FMA
//!   chains down the panel, cache-blocked over `d` so the streamed panel
//!   block stays L1/L2-resident across output tiles.
//! * [`gemv_t_acc`] — `y += Pᵀ w`: the information-vector accumulation,
//!   processing four panel rows per pass so each output element gets four
//!   independent products per iteration.
//!
//! Both kernels are exact re-associations of the per-rating loop; the
//! property tests in `tests/panel_properties.rs` pin them to the naive
//! reference within 1e-12 across shapes (including `d = 0, 1` and sizes
//! that are not multiples of any block).

use crate::mat::Mat;

/// Row count of one cache block of the panel. `PANEL_BLOCK · K` doubles are
/// streamed per output tile pass; at `K = 128` a 64-row block is 64 KiB —
/// L2-resident, and re-read once per 2-column output tile.
pub const PANEL_BLOCK: usize = 64;

/// Symmetric rank-`d` accumulation on the **lower** triangle from a
/// row-major panel: `c[lower] += alpha * panelᵀ · panel`.
///
/// `panel` holds `d = panel.len() / k` rows of length `k`, where `k` must
/// equal the order of `c`. Only the lower triangle of `c` is written (the
/// Cholesky kernels read only the lower triangle). `d = 0` is a no-op.
///
/// Panics if `c` is not square, `k` does not match its order, or
/// `panel.len()` is not a multiple of `k`.
pub fn syrk_ld_lower(c: &mut Mat, alpha: f64, panel: &[f64], k: usize) {
    let n = c.rows();
    assert_eq!(n, c.cols(), "syrk_ld_lower requires a square matrix");
    assert_eq!(n, k, "syrk_ld_lower panel width must match matrix order");
    if k == 0 {
        return;
    }
    assert_eq!(
        panel.len() % k,
        0,
        "syrk_ld_lower panel length must be a multiple of k"
    );
    // Cache-block over the panel rows: every output tile re-reads the
    // current block, so keep it small enough to stay resident.
    for block in panel.chunks(PANEL_BLOCK * k) {
        syrk_block(c, alpha, block, k);
    }
}

/// One cache block of the rank-d update: 2×2 register tiles over the lower
/// triangle of `c`, two independent accumulation chains down the block.
fn syrk_block(c: &mut Mat, alpha: f64, p: &[f64], k: usize) {
    let k_even = k & !1;
    let mut i = 0;
    while i < k_even {
        let mut j = 0;
        while j <= i {
            // Tile rows {i, i+1} × cols {j, j+1}. Two chains (even/odd
            // panel rows) per element keep eight FMAs in flight.
            let (mut a00, mut a01, mut a10, mut a11) = (0.0f64, 0.0, 0.0, 0.0);
            let (mut b00, mut b01, mut b10, mut b11) = (0.0f64, 0.0, 0.0, 0.0);
            let mut rows = p.chunks_exact(2 * k);
            for pair in rows.by_ref() {
                let (r0, r1) = pair.split_at(k);
                let (x0, x1, y0, y1) = (r0[i], r0[i + 1], r0[j], r0[j + 1]);
                a00 += x0 * y0;
                a01 += x0 * y1;
                a10 += x1 * y0;
                a11 += x1 * y1;
                let (x0, x1, y0, y1) = (r1[i], r1[i + 1], r1[j], r1[j + 1]);
                b00 += x0 * y0;
                b01 += x0 * y1;
                b10 += x1 * y0;
                b11 += x1 * y1;
            }
            let r0 = rows.remainder();
            if !r0.is_empty() {
                let (x0, x1, y0, y1) = (r0[i], r0[i + 1], r0[j], r0[j + 1]);
                a00 += x0 * y0;
                a01 += x0 * y1;
                a10 += x1 * y0;
                a11 += x1 * y1;
            }
            c[(i, j)] += alpha * (a00 + b00);
            c[(i + 1, j)] += alpha * (a10 + b10);
            c[(i + 1, j + 1)] += alpha * (a11 + b11);
            if j < i {
                // On the diagonal tile (j == i) this element is strictly
                // upper-triangular; everywhere else it belongs to row i.
                c[(i, j + 1)] += alpha * (a01 + b01);
            }
            j += 2;
        }
        i += 2;
    }
    if k_even < k {
        // Odd k: the last row of C, computed as plain dots down the block.
        let i = k - 1;
        for j in 0..=i {
            let mut s0 = 0.0f64;
            let mut s1 = 0.0f64;
            let mut rows = p.chunks_exact(2 * k);
            for pair in rows.by_ref() {
                let (r0, r1) = pair.split_at(k);
                s0 += r0[i] * r0[j];
                s1 += r1[i] * r1[j];
            }
            let rem = rows.remainder();
            if !rem.is_empty() {
                s0 += rem[i] * rem[j];
            }
            c[(i, j)] += alpha * (s0 + s1);
        }
    }
}

/// Fused transposed panel–vector accumulation: `y += panelᵀ · w`.
///
/// `panel` is row-major with rows of length `y.len()`; `w` has one weight
/// per panel row. This is the information-vector update `b += Σ_l w_l v_l`
/// done four rows per pass, so each element of `y` receives four
/// independent products per iteration instead of one dependent `axpy`
/// chain per rating.
///
/// Panics if `panel.len() != w.len() * y.len()`.
pub fn gemv_t_acc(y: &mut [f64], panel: &[f64], w: &[f64]) {
    let k = y.len();
    assert_eq!(
        panel.len(),
        w.len() * k,
        "gemv_t_acc panel/weight shape mismatch"
    );
    if k == 0 {
        return;
    }
    let mut rows = panel.chunks_exact(4 * k);
    let mut weights = w.chunks_exact(4);
    for (quad, wq) in rows.by_ref().zip(weights.by_ref()) {
        let (r0, rest) = quad.split_at(k);
        let (r1, rest) = rest.split_at(k);
        let (r2, r3) = rest.split_at(k);
        let (w0, w1, w2, w3) = (wq[0], wq[1], wq[2], wq[3]);
        for ((((yi, a), b), c), d) in y.iter_mut().zip(r0).zip(r1).zip(r2).zip(r3) {
            *yi += (w0 * a + w1 * b) + (w2 * c + w3 * d);
        }
    }
    for (row, &wl) in rows.remainder().chunks_exact(k).zip(weights.remainder()) {
        for (yi, &v) in y.iter_mut().zip(row) {
            *yi += wl * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_syrk(c: &mut Mat, alpha: f64, panel: &[f64], k: usize) {
        for row in panel.chunks_exact(k) {
            c.syrk_lower(alpha, row);
        }
    }

    fn panel_of(d: usize, k: usize, seed: u64) -> Vec<f64> {
        (0..d * k)
            .map(|i| {
                let h = (i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15 ^ seed);
                ((h >> 12) as f64 / (1u64 << 52) as f64) - 0.5
            })
            .collect()
    }

    #[test]
    fn blocked_syrk_matches_per_rating_reference() {
        for &k in &[1usize, 2, 3, 4, 7, 8, 16, 17] {
            for &d in &[0usize, 1, 2, 3, 5, 63, 64, 65, 130, 200] {
                let p = panel_of(d, k, 11);
                let mut blocked = Mat::zeros(k, k);
                syrk_ld_lower(&mut blocked, 1.7, &p, k);
                let mut naive = Mat::zeros(k, k);
                naive_syrk(&mut naive, 1.7, &p, k);
                assert!(
                    blocked.max_abs_diff(&naive) < 1e-12,
                    "k={k} d={d}: {:?}",
                    blocked.max_abs_diff(&naive)
                );
            }
        }
    }

    #[test]
    fn blocked_syrk_leaves_upper_triangle_untouched() {
        let k = 6;
        let p = panel_of(10, k, 3);
        let mut c = Mat::from_fn(k, k, |i, j| if j > i { 99.0 } else { 0.0 });
        syrk_ld_lower(&mut c, 2.0, &p, k);
        for i in 0..k {
            for j in i + 1..k {
                assert_eq!(c[(i, j)], 99.0, "upper ({i},{j}) was written");
            }
        }
    }

    #[test]
    fn gemv_t_matches_axpy_loop() {
        for &k in &[1usize, 3, 8, 16, 17] {
            for &d in &[0usize, 1, 2, 3, 4, 5, 8, 63, 100] {
                let p = panel_of(d, k, 77);
                let w: Vec<f64> = (0..d).map(|i| (i as f64 * 0.3).cos()).collect();
                let mut fused = vec![0.5; k];
                gemv_t_acc(&mut fused, &p, &w);
                let mut naive = vec![0.5; k];
                for (row, &wl) in p.chunks_exact(k).zip(&w) {
                    crate::vecops::axpy(wl, row, &mut naive);
                }
                for (a, b) in fused.iter().zip(&naive) {
                    assert!((a - b).abs() < 1e-12, "k={k} d={d}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn zero_rows_are_noops() {
        let mut c = Mat::identity(4);
        syrk_ld_lower(&mut c, 3.0, &[], 4);
        assert_eq!(c, Mat::identity(4));
        let mut y = vec![1.0; 4];
        gemv_t_acc(&mut y, &[], &[]);
        assert_eq!(y, vec![1.0; 4]);
    }
}
