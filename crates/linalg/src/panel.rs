//! Blocked panel kernels for the item-update hot path.
//!
//! The Gibbs item update builds `Λ* = Λ + α Σ_j v_j v_jᵀ` and
//! `b = Λμ + α Σ_j (r_j − m) v_j` from the counterpart rows `v_j` of an
//! item's ratings. Folding ratings in one at a time (d rank-1 `syrk_lower`
//! calls + d `axpy` calls) touches the whole `K × K` accumulator once per
//! rating and gives the CPU a single dependent accumulation chain per
//! element. The D-BPMF implementation (Vander Aa et al.) instead gathers the
//! counterpart rows into a contiguous row-major `d × K` *panel* and performs
//! one rank-d update — BLAS-3 shape, so the panel is streamed once per
//! output tile and the accumulator element is computed with independent FMA
//! chains held in registers.
//!
//! Two kernels live here:
//!
//! * [`syrk_ld_lower`] — `C[lower] += α · PᵀP` for a row-major `d × K`
//!   panel `P`: 2×2 register tiles over the output, two independent FMA
//!   chains down the panel, cache-blocked over `d` so the streamed panel
//!   block stays L1/L2-resident across output tiles.
//! * [`gemv_t_acc`] — `y += Pᵀ w`: the information-vector accumulation,
//!   processing four panel rows per pass so each output element gets four
//!   independent products per iteration.
//!
//! Both kernels are exact re-associations of the per-rating loop; the
//! property tests in `tests/panel_properties.rs` pin them to the naive
//! reference within 1e-12 across shapes (including `d = 0, 1` and sizes
//! that are not multiples of any block).
//!
//! Both dispatch through the shared [`crate::simd`] layer: on AVX2+FMA
//! hardware an explicit 4-lane kernel takes over (two output rows share
//! every loaded panel vector in `syrk`, eight broadcast rows fold into the
//! information vector at once in `gemv`), and `BPMF_NO_SIMD=1` — or any
//! non-x86_64 target — pins the portable arms
//! ([`syrk_ld_lower_scalar`]/[`gemv_t_acc_scalar`], also the references
//! the property tests compare against).

use crate::mat::Mat;
use crate::simd;
use crate::vecops;

/// Row count of one cache block of the panel. `PANEL_BLOCK · K` doubles are
/// streamed per output tile pass; at `K = 128` a 64-row block is 64 KiB —
/// L2-resident, and re-read once per 2-column output tile.
pub const PANEL_BLOCK: usize = 64;

/// Symmetric rank-`d` accumulation on the **lower** triangle from a
/// row-major panel: `c[lower] += alpha * panelᵀ · panel`.
///
/// `panel` holds `d = panel.len() / k` rows of length `k`, where `k` must
/// equal the order of `c`. Only the lower triangle of `c` is written (the
/// Cholesky kernels read only the lower triangle). `d = 0` is a no-op.
///
/// Panics if `c` is not square, `k` does not match its order, or
/// `panel.len()` is not a multiple of `k`.
pub fn syrk_ld_lower(c: &mut Mat, alpha: f64, panel: &[f64], k: usize) {
    if !syrk_check(c, panel, k) {
        return;
    }
    if simd::simd_enabled() {
        #[cfg(target_arch = "x86_64")]
        {
            // Cache-block over the panel rows: every output tile re-reads
            // the current block, so keep it small enough to stay resident.
            for block in panel.chunks(PANEL_BLOCK * k) {
                // SAFETY: `simd_enabled` guarantees AVX2+FMA; shapes were
                // validated by `syrk_check`.
                unsafe { syrk_block_avx2(c, alpha, block, k) };
            }
            return;
        }
    }
    for block in panel.chunks(PANEL_BLOCK * k) {
        syrk_block(c, alpha, block, k);
    }
}

/// [`syrk_ld_lower`] pinned to the portable scalar arm — the reference the
/// property tests and the `perf_snapshot` SIMD-ratio section run against.
pub fn syrk_ld_lower_scalar(c: &mut Mat, alpha: f64, panel: &[f64], k: usize) {
    if !syrk_check(c, panel, k) {
        return;
    }
    for block in panel.chunks(PANEL_BLOCK * k) {
        syrk_block(c, alpha, block, k);
    }
}

/// Shared shape validation; returns false for the `k = 0` no-op.
fn syrk_check(c: &Mat, panel: &[f64], k: usize) -> bool {
    let n = c.rows();
    assert_eq!(n, c.cols(), "syrk_ld_lower requires a square matrix");
    assert_eq!(n, k, "syrk_ld_lower panel width must match matrix order");
    if k == 0 {
        return false;
    }
    assert_eq!(
        panel.len() % k,
        0,
        "syrk_ld_lower panel length must be a multiple of k"
    );
    true
}

/// One cache block of the rank-d update: 2×2 register tiles over the lower
/// triangle of `c`, two independent accumulation chains down the block.
fn syrk_block(c: &mut Mat, alpha: f64, p: &[f64], k: usize) {
    let k_even = k & !1;
    let mut i = 0;
    while i < k_even {
        let mut j = 0;
        while j <= i {
            // Tile rows {i, i+1} × cols {j, j+1}. Two chains (even/odd
            // panel rows) per element keep eight FMAs in flight.
            let (mut a00, mut a01, mut a10, mut a11) = (0.0f64, 0.0, 0.0, 0.0);
            let (mut b00, mut b01, mut b10, mut b11) = (0.0f64, 0.0, 0.0, 0.0);
            let mut rows = p.chunks_exact(2 * k);
            for pair in rows.by_ref() {
                let (r0, r1) = pair.split_at(k);
                let (x0, x1, y0, y1) = (r0[i], r0[i + 1], r0[j], r0[j + 1]);
                a00 += x0 * y0;
                a01 += x0 * y1;
                a10 += x1 * y0;
                a11 += x1 * y1;
                let (x0, x1, y0, y1) = (r1[i], r1[i + 1], r1[j], r1[j + 1]);
                b00 += x0 * y0;
                b01 += x0 * y1;
                b10 += x1 * y0;
                b11 += x1 * y1;
            }
            let r0 = rows.remainder();
            if !r0.is_empty() {
                let (x0, x1, y0, y1) = (r0[i], r0[i + 1], r0[j], r0[j + 1]);
                a00 += x0 * y0;
                a01 += x0 * y1;
                a10 += x1 * y0;
                a11 += x1 * y1;
            }
            c[(i, j)] += alpha * (a00 + b00);
            c[(i + 1, j)] += alpha * (a10 + b10);
            c[(i + 1, j + 1)] += alpha * (a11 + b11);
            if j < i {
                // On the diagonal tile (j == i) this element is strictly
                // upper-triangular; everywhere else it belongs to row i.
                c[(i, j + 1)] += alpha * (a01 + b01);
            }
            j += 2;
        }
        i += 2;
    }
    if k_even < k {
        // Odd k: the last row of C, computed as plain dots down the block.
        let i = k - 1;
        for j in 0..=i {
            let mut s0 = 0.0f64;
            let mut s1 = 0.0f64;
            let mut rows = p.chunks_exact(2 * k);
            for pair in rows.by_ref() {
                let (r0, r1) = pair.split_at(k);
                s0 += r0[i] * r0[j];
                s1 += r1[i] * r1[j];
            }
            let rem = rows.remainder();
            if !rem.is_empty() {
                s0 += rem[i] * rem[j];
            }
            c[(i, j)] += alpha * (s0 + s1);
        }
    }
}

/// Scalar dots `c[row][j0..=jmax] += alpha · Σ_r p[r][row]·p[r][j]` — the
/// ragged columns at the triangle edge the vector tiles cannot cover.
/// Two accumulation chains (even/odd panel rows) per element, as in
/// [`syrk_block`].
fn syrk_tail_cols(
    c: &mut Mat,
    alpha: f64,
    p: &[f64],
    k: usize,
    row: usize,
    j0: usize,
    jmax: usize,
) {
    for j in j0..=jmax {
        let mut s0 = 0.0f64;
        let mut s1 = 0.0f64;
        let mut rows = p.chunks_exact(2 * k);
        for pair in rows.by_ref() {
            let (r0, r1) = pair.split_at(k);
            s0 += r0[row] * r0[j];
            s1 += r1[row] * r1[j];
        }
        let rem = rows.remainder();
        if !rem.is_empty() {
            s0 += rem[row] * rem[j];
        }
        c[(row, j)] += alpha * (s0 + s1);
    }
}

/// AVX2+FMA arm of one cache block of the rank-d update.
///
/// Output rows are walked in pairs so every loaded 4-lane panel segment
/// feeds two rows of `C`; panel rows are consumed two at a time into
/// disjoint (even/odd) accumulator sets, keeping eight independent FMA
/// chains in flight per 2×8 tile. Columns the 8- and 4-wide tiles cannot
/// reach (the ragged triangle edge, at most seven per row pair) fall back
/// to [`syrk_tail_cols`].
///
/// # Safety
///
/// Caller must ensure AVX2+FMA support and `syrk_check`-validated shapes.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn syrk_block_avx2(c: &mut Mat, alpha: f64, p: &[f64], k: usize) {
    use std::arch::x86_64::*;
    let d = p.len() / k;
    let pp = p.as_ptr();
    let av = _mm256_set1_pd(alpha);
    let k_even = k & !1;
    let mut i = 0;
    while i < k_even {
        // Rows {i, i+1} of C. Vector tiles stop at column i (row i's
        // triangle edge); the tail helper finishes both rows. The raw
        // output pointer is re-derived per pair so the `&mut Mat` reborrow
        // inside `syrk_tail_cols` never overlaps its lifetime.
        let cp = c.as_mut_slice().as_mut_ptr();
        let mut j = 0usize;
        while j + 8 <= i + 1 {
            let mut a0l = _mm256_setzero_pd();
            let mut a0h = _mm256_setzero_pd();
            let mut a1l = _mm256_setzero_pd();
            let mut a1h = _mm256_setzero_pd();
            let mut b0l = _mm256_setzero_pd();
            let mut b0h = _mm256_setzero_pd();
            let mut b1l = _mm256_setzero_pd();
            let mut b1h = _mm256_setzero_pd();
            let mut r = 0usize;
            while r + 2 <= d {
                let e = pp.add(r * k);
                let o = pp.add((r + 1) * k);
                let x0 = _mm256_set1_pd(*e.add(i));
                let x1 = _mm256_set1_pd(*e.add(i + 1));
                let pl = _mm256_loadu_pd(e.add(j));
                let ph = _mm256_loadu_pd(e.add(j + 4));
                a0l = _mm256_fmadd_pd(x0, pl, a0l);
                a0h = _mm256_fmadd_pd(x0, ph, a0h);
                a1l = _mm256_fmadd_pd(x1, pl, a1l);
                a1h = _mm256_fmadd_pd(x1, ph, a1h);
                let y0 = _mm256_set1_pd(*o.add(i));
                let y1 = _mm256_set1_pd(*o.add(i + 1));
                let ql = _mm256_loadu_pd(o.add(j));
                let qh = _mm256_loadu_pd(o.add(j + 4));
                b0l = _mm256_fmadd_pd(y0, ql, b0l);
                b0h = _mm256_fmadd_pd(y0, qh, b0h);
                b1l = _mm256_fmadd_pd(y1, ql, b1l);
                b1h = _mm256_fmadd_pd(y1, qh, b1h);
                r += 2;
            }
            if r < d {
                let e = pp.add(r * k);
                let x0 = _mm256_set1_pd(*e.add(i));
                let x1 = _mm256_set1_pd(*e.add(i + 1));
                let pl = _mm256_loadu_pd(e.add(j));
                let ph = _mm256_loadu_pd(e.add(j + 4));
                a0l = _mm256_fmadd_pd(x0, pl, a0l);
                a0h = _mm256_fmadd_pd(x0, ph, a0h);
                a1l = _mm256_fmadd_pd(x1, pl, a1l);
                a1h = _mm256_fmadd_pd(x1, ph, a1h);
            }
            let c0 = cp.add(i * k + j);
            let c1 = cp.add((i + 1) * k + j);
            _mm256_storeu_pd(
                c0,
                _mm256_fmadd_pd(av, _mm256_add_pd(a0l, b0l), _mm256_loadu_pd(c0)),
            );
            _mm256_storeu_pd(
                c0.add(4),
                _mm256_fmadd_pd(av, _mm256_add_pd(a0h, b0h), _mm256_loadu_pd(c0.add(4))),
            );
            _mm256_storeu_pd(
                c1,
                _mm256_fmadd_pd(av, _mm256_add_pd(a1l, b1l), _mm256_loadu_pd(c1)),
            );
            _mm256_storeu_pd(
                c1.add(4),
                _mm256_fmadd_pd(av, _mm256_add_pd(a1h, b1h), _mm256_loadu_pd(c1.add(4))),
            );
            j += 8;
        }
        if j + 4 <= i + 1 {
            let mut a0 = _mm256_setzero_pd();
            let mut a1 = _mm256_setzero_pd();
            let mut b0 = _mm256_setzero_pd();
            let mut b1 = _mm256_setzero_pd();
            let mut r = 0usize;
            while r + 2 <= d {
                let e = pp.add(r * k);
                let o = pp.add((r + 1) * k);
                let pl = _mm256_loadu_pd(e.add(j));
                a0 = _mm256_fmadd_pd(_mm256_set1_pd(*e.add(i)), pl, a0);
                a1 = _mm256_fmadd_pd(_mm256_set1_pd(*e.add(i + 1)), pl, a1);
                let ql = _mm256_loadu_pd(o.add(j));
                b0 = _mm256_fmadd_pd(_mm256_set1_pd(*o.add(i)), ql, b0);
                b1 = _mm256_fmadd_pd(_mm256_set1_pd(*o.add(i + 1)), ql, b1);
                r += 2;
            }
            if r < d {
                let e = pp.add(r * k);
                let pl = _mm256_loadu_pd(e.add(j));
                a0 = _mm256_fmadd_pd(_mm256_set1_pd(*e.add(i)), pl, a0);
                a1 = _mm256_fmadd_pd(_mm256_set1_pd(*e.add(i + 1)), pl, a1);
            }
            let c0 = cp.add(i * k + j);
            let c1 = cp.add((i + 1) * k + j);
            _mm256_storeu_pd(
                c0,
                _mm256_fmadd_pd(av, _mm256_add_pd(a0, b0), _mm256_loadu_pd(c0)),
            );
            _mm256_storeu_pd(
                c1,
                _mm256_fmadd_pd(av, _mm256_add_pd(a1, b1), _mm256_loadu_pd(c1)),
            );
            j += 4;
        }
        syrk_tail_cols(c, alpha, p, k, i, j, i);
        syrk_tail_cols(c, alpha, p, k, i + 1, j, i + 1);
        i += 2;
    }
    if k_even < k {
        // Odd k: the last row, ragged by construction.
        syrk_tail_cols(c, alpha, p, k, k - 1, 0, k - 1);
    }
}

/// Fused transposed panel–vector accumulation: `y += panelᵀ · w`.
///
/// `panel` is row-major with rows of length `y.len()`; `w` has one weight
/// per panel row. This is the information-vector update `b += Σ_l w_l v_l`
/// done four rows per pass, so each element of `y` receives four
/// independent products per iteration instead of one dependent `axpy`
/// chain per rating.
///
/// Panics if `panel.len() != w.len() * y.len()`.
pub fn gemv_t_acc(y: &mut [f64], panel: &[f64], w: &[f64]) {
    let k = y.len();
    assert_eq!(
        panel.len(),
        w.len() * k,
        "gemv_t_acc panel/weight shape mismatch"
    );
    if k == 0 {
        return;
    }
    if simd::simd_enabled() {
        #[cfg(target_arch = "x86_64")]
        {
            // SAFETY: `simd_enabled` guarantees AVX2+FMA; shapes were
            // validated above.
            unsafe { gemv_t_acc_avx2(y, panel, w) };
            return;
        }
    }
    gemv_t_scalar(y, panel, w);
}

/// [`gemv_t_acc`] pinned to the portable scalar arm — the reference the
/// property tests and the `perf_snapshot` SIMD-ratio section run against.
pub fn gemv_t_acc_scalar(y: &mut [f64], panel: &[f64], w: &[f64]) {
    let k = y.len();
    assert_eq!(
        panel.len(),
        w.len() * k,
        "gemv_t_acc panel/weight shape mismatch"
    );
    if k == 0 {
        return;
    }
    gemv_t_scalar(y, panel, w);
}

/// Portable arm: four panel rows fused per pass (see [`gemv_t_acc`]).
fn gemv_t_scalar(y: &mut [f64], panel: &[f64], w: &[f64]) {
    let k = y.len();
    let mut rows = panel.chunks_exact(4 * k);
    let mut weights = w.chunks_exact(4);
    for (quad, wq) in rows.by_ref().zip(weights.by_ref()) {
        let (r0, rest) = quad.split_at(k);
        let (r1, rest) = rest.split_at(k);
        let (r2, r3) = rest.split_at(k);
        let (w0, w1, w2, w3) = (wq[0], wq[1], wq[2], wq[3]);
        for ((((yi, a), b), c), d) in y.iter_mut().zip(r0).zip(r1).zip(r2).zip(r3) {
            *yi += (w0 * a + w1 * b) + (w2 * c + w3 * d);
        }
    }
    for (row, &wl) in rows.remainder().chunks_exact(k).zip(weights.remainder()) {
        for (yi, &v) in y.iter_mut().zip(row) {
            *yi += wl * v;
        }
    }
}

/// AVX2+FMA arm: eight broadcast weights folded into `y` in 32-element
/// blocks (8 × 4-lane accumulators — the same discipline as
/// `Mat::matvec_t_into`'s serving scan, reused here for the Gibbs
/// information-vector accumulation).
///
/// # Safety
///
/// Caller must ensure AVX2+FMA support and `panel.len() == w.len() * y.len()`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn gemv_t_acc_avx2(y: &mut [f64], panel: &[f64], w: &[f64]) {
    use std::arch::x86_64::*;
    let k = y.len();
    let mut octs = panel.chunks_exact(8 * k);
    let mut weights = w.chunks_exact(8);
    for (oct, wo) in octs.by_ref().zip(weights.by_ref()) {
        let base = oct.as_ptr();
        let xv: [__m256d; 8] = std::array::from_fn(|r| _mm256_set1_pd(wo[r]));
        let yp = y.as_mut_ptr();
        let mut i = 0usize;
        while i + 32 <= k {
            let mut acc: [__m256d; 8] = std::array::from_fn(|l| _mm256_loadu_pd(yp.add(i + 4 * l)));
            for (r, xr) in xv.iter().enumerate() {
                let rp = base.add(r * k + i);
                for (l, a) in acc.iter_mut().enumerate() {
                    *a = _mm256_fmadd_pd(*xr, _mm256_loadu_pd(rp.add(4 * l)), *a);
                }
            }
            for (l, a) in acc.iter().enumerate() {
                _mm256_storeu_pd(yp.add(i + 4 * l), *a);
            }
            i += 32;
        }
        while i + 4 <= k {
            let mut a = _mm256_loadu_pd(yp.add(i));
            for (r, xr) in xv.iter().enumerate() {
                a = _mm256_fmadd_pd(*xr, _mm256_loadu_pd(base.add(r * k + i)), a);
            }
            _mm256_storeu_pd(yp.add(i), a);
            i += 4;
        }
        while i < k {
            let mut s = *y.get_unchecked(i);
            for (r, &xr) in wo.iter().enumerate() {
                s += xr * *base.add(r * k + i);
            }
            *y.get_unchecked_mut(i) = s;
            i += 1;
        }
    }
    for (row, &wl) in octs.remainder().chunks_exact(k).zip(weights.remainder()) {
        vecops::axpy(wl, row, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_syrk(c: &mut Mat, alpha: f64, panel: &[f64], k: usize) {
        for row in panel.chunks_exact(k) {
            c.syrk_lower(alpha, row);
        }
    }

    fn panel_of(d: usize, k: usize, seed: u64) -> Vec<f64> {
        (0..d * k)
            .map(|i| {
                let h = (i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15 ^ seed);
                ((h >> 12) as f64 / (1u64 << 52) as f64) - 0.5
            })
            .collect()
    }

    #[test]
    fn blocked_syrk_matches_per_rating_reference() {
        for &k in &[1usize, 2, 3, 4, 7, 8, 16, 17] {
            for &d in &[0usize, 1, 2, 3, 5, 63, 64, 65, 130, 200] {
                let p = panel_of(d, k, 11);
                let mut blocked = Mat::zeros(k, k);
                syrk_ld_lower(&mut blocked, 1.7, &p, k);
                let mut naive = Mat::zeros(k, k);
                naive_syrk(&mut naive, 1.7, &p, k);
                assert!(
                    blocked.max_abs_diff(&naive) < 1e-12,
                    "k={k} d={d}: {:?}",
                    blocked.max_abs_diff(&naive)
                );
            }
        }
    }

    #[test]
    fn blocked_syrk_leaves_upper_triangle_untouched() {
        let k = 6;
        let p = panel_of(10, k, 3);
        let mut c = Mat::from_fn(k, k, |i, j| if j > i { 99.0 } else { 0.0 });
        syrk_ld_lower(&mut c, 2.0, &p, k);
        for i in 0..k {
            for j in i + 1..k {
                assert_eq!(c[(i, j)], 99.0, "upper ({i},{j}) was written");
            }
        }
    }

    #[test]
    fn gemv_t_matches_axpy_loop() {
        for &k in &[1usize, 3, 8, 16, 17] {
            for &d in &[0usize, 1, 2, 3, 4, 5, 8, 63, 100] {
                let p = panel_of(d, k, 77);
                let w: Vec<f64> = (0..d).map(|i| (i as f64 * 0.3).cos()).collect();
                let mut fused = vec![0.5; k];
                gemv_t_acc(&mut fused, &p, &w);
                let mut naive = vec![0.5; k];
                for (row, &wl) in p.chunks_exact(k).zip(&w) {
                    crate::vecops::axpy(wl, row, &mut naive);
                }
                for (a, b) in fused.iter().zip(&naive) {
                    assert!((a - b).abs() < 1e-12, "k={k} d={d}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn zero_rows_are_noops() {
        let mut c = Mat::identity(4);
        syrk_ld_lower(&mut c, 3.0, &[], 4);
        assert_eq!(c, Mat::identity(4));
        let mut y = vec![1.0; 4];
        gemv_t_acc(&mut y, &[], &[]);
        assert_eq!(y, vec![1.0; 4]);
    }
}
