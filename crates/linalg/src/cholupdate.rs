//! Rank-one update and downdate of a Cholesky factor.
//!
//! Given `L` with `L Lᵀ = A`, [`chol_update`] rewrites `L` so that
//! `L Lᵀ = A + x xᵀ` in `O(n²)` — this is the "rank-one update" item kernel
//! of the paper (Fig. 2): an item with `d` ratings folds each `√α·v` rating
//! vector into the prior factor for `O(d·K²)` total, skipping the final
//! `O(K³)` factorization entirely. For small `d` this beats rebuilding the
//! precision matrix and factoring it.

use crate::error::LinalgError;
use crate::mat::Mat;

/// Update `l` in place so that `(L Lᵀ) ← (L Lᵀ) + x xᵀ`.
///
/// `x` is used as scratch and destroyed. This is the hyperbolic-rotation-free
/// (Givens) formulation, unconditionally stable for updates.
pub fn chol_update(l: &mut Mat, x: &mut [f64]) {
    let n = l.rows();
    assert_eq!(n, l.cols(), "chol_update requires a square factor");
    assert_eq!(x.len(), n, "chol_update vector length mismatch");
    for k in 0..n {
        let lkk = l[(k, k)];
        let xk = x[k];
        let r = lkk.hypot(xk);
        let c = r / lkk;
        let s = xk / lkk;
        l[(k, k)] = r;
        if k + 1 < n {
            // Column k of L lives strided in row-major storage; the loop is
            // short (≤ K) and the stride is a whole row, so this stays cheap.
            for i in k + 1..n {
                let lik = (l[(i, k)] + s * x[i]) / c;
                x[i] = c * x[i] - s * lik;
                l[(i, k)] = lik;
            }
        }
    }
}

/// Downdate `l` in place so that `(L Lᵀ) ← (L Lᵀ) - x xᵀ`.
///
/// Fails with [`LinalgError::NotPositiveDefinite`] if the downdated matrix
/// would lose positive definiteness. `x` is used as scratch and destroyed.
pub fn chol_downdate(l: &mut Mat, x: &mut [f64]) -> Result<(), LinalgError> {
    let n = l.rows();
    assert_eq!(n, l.cols(), "chol_downdate requires a square factor");
    assert_eq!(x.len(), n, "chol_downdate vector length mismatch");
    for k in 0..n {
        let lkk = l[(k, k)];
        let xk = x[k];
        let d = lkk * lkk - xk * xk;
        if d <= 0.0 {
            return Err(LinalgError::NotPositiveDefinite { pivot: k });
        }
        let r = d.sqrt();
        let c = r / lkk;
        let s = xk / lkk;
        l[(k, k)] = r;
        for i in k + 1..n {
            let lik = (l[(i, k)] - s * x[i]) / c;
            x[i] = c * x[i] - s * lik;
            l[(i, k)] = lik;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chol::Cholesky;

    fn spd(n: usize, seed: u64) -> Mat {
        let b = Mat::from_fn(n, n, |i, j| {
            let h = (i as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(j as u64)
                .wrapping_add(seed)
                .wrapping_mul(1442695040888963407);
            (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        });
        let mut a = b.matmul_transb(&b);
        for i in 0..n {
            a[(i, i)] += n as f64 * 0.5;
        }
        a
    }

    #[test]
    fn update_matches_refactorization() {
        for n in [1, 2, 5, 16] {
            let a = spd(n, 7);
            let x: Vec<f64> = (0..n).map(|i| 0.3 * (i as f64 + 1.0).sin()).collect();

            let mut expected = a.clone();
            expected.syrk_lower(1.0, &x);
            let expected_l = Cholesky::factor(&expected).unwrap();

            let mut chol = Cholesky::factor(&a).unwrap();
            let mut scratch = x.clone();
            chol_update(chol.l_mut(), &mut scratch);

            assert!(
                chol.l().max_abs_diff(expected_l.l()) < 1e-9,
                "update mismatch for n = {n}"
            );
        }
    }

    #[test]
    fn downdate_reverses_update() {
        let a = spd(8, 3);
        let x: Vec<f64> = (0..8).map(|i| 0.2 * (i as f64 - 4.0)).collect();
        let original = Cholesky::factor(&a).unwrap();

        let mut chol = original.clone();
        let mut s = x.clone();
        chol_update(chol.l_mut(), &mut s);
        let mut s = x.clone();
        chol_downdate(chol.l_mut(), &mut s).unwrap();

        assert!(chol.l().max_abs_diff(original.l()) < 1e-9);
    }

    #[test]
    fn downdate_detects_loss_of_positive_definiteness() {
        let a = Mat::identity(3);
        let mut chol = Cholesky::factor(&a).unwrap();
        let mut x = vec![2.0, 0.0, 0.0]; // I - x xᵀ has a negative eigenvalue
        assert!(chol_downdate(chol.l_mut(), &mut x).is_err());
    }

    #[test]
    fn repeated_updates_accumulate() {
        // Folding d rating vectors one at a time must equal the batch build —
        // this is exactly the equivalence the rank-one item kernel relies on.
        let n = 6;
        let a = spd(n, 11);
        let vectors: Vec<Vec<f64>> = (0..10)
            .map(|r| (0..n).map(|i| ((r * n + i) as f64 * 0.37).cos()).collect())
            .collect();

        let mut batch = a.clone();
        for v in &vectors {
            batch.syrk_lower(1.0, v);
        }
        let batch_l = Cholesky::factor(&batch).unwrap();

        let mut inc = Cholesky::factor(&a).unwrap();
        for v in &vectors {
            let mut s = v.clone();
            chol_update(inc.l_mut(), &mut s);
        }

        assert!(inc.l().max_abs_diff(batch_l.l()) < 1e-8);
    }
}
