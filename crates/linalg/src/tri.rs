//! Triangular solves against a lower Cholesky factor.

use crate::mat::Mat;
use crate::vecops;

/// Solve `L x = b` in place (forward substitution), where `l` holds a lower
/// triangular factor in its lower triangle. `b` is overwritten with `x`.
pub fn solve_lower(l: &Mat, b: &mut [f64]) {
    let n = l.rows();
    assert_eq!(n, l.cols(), "solve_lower requires a square factor");
    assert_eq!(b.len(), n, "solve_lower rhs length mismatch");
    for i in 0..n {
        let row = &l.row(i)[..i];
        let s = vecops::dot(row, &b[..i]);
        b[i] = (b[i] - s) / l[(i, i)];
    }
}

/// Solve `Lᵀ x = b` in place (back substitution) using the lower triangle of
/// `l`. `b` is overwritten with `x`.
///
/// Together with [`solve_lower`] this solves the SPD system `L Lᵀ x = b`;
/// alone it maps an i.i.d. standard normal vector `z` to a draw with
/// covariance `(L Lᵀ)⁻¹`, which is exactly how the BPMF item sampler turns a
/// precision Cholesky factor into posterior noise.
pub fn solve_lower_transpose(l: &Mat, b: &mut [f64]) {
    let n = l.rows();
    assert_eq!(
        n,
        l.cols(),
        "solve_lower_transpose requires a square factor"
    );
    assert_eq!(b.len(), n, "solve_lower_transpose rhs length mismatch");
    for i in (0..n).rev() {
        // Lᵀ[i, j] = L[j, i] for j > i: walk column i below the diagonal.
        let mut s = b[i];
        for j in i + 1..n {
            s -= l[(j, i)] * b[j];
        }
        b[i] = s / l[(i, i)];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower_example() -> Mat {
        // L = [2 0 0; 1 3 0; -1 0.5 1.5]
        Mat::from_row_major(3, 3, vec![2.0, 0.0, 0.0, 1.0, 3.0, 0.0, -1.0, 0.5, 1.5])
    }

    #[test]
    fn forward_substitution_solves_lx_eq_b() {
        let l = lower_example();
        let x_true = [1.0, -2.0, 0.5];
        let mut b = l.matvec(&x_true);
        solve_lower(&l, &mut b);
        for (got, want) in b.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn back_substitution_solves_ltx_eq_b() {
        let l = lower_example();
        let lt = l.transpose();
        let x_true = [0.25, 4.0, -1.0];
        let mut b = lt.matvec(&x_true);
        solve_lower_transpose(&l, &mut b);
        for (got, want) in b.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-12);
        }
    }
}
