#![warn(missing_docs)]

//! Dense linear algebra for the BPMF reproduction.
//!
//! This crate replaces the role Eigen plays in the paper's C++ implementation:
//! it provides exactly the kernels the BPMF Gibbs sampler is built from,
//! tuned for the small-to-medium square matrices (`K × K`, `K` typically
//! 8–128) that dominate its runtime:
//!
//! * [`Mat`] — a row-major dense matrix with the usual constructors and
//!   element-wise operations,
//! * serial Cholesky factorization ([`Cholesky`]),
//! * a blocked, multi-threaded Cholesky ([`cholesky_in_place_parallel`]) used
//!   for items with very many ratings (paper, Fig. 2),
//! * rank-one Cholesky update/downdate ([`chol_update`], [`chol_downdate`])
//!   used by the cheap per-rating update kernel,
//! * blocked panel kernels ([`syrk_ld_lower`], [`gemv_t_acc`]) that fold a
//!   gathered `d × K` panel of counterpart rows into the item precision and
//!   information vector as one rank-d update (the mid/heavy item hot path),
//! * a register-tiled, cache-blocked GEMM ([`gemm_into`], module
//!   [`gemm`]) — the multi-user micro-batch serving engine behind
//!   `Recommender::score_block`,
//! * one shared runtime SIMD dispatch layer ([`simd`]): every explicitly
//!   vectorized kernel (GEMM, the panel kernels, `Mat::matvec_t_into`)
//!   gates its AVX2+FMA arm on [`simd::simd_enabled`], and
//!   `BPMF_NO_SIMD=1` forces the scalar arms process-wide,
//! * a persistent fork-join pool ([`kernel_pool`]) for intra-item
//!   parallelism without per-item thread spawns,
//! * triangular solves and the vector helpers ([`vecops`]) the sampler's hot
//!   loops use.
//!
//! Everything is `f64`; the paper's workloads are well inside `f64` range and
//! the Gibbs sampler is sensitive to the conditioning of the precision
//! matrices, so no `f32` path is offered.
//!
//! # Example
//!
//! ```
//! use bpmf_linalg::{Mat, Cholesky};
//!
//! // Solve the SPD system (A + I) x = b with a Cholesky factorization.
//! let mut a = Mat::identity(3);
//! a[(0, 1)] = 0.5;
//! a[(1, 0)] = 0.5;
//! let chol = Cholesky::factor(&a).unwrap();
//! let mut x = vec![1.0, 2.0, 3.0];
//! chol.solve_in_place(&mut x);
//! let r = a.matvec(&x);
//! assert!((r[0] - 1.0).abs() < 1e-12);
//! ```

mod chol;
mod chol_par;
mod cholupdate;
mod error;
pub mod gemm;
mod mat;
mod matwriter;
mod panel;
mod par;
mod pool;
pub mod simd;
mod tri;
pub mod vecops;

pub use chol::cholesky_in_place;
pub use chol::Cholesky;
pub use chol_par::{cholesky_in_place_parallel, DEFAULT_BLOCK};
pub use cholupdate::{chol_downdate, chol_update};
pub use error::LinalgError;
pub use gemm::{
    gemm_gathered_rows_packed, gemm_into, gemm_into_scalar, gemm_packed_into, PackedB, GEMM_KC,
    GEMM_NC,
};
pub use mat::Mat;
pub use matwriter::MatWriter;
pub use panel::{gemv_t_acc, gemv_t_acc_scalar, syrk_ld_lower, syrk_ld_lower_scalar, PANEL_BLOCK};
pub use par::par_row_chunks;
pub use pool::{kernel_pool, KernelPool};
pub use simd::simd_enabled;
pub use tri::{solve_lower, solve_lower_transpose};
