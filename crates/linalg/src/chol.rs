//! Serial Cholesky factorization.

use crate::error::LinalgError;
use crate::mat::Mat;
use crate::tri::{solve_lower, solve_lower_transpose};
use crate::vecops;

/// Smallest pivot accepted before declaring the matrix non-SPD.
///
/// BPMF precision matrices are `Λ_prior + α Σ v vᵀ` with `Λ_prior` sampled
/// from a Wishart, so they are comfortably positive definite; a pivot this
/// small signals corrupted input rather than a borderline case.
const MIN_PIVOT: f64 = 1e-300;

/// Factor the lower triangle of `m` in place: on success the lower triangle
/// holds `L` with `L Lᵀ = A`, and the strict upper triangle is zeroed.
///
/// Only the lower triangle of the input is read, so callers that build
/// precision matrices with [`Mat::syrk_lower`] never need to symmetrize.
///
/// This is the row-oriented (left-looking) variant: for row-major storage
/// every inner product streams two contiguous row prefixes, which is the
/// layout-friendly choice for the `K × K` matrices BPMF solves per item.
pub fn cholesky_in_place(m: &mut Mat) -> Result<(), LinalgError> {
    let n = m.rows();
    assert_eq!(n, m.cols(), "cholesky requires a square matrix");
    for i in 0..n {
        for j in 0..=i {
            // inner = Σ_{k<j} L[i][k] L[j][k]
            let inner = if i == j {
                let row = &m.row(i)[..j];
                vecops::dot(row, row)
            } else {
                let (row_j, row_i) = m.two_rows_mut(j, i);
                vecops::dot(&row_i[..j], &row_j[..j])
            };
            let s = m[(i, j)] - inner;
            if i == j {
                if s <= MIN_PIVOT {
                    return Err(LinalgError::NotPositiveDefinite { pivot: i });
                }
                m[(i, i)] = s.sqrt();
            } else {
                m[(i, j)] = s / m[(j, j)];
            }
        }
        // Zero the strict upper part of row i so the factor is clean.
        for j in i + 1..n {
            m[(i, j)] = 0.0;
        }
    }
    Ok(())
}

/// An SPD factorization `A = L Lᵀ` with solve/inverse/log-det helpers.
#[derive(Clone, Debug)]
pub struct Cholesky {
    l: Mat,
}

impl Cholesky {
    /// Factor a copy of `a` (only its lower triangle is read).
    pub fn factor(a: &Mat) -> Result<Self, LinalgError> {
        let mut l = a.clone();
        cholesky_in_place(&mut l)?;
        Ok(Cholesky { l })
    }

    /// Factor `a` in place, consuming it.
    pub fn factor_in_place(mut a: Mat) -> Result<Self, LinalgError> {
        cholesky_in_place(&mut a)?;
        Ok(Cholesky { l: a })
    }

    /// Wrap an existing lower factor without checking it.
    ///
    /// The caller promises `l` is lower triangular with positive diagonal;
    /// used by the rank-one update path which maintains a factor
    /// incrementally.
    pub fn from_lower_unchecked(l: Mat) -> Self {
        Cholesky { l }
    }

    /// The lower factor `L`.
    pub fn l(&self) -> &Mat {
        &self.l
    }

    /// Mutable access to the factor (for in-place rank-one updates).
    pub fn l_mut(&mut self) -> &mut Mat {
        &mut self.l
    }

    /// Order of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solve `A x = b` in place.
    pub fn solve_in_place(&self, b: &mut [f64]) {
        solve_lower(&self.l, b);
        solve_lower_transpose(&self.l, b);
    }

    /// Solve `Lᵀ x = b` in place.
    ///
    /// Mapping i.i.d. standard normals through this produces a draw with
    /// covariance `A⁻¹` — the precision-form sampling step of BPMF.
    pub fn solve_lt_in_place(&self, b: &mut [f64]) {
        solve_lower_transpose(&self.l, b);
    }

    /// Solve `L x = b` in place.
    pub fn solve_l_in_place(&self, b: &mut [f64]) {
        solve_lower(&self.l, b);
    }

    /// Explicit inverse `A⁻¹` (dense). Prefer the solves in hot paths.
    pub fn inverse(&self) -> Mat {
        let n = self.dim();
        let mut inv = Mat::zeros(n, n);
        let mut col = vec![0.0; n];
        for j in 0..n {
            col.fill(0.0);
            col[j] = 1.0;
            self.solve_in_place(&mut col);
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        inv
    }

    /// `log |A|` via the factor diagonal.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Rebuild `L Lᵀ` (testing / diagnostics).
    pub fn reconstruct(&self) -> Mat {
        self.l.matmul_transb(&self.l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_example(n: usize) -> Mat {
        // A = B Bᵀ + n·I is SPD for any B.
        let b = Mat::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 11) as f64 / 11.0 - 0.4);
        let mut a = b.matmul_transb(&b);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn factor_reconstructs_input() {
        for n in [1, 2, 3, 8, 17] {
            let a = spd_example(n);
            let chol = Cholesky::factor(&a).unwrap();
            assert!(chol.reconstruct().max_abs_diff(&a) < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn solve_gives_small_residual() {
        let a = spd_example(12);
        let chol = Cholesky::factor(&a).unwrap();
        let x_true: Vec<f64> = (0..12).map(|i| (i as f64 - 6.0) * 0.3).collect();
        let mut b = a.matvec(&x_true);
        chol.solve_in_place(&mut b);
        for (got, want) in b.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd_example(6);
        let inv = Cholesky::factor(&a).unwrap().inverse();
        let prod = a.matmul(&inv);
        assert!(prod.max_abs_diff(&Mat::identity(6)) < 1e-9);
    }

    #[test]
    fn log_det_matches_2x2_closed_form() {
        let mut a = Mat::identity(2);
        a[(0, 0)] = 4.0;
        a[(1, 1)] = 9.0;
        a[(1, 0)] = 1.0;
        a[(0, 1)] = 1.0;
        let chol = Cholesky::factor(&a).unwrap();
        let det: f64 = 4.0 * 9.0 - 1.0;
        assert!((chol.log_det() - det.ln()).abs() < 1e-12);
    }

    #[test]
    fn indefinite_matrix_is_rejected() {
        let mut a = Mat::identity(3);
        a[(1, 1)] = -2.0;
        match Cholesky::factor(&a) {
            Err(LinalgError::NotPositiveDefinite { pivot }) => assert_eq!(pivot, 1),
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn only_lower_triangle_is_read() {
        let a = spd_example(5);
        let mut garbage_upper = a.clone();
        for i in 0..5 {
            for j in i + 1..5 {
                garbage_upper[(i, j)] = f64::NAN;
            }
        }
        let c1 = Cholesky::factor(&a).unwrap();
        let c2 = Cholesky::factor(&garbage_upper).unwrap();
        assert!(c1.l().max_abs_diff(c2.l()) < 1e-15);
    }
}
