//! Blocked, multi-threaded Cholesky factorization.
//!
//! This is the "parallel Cholesky" of the paper's Fig. 2: for items with very
//! many ratings the `K × K` precision matrix is large enough (and the
//! accumulation feeding it long enough) that splitting one item update across
//! cores pays off. The algorithm is the classic right-looking blocked
//! factorization:
//!
//! 1. factor the diagonal block serially,
//! 2. solve the panel below it against the block's transpose (parallel over
//!    rows),
//! 3. rank-`b` update of the trailing submatrix (parallel over rows, with
//!    row weights `∝ i` to balance the triangular work).
//!
//! Threads only ever write rows they own; the panel is snapshotted before the
//! trailing update so cross-row reads never alias a write.
//!
//! Both parallel phases run on the persistent [`crate::kernel_pool`] —
//! the same parked workers the item-update accumulation uses — instead of
//! spawning scoped OS threads per factorization. A heavy Gibbs sweep
//! calls this once per heavy item, so per-call `std::thread` spawns were
//! a measurable fixed cost; with the pool the only per-call overhead is
//! one condvar wake. `nthreads` still bounds the chunk count, so a caller
//! budgeting `kernel_threads` gets at most that much concurrency.

use crate::chol::cholesky_in_place;
use crate::error::LinalgError;
use crate::mat::Mat;
use crate::pool::kernel_pool;
use crate::vecops;

/// Shares the trailing-rows base pointer with pool chunks that each write
/// a disjoint row range.
struct RowsPtr(*mut f64);

// SAFETY: every chunk writes a disjoint row range (see the call sites).
unsafe impl Sync for RowsPtr {}

/// Default block size; 32 keeps the diagonal factor in L1 while giving the
/// trailing update enough arithmetic per row to amortize thread handoff.
pub const DEFAULT_BLOCK: usize = 32;

/// Factor the lower triangle of `m` in place with up to `nthreads` threads.
///
/// Semantics are identical to [`cholesky_in_place`]: on success the lower
/// triangle holds `L`, the strict upper triangle is zeroed, and only the
/// lower triangle of the input is read. Falls back to the serial kernel when
/// the matrix is too small for blocking to pay.
pub fn cholesky_in_place_parallel(
    m: &mut Mat,
    nthreads: usize,
    block: usize,
) -> Result<(), LinalgError> {
    let n = m.rows();
    assert_eq!(n, m.cols(), "cholesky requires a square matrix");
    let b = block.max(8);
    if nthreads <= 1 || n <= 2 * b {
        return cholesky_in_place(m);
    }

    let mut panel = Vec::new();
    let mut k0 = 0;
    while k0 < n {
        let kb = b.min(n - k0);
        factor_diag_block(m, k0, kb)?;
        let trailing = n - (k0 + kb);
        if trailing > 0 {
            panel_solve(m, k0, kb, nthreads);
            snapshot_panel(m, k0, kb, &mut panel);
            trailing_update(m, k0, kb, &panel, nthreads);
        }
        k0 += kb;
    }

    for i in 0..n {
        for j in i + 1..n {
            m[(i, j)] = 0.0;
        }
    }
    Ok(())
}

/// Serial Cholesky of the diagonal block `m[k0.., k0..][..kb, ..kb]`.
fn factor_diag_block(m: &mut Mat, k0: usize, kb: usize) -> Result<(), LinalgError> {
    for i in 0..kb {
        for j in 0..=i {
            let mut s = m[(k0 + i, k0 + j)];
            for t in 0..j {
                s -= m[(k0 + i, k0 + t)] * m[(k0 + j, k0 + t)];
            }
            if i == j {
                if s <= 1e-300 {
                    return Err(LinalgError::NotPositiveDefinite { pivot: k0 + i });
                }
                m[(k0 + i, k0 + i)] = s.sqrt();
            } else {
                m[(k0 + i, k0 + j)] = s / m[(k0 + j, k0 + j)];
            }
        }
    }
    Ok(())
}

/// Solve `L[i, k0..k0+kb] · Ldᵀ = A[i, k0..k0+kb]` for every trailing row `i`,
/// in parallel over contiguous row chunks on the kernel pool. A single
/// chunk runs inline — no point broadcast-waking parked workers for a job
/// the caller would execute alone anyway.
fn panel_solve(m: &mut Mat, k0: usize, kb: usize, nthreads: usize) {
    let n = m.cols();
    let split = (k0 + kb) * n;
    let (head, tail) = m.as_mut_slice().split_at_mut(split);
    let diag: &[f64] = head;
    let trailing_rows = tail.len() / n;
    let chunks = nthreads.min(trailing_rows).max(1);
    if chunks <= 1 {
        panel_solve_rows(tail, diag, n, k0, kb);
        return;
    }
    let rows_per = trailing_rows.div_ceil(chunks);
    let rows = RowsPtr(tail.as_mut_ptr());
    let rows = &rows;

    kernel_pool().run(chunks, &|c| {
        let lo = (c * rows_per).min(trailing_rows);
        let hi = (lo + rows_per).min(trailing_rows);
        // SAFETY: the pool delivers each chunk index exactly once, and
        // chunk `c` writes only rows [lo, hi) of the trailing block —
        // disjoint ranges of `tail`; `run` returns before the borrow ends.
        let chunk = unsafe { std::slice::from_raw_parts_mut(rows.0.add(lo * n), (hi - lo) * n) };
        panel_solve_rows(chunk, diag, n, k0, kb);
    });
}

/// The per-chunk body of [`panel_solve`]: forward-substitute every row of
/// `chunk` against the factored diagonal block.
fn panel_solve_rows(chunk: &mut [f64], diag: &[f64], n: usize, k0: usize, kb: usize) {
    for row in chunk.chunks_exact_mut(n) {
        for c in 0..kb {
            let mut s = row[k0 + c];
            let ld_row = &diag[(k0 + c) * n + k0..(k0 + c) * n + k0 + c];
            // Σ_{t<c} L[i][k0+t] · Ld[c][t]
            for (t, &ld) in ld_row.iter().enumerate() {
                s -= row[k0 + t] * ld;
            }
            row[k0 + c] = s / diag[(k0 + c) * n + k0 + c];
        }
    }
}

/// Copy the solved panel (trailing rows × `kb` columns) into `panel`, a
/// compact row-major buffer, so the trailing update can read any panel row
/// without touching rows other threads are writing.
fn snapshot_panel(m: &Mat, k0: usize, kb: usize, panel: &mut Vec<f64>) {
    let first = k0 + kb;
    let trailing = m.rows() - first;
    panel.clear();
    panel.reserve(trailing * kb);
    for i in first..m.rows() {
        panel.extend_from_slice(&m.row(i)[k0..k0 + kb]);
    }
    debug_assert_eq!(panel.len(), trailing * kb);
}

/// `A[i, j] -= P[i] · P[j]` for all trailing `i ≥ j`, parallel over row
/// chunks whose boundaries balance the triangular work, on the kernel pool.
fn trailing_update(m: &mut Mat, k0: usize, kb: usize, panel: &[f64], nthreads: usize) {
    let n = m.cols();
    let first = k0 + kb;
    let trailing = m.rows() - first;
    let split = first * n;
    let (_, tail) = m.as_mut_slice().split_at_mut(split);
    let threads = nthreads.min(trailing).max(1);

    // Row r of the trailing block does r+1 dot products: weight boundaries by
    // the triangle area so every chunk holds ~equal flops.
    let total: f64 = (trailing as f64) * (trailing as f64 + 1.0) / 2.0;
    let per = total / threads as f64;
    let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(threads);
    let mut row0 = 0usize;
    let mut acc = 0.0f64;
    let mut target = per;
    while row0 < trailing {
        // Extend this chunk until its accumulated weight crosses `target`.
        let mut row_end = row0;
        while row_end < trailing && (acc <= target || row_end == row0) {
            acc += (row_end + 1) as f64;
            row_end += 1;
        }
        target = acc + per;
        ranges.push((row0, row_end));
        row0 = row_end;
    }

    // A single range runs inline — no point broadcast-waking parked
    // workers for a job the caller would execute alone anyway.
    if ranges.len() <= 1 {
        trailing_update_rows(tail, panel, n, first, kb, 0);
        return;
    }
    let rows = RowsPtr(tail.as_mut_ptr());
    let rows = &rows;
    let ranges = &ranges;
    kernel_pool().run(ranges.len(), &|c| {
        let (base, end) = ranges[c];
        // SAFETY: the pool delivers each chunk index exactly once and the
        // `ranges` row spans are disjoint by construction, so chunk `c`'s
        // rows are unaliased; `run` returns before the borrow ends.
        let chunk =
            unsafe { std::slice::from_raw_parts_mut(rows.0.add(base * n), (end - base) * n) };
        trailing_update_rows(chunk, panel, n, first, kb, base);
    });
}

/// The per-chunk body of [`trailing_update`]: rank-`kb` downdate of the
/// chunk's rows (trailing rows `base..`) against the snapshotted panel.
fn trailing_update_rows(
    chunk: &mut [f64],
    panel: &[f64],
    n: usize,
    first: usize,
    kb: usize,
    base: usize,
) {
    for (r, row) in chunk.chunks_exact_mut(n).enumerate() {
        let i = base + r;
        let pi = &panel[i * kb..(i + 1) * kb];
        let out = &mut row[first..first + i + 1];
        for (j, o) in out.iter_mut().enumerate() {
            let pj = &panel[j * kb..(j + 1) * kb];
            *o -= vecops::dot(pi, pj);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chol::Cholesky;

    fn spd(n: usize, seed: u64) -> Mat {
        let b = Mat::from_fn(n, n, |i, j| {
            let h = (i as u64 + 1)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((j as u64).wrapping_mul(seed | 1));
            ((h >> 12) as f64 / (1u64 << 52) as f64) - 0.5
        });
        let mut a = b.matmul_transb(&b);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn parallel_matches_serial_across_sizes_and_blockings() {
        for &n in &[1usize, 7, 16, 33, 64, 97, 130] {
            for &threads in &[1usize, 2, 4] {
                for &block in &[8usize, 16, 32] {
                    let a = spd(n, 42);
                    let mut serial = a.clone();
                    cholesky_in_place(&mut serial).unwrap();
                    let mut par = a.clone();
                    cholesky_in_place_parallel(&mut par, threads, block).unwrap();
                    assert!(
                        par.max_abs_diff(&serial) < 1e-9,
                        "n={n} threads={threads} block={block}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_factor_reconstructs() {
        let n = 96;
        let a = spd(n, 5);
        let mut l = a.clone();
        cholesky_in_place_parallel(&mut l, 4, 16).unwrap();
        let chol = Cholesky::from_lower_unchecked(l);
        assert!(chol.reconstruct().max_abs_diff(&a) < 1e-8);
    }

    #[test]
    fn parallel_rejects_indefinite() {
        let mut a = spd(80, 9);
        a[(40, 40)] = -1000.0;
        let err = cholesky_in_place_parallel(&mut a, 4, 16);
        assert!(matches!(err, Err(LinalgError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn only_lower_triangle_is_read_in_parallel_path() {
        let n = 70;
        let a = spd(n, 13);
        let mut dirty = a.clone();
        for i in 0..n {
            for j in i + 1..n {
                dirty[(i, j)] = f64::NAN;
            }
        }
        let mut clean_l = a.clone();
        cholesky_in_place_parallel(&mut clean_l, 4, 16).unwrap();
        let mut dirty_l = dirty;
        cholesky_in_place_parallel(&mut dirty_l, 4, 16).unwrap();
        assert!(clean_l.max_abs_diff(&dirty_l) < 1e-15);
    }
}
