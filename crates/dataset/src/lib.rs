#![warn(missing_docs)]

//! Synthetic rating workloads shaped like the paper's datasets.
//!
//! The paper evaluates on ChEMBL v20 (483 500 compounds × 5 775 targets,
//! ~1.02 M IC50 measurements) and MovieLens ml-20m (138 493 users × 27 278
//! movies, 20 M ratings). Neither can be redistributed here, so this crate
//! generates matrices with the same *mechanical* properties — the ones the
//! paper's engineering actually responds to:
//!
//! * a planted low-rank model `R = U*V*ᵀ + ε` so RMSE has a known floor
//!   (`noise_sd`) and convergence is checkable,
//! * power-law row/column popularity, which creates the items with ≫1000
//!   ratings that motivate the adaptive kernel (Fig. 2) and the workload
//!   model (§IV-B),
//! * matching shape and density at any `scale`, so the benchmark harnesses
//!   can dial workload size to the host machine.
//!
//! Users with the real exports can load them through
//! [`bpmf_sparse::read_matrix_market`] and wrap them in a [`Dataset`] with
//! [`Dataset::from_train_test`].

mod split;
mod synthetic;

pub use split::split_train_test;
pub use synthetic::{chembl_like, movielens_like, Dataset, SyntheticConfig};
