//! Planted low-rank generator with power-law popularity.

use bpmf_linalg::{vecops, Mat};
use bpmf_sparse::{Coo, Csr};
use bpmf_stats::{normal, Xoshiro256pp};

use crate::split::split_train_test;

/// Parameters of the synthetic workload generator.
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// Human-readable name carried into reports.
    pub name: String,
    /// Rows of R ("users"; compounds in the ChEMBL reading).
    pub nrows: usize,
    /// Columns of R ("movies"; protein targets in the ChEMBL reading).
    pub ncols: usize,
    /// Target number of observed ratings (achieved exactly).
    pub nnz: usize,
    /// Rank of the planted model.
    pub k_true: usize,
    /// Observation noise σ — the RMSE floor a correct sampler approaches.
    pub noise_sd: f64,
    /// Row-popularity exponent (0 = uniform; 1 ≈ Zipf).
    pub row_exponent: f64,
    /// Column-popularity exponent.
    pub col_exponent: f64,
    /// Optional clipping of ratings to a scale (e.g. 0.5–5 stars).
    pub clip: Option<(f64, f64)>,
    /// Community structure: with `Some(c)`, rows and columns are assigned
    /// to `c` hidden clusters and a rating stays inside its row's cluster
    /// with probability [`SyntheticConfig::intra_cluster_prob`]. Real rating
    /// data is block-structured this way (genre niches, assay families),
    /// which is what bandwidth-reducing orderings exploit (§IV-B). Row/
    /// column ids are shuffled, so the structure is hidden from naive
    /// contiguous partitioning.
    pub clusters: Option<usize>,
    /// Probability that a rating's column is drawn from the row's own
    /// cluster (only used when `clusters` is set).
    pub intra_cluster_prob: f64,
    /// Fraction of observations held out for RMSE evaluation.
    pub test_fraction: f64,
    /// Master seed (generation is fully deterministic given the config).
    pub seed: u64,
}

/// A ready-to-train workload: frozen train matrix (both orientations), a
/// held-out test set, and the metadata the harnesses report against.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Dataset label for reports.
    pub name: String,
    /// Training ratings, users × movies.
    pub train: Csr,
    /// Training ratings transposed, movies × users.
    pub train_t: Csr,
    /// Held-out `(row, col, rating)` observations.
    pub test: Vec<(u32, u32, f64)>,
    /// Mean of the training ratings (samplers model residuals around it).
    pub global_mean: f64,
    /// Noise σ used during generation (`NaN` for loaded real data).
    pub noise_sd: f64,
    /// Rating-scale clipping applied during generation, if any.
    pub clip: Option<(f64, f64)>,
    /// Planted factors, kept for oracle checks in tests (dropped for loaded
    /// data).
    pub truth: Option<(Mat, Mat)>,
}

impl Dataset {
    /// Wrap externally loaded train/test matrices (e.g. real MovieLens read
    /// from MatrixMarket).
    pub fn from_train_test(
        name: impl Into<String>,
        train: Csr,
        test: Vec<(u32, u32, f64)>,
    ) -> Self {
        let global_mean = global_mean_of(&train);
        Dataset {
            name: name.into(),
            train_t: train.transpose(),
            train,
            test,
            global_mean,
            noise_sd: f64::NAN,
            clip: None,
            truth: None,
        }
    }

    /// Number of users (rows).
    pub fn nrows(&self) -> usize {
        self.train.nrows()
    }

    /// Number of movies (columns).
    pub fn ncols(&self) -> usize {
        self.train.ncols()
    }

    /// Training observations.
    pub fn nnz(&self) -> usize {
        self.train.nnz()
    }

    /// RMSE of the planted model on the held-out set — the best any sampler
    /// can asymptotically do. Predictions are clamped to the rating scale
    /// for clipped datasets (the observed ratings were). `None` for loaded
    /// data.
    pub fn oracle_rmse(&self) -> Option<f64> {
        let (u, v) = self.truth.as_ref()?;
        let se: f64 = self
            .test
            .iter()
            .map(|&(i, j, r)| {
                let mut pred = vecops::dot(u.row(i as usize), v.row(j as usize));
                if let Some((lo, hi)) = self.clip {
                    pred = pred.clamp(lo, hi);
                }
                (pred - r) * (pred - r)
            })
            .sum();
        Some((se / self.test.len() as f64).sqrt())
    }
}

fn global_mean_of(m: &Csr) -> f64 {
    if m.nnz() == 0 {
        return 0.0;
    }
    m.iter().map(|(_, _, v)| v).sum::<f64>() / m.nnz() as f64
}

impl SyntheticConfig {
    /// Generate the workload.
    ///
    /// Steps: plant `U*, V*` with entries `N(0, k^{-1/2})` (unit signal
    /// variance), draw popularity weights `(rank+1)^{-exponent}` shuffled
    /// over indices, sample distinct cells from the product distribution,
    /// observe `r = U*_i · V*_j + ε` (clipped if configured), then split.
    pub fn generate(&self) -> Dataset {
        assert!(
            self.nnz <= self.nrows * self.ncols,
            "nnz exceeds matrix capacity"
        );
        assert!(self.k_true > 0, "planted rank must be positive");
        assert!(
            (0.0..1.0).contains(&self.test_fraction),
            "test fraction must be in [0, 1)"
        );
        let mut rng = Xoshiro256pp::seed_from_u64(self.seed);

        // Planted factors with unit signal variance: Var[u·v] = k · s⁴ = 1
        // for s = k^(-1/4).
        let s = (self.k_true as f64).powf(-0.25);
        let u = Mat::from_fn(self.nrows, self.k_true, |_, _| normal(&mut rng, 0.0, s));
        let v = Mat::from_fn(self.ncols, self.k_true, |_, _| normal(&mut rng, 0.0, s));

        let row_cdf = popularity_cdf(self.nrows, self.row_exponent, &mut rng);
        let col_cdf = popularity_cdf(self.ncols, self.col_exponent, &mut rng);

        // Hidden community structure: shuffled cluster assignments plus a
        // per-cluster column pool for intra-cluster draws.
        let cluster_info = self.clusters.filter(|&c| c > 1).map(|c| {
            let assign = |n: usize, rng: &mut Xoshiro256pp| -> Vec<u32> {
                let mut ids: Vec<u32> = (0..n).map(|i| (i % c) as u32).collect();
                for i in (1..n).rev() {
                    let j = rng.next_index(i + 1);
                    ids.swap(i, j);
                }
                ids
            };
            let row_cluster = assign(self.nrows, &mut rng);
            let col_cluster = assign(self.ncols, &mut rng);
            let mut cols_by_cluster: Vec<Vec<u32>> = vec![Vec::new(); c];
            for (j, &cl) in col_cluster.iter().enumerate() {
                cols_by_cluster[cl as usize].push(j as u32);
            }
            (row_cluster, cols_by_cluster)
        });

        // Sample distinct cells. The dedup set keys on a packed u64; with
        // the paper-shaped densities (≤ 1% of cells) collisions stay rare.
        let mut seen = std::collections::HashSet::with_capacity(self.nnz * 2);
        let mut coo = Coo::with_capacity(self.nrows, self.ncols, self.nnz);
        while coo.nnz() < self.nnz {
            let i = sample_cdf(&row_cdf, &mut rng);
            let j = match &cluster_info {
                Some((row_cluster, cols_by_cluster))
                    if rng.next_f64() < self.intra_cluster_prob =>
                {
                    let pool = &cols_by_cluster[row_cluster[i] as usize];
                    pool[rng.next_index(pool.len())] as usize
                }
                _ => sample_cdf(&col_cdf, &mut rng),
            };
            if !seen.insert((i as u64) << 32 | j as u64) {
                continue;
            }
            let mut r = vecops::dot(u.row(i), v.row(j)) + normal(&mut rng, 0.0, self.noise_sd);
            if let Some((lo, hi)) = self.clip {
                r = r.clamp(lo, hi);
            }
            coo.push(i, j, r);
        }

        let (train, test) = split_train_test(&coo, self.test_fraction, self.seed ^ 0xBEEF);
        let global_mean = global_mean_of(&train);
        Dataset {
            name: self.name.clone(),
            train_t: train.transpose(),
            train,
            test,
            global_mean,
            noise_sd: self.noise_sd,
            clip: self.clip,
            truth: Some((u, v)),
        }
    }
}

/// Cumulative popularity distribution: weights `(rank+1)^{-exponent}`
/// assigned to indices in shuffled order (real datasets are not sorted by
/// popularity).
fn popularity_cdf(n: usize, exponent: f64, rng: &mut Xoshiro256pp) -> Vec<f64> {
    let mut weights: Vec<f64> = (0..n).map(|r| (r as f64 + 1.0).powf(-exponent)).collect();
    // Fisher–Yates shuffle of the weight assignment.
    for i in (1..n).rev() {
        let j = rng.next_index(i + 1);
        weights.swap(i, j);
    }
    let mut acc = 0.0;
    for w in weights.iter_mut() {
        acc += *w;
        *w = acc;
    }
    let total = acc;
    for w in weights.iter_mut() {
        *w /= total;
    }
    weights
}

/// Inverse-CDF sampling via binary search.
fn sample_cdf(cdf: &[f64], rng: &mut Xoshiro256pp) -> usize {
    let u = rng.next_f64();
    cdf.partition_point(|&c| c <= u).min(cdf.len() - 1)
}

/// ChEMBL-v20-shaped workload at `scale` (1.0 = the paper's 483 500 × 5 775,
/// ~1.02 M ratings). Compounds are measured against few targets while
/// popular targets accumulate thousands of measurements — a strong column
/// skew, the source of the paper's load-balancing pathology.
pub fn chembl_like(scale: f64, seed: u64) -> Dataset {
    assert!(scale > 0.0, "scale must be positive");
    let nrows = ((483_500.0 * scale) as usize).max(64);
    let ncols = ((5_775.0 * scale) as usize).max(16);
    let nnz = (((1_023_952.0 * scale) as usize).max(512)).min(nrows * ncols / 2);
    SyntheticConfig {
        name: format!("chembl-like(x{scale})"),
        nrows,
        ncols,
        nnz,
        k_true: 16,
        noise_sd: 0.6,
        row_exponent: 0.45,
        col_exponent: 1.0,
        clip: None,
        clusters: None,
        intra_cluster_prob: 0.0,
        test_fraction: 0.1,
        seed,
    }
    .generate()
}

/// MovieLens-ml-20m-shaped workload at `scale` (1.0 = 138 493 × 27 278,
/// 20 M ratings). Both sides are skewed; ratings live on a 0.5–5 scale.
pub fn movielens_like(scale: f64, seed: u64) -> Dataset {
    assert!(scale > 0.0, "scale must be positive");
    let nrows = ((138_493.0 * scale) as usize).max(64);
    let ncols = ((27_278.0 * scale) as usize).max(32);
    let nnz = (((20_000_263.0 * scale) as usize).max(512)).min(nrows * ncols / 2);
    SyntheticConfig {
        name: format!("movielens-like(x{scale})"),
        nrows,
        ncols,
        nnz,
        k_true: 16,
        noise_sd: 0.8,
        row_exponent: 0.75,
        col_exponent: 1.0,
        clip: Some((0.5, 5.0)),
        clusters: None,
        intra_cluster_prob: 0.0,
        test_fraction: 0.1,
        seed,
    }
    .generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SyntheticConfig {
        SyntheticConfig {
            name: "test".into(),
            nrows: 200,
            ncols: 100,
            nnz: 3000,
            k_true: 8,
            noise_sd: 0.5,
            row_exponent: 0.5,
            col_exponent: 1.0,
            clip: None,
            clusters: None,
            intra_cluster_prob: 0.0,
            test_fraction: 0.2,
            seed: 42,
        }
    }

    #[test]
    fn shape_and_counts_match_config() {
        let cfg = small_config();
        let ds = cfg.generate();
        assert_eq!(ds.nrows(), 200);
        assert_eq!(ds.ncols(), 100);
        assert_eq!(ds.nnz() + ds.test.len(), 3000);
        // ~20% held out, allow generous slack for the Bernoulli split.
        assert!(
            (400..=800).contains(&ds.test.len()),
            "test size = {}",
            ds.test.len()
        );
        assert_eq!(ds.train_t.nrows(), 100);
        assert_eq!(ds.train_t.nnz(), ds.train.nnz());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_config().generate();
        let b = small_config().generate();
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = small_config();
        let a = cfg.generate();
        cfg.seed = 43;
        let b = cfg.generate();
        assert_ne!(a.train, b.train);
    }

    #[test]
    fn oracle_rmse_is_near_noise_floor() {
        let ds = small_config().generate();
        let oracle = ds.oracle_rmse().unwrap();
        assert!(
            (oracle - 0.5).abs() < 0.08,
            "oracle RMSE {oracle} should be near the noise σ 0.5"
        );
    }

    #[test]
    fn column_skew_produces_heavy_items() {
        let mut cfg = small_config();
        cfg.col_exponent = 1.1;
        // Plenty of rows so the hottest column is not capped by dedup
        // (a column holds at most `nrows` distinct cells).
        cfg.nrows = 500;
        cfg.nnz = 2000;
        let ds = cfg.generate();
        // With strong skew, the busiest movie should hold many times the
        // mean load.
        let mean = ds.train_t.mean_row_nnz();
        let max = ds.train_t.max_row_nnz() as f64;
        assert!(max > 5.0 * mean, "max = {max}, mean = {mean}");
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let mut cfg = small_config();
        cfg.row_exponent = 0.0;
        cfg.col_exponent = 0.0;
        let ds = cfg.generate();
        let mean = ds.train.mean_row_nnz();
        let max = ds.train.max_row_nnz() as f64;
        assert!(
            max < 4.0 * mean,
            "uniform sampling should not create hot rows"
        );
    }

    #[test]
    fn clipping_is_applied() {
        let mut cfg = small_config();
        cfg.clip = Some((1.0, 5.0));
        cfg.noise_sd = 3.0; // force excursions
        let ds = cfg.generate();
        for (_, _, v) in ds.train.iter() {
            assert!((1.0..=5.0).contains(&v));
        }
        for &(_, _, v) in &ds.test {
            assert!((1.0..=5.0).contains(&v));
        }
    }

    #[test]
    fn clustered_generation_has_recoverable_block_structure() {
        use bpmf_sparse::{comm_volume, rcm_bipartite, BlockPartition};
        let mut cfg = small_config();
        cfg.nrows = 400;
        cfg.ncols = 200;
        cfg.nnz = 6000;
        cfg.clusters = Some(4);
        cfg.intra_cluster_prob = 0.9;
        cfg.row_exponent = 0.2;
        cfg.col_exponent = 0.2;
        let ds = cfg.generate();

        // RCM must recover the hidden blocks: cross-partition traffic under
        // contiguous 4-way splits should shrink substantially.
        let before = comm_volume(
            &ds.train,
            &ds.train_t,
            &BlockPartition::uniform(400, 4),
            &BlockPartition::uniform(200, 4),
        );
        let (pr, pc) = rcm_bipartite(&ds.train);
        let reordered = ds.train.permute(&pr, &pc);
        let reordered_t = reordered.transpose();
        let after = comm_volume(
            &reordered,
            &reordered_t,
            &BlockPartition::uniform(400, 4),
            &BlockPartition::uniform(200, 4),
        );
        assert!(
            (after as f64) < 0.8 * before as f64,
            "RCM should cut comm volume on clustered data: {before} → {after}"
        );
    }

    #[test]
    fn presets_scale_down_sanely() {
        let ds = chembl_like(0.005, 7);
        assert!(ds.nrows() >= 64);
        assert!(ds.ncols() >= 16);
        assert!(ds.nnz() > 1000);
        let ml = movielens_like(0.002, 7);
        assert!(ml.nrows() >= 64);
        assert!(ml.global_mean > 0.5 && ml.global_mean < 5.0);
    }
}
