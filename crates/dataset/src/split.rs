//! Deterministic train/test splitting.

use bpmf_sparse::{Coo, Csr};
use bpmf_stats::Xoshiro256pp;

/// Split triplets into a frozen training matrix and a held-out test list.
///
/// Each observation lands in the test set independently with probability
/// `test_fraction`, driven by `seed` — the split is reproducible and
/// independent of triplet order only in distribution, so callers should keep
/// generation order fixed (the generators do).
pub fn split_train_test(coo: &Coo, test_fraction: f64, seed: u64) -> (Csr, Vec<(u32, u32, f64)>) {
    assert!(
        (0.0..1.0).contains(&test_fraction),
        "test fraction must be in [0, 1)"
    );
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut train = Coo::with_capacity(coo.nrows(), coo.ncols(), coo.nnz());
    let mut test = Vec::with_capacity((coo.nnz() as f64 * test_fraction) as usize + 16);
    for &(i, j, v) in coo.entries() {
        if rng.next_f64() < test_fraction {
            test.push((i, j, v));
        } else {
            train.push(i as usize, j as usize, v);
        }
    }
    (Csr::from_coo_owned(train), test)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_coo(n: usize) -> Coo {
        assert!(n <= 100 * 80);
        let mut coo = Coo::new(100, 80);
        for k in 0..n {
            coo.push(k / 80, k % 80, k as f64); // distinct coordinates
        }
        coo
    }

    #[test]
    fn split_conserves_observations() {
        let coo = sample_coo(2000);
        let (train, test) = split_train_test(&coo, 0.25, 99);
        assert_eq!(train.nnz() + test.len(), 2000);
        // Rough proportion check.
        assert!((300..=700).contains(&test.len()), "test = {}", test.len());
    }

    #[test]
    fn split_is_deterministic() {
        let coo = sample_coo(500);
        let (tr1, te1) = split_train_test(&coo, 0.3, 5);
        let (tr2, te2) = split_train_test(&coo, 0.3, 5);
        assert_eq!(tr1, tr2);
        assert_eq!(te1, te2);
    }

    #[test]
    fn zero_fraction_keeps_everything_in_train() {
        let coo = sample_coo(100);
        let (train, test) = split_train_test(&coo, 0.0, 1);
        assert_eq!(train.nnz(), 100);
        assert!(test.is_empty());
    }
}
