//! Offline stand-in for `serde_derive`.
//!
//! Supports exactly what this workspace derives on: non-generic structs
//! with named fields, plus the `#[serde(default)]` field attribute. The
//! input is parsed directly from the token stream (no `syn`/`quote`
//! available offline); generated impls target the value-tree traits of the
//! sibling `serde` stand-in.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    default: bool,
}

struct StructDef {
    name: String,
    fields: Vec<Field>,
}

/// Walk the derive input: skip attributes and visibility, expect
/// `struct Name { fields }`.
fn parse_struct(input: TokenStream) -> Result<StructDef, String> {
    let mut iter = input.into_iter().peekable();
    let mut name = None;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: consume the bracket group.
                iter.next();
            }
            TokenTree::Ident(id) => {
                let text = id.to_string();
                match text.as_str() {
                    "pub" => {
                        // Skip optional `(crate)` etc.
                        if let Some(TokenTree::Group(g)) = iter.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                iter.next();
                            }
                        }
                    }
                    "struct" => {
                        if let Some(TokenTree::Ident(n)) = iter.next() {
                            name = Some(n.to_string());
                        } else {
                            return Err("expected struct name".into());
                        }
                    }
                    "enum" | "union" => {
                        return Err(
                            "this offline serde derive supports only structs with named fields"
                                .into(),
                        );
                    }
                    _ => {}
                }
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let name = name.ok_or("found braces before `struct` keyword")?;
                return Ok(StructDef {
                    name,
                    fields: parse_fields(g.stream())?,
                });
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                return Err("this offline serde derive does not support generics".into());
            }
            _ => {}
        }
    }
    Err("no struct body found (tuple/unit structs are unsupported)".into())
}

/// Parse `name: Type` fields from a brace-group body. Nested groups arrive
/// as single tokens, so top-level commas reliably separate fields.
fn parse_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // One field: attrs, visibility, name, ':', type tokens, ','.
        let mut default = false;
        let name = loop {
            match iter.next() {
                None => return Ok(fields),
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = iter.next() {
                        let attr = g.stream().to_string();
                        // `#[serde(default)]`, with or without spacing.
                        if attr.starts_with("serde") && attr.contains("default") {
                            default = true;
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => {
                    let text = id.to_string();
                    if text == "pub" {
                        if let Some(TokenTree::Group(g)) = iter.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                iter.next();
                            }
                        }
                    } else {
                        break text;
                    }
                }
                Some(other) => {
                    return Err(format!("unexpected token `{other}` in struct body"));
                }
            }
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        // Skip the type up to the next top-level comma.
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        fields.push(Field { name, default });
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("valid error tokens")
}

/// Derive `serde::Serialize` (value-tree flavor) for a named-field struct.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = match parse_struct(input) {
        Ok(d) => d,
        Err(e) => return compile_error(&e),
    };
    let mut pushes = String::new();
    for f in &def.fields {
        pushes.push_str(&format!(
            "(\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n})),",
            n = f.name
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Obj(vec![{pushes}])\n\
             }}\n\
         }}",
        name = def.name
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (value-tree flavor) for a named-field
/// struct. `#[serde(default)]` fields fall back to `Default::default()`
/// when absent.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = match parse_struct(input) {
        Ok(d) => d,
        Err(e) => return compile_error(&e),
    };
    let mut inits = String::new();
    for f in &def.fields {
        let getter = if f.default {
            "__field_or_default"
        } else {
            "__field"
        };
        inits.push_str(&format!("{n}: ::serde::{getter}(v, \"{n}\")?,", n = f.name));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                 let v = ::serde::__expect_obj(v, \"{name}\")?;\n\
                 Ok({name} {{ {inits} }})\n\
             }}\n\
         }}",
        name = def.name
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
