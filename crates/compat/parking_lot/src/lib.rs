#![warn(missing_docs)]

//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the exact API subset it uses — `Mutex` whose `lock` returns the guard
//! directly (no `Result`), and a `Condvar` that waits on a `&mut` guard —
//! implemented over `std::sync`. Poisoning is swallowed, matching
//! parking_lot's semantics of not poisoning on panic.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Mutual exclusion primitive (std-backed, non-poisoning API).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        ))
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard invariant")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard invariant")
    }
}

/// Whether a timed wait returned because the timeout elapsed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait timed out rather than being notified.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable paired with [`Mutex`].
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified, releasing the guard's mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard invariant");
        guard.0 = Some(
            self.0
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard invariant");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("boom");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
