#![warn(missing_docs)]

//! Offline stand-in for a memory-mapping crate (the `memmap2` niche).
//!
//! The build environment has no network access, so — like `serve::net`'s
//! raw `socket(2)` shim in the core crate — this crate declares the three
//! syscalls it needs (`mmap`, `munmap`, `madvise`) directly against the
//! platform libc that std already links, instead of pulling in `libc` or
//! `memmap2`. The API is the subset the workspace uses: map a whole file
//! read-only, view it as `&[u8]`, and pass access-pattern advice to the
//! kernel.
//!
//! On non-unix targets the same API is backed by an ordinary heap buffer
//! holding a copy of the file. Either way the backing storage is
//! guaranteed to start on an **8-byte boundary** (page-aligned under
//! `mmap(2)`, a `u64` allocation in the fallback), which is what lets the
//! slab readers in `bpmf-sparse`/`bpmf` reinterpret aligned byte ranges
//! as `u32`/`u64`/`f64` arrays without copying.

use std::fs::File;
use std::io;

/// Kernel access-pattern advice, forwarded to `madvise(2)` on unix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Advice {
    /// No special treatment (`MADV_NORMAL`).
    Normal,
    /// Expect page references in random order (`MADV_RANDOM`).
    Random,
    /// Expect sequential page references; read ahead aggressively
    /// (`MADV_SEQUENTIAL`).
    Sequential,
    /// Expect access in the near future; start read-ahead now
    /// (`MADV_WILLNEED`).
    WillNeed,
}

#[cfg(unix)]
mod imp {
    use super::Advice;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    use std::ffi::c_void;

    // Raw syscall declarations against the libc std already links — the
    // same pattern as `serve::net::bind_one`. Numeric constants are the
    // shared Linux/BSD/macOS values for this tiny subset.
    extern "C" {
        fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, length: usize) -> i32;
        fn madvise(addr: *mut c_void, length: usize, advice: i32) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;
    const MADV_NORMAL: i32 = 0;
    const MADV_RANDOM: i32 = 1;
    const MADV_SEQUENTIAL: i32 = 2;
    const MADV_WILLNEED: i32 = 3;

    /// Conservative page size for rounding `madvise` addresses; every
    /// supported platform pages at 4 KiB or a multiple of it, and rounding
    /// *down* to a 4 KiB boundary inside the mapping is always legal
    /// advice-wise (advice is a hint over whole pages).
    const PAGE: usize = 4096;

    /// A read-only, privately mapped view of a whole file.
    #[derive(Debug)]
    pub struct Mmap {
        ptr: *mut c_void,
        len: usize,
    }

    // SAFETY: the mapping is read-only (PROT_READ) for its entire
    // lifetime, never remapped, and owned exclusively by this struct;
    // concurrent reads from multiple threads are safe, exactly as for a
    // `Box<[u8]>`.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Map `file` read-only in its entirety.
        pub fn map(file: &File) -> io::Result<Mmap> {
            let len = file.metadata()?.len();
            if len > usize::MAX as u64 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "file too large to map on this target",
                ));
            }
            let len = len as usize;
            if len == 0 {
                // mmap(2) rejects zero-length mappings; an empty view
                // needs no mapping at all.
                return Ok(Mmap {
                    ptr: std::ptr::null_mut(),
                    len: 0,
                });
            }
            // SAFETY: std keeps `file`'s descriptor open across this call;
            // a private read-only mapping of it cannot alias writable
            // memory, and we check the MAP_FAILED sentinel before use.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Mmap { ptr, len })
        }

        /// The mapped bytes.
        pub fn as_slice(&self) -> &[u8] {
            if self.len == 0 {
                return &[];
            }
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes for as long as `self` exists.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }

        /// Advise the kernel about the access pattern of a byte range of
        /// the mapping. `offset` is rounded down to a page boundary; an
        /// empty mapping or range is a no-op.
        pub fn advise_range(&self, offset: usize, len: usize, advice: Advice) -> io::Result<()> {
            if self.len == 0 || len == 0 {
                return Ok(());
            }
            if offset >= self.len {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "advice range outside the mapping",
                ));
            }
            let start = offset - offset % PAGE;
            let len = (offset + len).min(self.len) - start;
            let advice = match advice {
                Advice::Normal => MADV_NORMAL,
                Advice::Random => MADV_RANDOM,
                Advice::Sequential => MADV_SEQUENTIAL,
                Advice::WillNeed => MADV_WILLNEED,
            };
            // SAFETY: `[start, start + len)` lies inside the live mapping
            // and `start` is page-aligned (mmap returns page-aligned
            // addresses and `start` is a multiple of PAGE).
            let rc = unsafe { madvise((self.ptr as usize + start) as *mut c_void, len, advice) };
            if rc != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            if self.len != 0 {
                // SAFETY: `ptr`/`len` describe the mapping created in
                // `map`, unmapped exactly once here.
                unsafe { munmap(self.ptr, self.len) };
            }
        }
    }
}

#[cfg(not(unix))]
mod imp {
    use super::Advice;
    use std::fs::File;
    use std::io::{self, Read};

    /// Heap-backed fallback: a copy of the file in a `u64` allocation so
    /// the base address is 8-byte aligned like a real mapping.
    #[derive(Debug)]
    pub struct Mmap {
        buf: Vec<u64>,
        len: usize,
    }

    impl Mmap {
        /// Read `file` into an aligned heap buffer.
        pub fn map(file: &File) -> io::Result<Mmap> {
            let mut bytes = Vec::new();
            let mut file = file.try_clone()?;
            file.read_to_end(&mut bytes)?;
            let len = bytes.len();
            let mut buf = vec![0u64; len.div_ceil(8)];
            // SAFETY: u64 -> u8 reinterpretation of an owned buffer; the
            // byte view covers exactly the allocation prefix we wrote.
            unsafe {
                std::ptr::copy_nonoverlapping(bytes.as_ptr(), buf.as_mut_ptr() as *mut u8, len);
            }
            Ok(Mmap { buf, len })
        }

        /// The buffered bytes.
        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: the prefix of the u64 allocation was filled from the
            // file; reading it as bytes is always valid.
            unsafe { std::slice::from_raw_parts(self.buf.as_ptr() as *const u8, self.len) }
        }

        /// Access advice is meaningless for a heap copy; always succeeds.
        pub fn advise_range(&self, _offset: usize, _len: usize, _advice: Advice) -> io::Result<()> {
            Ok(())
        }
    }
}

pub use imp::Mmap;

impl Mmap {
    /// Map (or, on non-unix targets, copy) `file` read-only.
    pub fn map_file(file: &File) -> io::Result<Mmap> {
        Mmap::map(file)
    }

    /// Number of mapped bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Advise the kernel about the access pattern of the whole mapping.
    pub fn advise(&self, advice: Advice) -> io::Result<()> {
        self.advise_range(0, self.len(), advice)
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("mmap_compat_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}_{}", std::process::id()))
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_path("contents");
        let payload: Vec<u8> = (0..10_000u32).flat_map(|x| x.to_le_bytes()).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let map = Mmap::map_file(&std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(map.len(), payload.len());
        assert_eq!(&map[..], &payload[..]);
        // The base address is 8-byte aligned, as the slab readers require.
        assert_eq!(map.as_slice().as_ptr() as usize % 8, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let map = Mmap::map_file(&std::fs::File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.as_slice(), &[] as &[u8]);
        map.advise(Advice::Sequential).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn advice_is_accepted_over_subranges() {
        let path = temp_path("advice");
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&vec![7u8; 64 * 1024])
            .unwrap();
        let map = Mmap::map_file(&std::fs::File::open(&path).unwrap()).unwrap();
        map.advise(Advice::Random).unwrap();
        map.advise_range(5000, 9000, Advice::WillNeed).unwrap();
        map.advise_range(0, map.len(), Advice::Sequential).unwrap();
        assert!(map.advise_range(map.len() + 1, 1, Advice::Normal).is_err());
        std::fs::remove_file(&path).ok();
    }
}
