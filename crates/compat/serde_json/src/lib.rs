#![warn(missing_docs)]

//! Offline stand-in for `serde_json`: renders and parses JSON text against
//! the sibling `serde` stand-in's [`serde::Value`] tree.
//!
//! Numbers round-trip exactly: integers through `u64`/`i64`, floats through
//! Rust's shortest-round-trip formatting. Non-finite floats serialize as
//! `null` (matching real serde_json) and deserialize back as NaN.

use serde::{Deserialize, Serialize, Value};

/// JSON error (parse or shape mismatch).
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to human-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value).map_err(Error::from)
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest representation that parses back
                // to the identical f64.
                let s = format!("{f:?}");
                out.push_str(&s);
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline(out, indent, depth);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            if !fields.is_empty() {
                newline(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Recursion cap matching real serde_json's default; corrupt input fails
/// with an Error instead of blowing the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        if self.depth >= MAX_DEPTH {
            return Err(Error(format!(
                "nesting deeper than {MAX_DEPTH} levels at byte {}",
                self.pos
            )));
        }
        self.depth += 1;
        let v = self.value_inner();
        self.depth -= 1;
        v
    }

    fn value_inner(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error("unexpected end of input".into())),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(_) => self.number(),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let mut code = self.hex4()?;
                            // RFC 8259: non-BMP characters arrive as a
                            // UTF-16 surrogate pair of \u escapes.
                            if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(Error(
                                        "high surrogate not followed by \\u escape".into(),
                                    ));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    /// Four hex digits of a `\u` escape, advancing past them.
    fn hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        let code = u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?,
            16,
        )
        .map_err(|_| Error("bad \\u escape".into()))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if text.is_empty() {
            return Err(Error(format!("expected value at byte {start}")));
        }
        let is_float = text.contains(['.', 'e', 'E']);
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<u64>().is_ok() || text.parse::<i64>().is_ok() {
                    if let Ok(n) = text.parse::<i64>() {
                        return Ok(Value::I64(n));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>(&to_string(&0.1f64).unwrap()).unwrap(), 0.1);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn u64_extremes_are_exact() {
        for w in [u64::MAX, 0x9E3779B97F4A7C15, 1u64 << 63] {
            let json = to_string(&w).unwrap();
            assert_eq!(from_str::<u64>(&json).unwrap(), w);
        }
    }

    #[test]
    fn f64_shortest_repr_roundtrips_bits() {
        for f in [
            0.1,
            1e300,
            -2.5e-10,
            std::f64::consts::PI,
            f64::MIN_POSITIVE,
        ] {
            let json = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap().to_bits(), f.to_bits());
        }
    }

    #[test]
    fn nan_is_null_is_nan() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v: Vec<(u32, Vec<f64>)> = vec![(1, vec![1.5, 2.5]), (2, vec![])];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(u32, Vec<f64>)>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn surrogate_pairs_decode_to_non_bmp_chars() {
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\"").unwrap(),
            "\u{1F600}"
        );
        // A lone high surrogate is invalid JSON.
        assert!(from_str::<String>("\"\\ud83d\"").is_err());
        assert!(from_str::<String>("\"\\ud83d\\u0041\"").is_err());
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        let deep = "[".repeat(100_000);
        let err = from_str::<Vec<u64>>(&deep).unwrap_err();
        assert!(err.to_string().contains("nesting deeper"));
        // Depths inside the cap still parse.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse_value(&ok).is_ok());
    }

    #[test]
    fn error_messages_locate_problems() {
        assert!(from_str::<u64>("[1").is_err());
        assert!(from_str::<u64>("42 garbage").is_err());
        assert!(from_str::<String>("42").is_err());
    }
}
