#![warn(missing_docs)]

//! Offline stand-in for the `serde` crate.
//!
//! Real serde streams through a `Serializer`/`Deserializer` pair; this
//! stand-in routes everything through an owned [`Value`] tree instead,
//! which is dramatically simpler and fast enough for the checkpoint files
//! and benchmark artifacts this workspace serializes. The public names
//! (`Serialize`, `Deserialize`, the derive macros, `#[serde(default)]`)
//! match the real crate so application code is source-compatible.
//!
//! Numbers are kept in three exact channels (`u64`, `i64`, `f64`) so RNG
//! state words survive a JSON round trip bit-exactly — a property the
//! checkpoint/resume tests pin down.

pub use serde_derive::{Deserialize, Serialize};

/// A parsed self-describing value (the JSON data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null` — also the representation of non-finite floats.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Exact unsigned integer.
    U64(u64),
    /// Exact negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Arr(Vec<Value>),
    /// Key-value map in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value's type name, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// (De)serialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Build an error from anything displayable.
    pub fn msg(m: impl std::fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`] tree.
pub trait Serialize {
    /// Convert to a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Convert from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => f as u64,
                    ref other => return Err(Error::msg(format!(
                        "expected unsigned integer, found {}", other.kind()))),
                };
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::U64(v as u64) } else { Value::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) if n <= i64::MAX as u64 => n as i64,
                    Value::F64(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => f as i64,
                    ref other => return Err(Error::msg(format!(
                        "expected integer, found {}", other.kind()))),
                };
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::F64(*self)
        } else {
            // JSON has no NaN/Infinity; serde_json writes null too.
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(f) => Ok(f),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            Value::Null => Ok(f64::NAN),
            ref other => Err(Error::msg(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let found = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::msg(format!("expected array of length {N}, found {found}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($len:expr => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Arr(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    Value::Arr(items) => Err(Error::msg(format!(
                        "expected tuple of length {}, found {}", $len, items.len()))),
                    other => Err(Error::msg(format!("expected array, found {}", other.kind()))),
                }
            }
        }
    };
}
impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Derive support (used by the generated code; not public API)
// ---------------------------------------------------------------------------

/// Fetch and decode a required struct field. Used by derived impls.
#[doc(hidden)]
pub fn __field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(field) => T::from_value(field).map_err(|e| Error::msg(format!("field `{name}`: {e}"))),
        None => Err(Error::msg(format!("missing field `{name}`"))),
    }
}

/// Fetch and decode a `#[serde(default)]` struct field. Used by derived
/// impls.
#[doc(hidden)]
pub fn __field_or_default<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(field) => T::from_value(field).map_err(|e| Error::msg(format!("field `{name}`: {e}"))),
        None => Ok(T::default()),
    }
}

/// Require an object value. Used by derived impls.
#[doc(hidden)]
pub fn __expect_obj<'v>(v: &'v Value, ty: &str) -> Result<&'v Value, Error> {
    match v {
        Value::Obj(_) => Ok(v),
        other => Err(Error::msg(format!(
            "expected {ty} object, found {}",
            other.kind()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_roundtrip() {
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3.5f64).to_value(), Value::F64(3.5));
    }

    #[test]
    fn u64_words_are_exact() {
        let w: u64 = 0xDEAD_BEEF_CAFE_F00D;
        assert_eq!(u64::from_value(&w.to_value()).unwrap(), w);
    }

    #[test]
    fn fixed_arrays_check_length() {
        let arr = [1u64, 2, 3, 4];
        let v = arr.to_value();
        assert_eq!(<[u64; 4]>::from_value(&v).unwrap(), arr);
        assert!(<[u64; 3]>::from_value(&v).is_err());
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(f64::NAN.to_value(), Value::Null);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn tuples_are_arrays() {
        let t = (1u32, 2.5f64);
        let v = t.to_value();
        assert_eq!(<(u32, f64)>::from_value(&v).unwrap(), t);
    }
}
