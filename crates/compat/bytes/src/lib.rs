#![warn(missing_docs)]

//! Offline stand-in for the `bytes` crate.
//!
//! `Bytes` is an immutable, cheaply cloneable byte buffer (an `Arc<[u8]>`
//! under the hood — clones share storage, as the message-passing simulator
//! relies on when it fans one payload out to many destinations). `BytesMut`
//! is a growable builder that freezes into `Bytes`.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply cloneable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copy a slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty builder.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Clear contents, keeping capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Little-endian append operations (the subset of `bytes::BufMut` used
/// here).
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64);
    /// Append a slice.
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_words() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u64_le(0xDEADBEEF);
        b.put_f64_le(-2.5);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 16);
        assert_eq!(
            u64::from_le_bytes(frozen[..8].try_into().unwrap()),
            0xDEADBEEF
        );
        assert_eq!(f64::from_le_bytes(frozen[8..].try_into().unwrap()), -2.5);
    }

    #[test]
    fn clones_share_storage() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b as *const [u8], &*c as *const [u8]);
        assert_eq!(b, c);
    }
}
