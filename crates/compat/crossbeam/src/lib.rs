#![warn(missing_docs)]

//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the work-stealing deque API surface (`deque::{Injector, Worker,
//! Stealer, Steal}`) and `utils::CachePadded` that `bpmf-sched` uses. The
//! deques are lock-free Chase–Lev deques (Chase & Lev, *Dynamic Circular
//! Work-Stealing Deque*, with the memory orderings of Lê et al., *Correct
//! and Efficient Work-Stealing for Weak Memory Models*): the owner pushes
//! and pops at the bottom without synchronization beyond fences, thieves
//! race a single CAS on the top index, and the ring buffer grows
//! geometrically. Retired buffers are kept alive until the deque drops
//! (bounded by geometric growth: all retired buffers together are smaller
//! than the final one), which sidesteps epoch-based reclamation while
//! keeping every steal path lock-free — the property the scheduler needs,
//! since steals are the contended operation during a sweep.
//!
//! The semantics the scheduler's correctness relies on are unchanged from
//! the earlier mutex-backed stand-in: LIFO owner pops, FIFO steals,
//! exactly-once delivery.

/// Work-stealing deques.
pub mod deque {
    use std::cell::UnsafeCell;
    use std::mem::{ManuallyDrop, MaybeUninit};
    use std::sync::atomic::{fence, AtomicBool, AtomicIsize, AtomicPtr, Ordering};
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The source was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// A transient conflict; retry.
        Retry,
    }

    /// Power-of-two ring buffer. Slots are `MaybeUninit`: liveness is
    /// tracked entirely by the `top`/`bottom` indices of the owning deque,
    /// and dropping a buffer never drops slot contents (the deque's `Drop`
    /// reads out the live range first).
    struct RingBuffer<T> {
        mask: usize,
        slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    }

    impl<T> RingBuffer<T> {
        fn alloc(cap: usize) -> *mut RingBuffer<T> {
            debug_assert!(cap.is_power_of_two());
            let slots = (0..cap)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect::<Vec<_>>()
                .into_boxed_slice();
            Box::into_raw(Box::new(RingBuffer {
                mask: cap - 1,
                slots,
            }))
        }

        fn cap(&self) -> usize {
            self.mask + 1
        }

        /// Write `v` into the slot for logical index `i`.
        ///
        /// # Safety
        /// Caller must be the unique owner-end writer and the slot must not
        /// hold a live value.
        unsafe fn write(&self, i: isize, v: T) {
            let slot = self.slots[(i as usize) & self.mask].get();
            unsafe { slot.write(MaybeUninit::new(v)) };
        }

        /// Read the slot for logical index `i` by bitwise copy.
        ///
        /// # Safety
        /// The logical index must be inside the live `top..bottom` range at
        /// some point during the call; the caller must ensure at most one
        /// reader ultimately *keeps* the value (thieves discard their copy
        /// when the top CAS fails).
        unsafe fn read(&self, i: isize) -> T {
            let slot = self.slots[(i as usize) & self.mask].get();
            unsafe { (*slot).assume_init_read() }
        }
    }

    /// The shared state of one Chase–Lev deque.
    struct Inner<T> {
        /// Steal end. Only ever advanced by a successful CAS.
        top: AtomicIsize,
        /// Owner end. Written only by the owner side.
        bottom: AtomicIsize,
        buffer: AtomicPtr<RingBuffer<T>>,
        /// Buffers replaced by growth, kept alive until drop so a thief
        /// holding a stale buffer pointer can still read (and then fail its
        /// CAS and discard).
        retired: Mutex<Vec<*mut RingBuffer<T>>>,
    }

    impl<T> Inner<T> {
        fn new() -> Self {
            Inner {
                top: AtomicIsize::new(0),
                bottom: AtomicIsize::new(0),
                buffer: AtomicPtr::new(RingBuffer::alloc(32)),
                retired: Mutex::new(Vec::new()),
            }
        }

        /// Owner-end push. Caller must guarantee owner exclusivity.
        unsafe fn push_bottom(&self, task: T) {
            let b = self.bottom.load(Ordering::Relaxed);
            let t = self.top.load(Ordering::Acquire);
            let mut buf = self.buffer.load(Ordering::Relaxed);
            if b - t >= unsafe { (*buf).cap() } as isize {
                self.grow(t, b);
                buf = self.buffer.load(Ordering::Relaxed);
            }
            unsafe { (*buf).write(b, task) };
            // Publish the slot before publishing the new bottom.
            self.bottom.store(b + 1, Ordering::Release);
        }

        /// Owner-end pop (LIFO). Caller must guarantee owner exclusivity.
        unsafe fn pop_bottom(&self) -> Option<T> {
            let b = self.bottom.load(Ordering::Relaxed) - 1;
            let buf = self.buffer.load(Ordering::Relaxed);
            self.bottom.store(b, Ordering::Relaxed);
            // The SeqCst fence orders this bottom write against the top
            // read below, pairing with the fence in `steal_top`.
            fence(Ordering::SeqCst);
            let t = self.top.load(Ordering::Relaxed);
            if t <= b {
                if t == b {
                    // Single element left: race thieves for it.
                    let won = self
                        .top
                        .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                        .is_ok();
                    self.bottom.store(b + 1, Ordering::Relaxed);
                    won.then(|| unsafe { (*buf).read(b) })
                } else {
                    Some(unsafe { (*buf).read(b) })
                }
            } else {
                // Already empty; restore bottom.
                self.bottom.store(b + 1, Ordering::Relaxed);
                None
            }
        }

        /// Thief-end steal (FIFO). Safe to call from any thread.
        fn steal_top(&self) -> Steal<T> {
            let t = self.top.load(Ordering::Acquire);
            fence(Ordering::SeqCst);
            let b = self.bottom.load(Ordering::Acquire);
            if t >= b {
                return Steal::Empty;
            }
            let buf = self.buffer.load(Ordering::Acquire);
            // Copy the task out *before* the CAS; the copy is kept only if
            // the CAS wins, otherwise it is discarded without dropping
            // (another thread owns the value).
            let task = ManuallyDrop::new(unsafe { (*buf).read(t) });
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                Steal::Success(ManuallyDrop::into_inner(task))
            } else {
                Steal::Retry
            }
        }

        fn is_empty(&self) -> bool {
            let t = self.top.load(Ordering::Acquire);
            let b = self.bottom.load(Ordering::Acquire);
            b <= t
        }

        /// Double the buffer, moving the live range. Owner-end only.
        fn grow(&self, t: isize, b: isize) {
            let old = self.buffer.load(Ordering::Relaxed);
            let new = RingBuffer::alloc(unsafe { (*old).cap() } * 2);
            for i in t..b {
                // Bitwise move; the old buffer's copies are never read
                // again (top can only advance past them via CASes that now
                // see the new buffer's range).
                unsafe { (*new).write(i, (*old).read(i)) };
            }
            self.buffer.store(new, Ordering::Release);
            self.retired
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(old);
        }
    }

    impl<T> Drop for Inner<T> {
        fn drop(&mut self) {
            let t = *self.top.get_mut();
            let b = *self.bottom.get_mut();
            let buf = *self.buffer.get_mut();
            for i in t..b {
                drop(unsafe { (*buf).read(i) });
            }
            drop(unsafe { Box::from_raw(buf) });
            for old in self
                .retired
                .get_mut()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .drain(..)
            {
                drop(unsafe { Box::from_raw(old) });
            }
        }
    }

    /// Owner side of a worker deque.
    ///
    /// `Worker` is `Send` but deliberately not `Sync`: all bottom-end
    /// operations assume a single owner thread, which the type system
    /// enforces by keeping `&Worker` on one thread at a time.
    pub struct Worker<T> {
        inner: Arc<Inner<T>>,
    }

    unsafe impl<T: Send> Send for Worker<T> {}

    impl<T> Worker<T> {
        /// New LIFO worker deque (owner pops what it pushed last).
        pub fn new_lifo() -> Self {
            Worker {
                inner: Arc::new(Inner::new()),
            }
        }

        /// New FIFO worker deque. The stand-in keeps LIFO owner order
        /// (thieves always take the opposite, oldest end either way).
        pub fn new_fifo() -> Self {
            Self::new_lifo()
        }

        /// Push a task onto the owner end.
        pub fn push(&self, task: T) {
            // SAFETY: `Worker` is !Sync, so this thread is the only owner.
            unsafe { self.inner.push_bottom(task) }
        }

        /// Pop from the owner end (LIFO).
        pub fn pop(&self) -> Option<T> {
            // SAFETY: `Worker` is !Sync, so this thread is the only owner.
            unsafe { self.inner.pop_bottom() }
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.is_empty()
        }

        /// Handle other threads use to steal from this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    /// Thief side of a worker deque. Steals from the opposite end the owner
    /// pops from.
    pub struct Stealer<T> {
        inner: Arc<Inner<T>>,
    }

    unsafe impl<T: Send> Send for Stealer<T> {}
    unsafe impl<T: Send> Sync for Stealer<T> {}

    impl<T> Stealer<T> {
        /// Attempt to steal the oldest task.
        pub fn steal(&self) -> Steal<T> {
            self.inner.steal_top()
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.is_empty()
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    /// Global injector queue all workers can push to and steal from.
    ///
    /// Implemented as a Chase–Lev deque whose owner end is serialized by a
    /// spinlock (pushes can come from any thread, unlike a `Worker`'s).
    /// Steals — the operation workers hammer during a sweep — stay
    /// lock-free and never touch the spinlock.
    pub struct Injector<T> {
        inner: Inner<T>,
        push_lock: AtomicBool,
    }

    unsafe impl<T: Send> Send for Injector<T> {}
    unsafe impl<T: Send> Sync for Injector<T> {}

    impl<T> Injector<T> {
        /// New empty injector.
        pub fn new() -> Self {
            Injector {
                inner: Inner::new(),
                push_lock: AtomicBool::new(false),
            }
        }

        /// Push a task.
        pub fn push(&self, task: T) {
            while self
                .push_lock
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                std::hint::spin_loop();
            }
            // SAFETY: the spinlock serializes all owner-end operations.
            unsafe { self.inner.push_bottom(task) };
            self.push_lock.store(false, Ordering::Release);
        }

        /// Steal one task, moving a small batch into `dest` first so
        /// subsequent owner pops hit the local deque.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let first = match self.inner.steal_top() {
                Steal::Success(t) => t,
                other => return other,
            };
            // Move up to half the remainder (capped) into the destination;
            // any contention just ends the batch early.
            let b = self.inner.bottom.load(Ordering::Acquire);
            let t = self.inner.top.load(Ordering::Acquire);
            let extra = ((b - t).max(0) as usize / 2).min(7);
            for _ in 0..extra {
                match self.inner.steal_top() {
                    Steal::Success(task) => dest.push(task),
                    Steal::Empty | Steal::Retry => break,
                }
            }
            Steal::Success(first)
        }

        /// Steal one task directly.
        pub fn steal(&self) -> Steal<T> {
            self.inner.steal_top()
        }

        /// Whether the injector is currently empty.
        pub fn is_empty(&self) -> bool {
            self.inner.is_empty()
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }
}

/// Miscellaneous utilities.
pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 128 bytes to avoid false sharing between
    /// adjacent per-worker counters.
    #[derive(Default, Debug, Clone, Copy)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wrap a value.
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Unwrap.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    #[test]
    fn owner_pops_lifo_thief_steals_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn injector_batch_pop_delivers_everything_once() {
        let inj = Injector::new();
        for i in 0..100 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        let mut seen = Vec::new();
        loop {
            while let Some(t) = w.pop() {
                seen.push(t);
            }
            match inj.steal_batch_and_pop(&w) {
                Steal::Success(t) => seen.push(t),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn buffer_growth_preserves_contents() {
        // Push far past the initial capacity, interleaving pops, and check
        // exactly-once delivery through growth.
        let w = Worker::new_lifo();
        let s = w.stealer();
        let mut seen = vec![0u32; 10_000];
        for i in 0..10_000u32 {
            w.push(i);
            if i % 3 == 0 {
                if let Steal::Success(t) = s.steal() {
                    seen[t as usize] += 1;
                }
            }
        }
        while let Some(t) = w.pop() {
            seen[t as usize] += 1;
        }
        while let Steal::Success(t) = s.steal() {
            seen[t as usize] += 1;
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    /// Chase–Lev stress: one owner interleaving pushes and pops, several
    /// concurrent thieves. Every task must be delivered exactly once, to
    /// exactly one side.
    #[test]
    fn concurrent_steals_deliver_exactly_once() {
        const N: usize = 40_000;
        const THIEVES: usize = 3;
        let w: Worker<usize> = Worker::new_lifo();
        let counts: Vec<AtomicUsize> = (0..N).map(|_| AtomicUsize::new(0)).collect();
        let done = AtomicBool::new(false);

        std::thread::scope(|scope| {
            for _ in 0..THIEVES {
                let stealer = w.stealer();
                let counts = &counts;
                let done = &done;
                scope.spawn(move || {
                    let mut idle = 0u32;
                    loop {
                        match stealer.steal() {
                            Steal::Success(t) => {
                                counts[t].fetch_add(1, Ordering::Relaxed);
                                idle = 0;
                            }
                            Steal::Retry => {}
                            Steal::Empty => {
                                if done.load(Ordering::Acquire) && stealer.is_empty() {
                                    return;
                                }
                                idle += 1;
                                if idle.is_multiple_of(64) {
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }

            // Owner: bursts of pushes with interleaved pops.
            let mut next = 0usize;
            while next < N {
                let burst = (next % 7) + 1;
                for _ in 0..burst {
                    if next == N {
                        break;
                    }
                    w.push(next);
                    next += 1;
                }
                if next.is_multiple_of(3) {
                    if let Some(t) = w.pop() {
                        counts[t].fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            while let Some(t) = w.pop() {
                counts[t].fetch_add(1, Ordering::Relaxed);
            }
            done.store(true, Ordering::Release);
        });

        let bad: Vec<usize> = counts
            .iter()
            .enumerate()
            .filter(|(_, c)| c.load(Ordering::Relaxed) != 1)
            .map(|(i, _)| i)
            .collect();
        assert!(bad.is_empty(), "lost or duplicated tasks: {bad:?}");
    }

    /// Injector stress: concurrent pushers racing concurrent batch-stealers.
    #[test]
    fn injector_concurrent_push_steal_exactly_once() {
        const PER_PUSHER: usize = 10_000;
        const PUSHERS: usize = 2;
        const THIEVES: usize = 2;
        let inj = Injector::new();
        let n = PER_PUSHER * PUSHERS;
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let pushers_done = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for p in 0..PUSHERS {
                let inj = &inj;
                let pushers_done = &pushers_done;
                scope.spawn(move || {
                    for i in 0..PER_PUSHER {
                        inj.push(p * PER_PUSHER + i);
                    }
                    pushers_done.fetch_add(1, Ordering::Release);
                });
            }
            for _ in 0..THIEVES {
                let inj = &inj;
                let counts = &counts;
                let pushers_done = &pushers_done;
                scope.spawn(move || {
                    let local: Worker<usize> = Worker::new_lifo();
                    loop {
                        while let Some(t) = local.pop() {
                            counts[t].fetch_add(1, Ordering::Relaxed);
                        }
                        match inj.steal_batch_and_pop(&local) {
                            Steal::Success(t) => {
                                counts[t].fetch_add(1, Ordering::Relaxed);
                            }
                            Steal::Retry => {}
                            Steal::Empty => {
                                if pushers_done.load(Ordering::Acquire) == PUSHERS && inj.is_empty()
                                {
                                    // Drain anything batch-moved locally.
                                    while let Some(t) = local.pop() {
                                        counts[t].fetch_add(1, Ordering::Relaxed);
                                    }
                                    return;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                });
            }
        });

        let delivered: usize = counts.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        assert_eq!(delivered, n, "lost or duplicated injector tasks");
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn dropping_nonempty_deque_drops_tasks() {
        // Drop-counting tokens make lost (leaked) or double-freed tasks
        // observable.
        struct Token<'a>(&'a AtomicUsize);
        impl Drop for Token<'_> {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = AtomicUsize::new(0);
        {
            let w = Worker::new_lifo();
            for _ in 0..10 {
                w.push(Token(&drops));
            }
            let _ = w.pop(); // one popped and dropped here
        }
        assert_eq!(drops.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn cache_padded_is_aligned() {
        let v = super::utils::CachePadded::new(0u64);
        assert_eq!(std::mem::align_of_val(&v), 128);
        assert_eq!(*v, 0);
    }
}
