#![warn(missing_docs)]

//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the work-stealing deque API surface (`deque::{Injector, Worker,
//! Stealer, Steal}`) and `utils::CachePadded` that `bpmf-sched` uses. The
//! implementation favors simplicity over lock-freedom: each deque is a
//! mutex-guarded `VecDeque`, which preserves the semantics (LIFO owner pops,
//! FIFO steals, exactly-once delivery) the scheduler's correctness proofs
//! rely on, at some cost in contention relative to the real crate.

/// Work-stealing deques.
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The source was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// A transient conflict; retry.
        Retry,
    }

    fn locked<T, R>(m: &Mutex<VecDeque<T>>, f: impl FnOnce(&mut VecDeque<T>) -> R) -> R {
        f(&mut m.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Owner side of a worker deque.
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// New LIFO worker deque (owner pops what it pushed last).
        pub fn new_lifo() -> Self {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// New FIFO worker deque.
        pub fn new_fifo() -> Self {
            Self::new_lifo()
        }

        /// Push a task onto the owner end.
        pub fn push(&self, task: T) {
            locked(&self.inner, |q| q.push_back(task));
        }

        /// Pop from the owner end (LIFO).
        pub fn pop(&self) -> Option<T> {
            locked(&self.inner, |q| q.pop_back())
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            locked(&self.inner, |q| q.is_empty())
        }

        /// Handle other threads use to steal from this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    /// Thief side of a worker deque. Steals from the opposite end the owner
    /// pops from.
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Stealer<T> {
        /// Attempt to steal the oldest task.
        pub fn steal(&self) -> Steal<T> {
            match locked(&self.inner, |q| q.pop_front()) {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the deque is currently empty.
        pub fn is_empty(&self) -> bool {
            locked(&self.inner, |q| q.is_empty())
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    /// Global injector queue all workers can push to and steal from.
    pub struct Injector<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// New empty injector.
        pub fn new() -> Self {
            Injector {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Push a task.
        pub fn push(&self, task: T) {
            locked(&self.inner, |q| q.push_back(task));
        }

        /// Steal one task, optionally moving a batch into `dest` first so
        /// subsequent owner pops hit the local deque.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut batch = locked(&self.inner, |q| {
                let take = (q.len() / 2).clamp(usize::from(!q.is_empty()), 8);
                q.drain(..take).collect::<Vec<_>>()
            });
            if batch.is_empty() {
                return Steal::Empty;
            }
            // The drained batch is oldest-first; the caller gets the oldest
            // (matching real crossbeam's FIFO injector) and the rest land in
            // its local deque.
            let popped = batch.remove(0);
            for t in batch {
                dest.push(t);
            }
            Steal::Success(popped)
        }

        /// Steal one task directly.
        pub fn steal(&self) -> Steal<T> {
            match locked(&self.inner, |q| q.pop_front()) {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// Whether the injector is currently empty.
        pub fn is_empty(&self) -> bool {
            locked(&self.inner, |q| q.is_empty())
        }
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }
}

/// Miscellaneous utilities.
pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 128 bytes to avoid false sharing between
    /// adjacent per-worker counters.
    #[derive(Default, Debug, Clone, Copy)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wrap a value.
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Unwrap.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn owner_pops_lifo_thief_steals_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn injector_batch_pop_delivers_everything_once() {
        let inj = Injector::new();
        for i in 0..100 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        let mut seen = Vec::new();
        loop {
            while let Some(t) = w.pop() {
                seen.push(t);
            }
            match inj.steal_batch_and_pop(&w) {
                Steal::Success(t) => seen.push(t),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cache_padded_is_aligned() {
        let v = super::utils::CachePadded::new(0u64);
        assert_eq!(std::mem::align_of_val(&v), 128);
        assert_eq!(*v, 0);
    }
}
