#![warn(missing_docs)]

//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace's benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, the `criterion_group!`/`criterion_main!` macros). Each
//! benchmark runs its closure for a short, bounded wall-time budget and
//! prints the median iteration time — no statistics engine, no HTML
//! reports, but numbers comparable run-to-run on the same machine.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard black box for convenience.
pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
}

impl Bencher {
    /// Run `f` repeatedly within the time budget, recording per-call times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        // Always run at least once so side effects happen.
        loop {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if start.elapsed() >= self.budget || self.samples.len() >= 10_000 {
                break;
            }
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in uses a time budget
    /// instead of a sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into().0, |b| f(b));
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into().0, |b| f(b, input));
        self
    }

    /// Finish the group (prints nothing extra in the stand-in).
    pub fn finish(self) {}
}

fn run_one(group: &str, id: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        budget: Duration::from_millis(200),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    println!(
        "{group}/{id}: median {median:?} over {} samples",
        b.samples.len()
    );
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            name,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("bench", id, |b| f(b));
        self
    }
}

/// Declare a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
