#![warn(missing_docs)]

//! Offline stand-in for the `proptest` crate.
//!
//! Implements the API subset this workspace's property tests use: range and
//! tuple strategies, `Just`, `prop_map`/`prop_flat_map`,
//! `collection::vec`, the `proptest!` macro with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, and the
//! `prop_assert*`/`prop_assume!` macros. Differences from the real crate:
//! no shrinking (a failing case reports its seed rather than a minimal
//! counterexample) and a deterministic per-test RNG so failures reproduce.

/// Test-runner configuration and RNG.
pub mod test_runner {
    /// Configuration accepted by `proptest!`.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run each property `cases` times.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic splitmix64 RNG used to drive strategies.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name so every test has a stable stream.
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`.
        pub fn next_bounded(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                return 0;
            }
            // Modulo bias is irrelevant for test-case generation.
            self.next_u64() % bound
        }

        /// Uniform draw in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then use it to build and sample a second strategy.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Types with an unconstrained whole-domain strategy, via [`any`].
pub trait Arbitrary {
    /// Draw one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The whole-domain strategy for `T`: `any::<bool>()`, `any::<u32>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.next_bounded(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.next_bounded((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.next_bounded(span) as i64) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: a fixed length or a range.
    pub trait VecLen {
        /// Draw a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl VecLen for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl VecLen for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.next_bounded((self.end - self.start) as u64) as usize
        }
    }

    /// Vector of values drawn from `element`, with length from `len`.
    pub fn vec<S: Strategy, L: VecLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: VecLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
    };
}

/// Assert inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Define property tests: each `fn name(args in strategies) { body }` runs
/// `cases` times with freshly sampled arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::Strategy as _;
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strategies = ($($strat,)+);
                let mut rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    let ($($arg,)+) = strategies.sample(&mut rng);
                    let run = || { $body };
                    let outcome = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(run),
                    );
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest stand-in: property `{}` failed on case {case}",
                            stringify!($name),
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..10, f in -2.0f64..2.0, n in 1usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!((1..=4).contains(&n));
        }

        #[test]
        fn combinators_compose(v in (1usize..5).prop_flat_map(|n| {
            (Just(n), collection::vec(0.0f64..1.0, n))
        })) {
            let (n, data) = v;
            prop_assert_eq!(data.len(), n);
        }

        #[test]
        fn assume_skips_cases(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
