#![warn(missing_docs)]

//! Offline stand-in for the `arc-swap` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the exact API subset it uses — `ArcSwap::new` / `from_pointee`,
//! `load` (returning a guard that derefs to the `Arc`), `load_full`,
//! `store`, and `swap` — implemented over `std::sync::RwLock`. The real
//! crate performs the same swap wait-free; this stand-in trades that for
//! a short read-lock critical section (one `Arc` clone), which is
//! invisible at the workspace's load-per-micro-batch cadence. Swapping
//! the real dependency back in is a Cargo.toml-only change.

use std::ops::Deref;
use std::sync::{Arc, RwLock};

/// An atomic storage cell for an `Arc<T>` that readers can load without
/// blocking writers for longer than one pointer clone.
///
/// Readers call [`ArcSwap::load`] and keep the returned [`Guard`] (or the
/// `Arc` from [`ArcSwap::load_full`]) for as long as they need the old
/// value; a concurrent [`ArcSwap::store`] swaps the cell without
/// invalidating anything already loaded — classic RCU publication.
pub struct ArcSwap<T> {
    inner: RwLock<Arc<T>>,
}

impl<T> ArcSwap<T> {
    /// Wrap an existing `Arc` in a swappable cell.
    pub fn new(value: Arc<T>) -> Self {
        ArcSwap {
            inner: RwLock::new(value),
        }
    }

    /// Allocate a new `Arc` around `value` and wrap it.
    pub fn from_pointee(value: T) -> Self {
        ArcSwap::new(Arc::new(value))
    }

    /// Load the current value. The guard derefs to `Arc<T>` and stays
    /// valid across concurrent stores (it pins the loaded snapshot, not
    /// the cell).
    pub fn load(&self) -> Guard<T> {
        Guard(self.load_full())
    }

    /// Load the current value as an owned `Arc`.
    pub fn load_full(&self) -> Arc<T> {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Replace the stored value, dropping the previous one.
    pub fn store(&self, value: Arc<T>) {
        drop(self.swap(value));
    }

    /// Replace the stored value and return the previous one.
    pub fn swap(&self, value: Arc<T>) -> Arc<T> {
        let mut slot = self
            .inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        std::mem::replace(&mut *slot, value)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ArcSwap").field(&self.load_full()).finish()
    }
}

/// A loaded snapshot of an [`ArcSwap`]; derefs to `Arc<T>`.
pub struct Guard<T>(Arc<T>);

impl<T> Guard<T> {
    /// Extract the owned `Arc` from the guard.
    pub fn into_inner(this: Guard<T>) -> Arc<T> {
        this.0
    }
}

impl<T> Deref for Guard<T> {
    type Target = Arc<T>;

    fn deref(&self) -> &Arc<T> {
        &self.0
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Guard<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Guard").field(&self.0).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn load_sees_latest_store() {
        let cell = ArcSwap::from_pointee(1u32);
        assert_eq!(**cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(**cell.load(), 2);
    }

    #[test]
    fn swap_returns_previous_value() {
        let cell = ArcSwap::new(Arc::new(String::from("old")));
        let prev = cell.swap(Arc::new(String::from("new")));
        assert_eq!(*prev, "old");
        assert_eq!(**cell.load(), "new");
    }

    #[test]
    fn guard_pins_snapshot_across_store() {
        let cell = ArcSwap::from_pointee(vec![1, 2, 3]);
        let guard = cell.load();
        cell.store(Arc::new(vec![9]));
        assert_eq!(**guard, [1, 2, 3]);
        assert_eq!(**cell.load(), [9]);
    }

    #[test]
    fn concurrent_readers_never_observe_torn_values() {
        let cell = Arc::new(ArcSwap::from_pointee((0u64, 0u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let pair = cell.load_full();
                        assert_eq!(pair.0, pair.1, "reader saw a half-published pair");
                    }
                })
            })
            .collect();
        for i in 1..=1000u64 {
            cell.store(Arc::new((i, i)));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
    }
}
