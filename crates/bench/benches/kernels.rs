//! Criterion micro-benchmarks of the dense kernels the sampler is built
//! from (Cholesky variants, rank-one update, SYRK, dot).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bpmf_linalg::{chol_update, cholesky_in_place, cholesky_in_place_parallel, vecops, Mat};

fn spd(n: usize) -> Mat {
    let b = Mat::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 13) as f64 / 13.0 - 0.4);
    let mut a = b.matmul_transb(&b);
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    a
}

fn bench_cholesky(c: &mut Criterion) {
    let mut group = c.benchmark_group("cholesky");
    group.sample_size(20);
    for &n in &[16usize, 32, 64, 128] {
        let a = spd(n);
        group.bench_with_input(BenchmarkId::new("serial", n), &a, |bench, a| {
            bench.iter(|| {
                let mut m = a.clone();
                cholesky_in_place(&mut m).unwrap();
                black_box(m);
            })
        });
        group.bench_with_input(BenchmarkId::new("parallel-2t", n), &a, |bench, a| {
            bench.iter(|| {
                let mut m = a.clone();
                cholesky_in_place_parallel(&mut m, 2, 32).unwrap();
                black_box(m);
            })
        });
    }
    group.finish();
}

fn bench_rank_one_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("chol_update");
    group.sample_size(30);
    for &n in &[16usize, 32, 64] {
        let a = spd(n);
        let mut l = a.clone();
        cholesky_in_place(&mut l).unwrap();
        let x: Vec<f64> = (0..n).map(|i| 0.1 * (i as f64).sin()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut lc = l.clone();
                let mut xc = x.clone();
                chol_update(&mut lc, &mut xc);
                black_box(lc);
            })
        });
    }
    group.finish();
}

fn bench_syrk_and_dot(c: &mut Criterion) {
    let mut group = c.benchmark_group("blas1-2");
    group.sample_size(50);
    for &k in &[16usize, 32, 64] {
        let x: Vec<f64> = (0..k).map(|i| (i as f64).cos()).collect();
        let y: Vec<f64> = (0..k).map(|i| (i as f64 * 0.3).sin()).collect();
        group.bench_with_input(BenchmarkId::new("syrk_lower", k), &k, |bench, &k| {
            let mut m = Mat::zeros(k, k);
            bench.iter(|| {
                m.syrk_lower(2.0, &x);
                black_box(&m);
            })
        });
        group.bench_with_input(BenchmarkId::new("dot", k), &k, |bench, _| {
            bench.iter(|| black_box(vecops::dot(&x, &y)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cholesky,
    bench_rank_one_update,
    bench_syrk_and_dot
);
criterion_main!(benches);
