//! Criterion benchmark: the per-pass cost of the three factorization
//! algorithms the paper's introduction compares (§I). One BPMF Gibbs
//! iteration does strictly more work than one ALS sweep (same K×K solves
//! plus hyperparameter sampling and noise), and SGD's pass is the
//! cheapest — the measured ordering SGD < ALS < BPMF is the quantitative
//! footing under "BPMF is more computational intensive".

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bpmf::{BpmfConfig, EngineKind, GibbsSampler, TrainData};
use bpmf_baselines::{AlsConfig, AlsTrainer, SgdConfig, SgdTrainer};
use bpmf_dataset::chembl_like;

fn bench_algorithms(c: &mut Criterion) {
    let ds = chembl_like(0.003, 8);
    let k = 16;
    let mut group = c.benchmark_group("algorithm-pass");
    group.sample_size(10);

    group.bench_function("als-sweep", |b| {
        let cfg = AlsConfig {
            num_latent: k,
            sweeps: 0,
            ..Default::default()
        };
        let runner = EngineKind::WorkStealing.build(2);
        let mut trainer = AlsTrainer::new(cfg, &ds.train, &ds.train_t);
        b.iter(|| {
            trainer.sweep(runner.as_ref());
            black_box(trainer.sweeps_done())
        });
    });

    group.bench_function("sgd-epoch", |b| {
        let cfg = SgdConfig {
            num_latent: k,
            epochs: 0,
            ..Default::default()
        };
        let mut trainer = SgdTrainer::new(cfg, &ds.train);
        b.iter(|| {
            trainer.epoch();
            black_box(trainer.epochs_done())
        });
    });

    group.bench_function("sgd-epoch-stratified-x2", |b| {
        let cfg = SgdConfig {
            num_latent: k,
            epochs: 0,
            ..Default::default()
        };
        let mut trainer = SgdTrainer::new(cfg, &ds.train);
        b.iter(|| {
            trainer.epoch_stratified(2);
            black_box(trainer.epochs_done())
        });
    });

    group.bench_function("bpmf-gibbs-iteration", |b| {
        let cfg = BpmfConfig {
            num_latent: k,
            seed: 1,
            kernel_threads: 1,
            ..Default::default()
        };
        let data = TrainData::new(&ds.train, &ds.train_t, ds.global_mean, &ds.test);
        let runner = EngineKind::WorkStealing.build(2);
        let mut sampler = GibbsSampler::new(cfg, data);
        b.iter(|| black_box(sampler.step(runner.as_ref())));
    });

    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
