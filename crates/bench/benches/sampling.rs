//! Criterion micro-benchmarks of the statistical sampling substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bpmf_linalg::{Cholesky, Mat};
use bpmf_stats::{
    chi_squared, gamma, sample_mvn_from_precision, sample_wishart, standard_normal, NormalWishart,
    SuffStats, Xoshiro256pp,
};

fn bench_scalar_draws(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalar-draws");
    group.sample_size(50);
    let mut rng = Xoshiro256pp::seed_from_u64(1);
    group.bench_function("u64", |b| b.iter(|| black_box(rng.next_u64())));
    group.bench_function("normal", |b| {
        b.iter(|| black_box(standard_normal(&mut rng)))
    });
    group.bench_function("gamma(8.5)", |b| {
        b.iter(|| black_box(gamma(&mut rng, 8.5, 1.0)))
    });
    group.bench_function("chi2(16)", |b| {
        b.iter(|| black_box(chi_squared(&mut rng, 16.0)))
    });
    group.finish();
}

fn bench_matrix_draws(c: &mut Criterion) {
    let mut group = c.benchmark_group("matrix-draws");
    group.sample_size(30);
    let mut rng = Xoshiro256pp::seed_from_u64(2);
    for &k in &[16usize, 32] {
        let chol = Cholesky::factor(&Mat::identity(k)).unwrap();
        group.bench_with_input(BenchmarkId::new("wishart", k), &k, |b, &k| {
            b.iter(|| black_box(sample_wishart(&mut rng, &chol, k as f64 + 2.0)))
        });
        let mean = vec![0.0; k];
        let mut out = vec![0.0; k];
        group.bench_with_input(BenchmarkId::new("mvn_precision", k), &k, |b, _| {
            b.iter(|| {
                sample_mvn_from_precision(&mut rng, &mean, &chol, &mut out);
                black_box(&out);
            })
        });
    }
    group.finish();
}

fn bench_normal_wishart_posterior(c: &mut Criterion) {
    let mut group = c.benchmark_group("normal-wishart");
    group.sample_size(30);
    let mut rng = Xoshiro256pp::seed_from_u64(3);
    for &k in &[16usize, 32] {
        let items = Mat::from_fn(5000, k, |_, _| standard_normal(&mut rng));
        let prior = NormalWishart::default_for_dim(k);
        group.bench_with_input(BenchmarkId::new("stats+posterior+sample", k), &k, |b, _| {
            b.iter(|| {
                let stats = SuffStats::from_rows(&items);
                let post = prior.posterior(&stats);
                black_box(post.sample(&mut rng));
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_scalar_draws,
    bench_matrix_draws,
    bench_normal_wishart_posterior
);
criterion_main!(benches);
