//! Criterion end-to-end benchmark: one full Gibbs iteration per runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bpmf::{BpmfConfig, EngineKind, GibbsSampler, TrainData};
use bpmf_dataset::chembl_like;

fn bench_iteration(c: &mut Criterion) {
    let ds = chembl_like(0.003, 8);
    let mut group = c.benchmark_group("gibbs-iteration");
    group.sample_size(10);

    for kind in EngineKind::all() {
        let runner = kind.build(2);
        group.bench_with_input(
            BenchmarkId::new(runner.name(), format!("{}nnz", ds.nnz())),
            &ds,
            |b, ds| {
                let cfg = BpmfConfig {
                    num_latent: 16,
                    seed: 1,
                    kernel_threads: 1,
                    ..Default::default()
                };
                let data = TrainData::new(&ds.train, &ds.train_t, ds.global_mean, &ds.test);
                let mut sampler = GibbsSampler::new(cfg, data);
                b.iter(|| black_box(sampler.step(runner.as_ref())));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_iteration);
criterion_main!(benches);
