//! Aligned text tables for harness output.
//!
//! Every harness prints the same rows/series the paper's figure reports, as
//! a table (this reproduction has no plotting dependency). Output goes
//! through one locked stdout handle per table, per the Rust Performance
//! Book's I/O guidance.

use std::io::Write;

/// A simple right-aligned text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header count).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Print with a title banner.
    pub fn print(&self, title: &str) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
        let _ = writeln!(out, "\n{title}");
        let _ = writeln!(out, "{}", "=".repeat(title.len().max(total.min(100))));
        let _ = write!(out, "|");
        for (h, w) in self.headers.iter().zip(&widths) {
            let _ = write!(out, " {h:>w$} |");
        }
        let _ = writeln!(out);
        let _ = write!(out, "|");
        for w in &widths {
            let _ = write!(out, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out);
        for row in &self.rows {
            let _ = write!(out, "|");
            for (cell, w) in row.iter().zip(&widths) {
                let _ = write!(out, " {cell:>w$} |");
            }
            let _ = writeln!(out);
        }
    }
}

/// Format with SI suffixes: `1234.5` → `"1.23k"`.
pub fn si(x: f64) -> String {
    let ax = x.abs();
    if !x.is_finite() {
        format!("{x}")
    } else if ax >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if ax >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if ax >= 1e3 {
        format!("{:.2}k", x / 1e3)
    } else if ax >= 1.0 || x == 0.0 {
        format!("{x:.2}")
    } else if ax >= 1e-3 {
        format!("{:.2}m", x * 1e3)
    } else if ax >= 1e-6 {
        format!("{:.2}µ", x * 1e6)
    } else {
        format!("{:.2}n", x * 1e9)
    }
}

/// Seconds, human formatted.
pub fn dur(secs: f64) -> String {
    if secs >= 60.0 {
        format!("{:.1}min", secs / 60.0)
    } else if secs >= 1.0 {
        format!("{secs:.2}s")
    } else if secs >= 1e-3 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{:.1}µs", secs * 1e6)
    }
}

/// Percentage with one decimal.
pub fn pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn si_formatting_covers_ranges() {
        assert_eq!(si(0.0), "0.00");
        assert_eq!(si(1234.5), "1.23k");
        assert_eq!(si(2.5e6), "2.50M");
        assert_eq!(si(3.2e-3), "3.20m");
        assert_eq!(si(4.0e-7), "400.00n");
    }

    #[test]
    fn dur_formatting() {
        assert_eq!(dur(90.0), "1.5min");
        assert_eq!(dur(2.5), "2.50s");
        assert_eq!(dur(0.004), "4.00ms");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_are_rejected() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }
}
