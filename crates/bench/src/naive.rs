//! A deliberately straightforward BPMF implementation.
//!
//! The paper's headline claim (§VI) compares the optimized distributed code
//! against "the initial Julia-based version" — a correct but unoptimized
//! implementation. This module is that baseline, reconstructed with the
//! habits typical of a first research prototype:
//!
//! * fresh allocations inside the per-item loop (no scratch reuse),
//! * the precision matrix is **explicitly inverted** (then multiplied),
//!   instead of two triangular solves against its factor,
//! * full covariance Cholesky for the noise instead of reusing the
//!   precision factor,
//! * single-threaded, no adaptive kernels, no blocking.
//!
//! Same math, same results in distribution — only the engineering differs,
//! which is exactly what the headline speedup quantifies.

use bpmf_linalg::{vecops, Cholesky, Mat};
use bpmf_sparse::Csr;
use bpmf_stats::{NormalWishart, SuffStats, Xoshiro256pp};

/// One naive Gibbs iteration over users and movies; returns RMSE on `test`.
#[allow(clippy::too_many_arguments)]
pub fn naive_iteration(
    r: &Csr,
    rt: &Csr,
    global_mean: f64,
    u: &mut Mat,
    v: &mut Mat,
    test: &[(u32, u32, f64)],
    alpha: f64,
    rng: &mut Xoshiro256pp,
) -> f64 {
    let k = u.cols();
    let hyper = NormalWishart::default_for_dim(k);

    // Movie side, then user side (Algorithm 1).
    let (mu_v, lambda_v) = hyper.posterior(&SuffStats::from_rows(v)).sample(rng);
    naive_side(rt, global_mean, v, u, &mu_v, &lambda_v, alpha, rng);
    let (mu_u, lambda_u) = hyper.posterior(&SuffStats::from_rows(u)).sample(rng);
    naive_side(r, global_mean, u, v, &mu_u, &lambda_u, alpha, rng);

    if test.is_empty() {
        return f64::NAN;
    }
    let se: f64 = test
        .iter()
        .map(|&(i, j, rating)| {
            let pred = global_mean + vecops::dot(u.row(i as usize), v.row(j as usize));
            (pred - rating) * (pred - rating)
        })
        .sum();
    (se / test.len() as f64).sqrt()
}

#[allow(clippy::too_many_arguments)]
fn naive_side(
    matrix: &Csr,
    global_mean: f64,
    items: &mut Mat,
    other: &Mat,
    mu: &[f64],
    lambda: &Mat,
    alpha: f64,
    rng: &mut Xoshiro256pp,
) {
    let k = items.cols();
    for i in 0..matrix.nrows() {
        let (cols, vals) = matrix.row(i);

        // Fresh allocations every item — the prototype habit.
        let mut prec = lambda.clone();
        let mut b = lambda.matvec(mu);
        for (&j, &rating) in cols.iter().zip(vals) {
            let vrow = other.row(j as usize);
            // Element-wise outer product on the full matrix (not just the
            // lower triangle).
            for a in 0..k {
                for c in 0..k {
                    prec[(a, c)] += alpha * vrow[a] * vrow[c];
                }
            }
            for (bb, &ve) in b.iter_mut().zip(vrow) {
                *bb += alpha * (rating - global_mean) * ve;
            }
        }

        // Explicit inverse, then a dense matvec — O(K³) more than needed.
        let cov = Cholesky::factor(&prec)
            .expect("naive precision must be SPD")
            .inverse();
        let mean = cov.matvec(&b);

        // Sample by factoring the covariance (a second O(K³)).
        let cov_chol = Cholesky::factor(&cov).expect("covariance must be SPD");
        let mut z = vec![0.0; k];
        bpmf_stats::fill_standard_normal(rng, &mut z);
        let row = items.row_mut(i);
        for a in 0..k {
            let noise = vecops::dot(&cov_chol.l().row(a)[..=a], &z[..=a]);
            row[a] = mean[a] + noise;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpmf_sparse::Coo;
    use bpmf_stats::normal;

    #[test]
    fn naive_sampler_converges_on_planted_data() {
        let (m, n, k) = (40usize, 30usize, 2usize);
        let mut rng = Xoshiro256pp::seed_from_u64(77);
        let ut = Mat::from_fn(m, k, |_, _| normal(&mut rng, 0.0, 1.0));
        let vt = Mat::from_fn(n, k, |_, _| normal(&mut rng, 0.0, 1.0));
        let mut coo = Coo::new(m, n);
        let mut test = Vec::new();
        for i in 0..m {
            for j in 0..n {
                if rng.next_f64() < 0.5 {
                    let val = vecops::dot(ut.row(i), vt.row(j)) + normal(&mut rng, 0.0, 0.1);
                    if rng.next_f64() < 0.1 {
                        test.push((i as u32, j as u32, val));
                    } else {
                        coo.push(i, j, val);
                    }
                }
            }
        }
        let r = Csr::from_coo_owned(coo);
        let rt = r.transpose();
        let mean = r.iter().map(|(_, _, v)| v).sum::<f64>() / r.nnz() as f64;

        let mut u = Mat::from_fn(m, 4, |_, _| normal(&mut rng, 0.0, 0.3));
        let mut v = Mat::from_fn(n, 4, |_, _| normal(&mut rng, 0.0, 0.3));
        let mut last = f64::INFINITY;
        for _ in 0..12 {
            last = naive_iteration(&r, &rt, mean, &mut u, &mut v, &test, 2.0, &mut rng);
        }
        assert!(last < 0.6, "naive sampler should converge, rmse = {last}");
    }
}
