//! Host calibration of the cluster simulator's compute constants.
//!
//! The simulator charges `seconds_per_rating` and `seconds_per_item`; both
//! are measured here by timing the real serial item-update kernel at two
//! rating counts and fitting the line (the same workload model the paper
//! derives from its Fig. 2 measurements).

use std::time::Instant;

use bpmf::{update_item, SidePrior, UpdateMethod, UpdateScratch};
use bpmf_cluster_sim::ComputeModel;
use bpmf_linalg::{Cholesky, Mat};
use bpmf_stats::{normal, Xoshiro256pp};

/// Time one serial item update with `d` ratings at latent dimension `k`,
/// averaged over `reps` runs.
pub fn time_item_update(
    method: UpdateMethod,
    k: usize,
    d: usize,
    reps: usize,
    threads: usize,
) -> f64 {
    let mut rng = Xoshiro256pp::seed_from_u64(1717);
    let lambda = Mat::identity(k);
    let mu = vec![0.0; k];
    let lambda_mu = lambda.matvec(&mu);
    let chol = Cholesky::factor(&lambda).unwrap();
    let other = Mat::from_fn(d.max(4), k, |_, _| normal(&mut rng, 0.0, 0.5));
    let cols: Vec<u32> = (0..d as u32).collect();
    let vals: Vec<f64> = (0..d).map(|i| 3.0 + (i as f64).sin()).collect();
    let prior = SidePrior {
        lambda: &lambda,
        lambda_mu: &lambda_mu,
        chol_lambda: &chol,
        alpha: 2.0,
        mean_offset: 3.0,
    };
    let mut scratch = UpdateScratch::new(k);
    let mut out = vec![0.0; k];

    // Warm up, then measure.
    for _ in 0..reps.min(3) {
        update_item(
            method,
            &prior,
            (&cols, &vals),
            &other,
            None,
            &mut rng,
            &mut scratch,
            &mut out,
            threads,
        );
    }
    let t0 = Instant::now();
    for _ in 0..reps {
        update_item(
            method,
            &prior,
            (&cols, &vals),
            &other,
            None,
            &mut rng,
            &mut scratch,
            &mut out,
            threads,
        );
    }
    std::hint::black_box(&out);
    t0.elapsed().as_secs_f64() / reps as f64
}

/// Measure the light/mid kernel crossover at latent dimension `k`: the
/// largest rating count at which the rank-one kernel still beats the
/// blocked serial Cholesky kernel on this host.
///
/// This is how the `rank_one_max` default should be picked on new hardware
/// (`BpmfConfig::rank_one_max` / `Bpmf::builder().rank_one_max(..)`); the
/// stock default (`K/8`) was measured with this function after the
/// accumulation moved to blocked panel kernels — blocked accumulation
/// lowered the crossover from the old `K/2`, since the mid-item kernel got
/// faster while the rank-one kernel was unchanged.
pub fn calibrate_rank_one_max(k: usize) -> usize {
    let mut last_rank_one_win = 0;
    let mut d = 1usize;
    while d <= 2 * k.max(8) {
        let reps = (20_000 / d.max(1)).clamp(20, 2_000);
        let t_r1 = time_item_update(UpdateMethod::RankOne, k, d, reps, 1);
        let t_cs = time_item_update(UpdateMethod::CholSerial, k, d, reps, 1);
        if t_r1 < t_cs {
            last_rank_one_win = d;
        }
        // ~1.5x steps: dense enough near the crossover, cheap on the tail.
        d = (d * 3).div_ceil(2);
    }
    last_rank_one_win
}

/// Fit the linear workload model on this host and return a [`ComputeModel`]
/// whose per-unit costs are measured, with the machine-shape constants
/// (cache size, thread efficiency, message overhead) kept at the BG/Q-era
/// defaults documented in EXPERIMENTS.md.
pub fn calibrate(k: usize) -> ComputeModel {
    let d_low = 32;
    let d_high = 2048;
    let t_low = time_item_update(UpdateMethod::CholSerial, k, d_low, 200, 1);
    let t_high = time_item_update(UpdateMethod::CholSerial, k, d_high, 20, 1);
    let per_rating = ((t_high - t_low) / (d_high - d_low) as f64).max(1e-12);
    // The intercept can come out negative on a noisy host; an item update
    // always contains the O(K³) factor+solve, which costs at least a few
    // rating accumulations — floor it there.
    let per_item = (t_low - per_rating * d_low as f64).max(4.0 * per_rating);
    ComputeModel {
        seconds_per_rating: per_rating.max(1e-12),
        seconds_per_item: per_item,
        ..ComputeModel::default_calibration()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_produces_positive_costs() {
        let model = calibrate(16);
        assert!(model.seconds_per_rating > 0.0);
        assert!(model.seconds_per_item > 0.0);
        // An item update is at least as expensive as a handful of rating
        // accumulations.
        assert!(model.seconds_per_item > model.seconds_per_rating);
    }

    #[test]
    fn update_time_grows_with_ratings() {
        let t_small = time_item_update(UpdateMethod::CholSerial, 16, 8, 50, 1);
        let t_large = time_item_update(UpdateMethod::CholSerial, 16, 1024, 10, 1);
        assert!(t_large > t_small * 3.0, "{t_small} vs {t_large}");
    }
}
