//! **Figure 4** — distributed BPMF strong scaling on MovieLens: items/s and
//! parallel efficiency versus node count (16 cores per node on the paper's
//! BlueGene/Q).
//!
//! Two parts:
//!
//! 1. **Live runs** of the real distributed driver (`bpmf::distributed`)
//!    over the in-process message-passing runtime with a synthetic network
//!    model — small rank counts, real messages, real async protocol.
//! 2. **Calibrated extrapolation** of the *same schedule* (identical
//!    partitioner and communication plan) on the BlueGene/Q-like simulator
//!    to 1–1024 nodes. Expected shape (paper): super-linear efficiency up to
//!    32 nodes (one rack; cache effects), degradation beyond one rack
//!    (shared uplinks).
//!
//! Usage: `cargo run -p bpmf-bench --release --bin fig4_strong_scaling`
//! (`BPMF_FIG4_SCALE` resizes the MovieLens-like workload for the
//! simulator part, default 0.1; `BPMF_SCALE` the live part, default 0.005).

use bpmf::distributed::{run_rank, DistConfig};
use bpmf::BpmfConfig;
use bpmf_bench::calibrate::calibrate;
use bpmf_bench::table::{pct, si, Table};
use bpmf_cluster_sim::{phase_loads, simulate_iteration, ComputeModel, Topology};
use bpmf_dataset::movielens_like;
use bpmf_mpisim::{NetModel, Universe};

fn main() {
    live_part();
    simulated_part();
}

fn live_part() {
    let scale = bpmf_bench::env_scale("BPMF_SCALE", 0.005);
    let ds = movielens_like(scale, 2016);
    println!(
        "Figure 4 reproduction — live part: {} users x {} movies, {} ratings, ranks on the in-process MPI runtime",
        ds.nrows(),
        ds.ncols(),
        ds.nnz()
    );

    let mut table = Table::new([
        "#ranks",
        "items/s",
        "efficiency",
        "bytes sent",
        "final RMSE",
    ]);
    let mut base_ips = None;
    #[derive(serde::Serialize)]
    struct Row {
        ranks: usize,
        items_per_sec: f64,
        efficiency: f64,
    }
    let mut artifact = Vec::new();

    for ranks in [1usize, 2, 4] {
        let cfg = DistConfig {
            base: BpmfConfig {
                num_latent: 16,
                burnin: 2,
                samples: 4,
                seed: 11,
                kernel_threads: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let out = Universe::run(ranks, Some(NetModel::test_cluster()), |comm| {
            run_rank(comm, &ds.train, &ds.train_t, ds.global_mean, &ds.test, &cfg)
        });
        let ips = out[0].items_per_sec;
        let base = *base_ips.get_or_insert(ips);
        let eff = ips / (base * ranks as f64);
        let bytes: u64 = out.iter().map(|o| o.bytes_sent).sum();
        table.row([
            ranks.to_string(),
            format!("{}/s", si(ips)),
            pct(eff),
            si(bytes as f64),
            format!("{:.4}", out[0].final_rmse()),
        ]);
        artifact.push(Row {
            ranks,
            items_per_sec: ips,
            efficiency: eff,
        });
    }
    table.print("Fig. 4 (live, in-process ranks) — oversubscribed on this host; shape only");
    bpmf_bench::write_json("fig4_live", &artifact);
}

fn simulated_part() {
    let scale = bpmf_bench::env_scale("BPMF_FIG4_SCALE", 1.0);
    println!("\nFigure 4 reproduction — BlueGene/Q-like simulation (MovieLens-like scale {scale})");
    let ds = movielens_like(scale, 2016);
    println!(
        "  workload: {} users x {} movies, {} ratings; calibrating kernel costs on this host...",
        ds.nrows(),
        ds.ncols(),
        ds.nnz()
    );
    // Host calibration is reported for the record, but the machine model
    // charges BG/Q-era per-core costs: mixing this host's (much faster)
    // kernel times with BG/Q-era network constants would skew the
    // compute/communication ratio and distort the figure.
    let host = calibrate(16);
    println!(
        "  host kernel calibration (for reference): {:.1} ns/rating, {:.2} µs/item",
        host.seconds_per_rating * 1e9,
        host.seconds_per_item * 1e6
    );
    let model = ComputeModel::default_calibration();
    println!(
        "  machine model charges BG/Q-era costs: {:.1} ns/rating, {:.2} µs/item",
        model.seconds_per_rating * 1e9,
        model.seconds_per_item * 1e6
    );
    // The super-linear region exists only when the 1-node working set
    // spills the cache (as the real ml-20m does); warn when a scaled-down
    // run cannot show it.
    let one_node_ws = ((ds.nrows() + ds.ncols()) * 16 * 8 + ds.nnz() * 12) as f64;
    if one_node_ws <= model.cache_bytes {
        println!(
            "  note: working set ({:.0} MB) fits one node's cache — the cache-driven",
            one_node_ws / 1e6
        );
        println!("  super-linear region will not appear; use BPMF_FIG4_SCALE=1 for full fidelity.");
    }
    println!(
        "  calibration: {:.1} ns/rating, {:.2} µs/item",
        model.seconds_per_rating * 1e9,
        model.seconds_per_item * 1e6
    );
    let topo = Topology::bluegene_q_like();

    let mut table = Table::new([
        "#cores",
        "#nodes",
        "items/s",
        "parallel efficiency",
        "inter-rack msgs",
    ]);
    let mut base: Option<f64> = None;
    #[derive(serde::Serialize)]
    struct Row {
        nodes: usize,
        cores: usize,
        items_per_sec: f64,
        efficiency: f64,
    }
    let mut artifact = Vec::new();

    for p in 0..=10 {
        let nodes = 1usize << p;
        let phases = phase_loads(&ds.train, &ds.train_t, nodes, 16);
        let res = simulate_iteration(&topo, &model, &phases, 64);
        let ips = res.items_per_sec;
        let t1 = *base.get_or_insert(ips);
        let eff = ips / (t1 * nodes as f64);
        table.row([
            (nodes * topo.cores_per_node).to_string(),
            nodes.to_string(),
            format!("{}/s", si(ips)),
            pct(eff),
            res.inter_rack_messages.to_string(),
        ]);
        artifact.push(Row {
            nodes,
            cores: nodes * topo.cores_per_node,
            items_per_sec: ips,
            efficiency: eff,
        });
    }

    table.print(
        "Fig. 4 (simulated BG/Q) — expect super-linear ≤ 32 nodes, degradation beyond one rack",
    );
    bpmf_bench::write_json("fig4_simulated", &artifact);
}
