//! **Ablation** — the adaptive kernel thresholds (DESIGN.md §7).
//!
//! The paper fixes two routing decisions from its Fig. 2 measurements: items
//! below a small rating count use the rank-one kernel, items above ~1000
//! ratings use the parallel Cholesky kernel. This harness sweeps both
//! thresholds on a column-skewed ChEMBL-like workload and reports end-to-end
//! throughput, demonstrating each choice is a real optimum rather than
//! folklore.
//!
//! Usage: `cargo run -p bpmf-bench --release --bin ablation_threshold`

use bpmf::{Bpmf, EngineKind, NoCallback, TrainData};
use bpmf_baselines::make_trainer;
use bpmf_bench::table::{si, Table};
use bpmf_dataset::chembl_like;

fn throughput(
    ds: &bpmf_dataset::Dataset,
    rank_one_max: Option<usize>,
    parallel_threshold: usize,
) -> f64 {
    let mut builder = Bpmf::builder()
        .latent(16)
        .burnin(1) // the burn-in iteration doubles as warm-up
        .samples(2)
        .seed(3)
        .parallel_threshold(parallel_threshold)
        .kernel_threads(std::thread::available_parallelism().map_or(2, |n| n.get()))
        .engine(EngineKind::WorkStealing)
        .threads(2);
    if let Some(max) = rank_one_max {
        builder = builder.rank_one_max(max);
    }
    let spec = builder.build().expect("valid spec");
    let data = TrainData::try_new(&ds.train, &ds.train_t, ds.global_mean, &ds.test)
        .expect("well-formed dataset");
    let runner = spec.runner();
    let mut trainer = make_trainer(&spec);
    // mean_items_per_sec averages post-burn-in iterations only, so the
    // warm-up burn-in step is excluded exactly as before.
    trainer
        .fit(&data, runner.as_ref(), &mut NoCallback)
        .expect("fit succeeds")
        .mean_items_per_sec()
}

fn main() {
    let scale = bpmf_bench::env_scale("BPMF_SCALE", 0.02);
    let ds = chembl_like(scale, 77);
    println!(
        "Ablation: kernel thresholds on {} ({} x {}, {} ratings, max item degree {})",
        ds.name,
        ds.nrows(),
        ds.ncols(),
        ds.nnz(),
        ds.train_t.max_row_nnz()
    );

    #[derive(serde::Serialize)]
    struct Row {
        which: String,
        value: String,
        items_per_sec: f64,
    }
    let mut artifact = Vec::new();

    // Sweep 1: parallel threshold with rank-one fixed at default.
    let mut t1 = Table::new(["parallel threshold", "items/s"]);
    for &threshold in &[64usize, 250, 1000, 4000, usize::MAX] {
        let ips = throughput(&ds, None, threshold);
        let label = if threshold == usize::MAX {
            "never (serial only)".into()
        } else {
            threshold.to_string()
        };
        t1.row([label.clone(), format!("{}/s", si(ips))]);
        artifact.push(Row {
            which: "parallel_threshold".into(),
            value: label,
            items_per_sec: ips,
        });
    }
    t1.print("Ablation 1 — parallel-Cholesky threshold (paper picks ~1000)");

    // Sweep 2: rank-one ceiling with parallel threshold fixed at 1000.
    let mut t2 = Table::new(["rank-one max ratings", "items/s"]);
    for &cap in &[0usize, 4, 8, 16, 32, 64] {
        let ips = throughput(&ds, Some(cap), 1000);
        t2.row([cap.to_string(), format!("{}/s", si(ips))]);
        artifact.push(Row {
            which: "rank_one_max".into(),
            value: cap.to_string(),
            items_per_sec: ips,
        });
    }
    t2.print("Ablation 2 — rank-one kernel ceiling (default: K/2)");
    bpmf_bench::write_json("ablation_threshold", &artifact);
}
