//! **§VI claim** — "speed up machine learning for drug discovery on an
//! industrial dataset from 15 days for the initial Julia-based version to
//! 30 minutes using the distributed version" (≈ 720×).
//!
//! Measured rungs of that ladder, on the same ChEMBL-like workload:
//!
//! 1. the naive single-threaded baseline (this repo's stand-in for the
//!    "initial Julia version": allocating, explicit inverses, no kernels);
//! 2. the optimized sampler, single thread (engineering only);
//! 3. the optimized sampler, all host cores (multi-core paper section);
//! 4. the distributed driver on in-process ranks (distributed section);
//! 5. a calibrated projection to 128 BG/Q nodes / 2048 cores — the class of
//!    allocation behind the paper's 30-minute number.
//!
//! Usage: `cargo run -p bpmf-bench --release --bin headline_speedup`

use std::time::Instant;

use bpmf::distributed::{run_rank, DistConfig};
use bpmf::{Bpmf, BpmfConfig, EngineKind, NoCallback, TrainData};
use bpmf_baselines::make_trainer;
use bpmf_bench::calibrate::calibrate;
use bpmf_bench::naive::naive_iteration;
use bpmf_bench::table::{si, Table};
use bpmf_cluster_sim::{phase_loads, simulate_iteration, Topology};
use bpmf_dataset::chembl_like;
use bpmf_linalg::Mat;
use bpmf_mpisim::Universe;
use bpmf_stats::{normal, Xoshiro256pp};

fn main() {
    let scale = bpmf_bench::env_scale("BPMF_SCALE", 0.01);
    let ds = chembl_like(scale, 2016);
    let k = 16usize;
    println!(
        "§VI headline reproduction on {}: {} compounds x {} targets, {} ratings",
        ds.name,
        ds.nrows(),
        ds.ncols(),
        ds.nnz()
    );
    let items_per_iter = (ds.nrows() + ds.ncols()) as f64;

    let mut table = Table::new(["version", "items/s", "speedup vs naive"]);
    #[derive(serde::Serialize)]
    struct Row {
        version: String,
        items_per_sec: f64,
        speedup: f64,
    }
    let mut artifact = Vec::new();
    let mut push = |table: &mut Table, name: &str, ips: f64, naive: f64| {
        table.row([
            name.to_string(),
            format!("{}/s", si(ips)),
            format!("{:.1}x", ips / naive),
        ]);
        artifact.push(Row {
            version: name.into(),
            items_per_sec: ips,
            speedup: ips / naive,
        });
    };

    // 1. Naive baseline ("initial Julia version").
    let naive_ips = {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut u = Mat::from_fn(ds.nrows(), k, |_, _| normal(&mut rng, 0.0, 0.3));
        let mut v = Mat::from_fn(ds.ncols(), k, |_, _| normal(&mut rng, 0.0, 0.3));
        let iters = 2;
        let t0 = Instant::now();
        for _ in 0..iters {
            naive_iteration(
                &ds.train,
                &ds.train_t,
                ds.global_mean,
                &mut u,
                &mut v,
                &ds.test,
                2.0,
                &mut rng,
            );
        }
        items_per_iter * iters as f64 / t0.elapsed().as_secs_f64()
    };
    push(
        &mut table,
        "naive single-thread (Julia-era baseline)",
        naive_ips,
        naive_ips,
    );

    // 2–3. Optimized sampler, 1 thread and all host threads.
    let host_threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    let mut opt_serial_ips = naive_ips;
    for threads in [1usize, host_threads] {
        let spec = Bpmf::builder()
            .latent(k)
            .burnin(1) // the burn-in iteration doubles as warm-up
            .samples(3)
            .seed(5)
            .kernel_threads(1)
            .engine(EngineKind::WorkStealing)
            .threads(threads)
            .build()
            .expect("valid spec");
        let data = TrainData::try_new(&ds.train, &ds.train_t, ds.global_mean, &ds.test)
            .expect("well-formed dataset");
        let runner = spec.runner();
        let mut trainer = make_trainer(&spec);
        let report = trainer
            .fit(&data, runner.as_ref(), &mut NoCallback)
            .expect("fit succeeds");
        let name = format!("optimized, work stealing x{threads}");
        // mean_items_per_sec averages post-burn-in iterations only, so the
        // warm-up burn-in step is excluded exactly as before.
        let ips = report.mean_items_per_sec();
        if threads == 1 {
            opt_serial_ips = ips;
        }
        push(&mut table, &name, ips, naive_ips);
    }

    // 4. Distributed driver, in-process ranks (no artificial network delay:
    // measures protocol overhead, not the host's oversubscription).
    {
        let ranks = 2usize;
        let cfg = DistConfig {
            base: BpmfConfig {
                num_latent: k,
                burnin: 1,
                samples: 3,
                seed: 5,
                kernel_threads: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let out = Universe::run(ranks, None, |comm| {
            run_rank(comm, &ds.train, &ds.train_t, ds.global_mean, &ds.test, &cfg)
        });
        let name = format!("distributed, {ranks} in-process ranks");
        push(&mut table, &name, out[0].items_per_sec, naive_ips);
    }

    // 5. Projection to the paper's machine class: 128 BG/Q nodes = 2048
    // cores, same schedule. The projection is a *ratio* (distributed vs
    // naive on the same machine model), so host calibration of per-unit
    // costs is appropriate here — network constants only shape the
    // distributed end.
    let model = calibrate(k);
    let topo = Topology::bluegene_q_like();
    let nodes = 128;
    let phases = phase_loads(&ds.train, &ds.train_t, nodes, k);
    let sim = simulate_iteration(&topo, &model, &phases, 64);
    // The naive baseline on one BG/Q-class core, from the same cost model
    // with the naive implementation's measured slowdown factor (how much
    // slower naive is than the optimized serial kernel on this host).
    let naive_factor = opt_serial_ips / naive_ips;
    let one_core_optimized = items_per_iter
        / (phases
            .iter()
            .flat_map(|p| p.node_ratings.iter())
            .sum::<f64>()
            * model.seconds_per_rating
            + items_per_iter * model.seconds_per_item);
    let projected_naive = one_core_optimized / naive_factor;
    push(
        &mut table,
        &format!(
            "projected: {} BG/Q nodes ({} cores)",
            nodes,
            nodes * topo.cores_per_node
        ),
        sim.items_per_sec,
        projected_naive,
    );

    table.print("§VI — headline speedup ladder (paper: initial version → distributed ≈ 720x)");
    println!(
        "\nPaper analogue: naive-on-one-core vs distributed-on-{}-cores ⇒ {:.0}x (paper reports ≈720x: 15 days → 30 min).",
        nodes * topo.cores_per_node,
        sim.items_per_sec / projected_naive
    );
    bpmf_bench::write_json("headline_speedup", &artifact);
}
