//! **Ablation** — reordering R before partitioning (§IV-B).
//!
//! The paper: "we can reorder the rows and columns in R to minimize the
//! number of items that have to be exchanged, if we split and distribute U
//! and V according to consecutive regions in R." This harness runs the real
//! distributed driver with RCM reordering on and off and reports the
//! communication volume (items exchanged per iteration) and throughput.
//!
//! Usage: `cargo run -p bpmf-bench --release --bin ablation_reorder`

use bpmf::distributed::{run_rank, DistConfig};
use bpmf::BpmfConfig;
use bpmf_bench::table::{si, Table};
use bpmf_dataset::{chembl_like, SyntheticConfig};
use bpmf_mpisim::{NetModel, Universe};

/// A rating workload *with* the community structure real data has (genre
/// niches, assay families): the case reordering exists for. The plain
/// presets use independent power-law sampling, whose random bipartite graph
/// has no block structure for RCM to recover; and the matrix must stay
/// sparse (real data is ≲1% dense) — a dense matrix needs every item
/// everywhere, leaving no volume for any ordering to save.
fn clustered_movielens(seed: u64) -> bpmf_dataset::Dataset {
    SyntheticConfig {
        name: "clustered-ml-like".into(),
        nrows: 3000,
        ncols: 1500,
        nnz: 60_000, // 1.3% dense
        k_true: 16,
        noise_sd: 0.8,
        row_exponent: 0.3,
        col_exponent: 0.3,
        clip: Some((0.5, 5.0)),
        clusters: Some(8),
        intra_cluster_prob: 0.85,
        test_fraction: 0.1,
        seed,
    }
    .generate()
}

fn main() {
    let ranks = 4;
    println!("Ablation: RCM reordering of R, {ranks} ranks, test network model");
    let workloads = [
        chembl_like(bpmf_bench::env_scale("BPMF_SCALE", 0.01), 91),
        clustered_movielens(91),
    ];

    #[derive(serde::Serialize)]
    struct Row {
        dataset: String,
        reorder: bool,
        comm_items: usize,
        items_per_sec: f64,
    }
    let mut artifact = Vec::new();

    for ds in &workloads {
        let mut table = Table::new([
            "reorder",
            "comm volume (items/iter)",
            "bytes sent",
            "items/s",
            "final RMSE",
        ]);
        for reorder in [false, true] {
            let cfg = DistConfig {
                base: BpmfConfig {
                    num_latent: 16,
                    burnin: 2,
                    samples: 4,
                    seed: 31,
                    kernel_threads: 1,
                    ..Default::default()
                },
                reorder,
                ..Default::default()
            };
            let out = Universe::run(ranks, Some(NetModel::test_cluster()), |comm| {
                run_rank(comm, &ds.train, &ds.train_t, ds.global_mean, &ds.test, &cfg)
            });
            let bytes: u64 = out.iter().map(|o| o.bytes_sent).sum();
            table.row([
                if reorder { "RCM" } else { "none" }.to_string(),
                out[0].comm_volume_items.to_string(),
                si(bytes as f64),
                format!("{}/s", si(out[0].items_per_sec)),
                format!("{:.4}", out[0].final_rmse()),
            ]);
            artifact.push(Row {
                dataset: ds.name.clone(),
                reorder,
                comm_items: out[0].comm_volume_items,
                items_per_sec: out[0].items_per_sec,
            });
        }
        table.print(&format!("Ablation — reordering on {}", ds.name));
    }
    println!("\nExpect: RCM reduces the exchanged-items volume; accuracy unchanged.");
    bpmf_bench::write_json("ablation_reorder", &artifact);
}
