//! **Ablation** — the send-buffer size of §IV-C.
//!
//! The paper: "the overhead of calling these routines is too much to
//! individually send each item ... we store items that need to be sent in a
//! temporary buffer and only send when the buffer is full." This harness
//! sweeps the buffer size on the real distributed driver under a synthetic
//! network model and reports throughput and message counts.
//!
//! Usage: `cargo run -p bpmf-bench --release --bin ablation_buffer`

use bpmf::distributed::{run_rank, DistConfig};
use bpmf::BpmfConfig;
use bpmf_bench::table::{si, Table};
use bpmf_dataset::movielens_like;
use bpmf_mpisim::{NetModel, Universe};

fn main() {
    let scale = bpmf_bench::env_scale("BPMF_SCALE", 0.004);
    let ds = movielens_like(scale, 55);
    let ranks = 4;
    println!(
        "Ablation: send-buffer size on {} ({} x {}, {} ratings), {} ranks, test network model",
        ds.name,
        ds.nrows(),
        ds.ncols(),
        ds.nnz(),
        ranks
    );

    let mut table = Table::new([
        "buffer (items)",
        "items/s",
        "messages",
        "bytes",
        "final RMSE",
    ]);
    #[derive(serde::Serialize)]
    struct Row {
        buffer_items: usize,
        items_per_sec: f64,
        messages: u64,
        bytes: u64,
    }
    let mut artifact = Vec::new();

    for &buffer in &[1usize, 4, 16, 64, 256] {
        let cfg = DistConfig {
            base: BpmfConfig {
                num_latent: 16,
                burnin: 2,
                samples: 4,
                seed: 21,
                kernel_threads: 1,
                ..Default::default()
            },
            send_buffer_items: buffer,
            ..Default::default()
        };
        let out = Universe::run(ranks, Some(NetModel::test_cluster()), |comm| {
            run_rank(comm, &ds.train, &ds.train_t, ds.global_mean, &ds.test, &cfg)
        });
        let msgs: u64 = out.iter().map(|o| o.msgs_sent).sum();
        let bytes: u64 = out.iter().map(|o| o.bytes_sent).sum();
        table.row([
            buffer.to_string(),
            format!("{}/s", si(out[0].items_per_sec)),
            si(msgs as f64),
            si(bytes as f64),
            format!("{:.4}", out[0].final_rmse()),
        ]);
        artifact.push(Row {
            buffer_items: buffer,
            items_per_sec: out[0].items_per_sec,
            messages: msgs,
            bytes,
        });
    }

    table.print("Ablation — send-buffer size (paper: buffered sends are essential)");
    println!(
        "\nExpect: messages drop ~linearly with buffer size; throughput climbs then flattens;"
    );
    println!("RMSE is unaffected (buffering changes timing, not values).");
    bpmf_bench::write_json("ablation_buffer", &artifact);
}
