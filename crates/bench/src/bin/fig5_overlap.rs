//! **Figure 5** — fraction of wall time each rank spends computing,
//! communicating, and doing *both* (computation overlapped with in-flight
//! communication), versus node count.
//!
//! Paper shape: at small scale, most communication hides under computation
//! ("both" is a visible share and blocked "communicate" time is small); at
//! large core counts the overlap stops helping and blocked communication
//! dominates.
//!
//! Live ranks measure the real driver's accounting; the simulator extends
//! the axis to the paper's 2048-core range.
//!
//! Usage: `cargo run -p bpmf-bench --release --bin fig5_overlap`

use bpmf::distributed::{run_rank, DistConfig};
use bpmf::BpmfConfig;
use bpmf_bench::table::{pct, Table};
use bpmf_cluster_sim::{phase_loads, simulate_iteration, ComputeModel, Topology};
use bpmf_dataset::movielens_like;
use bpmf_mpisim::{NetModel, Universe};

fn main() {
    let scale = bpmf_bench::env_scale("BPMF_SCALE", 0.005);
    let ds = movielens_like(scale, 2016);
    println!(
        "Figure 5 reproduction: compute / both / communicate split ({} users x {} movies, {} ratings)",
        ds.nrows(),
        ds.ncols(),
        ds.nnz()
    );

    #[derive(serde::Serialize)]
    struct Row {
        label: String,
        compute: f64,
        both: f64,
        comm: f64,
    }
    let mut artifact = Vec::new();

    // ---- live ranks ------------------------------------------------------
    let mut live = Table::new(["#ranks", "compute", "both", "communicate"]);
    for ranks in [1usize, 2, 4] {
        let cfg = DistConfig {
            base: BpmfConfig {
                num_latent: 16,
                burnin: 2,
                samples: 4,
                seed: 13,
                kernel_threads: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let out = Universe::run(ranks, Some(NetModel::test_cluster()), |comm| {
            run_rank(comm, &ds.train, &ds.train_t, ds.global_mean, &ds.test, &cfg)
        });
        let n = out.len() as f64;
        let (c, b, m) = out.iter().fold((0.0, 0.0, 0.0), |acc, o| {
            (
                acc.0 + o.compute_frac / n,
                acc.1 + o.both_frac / n,
                acc.2 + o.comm_frac / n,
            )
        });
        live.row([ranks.to_string(), pct(c), pct(b), pct(m)]);
        artifact.push(Row {
            label: format!("live-{ranks}"),
            compute: c,
            both: b,
            comm: m,
        });
    }
    live.print("Fig. 5 (live, in-process ranks)");

    // ---- simulated BG/Q axis --------------------------------------------
    let sim_scale = bpmf_bench::env_scale("BPMF_FIG4_SCALE", 1.0);
    let sim_ds = movielens_like(sim_scale, 2016);
    // BG/Q-era compute constants, consistent with the fig4 harness.
    let model = ComputeModel::default_calibration();
    let topo = Topology::bluegene_q_like();
    let mut sim = Table::new(["#cores", "#nodes", "compute", "both", "communicate"]);
    for p in 0..=7 {
        let nodes = 1usize << p;
        let phases = phase_loads(&sim_ds.train, &sim_ds.train_t, nodes, 16);
        let res = simulate_iteration(&topo, &model, &phases, 64);
        let (c, b, m) = res.mean_fractions();
        sim.row([
            (nodes * topo.cores_per_node).to_string(),
            nodes.to_string(),
            pct(c),
            pct(b),
            pct(m),
        ]);
        artifact.push(Row {
            label: format!("sim-{nodes}"),
            compute: c,
            both: b,
            comm: m,
        });
    }
    sim.print("Fig. 5 (simulated BG/Q) — expect 'communicate' to grow with core count");
    bpmf_bench::write_json("fig5_overlap", &artifact);
}
