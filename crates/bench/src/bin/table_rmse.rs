//! **§V-B claim** — "all the versions of the parallel BPMF reach the same
//! level of prediction accuracy evaluated using RMSE".
//!
//! Runs every runtime (three shared-memory engines and the distributed
//! driver at 2 and 4 ranks) on the same workloads with the same statistical
//! configuration and reports the final posterior-mean RMSE next to the
//! planted-model oracle floor.
//!
//! Usage: `cargo run -p bpmf-bench --release --bin table_rmse`

use bpmf::distributed::{run_rank, DistConfig};
use bpmf::{Bpmf, BpmfConfig, EngineKind, NoCallback, TrainData};
use bpmf_baselines::make_trainer;
use bpmf_bench::table::Table;
use bpmf_dataset::{chembl_like, movielens_like, Dataset};
use bpmf_mpisim::Universe;

fn base_cfg(seed: u64) -> BpmfConfig {
    BpmfConfig {
        num_latent: 16,
        burnin: 6,
        samples: 14,
        seed,
        kernel_threads: 1,
        ..Default::default()
    }
}

/// Shared-memory runs go through the unified builder/trainer facade; the
/// statistical configuration matches `base_cfg` exactly.
fn shared_memory_rmse(ds: &Dataset, kind: EngineKind, threads: usize) -> f64 {
    let data = TrainData::try_new(&ds.train, &ds.train_t, ds.global_mean, &ds.test)
        .expect("dataset is well-formed");
    let spec = Bpmf::builder()
        .latent(16)
        .burnin(6)
        .samples(14)
        .seed(99)
        .kernel_threads(1)
        .engine(kind)
        .threads(threads)
        .build()
        .expect("valid spec");
    let runner = spec.runner();
    let mut trainer = make_trainer(&spec);
    trainer
        .fit(&data, runner.as_ref(), &mut NoCallback)
        .expect("fit succeeds")
        .final_rmse()
}

fn distributed_rmse(ds: &Dataset, ranks: usize) -> f64 {
    let cfg = DistConfig {
        base: base_cfg(99),
        ..Default::default()
    };
    let out = Universe::run(ranks, None, |comm| {
        run_rank(comm, &ds.train, &ds.train_t, ds.global_mean, &ds.test, &cfg)
    });
    out[0].final_rmse()
}

fn main() {
    println!("§V-B reproduction: every parallel version reaches the same RMSE");
    let workloads = [chembl_like(0.008, 42), movielens_like(0.004, 42)];

    #[derive(serde::Serialize)]
    struct Row {
        dataset: String,
        version: String,
        rmse: f64,
    }
    let mut artifact = Vec::new();

    for ds in &workloads {
        let mut table = Table::new(["version", "final RMSE"]);
        let oracle = ds.oracle_rmse().unwrap_or(f64::NAN);
        let mut rmses = Vec::new();

        for kind in EngineKind::all() {
            let rmse = shared_memory_rmse(ds, kind, 2);
            table.row([kind.label().to_string(), format!("{rmse:.4}")]);
            artifact.push(Row {
                dataset: ds.name.clone(),
                version: kind.label().into(),
                rmse,
            });
            rmses.push(rmse);
        }
        for ranks in [2usize, 4] {
            let rmse = distributed_rmse(ds, ranks);
            let label = format!("distributed MPI ({ranks} ranks)");
            table.row([label.clone(), format!("{rmse:.4}")]);
            artifact.push(Row {
                dataset: ds.name.clone(),
                version: label,
                rmse,
            });
            rmses.push(rmse);
        }
        table.row(["oracle (planted model)".to_string(), format!("{oracle:.4}")]);

        table.print(&format!("RMSE parity on {}", ds.name));
        let min = rmses.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = rmses.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "  spread across versions: {:.4} (paper claim: all versions reach the same accuracy)",
            max - min
        );
    }
    bpmf_bench::write_json("table_rmse", &artifact);
}
