//! **§I claim** — the algorithm trade-off that motivates the paper:
//! "Popular algorithms … are ALS, SGD and BPMF. … BPMF has been proven to
//! be more robust to data-overfitting and released from cross-validation
//! … Yet BPMF is more computational intensive."
//!
//! Trains ALS-WR, SGD and BPMF on the same synthetic workload through the
//! unified `Bpmf::builder()` → `Trainer` facade — one code path, three
//! algorithms — and reports held-out RMSE, wall time and the extras each
//! algorithm does(n't) deliver. Two tables are shown:
//!
//! * *tuned* — every algorithm at a reasonable λ: the speed/accuracy
//!   trade-off of §I;
//! * *λ sensitivity sweep* — ALS and SGD re-trained across four decades of
//!   λ. The spread of their held-out RMSE is the cost of the
//!   cross-validation BPMF is "released from": BPMF integrates the
//!   regularization out through its Normal–Wishart hyperpriors and has no
//!   knob to sweep.
//!
//! Usage: `cargo run -p bpmf-bench --release --bin table_algorithms`

use bpmf::{Algorithm, Bpmf, NoCallback, TrainData};
use bpmf_baselines::make_trainer;
use bpmf_bench::table::Table;
use bpmf_dataset::{chembl_like, Dataset};

#[derive(serde::Serialize)]
struct Row {
    dataset: String,
    algorithm: String,
    lambda: f64,
    rmse: f64,
    seconds: f64,
}

/// One spec per algorithm — the only thing that differs between table rows.
fn spec_for(algorithm: Algorithm, lambda: f64, threads: usize) -> Bpmf {
    let mut builder = Bpmf::builder()
        .algorithm(algorithm)
        .latent(16)
        .threads(threads)
        .seed(17)
        // BPMF iteration budget; ignored by the baselines.
        .burnin(8)
        .samples(20)
        // Baseline budgets; ignored by BPMF.
        .sweeps(20)
        .epochs(30)
        .learning_rate(0.02)
        .decay(0.02);
    if lambda.is_finite() {
        builder = builder.lambda(lambda);
    }
    builder.build().expect("valid benchmark spec")
}

/// Fit one algorithm through the shared trait and report (rmse, seconds).
fn run(ds: &Dataset, spec: &Bpmf) -> (f64, f64) {
    let data = TrainData::try_new(&ds.train, &ds.train_t, ds.global_mean, &ds.test)
        .expect("dataset is well-formed");
    let runner = spec.runner();
    let mut trainer = make_trainer(spec);
    let report = trainer
        .fit(&data, runner.as_ref(), &mut NoCallback)
        .expect("fit succeeds");
    (report.final_rmse(), report.total_seconds)
}

fn main() {
    let scale = bpmf_bench::env_scale("BPMF_ALGO_SCALE", 0.01);
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    let ds = chembl_like(scale, 42);
    println!(
        "workload: {} — {} x {}, {} train / {} test; {} threads",
        ds.name,
        ds.nrows(),
        ds.ncols(),
        ds.nnz(),
        ds.test.len(),
        threads
    );

    let mut artifact = Vec::new();
    let push = |artifact: &mut Vec<Row>, algo: &str, lambda: f64, (rmse, secs): (f64, f64)| {
        artifact.push(Row {
            dataset: ds.name.clone(),
            algorithm: algo.to_string(),
            lambda,
            rmse,
            seconds: secs,
        });
        (format!("{rmse:.4}"), format!("{secs:.2}s"))
    };

    // Regime 1: reasonable regularization for the point estimators.
    let mut table = Table::new(["algorithm", "λ", "RMSE", "time"]);
    let (r, t) = push(
        &mut artifact,
        "ALS-WR",
        0.08,
        run(&ds, &spec_for(Algorithm::Als, 0.08, threads)),
    );
    table.row(["ALS-WR (20 sweeps)", "0.08", &r, &t]);
    let (r, t) = push(
        &mut artifact,
        "SGD",
        0.05,
        run(&ds, &spec_for(Algorithm::Sgd, 0.05, threads)),
    );
    table.row([
        &format!("SGD stratified x{threads} (30 epochs)"),
        "0.05",
        &r,
        &t,
    ]);
    let (r, t) = push(
        &mut artifact,
        "BPMF",
        f64::NAN,
        run(&ds, &spec_for(Algorithm::Gibbs, f64::NAN, threads)),
    );
    table.row(["BPMF (28 iters)", "—", &r, &t]);
    table.print("algorithms, tuned regularization (§I trade-off)");

    // Regime 2: λ sensitivity. "Released from cross-validation" means BPMF
    // has no λ to sweep; ALS and SGD do, and their held-out accuracy moves
    // with it. The spread across the sweep is the price of cross-validation
    // made visible.
    let lambdas = [1e-6, 0.01, 0.1, 0.5, 2.0];
    let mut table = Table::new(["λ", "ALS RMSE", "SGD RMSE"]);
    let (mut als_lo, mut als_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut sgd_lo, mut sgd_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &lambda in &lambdas {
        let (ar, _) = push(
            &mut artifact,
            "ALS-WR",
            lambda,
            run(&ds, &spec_for(Algorithm::Als, lambda, threads)),
        );
        let (sr, _) = push(
            &mut artifact,
            "SGD",
            lambda,
            run(&ds, &spec_for(Algorithm::Sgd, lambda, threads)),
        );
        let (av, sv): (f64, f64) = (ar.parse().unwrap(), sr.parse().unwrap());
        (als_lo, als_hi) = (als_lo.min(av), als_hi.max(av));
        (sgd_lo, sgd_hi) = (sgd_lo.min(sv), sgd_hi.max(sv));
        table.row([&format!("{lambda}"), &ar, &sr]);
    }
    table.print("λ sensitivity sweep (the cross-validation BPMF is released from)");
    println!(
        "  ALS spread across λ: {als_lo:.4}..{als_hi:.4} ({:+.1}%)            SGD spread: {sgd_lo:.4}..{sgd_hi:.4} ({:+.1}%)   BPMF: no λ to sweep",
        100.0 * (als_hi - als_lo) / als_lo,
        100.0 * (sgd_hi - sgd_lo) / sgd_lo
    );

    if let Some(oracle) = ds.oracle_rmse() {
        println!("\noracle RMSE (noise floor of the planted model): {oracle:.4}");
    }
    bpmf_bench::write_json("table_algorithms", &artifact);
}
