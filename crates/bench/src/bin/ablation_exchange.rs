//! **Extension** — two-sided buffered messages (§IV-C, the published
//! design) vs GASPI-style one-sided notified puts (§VI's proposed future
//! work), on the real distributed driver.
//!
//! The paper's closing line proposes "a more light-weight multi-threaded
//! communication library" (GASPI). This harness runs both exchange
//! mechanisms — which are value-identical by construction — and compares
//! message counts, bytes, and throughput under the same network model.
//!
//! Usage: `cargo run -p bpmf-bench --release --bin ablation_exchange`

use bpmf::distributed::{run_rank, DistConfig, ExchangeMode};
use bpmf::BpmfConfig;
use bpmf_bench::table::{si, Table};
use bpmf_dataset::movielens_like;
use bpmf_mpisim::{NetModel, Universe};

fn main() {
    let scale = bpmf_bench::env_scale("BPMF_SCALE", 0.004);
    let ds = movielens_like(scale, 63);
    let ranks = 4;
    println!(
        "Extension: exchange mechanism on {} ({} x {}, {} ratings), {} ranks, test network model",
        ds.name,
        ds.nrows(),
        ds.ncols(),
        ds.nnz(),
        ranks
    );

    let mut table = Table::new(["exchange", "items/s", "msgs/puts", "bytes", "final RMSE"]);
    #[derive(serde::Serialize)]
    struct Row {
        exchange: String,
        items_per_sec: f64,
        messages: u64,
        bytes: u64,
    }
    let mut artifact = Vec::new();
    let mut traces: Vec<Vec<u64>> = Vec::new();

    for (mode, label) in [
        (ExchangeMode::TwoSided, "two-sided buffered (paper §IV-C)"),
        (ExchangeMode::OneSided, "one-sided notified (paper §VI)"),
    ] {
        let cfg = DistConfig {
            base: BpmfConfig {
                num_latent: 16,
                burnin: 2,
                samples: 4,
                seed: 29,
                kernel_threads: 1,
                ..Default::default()
            },
            exchange: mode,
            ..Default::default()
        };
        let out = Universe::run(ranks, Some(NetModel::test_cluster()), |comm| {
            run_rank(comm, &ds.train, &ds.train_t, ds.global_mean, &ds.test, &cfg)
        });
        let msgs: u64 = out.iter().map(|o| o.msgs_sent).sum();
        let bytes: u64 = out.iter().map(|o| o.bytes_sent).sum();
        table.row([
            label.to_string(),
            format!("{}/s", si(out[0].items_per_sec)),
            si(msgs as f64),
            si(bytes as f64),
            format!("{:.4}", out[0].final_rmse()),
        ]);
        artifact.push(Row {
            exchange: label.into(),
            items_per_sec: out[0].items_per_sec,
            messages: msgs,
            bytes,
        });
        traces.push(out[0].rmse_mean_trace.iter().map(|v| v.to_bits()).collect());
    }

    assert_eq!(
        traces[0], traces[1],
        "exchange mechanism must not change values"
    );
    table.print("Extension — exchange mechanism (values verified bit-identical)");
    println!("\nOne-sided ships item-granular puts (no buffering needed); the interesting");
    println!("comparison on real hardware is software overhead per transfer, which this");
    println!("in-process runtime can only partially represent.");
    bpmf_bench::write_json("ablation_exchange", &artifact);
}
