//! **Figure 2** — compute time to update one item vs. its rating count, for
//! the three kernels: sequential rank-one update, sequential Cholesky,
//! parallel Cholesky.
//!
//! The paper uses this measurement to justify (a) the rank-one kernel for
//! light items, (b) the ≈1000-rating threshold above which the parallel
//! kernel wins. Expected shape: rank-one cheapest at the far left, serial
//! Cholesky best in the middle, parallel Cholesky overtaking on the heavy
//! tail.
//!
//! Usage: `cargo run -p bpmf-bench --release --bin fig2_item_update`
//! (K via `BPMF_K`, default 32; threads via `BPMF_KERNEL_THREADS`).

use bpmf::UpdateMethod;
use bpmf_bench::calibrate::time_item_update;
use bpmf_bench::table::{dur, Table};

fn main() {
    let k = bpmf_bench::env_scale("BPMF_K", 32.0) as usize;
    let threads = bpmf_bench::env_scale(
        "BPMF_KERNEL_THREADS",
        std::thread::available_parallelism().map_or(2.0, |n| n.get() as f64),
    ) as usize;

    println!("Figure 2 reproduction: per-item update time vs #ratings (K = {k}, parallel kernel threads = {threads})");

    let ratings = [
        1usize, 3, 10, 30, 100, 300, 1000, 3000, 10_000, 30_000, 100_000,
    ];
    let mut table = Table::new([
        "#ratings",
        "rank-one",
        "serial chol",
        "parallel chol",
        "fastest",
    ]);
    let mut crossover_serial = None;
    let mut crossover_parallel = None;

    #[derive(serde::Serialize)]
    struct Row {
        ratings: usize,
        rank_one_s: f64,
        serial_chol_s: f64,
        parallel_chol_s: f64,
    }
    let mut artifact = Vec::new();

    for &d in &ratings {
        let reps = (20_000 / (d + 10)).clamp(3, 400);
        let t_r1 = time_item_update(UpdateMethod::RankOne, k, d, reps, 1);
        let t_ser = time_item_update(UpdateMethod::CholSerial, k, d, reps, 1);
        let t_par = time_item_update(UpdateMethod::CholParallel, k, d, reps, threads);
        let fastest = if t_r1 <= t_ser && t_r1 <= t_par {
            "rank-one"
        } else if t_ser <= t_par {
            "serial chol"
        } else {
            "parallel chol"
        };
        if fastest != "rank-one" && crossover_serial.is_none() {
            crossover_serial = Some(d);
        }
        if fastest == "parallel chol" && crossover_parallel.is_none() {
            crossover_parallel = Some(d);
        }
        table.row([
            d.to_string(),
            dur(t_r1),
            dur(t_ser),
            dur(t_par),
            fastest.to_string(),
        ]);
        artifact.push(Row {
            ratings: d,
            rank_one_s: t_r1,
            serial_chol_s: t_ser,
            parallel_chol_s: t_par,
        });
    }

    table.print("Fig. 2 — time to update one item (lower is better)");
    println!();
    println!(
        "Serial-Cholesky overtakes rank-one near {} ratings (paper: small multiples of K).",
        crossover_serial.map_or("—".into(), |d| d.to_string())
    );
    println!(
        "Parallel Cholesky overtakes serial near {} ratings (paper threshold: ~1000).",
        crossover_parallel.map_or("— (needs >1 core to win)".into(), |d| d.to_string())
    );
    bpmf_bench::write_json("fig2_item_update", &artifact);
}
