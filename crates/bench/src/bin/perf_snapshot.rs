//! **Perf snapshot** — machine-readable timing of the Gibbs hot path,
//! written to `BENCH_gibbs.json` so the performance trajectory is tracked
//! across PRs.
//!
//! Times, on a fixed synthetic dataset and fixed kernel shapes:
//!
//! * the three item-update kernels (rank-one / serial Cholesky / parallel
//!   Cholesky) at representative light/mid/heavy rating counts,
//! * blocked panel accumulation (gather + `syrk_ld_lower` + `gemv_t_acc`)
//!   against the naive per-rating accumulation (`syrk_lower` + `axpy` per
//!   rating) it replaced — the headline blocked-vs-per-rating speedup,
//! * one full Gibbs sweep through the public sampler,
//! * the measured rank-one/serial crossover (what `rank_one_max` should be
//!   on this host).
//!
//! Usage: `cargo run --release -p bpmf-bench --bin perf_snapshot`
//! (`-- --smoke` shrinks every measurement for CI smoke runs; `BPMF_K`
//! overrides the latent dimension, default 32).

use std::io::Write as _;
use std::time::Instant;

use bpmf::{BpmfConfig, EngineKind, GibbsSampler, TrainData, UpdateMethod};
use bpmf_bench::calibrate::{calibrate_rank_one_max, time_item_update};
use bpmf_dataset::chembl_like;
use bpmf_linalg::{gemv_t_acc, syrk_ld_lower, vecops, Mat, PANEL_BLOCK};
use bpmf_stats::{normal, Xoshiro256pp};

#[derive(serde::Serialize)]
struct AccumulationRow {
    d: usize,
    per_rating_ns: f64,
    blocked_ns: f64,
    speedup: f64,
}

#[derive(serde::Serialize)]
struct KernelRow {
    method: &'static str,
    d: usize,
    update_ns: f64,
}

#[derive(serde::Serialize)]
struct Snapshot {
    k: usize,
    panel_block: usize,
    available_parallelism: usize,
    smoke: bool,
    /// Blocked panel accumulation vs naive per-rating accumulation of the
    /// same `(Λ*, b)` build, mid and heavy rating counts.
    accumulation: Vec<AccumulationRow>,
    /// Full `update_item` draws per kernel at representative shapes.
    kernels: Vec<KernelRow>,
    /// One full Gibbs sweep (users + movies) on the fixed dataset.
    gibbs_sweep_ms: f64,
    gibbs_nnz: usize,
    /// Largest d where rank-one still beats blocked serial Cholesky here.
    rank_one_crossover: usize,
}

/// Time `f` averaged over `reps` runs after `warmup` runs.
fn avg_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..reps.min(3) {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_nanos() as f64 / reps as f64
}

/// Naive vs blocked accumulation of `Λ* = Λ + α Σ v vᵀ`, `b = Λμ + α Σ w v`.
fn accumulation_row(k: usize, d: usize, reps: usize) -> AccumulationRow {
    let mut rng = Xoshiro256pp::seed_from_u64(99);
    let other = Mat::from_fn(d, k, |_, _| normal(&mut rng, 0.0, 0.5));
    let cols: Vec<u32> = (0..d as u32).collect();
    let vals: Vec<f64> = (0..d).map(|i| 3.0 + (i as f64).sin()).collect();
    let alpha = 2.0;
    let mean = 3.0;

    let mut prec = Mat::zeros(k, k);
    let mut rhs = vec![0.0; k];
    let per_rating_ns = avg_ns(reps, || {
        prec.fill(0.0);
        rhs.fill(0.0);
        for (&j, &r) in cols.iter().zip(&vals) {
            let v = other.row(j as usize);
            prec.syrk_lower(alpha, v);
            vecops::axpy(alpha * (r - mean), v, &mut rhs);
        }
        std::hint::black_box(&prec);
    });

    let mut panel: Vec<f64> = Vec::with_capacity(PANEL_BLOCK * k);
    let mut weights: Vec<f64> = Vec::with_capacity(PANEL_BLOCK);
    let blocked_ns = avg_ns(reps, || {
        prec.fill(0.0);
        rhs.fill(0.0);
        for (cblock, vblock) in cols.chunks(PANEL_BLOCK).zip(vals.chunks(PANEL_BLOCK)) {
            panel.clear();
            weights.clear();
            for (&j, &r) in cblock.iter().zip(vblock) {
                panel.extend_from_slice(other.row(j as usize));
                weights.push(alpha * (r - mean));
            }
            syrk_ld_lower(&mut prec, alpha, &panel, k);
            gemv_t_acc(&mut rhs, &panel, &weights);
        }
        std::hint::black_box(&prec);
    });

    AccumulationRow {
        d,
        per_rating_ns,
        blocked_ns,
        speedup: per_rating_ns / blocked_ns,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let k = bpmf_bench::env_scale("BPMF_K", 32.0) as usize;
    let scale = if smoke { 10 } else { 1 };

    println!(
        "perf snapshot (K = {k}{})",
        if smoke { ", smoke" } else { "" }
    );

    let mid_heavy: &[usize] = if smoke {
        &[256, 1024]
    } else {
        &[256, 1024, 8192]
    };
    let accumulation: Vec<AccumulationRow> = mid_heavy
        .iter()
        .map(|&d| {
            let row = accumulation_row(k, d, (200_000 / d).clamp(5, 2000) / scale + 5);
            println!(
                "  accumulate d={:>5}: per-rating {:>10.0} ns  blocked {:>10.0} ns  speedup {:.2}x",
                row.d, row.per_rating_ns, row.blocked_ns, row.speedup
            );
            row
        })
        .collect();

    let shapes = [
        ("rank_one", UpdateMethod::RankOne, k / 4),
        ("chol_serial", UpdateMethod::CholSerial, 512),
        ("chol_parallel", UpdateMethod::CholParallel, 4096),
    ];
    let kernels: Vec<KernelRow> = shapes
        .iter()
        .map(|&(name, method, d)| {
            let d = d.max(1);
            let reps = (100_000 / d).clamp(5, 500) / scale + 5;
            let secs = time_item_update(method, k, d, reps, 2);
            println!("  update_item {name:>13} d={d:>5}: {:>10.0} ns", secs * 1e9);
            KernelRow {
                method: name,
                d,
                update_ns: secs * 1e9,
            }
        })
        .collect();

    // One full Gibbs sweep (both sides) on a fixed synthetic dataset.
    let ds = chembl_like(if smoke { 0.001 } else { 0.003 }, 8);
    let cfg = BpmfConfig {
        num_latent: k.min(32),
        seed: 1,
        kernel_threads: 1,
        ..Default::default()
    };
    let data = TrainData::new(&ds.train, &ds.train_t, ds.global_mean, &ds.test);
    let runner = EngineKind::WorkStealing.build(1);
    let mut sampler = GibbsSampler::new(cfg, data);
    sampler.step(runner.as_ref()); // warm-up sweep
    let t0 = Instant::now();
    let sweeps = if smoke { 1 } else { 3 };
    for _ in 0..sweeps {
        sampler.step(runner.as_ref());
    }
    let gibbs_sweep_ms = t0.elapsed().as_secs_f64() * 1e3 / sweeps as f64;
    println!("  gibbs sweep ({} nnz): {:.1} ms", ds.nnz(), gibbs_sweep_ms);

    let rank_one_crossover = if smoke { 0 } else { calibrate_rank_one_max(k) };
    if !smoke {
        println!("  rank-one/serial crossover: d = {rank_one_crossover}");
    }

    let snapshot = Snapshot {
        k,
        panel_block: PANEL_BLOCK,
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        smoke,
        accumulation,
        kernels,
        gibbs_sweep_ms,
        gibbs_nnz: ds.nnz(),
        rank_one_crossover,
    };

    // Full runs write the tracked artifact in the current directory (the
    // repo root under `cargo run`) so the perf trajectory is version
    // controlled; smoke runs only mirror to target/bench-results — their
    // shrunken measurements must not clobber the committed snapshot.
    if smoke {
        println!("  [smoke] skipping BENCH_gibbs.json (tracked artifact keeps full-run numbers)");
    } else {
        let json = serde_json::to_string_pretty(&snapshot).unwrap();
        match std::fs::File::create("BENCH_gibbs.json") {
            Ok(mut f) => {
                writeln!(f, "{json}").unwrap();
                println!("  [artifact] BENCH_gibbs.json");
            }
            Err(e) => eprintln!("  could not write BENCH_gibbs.json: {e}"),
        }
    }
    bpmf_bench::write_json("BENCH_gibbs", &snapshot);
}
