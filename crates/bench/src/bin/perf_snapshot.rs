//! **Perf snapshot** — machine-readable timing of the Gibbs hot path,
//! written to `BENCH_gibbs.json` so the performance trajectory is tracked
//! across PRs.
//!
//! Times, on a fixed synthetic dataset and fixed kernel shapes:
//!
//! * the three item-update kernels (rank-one / serial Cholesky / parallel
//!   Cholesky) at representative light/mid/heavy rating counts,
//! * blocked panel accumulation (gather + `syrk_ld_lower` + `gemv_t_acc`)
//!   against the naive per-rating accumulation (`syrk_lower` + `axpy` per
//!   rating) it replaced — the headline blocked-vs-per-rating speedup,
//! * one full Gibbs sweep through the public sampler,
//! * the measured rank-one/serial crossover (what `rank_one_max` should be
//!   on this host),
//! * the serving layer (written to `BENCH_serve.json`): batched scoring
//!   throughput (`Recommender::score_all` / `score_batch`) against the
//!   per-pair `predict` loop it replaces, `RecommendService::top_n`
//!   latency with exclude-seen filtering, the TCP daemon under
//!   concurrent clients, and the sharded tier — 1/2/4 shard daemons
//!   behind the scatter-gather router at 1/8/64 clients.
//!
//! Usage: `cargo run --release -p bpmf-bench --bin perf_snapshot`
//! (`-- --smoke` shrinks every measurement for CI smoke runs; `BPMF_K`
//! overrides the latent dimension, default 32).

use std::io::Write as _;
use std::io::{BufRead as _, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::AtomicBool;
use std::time::{Duration, Instant};

use bpmf::serve::coalesce::CoalesceConfig;
use bpmf::serve::daemon::{self, DaemonConfig, ServingModel};
use bpmf::serve::router::{self, RouterConfig};
use bpmf::serve::shard::{slice_train_columns, ShardSpec, ShardView};
use bpmf::serve::{wire, RankPolicy, RecommendService};
use bpmf::{
    BpmfConfig, EngineKind, GibbsSampler, MappedSlab, PosteriorModel, Recommender, SgldConfig,
    SgldSampler, TrainData, UpdateMethod,
};
use bpmf_bench::calibrate::{calibrate_rank_one_max, time_item_update};
use bpmf_dataset::chembl_like;
use bpmf_linalg::{
    gemm_into, gemm_into_scalar, gemv_t_acc, gemv_t_acc_scalar, simd_enabled, syrk_ld_lower,
    syrk_ld_lower_scalar, vecops, Mat, PANEL_BLOCK,
};
use bpmf_sparse::{Coo, Csr};
use bpmf_stats::{normal, Xoshiro256pp};

#[derive(serde::Serialize)]
struct AccumulationRow {
    d: usize,
    per_rating_ns: f64,
    blocked_ns: f64,
    speedup: f64,
}

#[derive(serde::Serialize)]
struct KernelRow {
    method: &'static str,
    d: usize,
    update_ns: f64,
}

#[derive(serde::Serialize)]
struct SimdKernelRow {
    kernel: &'static str,
    d: usize,
    scalar_ns: f64,
    dispatched_ns: f64,
    speedup: f64,
}

#[derive(serde::Serialize)]
struct BlockRow {
    block: usize,
    scores_per_sec: f64,
    speedup_vs_score_all: f64,
}

#[derive(serde::Serialize)]
struct DaemonRow {
    /// `coalesced` (64-request blocks, batch window) or `per_request`
    /// (batch-window 0, single worker, max_batch 1).
    mode: &'static str,
    clients: usize,
    requests: usize,
    requests_per_sec: f64,
    p50_latency_us: f64,
    p95_latency_us: f64,
    /// `recommend_each` batches the daemon executed (requests/batches =
    /// realized coalescing factor).
    batches: u64,
    largest_batch: u64,
}

#[derive(serde::Serialize)]
struct RouterRow {
    shards: usize,
    clients: usize,
    requests: usize,
    requests_per_sec: f64,
    p50_latency_us: f64,
    p95_latency_us: f64,
}

#[derive(serde::Serialize)]
struct RouterSnapshot {
    top_n: usize,
    rows: Vec<RouterRow>,
    /// Scatter-gather cost at the highest client count: req/s behind the
    /// router over the most shards vs over a single shard (the extra fan
    /// out, k-way merge, and one more socket hop per request).
    max_shards_vs_one_shard: f64,
    /// Before/after record for batching scatter writes per shard link
    /// (one buffered flush per fan-out instead of one write+flush per
    /// range). `None` in smoke mode, where the request counts are too
    /// small to compare against the full-run baseline.
    scatter_batching: Option<ScatterBatchingRow>,
}

/// The unbatched-scatter router's req/s at the heaviest cell (most
/// shards, most clients), measured on this machine immediately before
/// write batching landed — the fixed "before" the full run compares its
/// own measurement against.
const UNBATCHED_RPS_4SHARDS_64CLIENTS: f64 = 6157.0;

#[derive(serde::Serialize)]
struct ScatterBatchingRow {
    /// Pre-batching baseline (see [`UNBATCHED_RPS_4SHARDS_64CLIENTS`]).
    unbatched_rps_4shards_64clients: f64,
    /// This run's req/s at the same (4 shards, 64 clients) cell.
    batched_rps_4shards_64clients: f64,
    /// after / before.
    speedup: f64,
}

#[derive(serde::Serialize)]
struct DaemonSnapshot {
    top_n: usize,
    batch_window_ms: f64,
    workers: usize,
    rows: Vec<DaemonRow>,
    /// Headline: coalesced vs per-request throughput at the highest
    /// client count (acceptance floor: 1.5× at 64 clients, 4096×4096
    /// k = 32).
    coalesced_vs_per_request: f64,
}

#[derive(serde::Serialize)]
struct SgmcmcSnapshot {
    nnz: usize,
    k: usize,
    burnin: usize,
    samples: usize,
    minibatch: usize,
    /// Full-conditional Gibbs reference on the same data/seed: held-out
    /// posterior-mean RMSE and wall-clock for burnin+samples iterations.
    gibbs_rmse: f64,
    gibbs_seconds: f64,
    /// Mini-batch SGLD, one epoch-equivalent per iteration (same iteration
    /// budget as the Gibbs reference).
    sgld_rmse: f64,
    sgld_seconds: f64,
    /// sgld_rmse / gibbs_rmse — the tentpole acceptance tracks this
    /// staying within 1.02 (SGLD within 2% of Gibbs held-out RMSE).
    sgld_vs_gibbs_rmse: f64,
    /// Whether the slab-backed SGLD chain reproduced the in-RAM chain
    /// bit-for-bit (it must — the store swap is meant to be transparent).
    slab_bit_identical: bool,
    /// Heap bytes the mmap'd store pins (row-pointer tables + handle) —
    /// everything else stays in reclaimable page cache.
    slab_resident_bytes: usize,
    /// Heap bytes the same two CSR orientations occupy fully resident.
    in_ram_matrix_bytes: usize,
    /// VmRSS (KiB) sampled right after the in-RAM run (matrices live) and
    /// after the slab run (matrices dropped, slab mapped). Allocator
    /// retention makes this noisy on smoke-sized data; the analytic byte
    /// counts above are the stable footprint signal.
    vm_rss_in_ram_kb: Option<u64>,
    vm_rss_slab_kb: Option<u64>,
}

/// Current resident-set size in KiB from `/proc/self/status` (Linux only;
/// `None` elsewhere or if the field is missing).
fn vm_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Gibbs vs mini-batch SGLD on the same synthetic dataset, plus the
/// out-of-core story: the SGLD chain re-run against an mmap'd slab of the
/// same ratings must be bit-identical, with the resident footprint
/// recorded next to the in-RAM equivalent.
fn sgmcmc_section(smoke: bool, k: usize) -> SgmcmcSnapshot {
    let ds = chembl_like(if smoke { 0.002 } else { 0.01 }, 17);
    let (burnin, samples) = if smoke { (4, 8) } else { (16, 32) };
    let minibatch = 1024;

    let cfg = BpmfConfig {
        num_latent: k,
        burnin,
        samples,
        seed: 5,
        kernel_threads: 1,
        ..Default::default()
    };
    let runner = EngineKind::WorkStealing.build(1);
    let data = TrainData::new(&ds.train, &ds.train_t, ds.global_mean, &ds.test);
    let t0 = Instant::now();
    let mut gibbs = GibbsSampler::new(cfg.clone(), data);
    let gibbs_report = gibbs.run(runner.as_ref(), cfg.iterations());
    let gibbs_seconds = t0.elapsed().as_secs_f64();
    let gibbs_rmse = gibbs_report.final_rmse();

    let scfg = SgldConfig {
        num_latent: k,
        burnin,
        samples,
        minibatch,
        seed: 5,
        ..SgldConfig::default()
    };
    let run_sgld = |data: TrainData<'_>| {
        let mut sampler = SgldSampler::try_new(scfg, data).expect("sgld starts");
        let mut trace = Vec::new();
        for _ in 0..(burnin + samples) {
            let (sample, mean) = sampler.step_epoch();
            trace.push((sample.to_bits(), mean.to_bits()));
        }
        trace
    };
    let t0 = Instant::now();
    let ram_trace = run_sgld(data);
    let sgld_seconds = t0.elapsed().as_secs_f64();
    let sgld_rmse = f64::from_bits(ram_trace.last().unwrap().1);
    let vm_rss_in_ram_kb = vm_rss_kb();

    // Pack the ratings as a slab, drop the resident matrices, and re-run
    // the identical chain off the mapping.
    let slab_path =
        std::env::temp_dir().join(format!("bpmf-perf-snapshot-{}.slab", std::process::id()));
    {
        let extents = bpmf_sparse::slab_extents(&ds.train, 8);
        let file = std::fs::File::create(&slab_path).expect("create slab");
        let mut w = std::io::BufWriter::new(file);
        bpmf_sparse::write_slab(&mut w, &ds.train, &ds.train_t, ds.global_mean, &extents)
            .expect("write slab");
    }
    let test = ds.test.clone();
    let global_mean = ds.global_mean;
    let nnz = ds.train.nnz();
    drop(ds);

    let slab = MappedSlab::open(&slab_path).expect("slab opens");
    let (sr, srt) = (slab.r(), slab.rt());
    let slab_trace = run_sgld(TrainData::new(&sr, &srt, global_mean, &test));
    let vm_rss_slab_kb = vm_rss_kb();
    let slab_resident_bytes = slab.heap_bytes();
    let in_ram_matrix_bytes = slab.in_ram_matrix_bytes();
    drop(slab);
    let _ = std::fs::remove_file(&slab_path);

    SgmcmcSnapshot {
        nnz,
        k,
        burnin,
        samples,
        minibatch,
        gibbs_rmse,
        gibbs_seconds,
        sgld_rmse,
        sgld_seconds,
        sgld_vs_gibbs_rmse: sgld_rmse / gibbs_rmse,
        slab_bit_identical: ram_trace == slab_trace,
        slab_resident_bytes,
        in_ram_matrix_bytes,
        vm_rss_in_ram_kb,
        vm_rss_slab_kb,
    }
}

#[derive(serde::Serialize)]
struct Snapshot {
    k: usize,
    panel_block: usize,
    available_parallelism: usize,
    smoke: bool,
    /// Blocked panel accumulation vs naive per-rating accumulation of the
    /// same `(Λ*, b)` build, mid and heavy rating counts.
    accumulation: Vec<AccumulationRow>,
    /// Full `update_item` draws per kernel at representative shapes.
    kernels: Vec<KernelRow>,
    /// One full Gibbs sweep (users + movies) on the fixed dataset.
    gibbs_sweep_ms: f64,
    gibbs_nnz: usize,
    /// Largest d where rank-one still beats blocked serial Cholesky here.
    rank_one_crossover: usize,
    /// Whether the AVX2+FMA dispatch arm was live for this run
    /// (`BPMF_NO_SIMD` unset and hardware support present).
    simd_enabled: bool,
    /// Dispatched (SIMD when live) vs forced-scalar panel kernels — the
    /// Gibbs item-update hot loop's `syrk_ld_lower`/`gemv_t_acc`.
    simd_kernels: Vec<SimdKernelRow>,
    /// Mini-batch SGLD vs full Gibbs, in-RAM vs mmap'd-slab store.
    sgmcmc: SgmcmcSnapshot,
}

#[derive(serde::Serialize)]
struct ServeSnapshot {
    n_users: usize,
    n_items: usize,
    k: usize,
    smoke: bool,
    /// Per-pair `Recommender::predict` through the trait object — the
    /// serving path `score_all` replaces.
    per_pair_scores_per_sec: f64,
    /// Whole-catalogue `score_all` (blocked matvec kernel).
    batch_scores_per_sec: f64,
    /// `score_batch` over a strided candidate subset (gathered kernel).
    subset_scores_per_sec: f64,
    /// Headline: batch vs per-pair throughput (acceptance floor: 2×).
    batch_vs_per_pair_speedup: f64,
    /// `RecommendService::top_n(…, 10)` with exclude-seen, mean policy.
    top10_mean_us: f64,
    /// Same with UCB (adds a per-candidate uncertainty lookup).
    top10_ucb_us: f64,
    /// Whether the AVX2+FMA dispatch arm was live for this run.
    simd_enabled: bool,
    /// Micro-batch `score_block` throughput across block sizes, against
    /// the looped per-user `score_all` scan (`batch_scores_per_sec`).
    gemm_block: Vec<BlockRow>,
    /// Headline: 64-user micro-batch vs looped `score_all` (acceptance
    /// floor: 2× at 4096×4096, k = 32).
    block64_vs_score_all_speedup: f64,
    /// The serving tier's compiled-in micro-batch width — derived from the
    /// GEMM cache geometry (`GEMM_KC`/`GEMM_NC` under a 1 MiB L2 budget),
    /// not hand-picked; recorded so a geometry retune shows up in the
    /// snapshot history.
    micro_batch: usize,
    /// `score_block` throughput at B = 256 over B = 64 — the measured
    /// evidence behind sizing [`bpmf::serve::MICRO_BATCH`] from cache
    /// geometry rather than keeping the old hardcoded 64.
    b256_vs_b64_scores: f64,
    /// Dispatched vs forced-scalar `gemm_into` on a serial (below the
    /// pool fan-out threshold) 8 × 2048 × k block — isolates the vector
    /// micro-kernel from core-count parallelism.
    gemm_simd_vs_scalar: f64,
    /// The persistent serving daemon over real TCP: requests/sec and
    /// latency under concurrent closed-loop clients, coalesced vs
    /// per-request serving.
    daemon: DaemonSnapshot,
    /// The sharded tier over real TCP: shard daemons behind the
    /// scatter-gather router, requests/sec and latency per (shard count,
    /// client count) cell.
    router: RouterSnapshot,
}

/// Synthetic fitted posterior over a `n_users × n_items` catalogue, plus a
/// training matrix with ~32 seen items per user for the exclude-seen path.
fn synthetic_serving_world(n_users: usize, n_items: usize, k: usize) -> (PosteriorModel, Csr) {
    let mut rng = Xoshiro256pp::seed_from_u64(7);
    let u = Mat::from_fn(n_users, k, |_, _| normal(&mut rng, 0.0, 0.4));
    let v = Mat::from_fn(n_items, k, |_, _| normal(&mut rng, 0.0, 0.4));
    let u2 = Mat::from_fn(n_users, k, |i, j| {
        let m = u[(i, j)];
        m * m + 0.05
    });
    let v2 = Mat::from_fn(n_items, k, |i, j| {
        let m = v[(i, j)];
        m * m + 0.05
    });
    let model = PosteriorModel::from_factors(u, v, Some((u2, v2)), 3.5, Some((0.5, 5.0)), 16);
    let mut coo = Coo::new(n_users, n_items);
    for user in 0..n_users {
        for s in 0..32 {
            let item = (user * 131 + s * 97) % n_items;
            coo.push(user, item, 4.0);
        }
    }
    (model, Csr::from_coo_owned(coo))
}

/// Serving-throughput section: batch kernels vs the per-pair loop, plus
/// filtered top-N latency through `RecommendService`.
fn serve_section(smoke: bool, k: usize) -> ServeSnapshot {
    // Full shape keeps the transposed factor panel (n_items × k doubles)
    // L2-resident — the scan is compute-bound there; past L2 both the
    // batch and per-pair paths degrade together into memory streaming.
    let (n_users, n_items) = if smoke { (256, 1024) } else { (4096, 4096) };
    let (model, train) = synthetic_serving_world(n_users, n_items, k);
    let dyn_model: &dyn Recommender = &model;
    let user_reps = if smoke { 64 } else { 512 };

    // Per-pair: one virtual predict per (user, item). (One warmup user
    // before each timed section faults the factor pages in.)
    let mut sink = 0.0;
    for item in 0..n_items {
        sink += dyn_model.predict(0, item);
    }
    let t0 = Instant::now();
    for user in 0..user_reps {
        for item in 0..n_items {
            sink += dyn_model.predict(user % n_users, item);
        }
    }
    let per_pair = (user_reps * n_items) as f64 / t0.elapsed().as_secs_f64();
    std::hint::black_box(sink);

    // Batch: one score_all per user.
    let mut scores = vec![0.0; n_items];
    dyn_model.score_all(0, &mut scores);
    let t0 = Instant::now();
    for user in 0..user_reps {
        dyn_model.score_all(user % n_users, &mut scores);
        std::hint::black_box(&scores);
    }
    let batch = (user_reps * n_items) as f64 / t0.elapsed().as_secs_f64();

    // Subset: gathered kernel over a strided candidate list (a quarter of
    // the catalogue, deliberately non-contiguous).
    let candidates: Vec<u32> = (0..n_items as u32).step_by(4).collect();
    let mut out = vec![0.0; candidates.len()];
    dyn_model.score_batch(0, &candidates, &mut out);
    let t0 = Instant::now();
    for user in 0..user_reps {
        dyn_model.score_batch(user % n_users, &candidates, &mut out);
        std::hint::black_box(&out);
    }
    let subset = (user_reps * candidates.len()) as f64 / t0.elapsed().as_secs_f64();

    // Top-10 latency with exclude-seen, mean and UCB policies.
    let mut service = RecommendService::new(dyn_model, n_items).exclude_seen(&train);
    let t0 = Instant::now();
    for user in 0..user_reps {
        std::hint::black_box(service.top_n(user, 10));
    }
    let top10_mean_us = t0.elapsed().as_secs_f64() * 1e6 / user_reps as f64;

    let mut service = RecommendService::new(dyn_model, n_items)
        .exclude_seen(&train)
        .policy(RankPolicy::Ucb { beta: 1.0 });
    let t0 = Instant::now();
    for user in 0..user_reps {
        std::hint::black_box(service.top_n(user, 10));
    }
    let top10_ucb_us = t0.elapsed().as_secs_f64() * 1e6 / user_reps as f64;

    // Micro-batch GEMM: `score_block` throughput per block size against a
    // looped per-user `score_all` over the *same* user windows, the two
    // timed back-to-back per row so clock/cache drift between sections
    // cannot skew the ratio.
    // 64 and 256 bracket the geometry-derived MICRO_BATCH in both smoke
    // and full runs, so every snapshot records the B = 64 vs B = 256
    // delta that justifies (or indicts) the derived width.
    let block_sizes: &[usize] = &[1, 8, 64, 256];
    let mut gemm_block = Vec::new();
    let mut block64 = 0.0;
    let (mut b64_scores, mut b256_scores) = (0.0, 0.0);
    for &bs in block_sizes {
        let reps = (user_reps / bs).max(4);
        let users_of = |rep: usize| -> Vec<u32> {
            (0..bs).map(|i| ((rep * bs + i) % n_users) as u32).collect()
        };
        let mut out = vec![0.0; bs * n_items];
        dyn_model.score_block(&users_of(0), &mut out);
        let t0 = Instant::now();
        for rep in 0..reps {
            dyn_model.score_block(&users_of(rep), &mut out);
            std::hint::black_box(&out);
        }
        let per_sec = (reps * bs * n_items) as f64 / t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        for rep in 0..reps {
            for (i, &u) in users_of(rep).iter().enumerate() {
                dyn_model.score_all(u as usize, &mut out[i * n_items..(i + 1) * n_items]);
            }
            std::hint::black_box(&out);
        }
        let looped_per_sec = (reps * bs * n_items) as f64 / t0.elapsed().as_secs_f64();

        if bs == 64 {
            block64 = per_sec / looped_per_sec;
            b64_scores = per_sec;
        }
        if bs == 256 {
            b256_scores = per_sec;
        }
        gemm_block.push(BlockRow {
            block: bs,
            scores_per_sec: per_sec,
            speedup_vs_score_all: per_sec / looped_per_sec,
        });
    }

    // Dispatched GEMM vs the forced-scalar reference. The shape is chosen
    // to stay BELOW the kernel-pool fan-out threshold (2·m·n·k <
    // GEMM_PAR_FLOPS) so both arms run serially and the ratio isolates
    // the vector micro-kernel — the dispatched arm would otherwise also
    // count core-count parallelism on multi-core hosts. m = 8 still
    // exercises the full-height AVX-512 row strip.
    let (bm, bn, bk) = (8usize.min(n_users), 2048usize.min(n_items), k);
    assert!(
        2 * bm * bn * bk < bpmf_linalg::gemm::GEMM_PAR_FLOPS,
        "simd-vs-scalar shape must stay serial"
    );
    let mut rng = Xoshiro256pp::seed_from_u64(21);
    let a: Vec<f64> = (0..bm * bk).map(|_| normal(&mut rng, 0.0, 0.4)).collect();
    let bmat: Vec<f64> = (0..bk * bn).map(|_| normal(&mut rng, 0.0, 0.4)).collect();
    let mut c = vec![0.0; bm * bn];
    let gemm_reps = if smoke { 16 } else { 256 };
    let dispatched_ns = avg_ns(gemm_reps, || {
        gemm_into(bm, bn, bk, &a, &bmat, &mut c);
        std::hint::black_box(&c);
    });
    let scalar_ns = avg_ns(gemm_reps, || {
        gemm_into_scalar(bm, bn, bk, &a, &bmat, &mut c);
        std::hint::black_box(&c);
    });

    // The persistent daemon over real TCP: coalesced vs per-request.
    let daemon = daemon_section(&model, &train, n_users, n_items, smoke);

    // The sharded tier: shard daemons behind the scatter-gather router.
    let router = router_section(&model, &train, n_users, n_items, smoke);

    ServeSnapshot {
        n_users,
        n_items,
        k,
        smoke,
        per_pair_scores_per_sec: per_pair,
        batch_scores_per_sec: batch,
        subset_scores_per_sec: subset,
        batch_vs_per_pair_speedup: batch / per_pair,
        top10_mean_us,
        top10_ucb_us,
        simd_enabled: simd_enabled(),
        gemm_block,
        block64_vs_score_all_speedup: block64,
        micro_batch: bpmf::serve::MICRO_BATCH,
        b256_vs_b64_scores: b256_scores / b64_scores,
        gemm_simd_vs_scalar: scalar_ns / dispatched_ns,
        daemon,
        router,
    }
}

/// Sharded-tier throughput/latency: the catalogue split into 1/2/4 shard
/// daemons behind one `router::serve` instance, closed-loop concurrent
/// clients over real loopback TCP — the same traffic shape as
/// [`daemon_section`], so the per-cell numbers are comparable. The
/// single-shard row isolates the router's own overhead (one extra socket
/// hop plus a trivial merge); extra shards add fan-out and k-way merging.
fn router_section(
    model: &bpmf::PosteriorModel,
    train: &Csr,
    n_users: usize,
    n_items: usize,
    smoke: bool,
) -> RouterSnapshot {
    let top_n = 10;
    let shard_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    let client_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 8, 64] };
    let max_clients = *client_counts.last().unwrap();
    let requests_for = |clients: usize| {
        if smoke {
            16
        } else {
            (2048 / clients).clamp(32, 512)
        }
    };
    let daemon_cfg = DaemonConfig {
        coalesce: CoalesceConfig {
            max_batch: bpmf::serve::MICRO_BATCH,
            batch_window: Duration::from_millis(2),
            queue_cap: 1024,
        },
        workers: std::thread::available_parallelism().map_or(1, |n| n.get().min(4)),
        default_top_n: top_n,
        ..DaemonConfig::default()
    };
    let router_cfg = RouterConfig {
        default_top_n: top_n,
        // Admission control is off the table here: the bench measures
        // throughput, so the cap must clear the peak offered load (every
        // client keeps CLIENT_PIPELINE requests outstanding).
        inflight_cap: max_clients * CLIENT_PIPELINE,
        ..RouterConfig::default()
    };

    let mut rows: Vec<RouterRow> = Vec::new();
    for &num_shards in shard_counts {
        // Fleet state lives outside the scope so the spawned daemon and
        // router threads can borrow it.
        let specs: Vec<ShardSpec> = (0..num_shards)
            .map(|i| ShardSpec::for_shard(i as u32, num_shards as u32, n_items, 1))
            .collect();
        let shared = std::sync::Arc::new(model.clone());
        let views: Vec<std::sync::Arc<ShardView>> = specs
            .iter()
            .map(|sp| {
                std::sync::Arc::new(ShardView::new(
                    shared.clone(),
                    sp.item_lo as usize,
                    sp.item_hi as usize,
                ))
            })
            .collect();
        let locals: Vec<Csr> = specs
            .iter()
            .map(|sp| slice_train_columns(train, sp.item_lo as usize, sp.item_hi as usize))
            .collect();
        let worlds: Vec<ServingModel> = (0..num_shards)
            .map(|i| ServingModel {
                model: bpmf::ModelHandle::new(views[i].clone(), 1),
                train: Some(&locals[i]),
                n_users,
                n_items: specs[i].width(),
                shard: Some(specs[i]),
                reload: None,
            })
            .collect();
        let shard_listeners: Vec<TcpListener> = (0..num_shards)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind shard"))
            .collect();
        // One single-replica group per range: the bench measures scatter
        // throughput, not failover.
        let shard_groups: Vec<Vec<String>> = shard_listeners
            .iter()
            .map(|l| vec![l.local_addr().unwrap().to_string()])
            .collect();
        let router_listener = TcpListener::bind("127.0.0.1:0").expect("bind router");
        let router_addr = router_listener.local_addr().unwrap();
        let shard_shutdown = AtomicBool::new(false);
        let router_shutdown = AtomicBool::new(false);

        std::thread::scope(|s| {
            let shard_handles: Vec<_> = worlds
                .iter()
                .zip(shard_listeners)
                .map(|(world, listener)| {
                    let cfg = &daemon_cfg;
                    let stop = &shard_shutdown;
                    s.spawn(move || daemon::serve(world, listener, cfg, stop))
                })
                .collect();
            let shard_groups = &shard_groups;
            let rcfg = &router_cfg;
            let rstop = &router_shutdown;
            let router_handle =
                s.spawn(move || router::serve(router_listener, shard_groups, rcfg, rstop));
            // A panicking client must still flip both flags or the scope
            // join would hang on servers nobody asked to stop.
            let _router_guard = ShutdownOnDrop(&router_shutdown);
            let _shard_guard = ShutdownOnDrop(&shard_shutdown);

            // The shard links dial in the background; requests are refused
            // typed until every link is live.
            wait_router_ready(router_addr);

            let mut expected = 0u64;
            for &clients in client_counts {
                let requests = requests_for(clients);
                let t0 = Instant::now();
                let per_client: Vec<Vec<f64>> = std::thread::scope(|cs| {
                    let handles: Vec<_> = (0..clients)
                        .map(|c| cs.spawn(move || client_loop(router_addr, c, n_users, requests)))
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
                let wall = t0.elapsed().as_secs_f64();
                let mut lats: Vec<f64> = per_client.into_iter().flatten().collect();
                lats.sort_by(f64::total_cmp);
                let total = clients * requests;
                expected += total as u64;
                rows.push(RouterRow {
                    shards: num_shards,
                    clients,
                    requests: total,
                    requests_per_sec: total as f64 / wall,
                    p50_latency_us: percentile(&lats, 0.50),
                    p95_latency_us: percentile(&lats, 0.95),
                });
            }

            router_shutdown.store(true, std::sync::atomic::Ordering::Relaxed);
            let report = router_handle
                .join()
                .expect("router thread")
                .expect("router io");
            // +1: the readiness probe's successful request. (Probes sent
            // before every shard link was up count as shard_failures, so
            // that counter is not asserted here.)
            assert_eq!(report.requests, expected + 1, "every request answered");
            shard_shutdown.store(true, std::sync::atomic::Ordering::Relaxed);
            for h in shard_handles {
                h.join().expect("shard thread").expect("shard io");
            }
        });
    }

    let rps = |shards: usize| {
        rows.iter()
            .find(|r| r.shards == shards && r.clients == max_clients)
            .map_or(f64::NAN, |r| r.requests_per_sec)
    };
    let max_shards_vs_one_shard = rps(*shard_counts.last().unwrap()) / rps(1);
    let scatter_batching = (!smoke).then(|| {
        let after = rps(4);
        ScatterBatchingRow {
            unbatched_rps_4shards_64clients: UNBATCHED_RPS_4SHARDS_64CLIENTS,
            batched_rps_4shards_64clients: after,
            speedup: after / UNBATCHED_RPS_4SHARDS_64CLIENTS,
        }
    });
    RouterSnapshot {
        top_n,
        rows,
        max_shards_vs_one_shard,
        scatter_batching,
    }
}

/// Block until the router answers a recommend request without error —
/// i.e. until every shard link has dialed in.
fn wait_router_ready(addr: SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(stream) = TcpStream::connect(addr) {
            stream.set_nodelay(true).ok();
            stream.set_read_timeout(Some(Duration::from_secs(2))).ok();
            let mut writer = std::io::BufWriter::new(stream.try_clone().expect("clone socket"));
            let mut reader = BufReader::new(stream);
            writeln!(writer, "{}", wire::encode(&wire::Request::recommend(0, 0))).ok();
            writer.flush().ok();
            let mut line = String::new();
            if reader.read_line(&mut line).is_ok() {
                if let Ok(resp) = wire::decode_response(&line) {
                    if resp.error.is_none() {
                        return;
                    }
                }
            }
        }
        assert!(Instant::now() < deadline, "router never became ready");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Serving-daemon throughput/latency: closed-loop concurrent clients over
/// real loopback TCP, the coalescing configuration (64-request blocks,
/// 2 ms window) against per-request serving (window 0, single worker,
/// batch size 1) — the configuration the daemon degenerates to without a
/// coalescer. Any panic in here (daemon error, malformed reply, failed
/// request) fails the whole snapshot run loudly.
fn daemon_section(
    model: &bpmf::PosteriorModel,
    train: &Csr,
    n_users: usize,
    n_items: usize,
    smoke: bool,
) -> DaemonSnapshot {
    let top_n = 10;
    let batch_window_ms = 2.0;
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get().min(4));
    let client_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 8, 64] };
    let max_clients = *client_counts.last().unwrap();
    let requests_for = |clients: usize| {
        if smoke {
            16
        } else {
            // Bound the wall clock: the 1-client coalesced row pays the
            // full window per round trip by design.
            (2048 / clients).clamp(32, 512)
        }
    };

    let coalesced = DaemonConfig {
        coalesce: CoalesceConfig {
            max_batch: bpmf::serve::MICRO_BATCH,
            batch_window: Duration::from_secs_f64(batch_window_ms / 1e3),
            queue_cap: 1024,
        },
        workers,
        default_top_n: top_n,
        ..DaemonConfig::default()
    };
    let per_request = DaemonConfig {
        coalesce: CoalesceConfig {
            max_batch: 1,
            batch_window: Duration::ZERO,
            queue_cap: 1024,
        },
        workers: 1,
        default_top_n: top_n,
        ..DaemonConfig::default()
    };

    let mut rows = Vec::new();
    for &clients in client_counts {
        rows.push(daemon_bench(
            "coalesced",
            model,
            train,
            n_users,
            n_items,
            clients,
            requests_for(clients),
            &coalesced,
        ));
    }
    let per_req_row = daemon_bench(
        "per_request",
        model,
        train,
        n_users,
        n_items,
        max_clients,
        requests_for(max_clients),
        &per_request,
    );
    let coalesced_vs_per_request =
        rows.last().unwrap().requests_per_sec / per_req_row.requests_per_sec;
    rows.push(per_req_row);

    DaemonSnapshot {
        top_n,
        batch_window_ms,
        workers,
        rows,
        coalesced_vs_per_request,
    }
}

/// One daemon configuration under `clients` closed-loop clients, each
/// firing `requests` synchronous round trips on its own connection.
#[allow(clippy::too_many_arguments)]
fn daemon_bench(
    mode: &'static str,
    model: &bpmf::PosteriorModel,
    train: &Csr,
    n_users: usize,
    n_items: usize,
    clients: usize,
    requests: usize,
    cfg: &DaemonConfig,
) -> DaemonRow {
    let world = ServingModel {
        model: bpmf::ModelHandle::new(std::sync::Arc::new(model.clone()), 1),
        train: Some(train),
        n_users,
        n_items,
        shard: None,
        reload: None,
    };
    let shutdown = AtomicBool::new(false);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap();
    let mut latencies: Vec<f64> = Vec::new();
    let mut wall = 0.0f64;
    let mut report = None;
    std::thread::scope(|s| {
        let daemon_handle = s.spawn(|| daemon::serve(&world, listener, cfg, &shutdown));
        // If a client panics, the scope join would otherwise wait forever
        // for a daemon that nobody asked to stop; the guard flips the
        // flag during unwinding so the panic surfaces (loudly) instead of
        // hanging the snapshot run.
        let _stop_guard = ShutdownOnDrop(&shutdown);
        let t0 = Instant::now();
        let per_client: Vec<Vec<f64>> = std::thread::scope(|cs| {
            let handles: Vec<_> = (0..clients)
                .map(|c| cs.spawn(move || client_loop(addr, c, n_users, requests)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        wall = t0.elapsed().as_secs_f64();
        shutdown.store(true, std::sync::atomic::Ordering::Relaxed);
        report = Some(
            daemon_handle
                .join()
                .expect("daemon thread")
                .expect("daemon io"),
        );
        latencies = per_client.into_iter().flatten().collect();
    });
    let report = report.unwrap();
    let total = clients * requests;
    assert_eq!(report.requests as usize, total, "every request answered");
    latencies.sort_by(f64::total_cmp);
    DaemonRow {
        mode,
        clients,
        requests: total,
        requests_per_sec: total as f64 / wall,
        p50_latency_us: percentile(&latencies, 0.50),
        p95_latency_us: percentile(&latencies, 0.95),
        batches: report.batches,
        largest_batch: report.largest_batch,
    }
}

/// Requests each bench client keeps in flight on its connection: the
/// multiplexed-frontend traffic shape (not a lock-step ping-pong), and
/// identical for both daemon configurations so the comparison is fair.
const CLIENT_PIPELINE: usize = 8;

/// One closed-loop client with a bounded pipeline: keep up to
/// [`CLIENT_PIPELINE`] requests outstanding, record each request's
/// send-to-reply latency in microseconds.
fn client_loop(addr: SocketAddr, client: usize, n_users: usize, requests: usize) -> Vec<f64> {
    let stream = TcpStream::connect(addr).expect("connect to daemon");
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(60))).ok();
    let mut writer = std::io::BufWriter::new(stream.try_clone().expect("clone socket"));
    let mut reader = BufReader::new(stream);
    let mut sent_at = vec![Instant::now(); requests];
    let mut lats = vec![0.0f64; requests];
    let mut line = String::new();
    let (mut sent, mut received) = (0usize, 0usize);
    while received < requests {
        while sent < requests && sent - received < CLIENT_PIPELINE {
            let user = ((client * 131 + sent * 37) % n_users) as u32;
            let req = wire::Request::recommend(sent as u64, user);
            sent_at[sent] = Instant::now();
            writeln!(writer, "{}", wire::encode(&req)).expect("send");
            sent += 1;
        }
        writer.flush().expect("flush requests");
        line.clear();
        reader.read_line(&mut line).expect("reply");
        let resp = wire::decode_response(&line).expect("reply parses");
        assert!(
            resp.error.is_none(),
            "daemon rejected request: {:?}",
            resp.error
        );
        let id = resp.id as usize;
        assert!(id < requests && lats[id] == 0.0, "duplicate reply {id}");
        assert!(!resp.items.is_empty());
        lats[id] = sent_at[id].elapsed().as_secs_f64() * 1e6;
        received += 1;
    }
    lats
}

/// Sets the daemon shutdown flag when dropped — including during panic
/// unwinding, where it keeps the scoped daemon thread joinable.
struct ShutdownOnDrop<'a>(&'a AtomicBool);

impl Drop for ShutdownOnDrop<'_> {
    fn drop(&mut self) {
        self.0.store(true, std::sync::atomic::Ordering::Relaxed);
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Dispatched-vs-scalar ratio for the Gibbs panel kernels at mid/heavy
/// rating counts.
fn simd_kernel_rows(k: usize, smoke: bool) -> Vec<SimdKernelRow> {
    let mut rows = Vec::new();
    let shapes: &[usize] = if smoke { &[256] } else { &[256, 1024] };
    for &d in shapes {
        let mut rng = Xoshiro256pp::seed_from_u64(17);
        let panel: Vec<f64> = (0..d * k).map(|_| normal(&mut rng, 0.0, 0.5)).collect();
        let weights: Vec<f64> = (0..d).map(|i| 1.0 + (i as f64 * 0.3).sin()).collect();
        let reps = (200_000 / d).clamp(10, 2000);
        let mut prec = Mat::zeros(k, k);
        let syrk_dispatched = avg_ns(reps, || {
            prec.fill(0.0);
            syrk_ld_lower(&mut prec, 2.0, &panel, k);
            std::hint::black_box(&prec);
        });
        let syrk_scalar = avg_ns(reps, || {
            prec.fill(0.0);
            syrk_ld_lower_scalar(&mut prec, 2.0, &panel, k);
            std::hint::black_box(&prec);
        });
        rows.push(SimdKernelRow {
            kernel: "syrk_ld_lower",
            d,
            scalar_ns: syrk_scalar,
            dispatched_ns: syrk_dispatched,
            speedup: syrk_scalar / syrk_dispatched,
        });
        let mut rhs = vec![0.0; k];
        let gemv_dispatched = avg_ns(reps, || {
            rhs.fill(0.0);
            gemv_t_acc(&mut rhs, &panel, &weights);
            std::hint::black_box(&rhs);
        });
        let gemv_scalar = avg_ns(reps, || {
            rhs.fill(0.0);
            gemv_t_acc_scalar(&mut rhs, &panel, &weights);
            std::hint::black_box(&rhs);
        });
        rows.push(SimdKernelRow {
            kernel: "gemv_t_acc",
            d,
            scalar_ns: gemv_scalar,
            dispatched_ns: gemv_dispatched,
            speedup: gemv_scalar / gemv_dispatched,
        });
    }
    rows
}

/// Time `f` averaged over `reps` runs after `warmup` runs.
fn avg_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..reps.min(3) {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_nanos() as f64 / reps as f64
}

/// Naive vs blocked accumulation of `Λ* = Λ + α Σ v vᵀ`, `b = Λμ + α Σ w v`.
fn accumulation_row(k: usize, d: usize, reps: usize) -> AccumulationRow {
    let mut rng = Xoshiro256pp::seed_from_u64(99);
    let other = Mat::from_fn(d, k, |_, _| normal(&mut rng, 0.0, 0.5));
    let cols: Vec<u32> = (0..d as u32).collect();
    let vals: Vec<f64> = (0..d).map(|i| 3.0 + (i as f64).sin()).collect();
    let alpha = 2.0;
    let mean = 3.0;

    let mut prec = Mat::zeros(k, k);
    let mut rhs = vec![0.0; k];
    let per_rating_ns = avg_ns(reps, || {
        prec.fill(0.0);
        rhs.fill(0.0);
        for (&j, &r) in cols.iter().zip(&vals) {
            let v = other.row(j as usize);
            prec.syrk_lower(alpha, v);
            vecops::axpy(alpha * (r - mean), v, &mut rhs);
        }
        std::hint::black_box(&prec);
    });

    let mut panel: Vec<f64> = Vec::with_capacity(PANEL_BLOCK * k);
    let mut weights: Vec<f64> = Vec::with_capacity(PANEL_BLOCK);
    let blocked_ns = avg_ns(reps, || {
        prec.fill(0.0);
        rhs.fill(0.0);
        for (cblock, vblock) in cols.chunks(PANEL_BLOCK).zip(vals.chunks(PANEL_BLOCK)) {
            panel.clear();
            weights.clear();
            for (&j, &r) in cblock.iter().zip(vblock) {
                panel.extend_from_slice(other.row(j as usize));
                weights.push(alpha * (r - mean));
            }
            syrk_ld_lower(&mut prec, alpha, &panel, k);
            gemv_t_acc(&mut rhs, &panel, &weights);
        }
        std::hint::black_box(&prec);
    });

    AccumulationRow {
        d,
        per_rating_ns,
        blocked_ns,
        speedup: per_rating_ns / blocked_ns,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let k = bpmf_bench::env_scale("BPMF_K", 32.0) as usize;
    let scale = if smoke { 10 } else { 1 };

    println!(
        "perf snapshot (K = {k}{})",
        if smoke { ", smoke" } else { "" }
    );

    let mid_heavy: &[usize] = if smoke {
        &[256, 1024]
    } else {
        &[256, 1024, 8192]
    };
    let accumulation: Vec<AccumulationRow> = mid_heavy
        .iter()
        .map(|&d| {
            let row = accumulation_row(k, d, (200_000 / d).clamp(5, 2000) / scale + 5);
            println!(
                "  accumulate d={:>5}: per-rating {:>10.0} ns  blocked {:>10.0} ns  speedup {:.2}x",
                row.d, row.per_rating_ns, row.blocked_ns, row.speedup
            );
            row
        })
        .collect();

    let shapes = [
        ("rank_one", UpdateMethod::RankOne, k / 4),
        ("chol_serial", UpdateMethod::CholSerial, 512),
        ("chol_parallel", UpdateMethod::CholParallel, 4096),
    ];
    let kernels: Vec<KernelRow> = shapes
        .iter()
        .map(|&(name, method, d)| {
            let d = d.max(1);
            let reps = (100_000 / d).clamp(5, 500) / scale + 5;
            let secs = time_item_update(method, k, d, reps, 2);
            println!("  update_item {name:>13} d={d:>5}: {:>10.0} ns", secs * 1e9);
            KernelRow {
                method: name,
                d,
                update_ns: secs * 1e9,
            }
        })
        .collect();

    // One full Gibbs sweep (both sides) on a fixed synthetic dataset.
    let ds = chembl_like(if smoke { 0.001 } else { 0.003 }, 8);
    let cfg = BpmfConfig {
        num_latent: k.min(32),
        seed: 1,
        kernel_threads: 1,
        ..Default::default()
    };
    let data = TrainData::new(&ds.train, &ds.train_t, ds.global_mean, &ds.test);
    let runner = EngineKind::WorkStealing.build(1);
    let mut sampler = GibbsSampler::new(cfg, data);
    sampler.step(runner.as_ref()); // warm-up sweep
    let t0 = Instant::now();
    let sweeps = if smoke { 1 } else { 3 };
    for _ in 0..sweeps {
        sampler.step(runner.as_ref());
    }
    let gibbs_sweep_ms = t0.elapsed().as_secs_f64() * 1e3 / sweeps as f64;
    println!("  gibbs sweep ({} nnz): {:.1} ms", ds.nnz(), gibbs_sweep_ms);

    let rank_one_crossover = if smoke { 0 } else { calibrate_rank_one_max(k) };
    if !smoke {
        println!("  rank-one/serial crossover: d = {rank_one_crossover}");
    }

    // SIMD-vs-scalar ratio for the panel kernels (1.0x when the dispatch
    // falls back, e.g. under BPMF_NO_SIMD=1 or off x86-64).
    let simd_kernels = simd_kernel_rows(k, smoke);
    for row in &simd_kernels {
        println!(
            "  simd {:>13} d={:>5}: scalar {:>9.0} ns  dispatched {:>9.0} ns  speedup {:.2}x",
            row.kernel, row.d, row.scalar_ns, row.dispatched_ns, row.speedup
        );
    }

    // Mini-batch SGLD vs Gibbs, and the out-of-core slab store footprint.
    let sgmcmc = sgmcmc_section(smoke, k.min(16));
    println!(
        "  sgmcmc ({} nnz): gibbs RMSE {:.4} in {:.2}s  sgld RMSE {:.4} in {:.2}s ({:.3}x)",
        sgmcmc.nnz,
        sgmcmc.gibbs_rmse,
        sgmcmc.gibbs_seconds,
        sgmcmc.sgld_rmse,
        sgmcmc.sgld_seconds,
        sgmcmc.sgld_vs_gibbs_rmse
    );
    println!(
        "  sgmcmc slab: bit-identical {}  resident {} B vs in-RAM {} B (RSS {:?} -> {:?} KiB)",
        sgmcmc.slab_bit_identical,
        sgmcmc.slab_resident_bytes,
        sgmcmc.in_ram_matrix_bytes,
        sgmcmc.vm_rss_in_ram_kb,
        sgmcmc.vm_rss_slab_kb
    );

    // Serving throughput (batch kernels vs per-pair predict, top-N latency).
    let serve = serve_section(smoke, k.min(32));
    println!(
        "  serve {}x{}: per-pair {:.2}M/s  batch {:.2}M/s ({:.2}x)  subset {:.2}M/s",
        serve.n_users,
        serve.n_items,
        serve.per_pair_scores_per_sec / 1e6,
        serve.batch_scores_per_sec / 1e6,
        serve.batch_vs_per_pair_speedup,
        serve.subset_scores_per_sec / 1e6,
    );
    println!(
        "  serve top-10 (exclude-seen): mean {:.0} us  ucb {:.0} us",
        serve.top10_mean_us, serve.top10_ucb_us
    );
    for row in &serve.gemm_block {
        println!(
            "  serve micro-batch B={:>3}: {:.2}M scores/s ({:.2}x score_all)",
            row.block,
            row.scores_per_sec / 1e6,
            row.speedup_vs_score_all
        );
    }
    println!(
        "  serve gemm simd-vs-scalar: {:.2}x",
        serve.gemm_simd_vs_scalar
    );
    for row in &serve.daemon.rows {
        println!(
            "  daemon {:>11} C={:>3}: {:>8.0} req/s  p50 {:>7.0} us  p95 {:>7.0} us  \
             ({} batches, largest {})",
            row.mode,
            row.clients,
            row.requests_per_sec,
            row.p50_latency_us,
            row.p95_latency_us,
            row.batches,
            row.largest_batch
        );
    }
    println!(
        "  daemon coalesced vs per-request at {} clients: {:.2}x",
        serve.daemon.rows.last().map_or(0, |r| r.clients),
        serve.daemon.coalesced_vs_per_request
    );
    for row in &serve.router.rows {
        println!(
            "  router S={} C={:>3}: {:>8.0} req/s  p50 {:>7.0} us  p95 {:>7.0} us",
            row.shards, row.clients, row.requests_per_sec, row.p50_latency_us, row.p95_latency_us
        );
    }
    println!(
        "  router max-shards vs 1 shard at max clients: {:.2}x",
        serve.router.max_shards_vs_one_shard
    );

    let snapshot = Snapshot {
        k,
        panel_block: PANEL_BLOCK,
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        smoke,
        accumulation,
        kernels,
        gibbs_sweep_ms,
        gibbs_nnz: ds.nnz(),
        rank_one_crossover,
        simd_enabled: simd_enabled(),
        simd_kernels,
        sgmcmc,
    };

    // Full runs write the tracked artifacts in the current directory (the
    // repo root under `cargo run`) so the perf trajectory is version
    // controlled; smoke runs only mirror to target/bench-results — their
    // shrunken measurements must not clobber the committed snapshots.
    if smoke {
        println!(
            "  [smoke] skipping BENCH_gibbs.json / BENCH_serve.json \
             (tracked artifacts keep full-run numbers)"
        );
    } else {
        for (name, json) in [
            (
                "BENCH_gibbs.json",
                serde_json::to_string_pretty(&snapshot).unwrap(),
            ),
            (
                "BENCH_serve.json",
                serde_json::to_string_pretty(&serve).unwrap(),
            ),
        ] {
            match std::fs::File::create(name) {
                Ok(mut f) => {
                    writeln!(f, "{json}").unwrap();
                    println!("  [artifact] {name}");
                }
                Err(e) => eprintln!("  could not write {name}: {e}"),
            }
        }
    }
    bpmf_bench::write_json("BENCH_gibbs", &snapshot);
    bpmf_bench::write_json("BENCH_serve", &serve);
}
