//! **Perf snapshot** — machine-readable timing of the Gibbs hot path,
//! written to `BENCH_gibbs.json` so the performance trajectory is tracked
//! across PRs.
//!
//! Times, on a fixed synthetic dataset and fixed kernel shapes:
//!
//! * the three item-update kernels (rank-one / serial Cholesky / parallel
//!   Cholesky) at representative light/mid/heavy rating counts,
//! * blocked panel accumulation (gather + `syrk_ld_lower` + `gemv_t_acc`)
//!   against the naive per-rating accumulation (`syrk_lower` + `axpy` per
//!   rating) it replaced — the headline blocked-vs-per-rating speedup,
//! * one full Gibbs sweep through the public sampler,
//! * the measured rank-one/serial crossover (what `rank_one_max` should be
//!   on this host),
//! * the serving layer (written to `BENCH_serve.json`): batched scoring
//!   throughput (`Recommender::score_all` / `score_batch`) against the
//!   per-pair `predict` loop it replaces, and `RecommendService::top_n`
//!   latency with exclude-seen filtering.
//!
//! Usage: `cargo run --release -p bpmf-bench --bin perf_snapshot`
//! (`-- --smoke` shrinks every measurement for CI smoke runs; `BPMF_K`
//! overrides the latent dimension, default 32).

use std::io::Write as _;
use std::time::Instant;

use bpmf::serve::{RankPolicy, RecommendService};
use bpmf::{
    BpmfConfig, EngineKind, GibbsSampler, PosteriorModel, Recommender, TrainData, UpdateMethod,
};
use bpmf_bench::calibrate::{calibrate_rank_one_max, time_item_update};
use bpmf_dataset::chembl_like;
use bpmf_linalg::{gemv_t_acc, syrk_ld_lower, vecops, Mat, PANEL_BLOCK};
use bpmf_sparse::{Coo, Csr};
use bpmf_stats::{normal, Xoshiro256pp};

#[derive(serde::Serialize)]
struct AccumulationRow {
    d: usize,
    per_rating_ns: f64,
    blocked_ns: f64,
    speedup: f64,
}

#[derive(serde::Serialize)]
struct KernelRow {
    method: &'static str,
    d: usize,
    update_ns: f64,
}

#[derive(serde::Serialize)]
struct Snapshot {
    k: usize,
    panel_block: usize,
    available_parallelism: usize,
    smoke: bool,
    /// Blocked panel accumulation vs naive per-rating accumulation of the
    /// same `(Λ*, b)` build, mid and heavy rating counts.
    accumulation: Vec<AccumulationRow>,
    /// Full `update_item` draws per kernel at representative shapes.
    kernels: Vec<KernelRow>,
    /// One full Gibbs sweep (users + movies) on the fixed dataset.
    gibbs_sweep_ms: f64,
    gibbs_nnz: usize,
    /// Largest d where rank-one still beats blocked serial Cholesky here.
    rank_one_crossover: usize,
}

#[derive(serde::Serialize)]
struct ServeSnapshot {
    n_users: usize,
    n_items: usize,
    k: usize,
    smoke: bool,
    /// Per-pair `Recommender::predict` through the trait object — the
    /// serving path `score_all` replaces.
    per_pair_scores_per_sec: f64,
    /// Whole-catalogue `score_all` (blocked matvec kernel).
    batch_scores_per_sec: f64,
    /// `score_batch` over a strided candidate subset (gathered kernel).
    subset_scores_per_sec: f64,
    /// Headline: batch vs per-pair throughput (acceptance floor: 2×).
    batch_vs_per_pair_speedup: f64,
    /// `RecommendService::top_n(…, 10)` with exclude-seen, mean policy.
    top10_mean_us: f64,
    /// Same with UCB (adds a per-candidate uncertainty lookup).
    top10_ucb_us: f64,
}

/// Synthetic fitted posterior over a `n_users × n_items` catalogue, plus a
/// training matrix with ~32 seen items per user for the exclude-seen path.
fn synthetic_serving_world(n_users: usize, n_items: usize, k: usize) -> (PosteriorModel, Csr) {
    let mut rng = Xoshiro256pp::seed_from_u64(7);
    let u = Mat::from_fn(n_users, k, |_, _| normal(&mut rng, 0.0, 0.4));
    let v = Mat::from_fn(n_items, k, |_, _| normal(&mut rng, 0.0, 0.4));
    let u2 = Mat::from_fn(n_users, k, |i, j| {
        let m = u[(i, j)];
        m * m + 0.05
    });
    let v2 = Mat::from_fn(n_items, k, |i, j| {
        let m = v[(i, j)];
        m * m + 0.05
    });
    let model = PosteriorModel::from_factors(u, v, Some((u2, v2)), 3.5, Some((0.5, 5.0)), 16);
    let mut coo = Coo::new(n_users, n_items);
    for user in 0..n_users {
        for s in 0..32 {
            let item = (user * 131 + s * 97) % n_items;
            coo.push(user, item, 4.0);
        }
    }
    (model, Csr::from_coo_owned(coo))
}

/// Serving-throughput section: batch kernels vs the per-pair loop, plus
/// filtered top-N latency through `RecommendService`.
fn serve_section(smoke: bool, k: usize) -> ServeSnapshot {
    // Full shape keeps the transposed factor panel (n_items × k doubles)
    // L2-resident — the scan is compute-bound there; past L2 both the
    // batch and per-pair paths degrade together into memory streaming.
    let (n_users, n_items) = if smoke { (256, 1024) } else { (4096, 4096) };
    let (model, train) = synthetic_serving_world(n_users, n_items, k);
    let dyn_model: &dyn Recommender = &model;
    let user_reps = if smoke { 64 } else { 512 };

    // Per-pair: one virtual predict per (user, item). (One warmup user
    // before each timed section faults the factor pages in.)
    let mut sink = 0.0;
    for item in 0..n_items {
        sink += dyn_model.predict(0, item);
    }
    let t0 = Instant::now();
    for user in 0..user_reps {
        for item in 0..n_items {
            sink += dyn_model.predict(user % n_users, item);
        }
    }
    let per_pair = (user_reps * n_items) as f64 / t0.elapsed().as_secs_f64();
    std::hint::black_box(sink);

    // Batch: one score_all per user.
    let mut scores = vec![0.0; n_items];
    dyn_model.score_all(0, &mut scores);
    let t0 = Instant::now();
    for user in 0..user_reps {
        dyn_model.score_all(user % n_users, &mut scores);
        std::hint::black_box(&scores);
    }
    let batch = (user_reps * n_items) as f64 / t0.elapsed().as_secs_f64();

    // Subset: gathered kernel over a strided candidate list (a quarter of
    // the catalogue, deliberately non-contiguous).
    let candidates: Vec<u32> = (0..n_items as u32).step_by(4).collect();
    let mut out = vec![0.0; candidates.len()];
    dyn_model.score_batch(0, &candidates, &mut out);
    let t0 = Instant::now();
    for user in 0..user_reps {
        dyn_model.score_batch(user % n_users, &candidates, &mut out);
        std::hint::black_box(&out);
    }
    let subset = (user_reps * candidates.len()) as f64 / t0.elapsed().as_secs_f64();

    // Top-10 latency with exclude-seen, mean and UCB policies.
    let mut service = RecommendService::new(dyn_model, n_items).exclude_seen(&train);
    let t0 = Instant::now();
    for user in 0..user_reps {
        std::hint::black_box(service.top_n(user, 10));
    }
    let top10_mean_us = t0.elapsed().as_secs_f64() * 1e6 / user_reps as f64;

    let mut service = RecommendService::new(dyn_model, n_items)
        .exclude_seen(&train)
        .policy(RankPolicy::Ucb { beta: 1.0 });
    let t0 = Instant::now();
    for user in 0..user_reps {
        std::hint::black_box(service.top_n(user, 10));
    }
    let top10_ucb_us = t0.elapsed().as_secs_f64() * 1e6 / user_reps as f64;

    ServeSnapshot {
        n_users,
        n_items,
        k,
        smoke,
        per_pair_scores_per_sec: per_pair,
        batch_scores_per_sec: batch,
        subset_scores_per_sec: subset,
        batch_vs_per_pair_speedup: batch / per_pair,
        top10_mean_us,
        top10_ucb_us,
    }
}

/// Time `f` averaged over `reps` runs after `warmup` runs.
fn avg_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..reps.min(3) {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_nanos() as f64 / reps as f64
}

/// Naive vs blocked accumulation of `Λ* = Λ + α Σ v vᵀ`, `b = Λμ + α Σ w v`.
fn accumulation_row(k: usize, d: usize, reps: usize) -> AccumulationRow {
    let mut rng = Xoshiro256pp::seed_from_u64(99);
    let other = Mat::from_fn(d, k, |_, _| normal(&mut rng, 0.0, 0.5));
    let cols: Vec<u32> = (0..d as u32).collect();
    let vals: Vec<f64> = (0..d).map(|i| 3.0 + (i as f64).sin()).collect();
    let alpha = 2.0;
    let mean = 3.0;

    let mut prec = Mat::zeros(k, k);
    let mut rhs = vec![0.0; k];
    let per_rating_ns = avg_ns(reps, || {
        prec.fill(0.0);
        rhs.fill(0.0);
        for (&j, &r) in cols.iter().zip(&vals) {
            let v = other.row(j as usize);
            prec.syrk_lower(alpha, v);
            vecops::axpy(alpha * (r - mean), v, &mut rhs);
        }
        std::hint::black_box(&prec);
    });

    let mut panel: Vec<f64> = Vec::with_capacity(PANEL_BLOCK * k);
    let mut weights: Vec<f64> = Vec::with_capacity(PANEL_BLOCK);
    let blocked_ns = avg_ns(reps, || {
        prec.fill(0.0);
        rhs.fill(0.0);
        for (cblock, vblock) in cols.chunks(PANEL_BLOCK).zip(vals.chunks(PANEL_BLOCK)) {
            panel.clear();
            weights.clear();
            for (&j, &r) in cblock.iter().zip(vblock) {
                panel.extend_from_slice(other.row(j as usize));
                weights.push(alpha * (r - mean));
            }
            syrk_ld_lower(&mut prec, alpha, &panel, k);
            gemv_t_acc(&mut rhs, &panel, &weights);
        }
        std::hint::black_box(&prec);
    });

    AccumulationRow {
        d,
        per_rating_ns,
        blocked_ns,
        speedup: per_rating_ns / blocked_ns,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let k = bpmf_bench::env_scale("BPMF_K", 32.0) as usize;
    let scale = if smoke { 10 } else { 1 };

    println!(
        "perf snapshot (K = {k}{})",
        if smoke { ", smoke" } else { "" }
    );

    let mid_heavy: &[usize] = if smoke {
        &[256, 1024]
    } else {
        &[256, 1024, 8192]
    };
    let accumulation: Vec<AccumulationRow> = mid_heavy
        .iter()
        .map(|&d| {
            let row = accumulation_row(k, d, (200_000 / d).clamp(5, 2000) / scale + 5);
            println!(
                "  accumulate d={:>5}: per-rating {:>10.0} ns  blocked {:>10.0} ns  speedup {:.2}x",
                row.d, row.per_rating_ns, row.blocked_ns, row.speedup
            );
            row
        })
        .collect();

    let shapes = [
        ("rank_one", UpdateMethod::RankOne, k / 4),
        ("chol_serial", UpdateMethod::CholSerial, 512),
        ("chol_parallel", UpdateMethod::CholParallel, 4096),
    ];
    let kernels: Vec<KernelRow> = shapes
        .iter()
        .map(|&(name, method, d)| {
            let d = d.max(1);
            let reps = (100_000 / d).clamp(5, 500) / scale + 5;
            let secs = time_item_update(method, k, d, reps, 2);
            println!("  update_item {name:>13} d={d:>5}: {:>10.0} ns", secs * 1e9);
            KernelRow {
                method: name,
                d,
                update_ns: secs * 1e9,
            }
        })
        .collect();

    // One full Gibbs sweep (both sides) on a fixed synthetic dataset.
    let ds = chembl_like(if smoke { 0.001 } else { 0.003 }, 8);
    let cfg = BpmfConfig {
        num_latent: k.min(32),
        seed: 1,
        kernel_threads: 1,
        ..Default::default()
    };
    let data = TrainData::new(&ds.train, &ds.train_t, ds.global_mean, &ds.test);
    let runner = EngineKind::WorkStealing.build(1);
    let mut sampler = GibbsSampler::new(cfg, data);
    sampler.step(runner.as_ref()); // warm-up sweep
    let t0 = Instant::now();
    let sweeps = if smoke { 1 } else { 3 };
    for _ in 0..sweeps {
        sampler.step(runner.as_ref());
    }
    let gibbs_sweep_ms = t0.elapsed().as_secs_f64() * 1e3 / sweeps as f64;
    println!("  gibbs sweep ({} nnz): {:.1} ms", ds.nnz(), gibbs_sweep_ms);

    let rank_one_crossover = if smoke { 0 } else { calibrate_rank_one_max(k) };
    if !smoke {
        println!("  rank-one/serial crossover: d = {rank_one_crossover}");
    }

    // Serving throughput (batch kernels vs per-pair predict, top-N latency).
    let serve = serve_section(smoke, k.min(32));
    println!(
        "  serve {}x{}: per-pair {:.2}M/s  batch {:.2}M/s ({:.2}x)  subset {:.2}M/s",
        serve.n_users,
        serve.n_items,
        serve.per_pair_scores_per_sec / 1e6,
        serve.batch_scores_per_sec / 1e6,
        serve.batch_vs_per_pair_speedup,
        serve.subset_scores_per_sec / 1e6,
    );
    println!(
        "  serve top-10 (exclude-seen): mean {:.0} us  ucb {:.0} us",
        serve.top10_mean_us, serve.top10_ucb_us
    );

    let snapshot = Snapshot {
        k,
        panel_block: PANEL_BLOCK,
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        smoke,
        accumulation,
        kernels,
        gibbs_sweep_ms,
        gibbs_nnz: ds.nnz(),
        rank_one_crossover,
    };

    // Full runs write the tracked artifacts in the current directory (the
    // repo root under `cargo run`) so the perf trajectory is version
    // controlled; smoke runs only mirror to target/bench-results — their
    // shrunken measurements must not clobber the committed snapshots.
    if smoke {
        println!(
            "  [smoke] skipping BENCH_gibbs.json / BENCH_serve.json \
             (tracked artifacts keep full-run numbers)"
        );
    } else {
        for (name, json) in [
            (
                "BENCH_gibbs.json",
                serde_json::to_string_pretty(&snapshot).unwrap(),
            ),
            (
                "BENCH_serve.json",
                serde_json::to_string_pretty(&serve).unwrap(),
            ),
        ] {
            match std::fs::File::create(name) {
                Ok(mut f) => {
                    writeln!(f, "{json}").unwrap();
                    println!("  [artifact] {name}");
                }
                Err(e) => eprintln!("  could not write {name}: {e}"),
            }
        }
    }
    bpmf_bench::write_json("BENCH_gibbs", &snapshot);
    bpmf_bench::write_json("BENCH_serve", &serve);
}
