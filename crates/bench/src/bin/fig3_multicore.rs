//! **Figure 3** — multi-core BPMF throughput (updates to U and V per
//! second) on the ChEMBL workload, versus thread count, for the three
//! runtimes: TBB-like work stealing, OpenMP-like static, GraphLab-like
//! vertex engine.
//!
//! Expected shape (paper): all runtimes scale with cores; work stealing >
//! static (nested parallelism + stealing absorbs the rating-count skew);
//! the GraphLab-like engine trails by a wide margin (consistency machinery).
//!
//! Note: this container exposes few physical cores, so absolute scaling
//! flattens where the paper's 12-core Westmere keeps climbing; the *engine
//! ordering at each thread count* is the reproduced result. EXPERIMENTS.md
//! discusses the gap.
//!
//! Usage: `cargo run -p bpmf-bench --release --bin fig3_multicore`
//! (`BPMF_SCALE` resizes the ChEMBL-like workload, default 0.01).

use bpmf::{Bpmf, EngineKind, NoCallback, TrainData};
use bpmf_baselines::make_trainer;
use bpmf_bench::table::{pct, si, Table};
use bpmf_dataset::chembl_like;

fn main() {
    let scale = bpmf_bench::env_scale("BPMF_SCALE", 0.01);
    let iters = bpmf_bench::env_scale("BPMF_ITERS", 3.0) as usize;
    println!("Figure 3 reproduction: multi-core throughput on ChEMBL-like data (scale {scale})");
    let ds = chembl_like(scale, 2016);
    println!(
        "  workload: {} compounds x {} targets, {} ratings (max target degree {})",
        ds.nrows(),
        ds.ncols(),
        ds.nnz(),
        ds.train_t.max_row_nnz()
    );

    let threads_axis = [1usize, 2, 4, 8, 16];
    let mut table = Table::new([
        "#threads",
        "work-stealing (TBB)",
        "static (OpenMP)",
        "vertex engine (GraphLab)",
        "WS busy",
        "static busy",
    ]);

    #[derive(serde::Serialize)]
    struct Row {
        threads: usize,
        ws_items_per_sec: f64,
        static_items_per_sec: f64,
        graphlab_items_per_sec: f64,
    }
    let mut artifact = Vec::new();

    for &threads in &threads_axis {
        let mut ips = Vec::new();
        let mut busy = Vec::new();
        for kind in EngineKind::all() {
            let spec = Bpmf::builder()
                .latent(16)
                .burnin(1) // warm-up iteration, excluded from the mean below
                .samples(iters)
                .seed(7)
                .kernel_threads(1)
                .engine(kind)
                .threads(threads)
                .build()
                .expect("valid spec");
            let runner = spec.runner();
            let data = TrainData::try_new(&ds.train, &ds.train_t, ds.global_mean, &ds.test)
                .expect("well-formed dataset");
            let mut trainer = make_trainer(&spec);
            let report = trainer
                .fit(&data, runner.as_ref(), &mut NoCallback)
                .expect("fit succeeds");
            ips.push(report.mean_items_per_sec());
            let measured = &report.iters[1..];
            let mean_busy = measured.iter().map(|s| s.busy_fraction).sum::<f64>()
                / measured.len().max(1) as f64;
            busy.push(mean_busy);
        }
        table.row([
            threads.to_string(),
            format!("{}/s", si(ips[0])),
            format!("{}/s", si(ips[1])),
            format!("{}/s", si(ips[2])),
            pct(busy[0]),
            pct(busy[1]),
        ]);
        artifact.push(Row {
            threads,
            ws_items_per_sec: ips[0],
            static_items_per_sec: ips[1],
            graphlab_items_per_sec: ips[2],
        });
    }

    table.print("Fig. 3 — items/second by runtime and thread count (higher is better)");
    println!("\nPaper shape check: work-stealing ≥ static ≥ GraphLab-like at every thread count.");
    bpmf_bench::write_json("fig3_multicore", &artifact);
}
