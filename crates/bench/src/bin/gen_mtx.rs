//! **gen_mtx** — write one of the synthetic datasets as a MatrixMarket
//! file, so shell harnesses (the CI daemon e2e step, ad-hoc CLI runs) can
//! produce training data without a Python/awk side channel.
//!
//! Usage: `cargo run --release -p bpmf-bench --bin gen_mtx -- \
//!   --out ratings.mtx [--kind chembl|movielens] [--scale 0.003] [--seed 31]`

use std::io::{BufWriter, Write as _};

fn main() {
    let mut out_path = None;
    let mut kind = "chembl".to_string();
    let mut scale = 0.003f64;
    let mut seed = 31u64;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} requires a value"))
        };
        match flag.as_str() {
            "--out" => out_path = Some(value("--out")),
            "--kind" => kind = value("--kind"),
            "--scale" => scale = value("--scale").parse().expect("--scale: number"),
            "--seed" => seed = value("--seed").parse().expect("--seed: integer"),
            other => panic!("unknown flag `{other}` (--out --kind --scale --seed)"),
        }
    }
    let out_path = out_path.expect("--out FILE is required");

    let ds = match kind.as_str() {
        "chembl" => bpmf_dataset::chembl_like(scale, seed),
        "movielens" => bpmf_dataset::movielens_like(scale, seed),
        other => panic!("unknown kind `{other}` (chembl | movielens)"),
    };
    // Stream straight to disk: buffering the whole serialization in RAM
    // defeats the point of generating out-of-core-sized matrices.
    let file = std::fs::File::create(&out_path)
        .unwrap_or_else(|e| panic!("cannot create {out_path}: {e}"));
    let mut w = BufWriter::new(file);
    bpmf_sparse::write_matrix_market(&mut w, &ds.train).expect("write matrix");
    w.flush().expect("flush matrix");
    eprintln!(
        "wrote {out_path}: {} x {}, {} ratings ({kind}, scale {scale}, seed {seed})",
        ds.nrows(),
        ds.ncols(),
        ds.train.nnz()
    );
}
