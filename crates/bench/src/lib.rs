//! Shared infrastructure for the figure/table harnesses.
//!
//! Each binary in this crate regenerates one table or figure of the paper
//! (see DESIGN.md §3 for the index). This library holds what they share:
//! aligned table printing, the deliberately naive baseline sampler standing
//! in for the authors' "initial Julia version", and host calibration of the
//! cluster simulator's compute constants.

pub mod calibrate;
pub mod naive;
pub mod table;

use std::io::Write;

/// Standard workload scales, overridable via environment so CI-sized boxes
/// and workstations can both run the harnesses.
pub fn env_scale(var: &str, default: f64) -> f64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Write a JSON result artifact under `target/bench-results/`.
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("target/bench-results");
    if std::fs::create_dir_all(dir).is_err() {
        return; // read-only target dir: artifacts are best-effort
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = writeln!(f, "{}", serde_json::to_string_pretty(value).unwrap());
        println!("  [artifact] {}", path.display());
    }
}
