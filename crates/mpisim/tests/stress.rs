//! Randomized stress tests of the message-passing runtime: conservation
//! (every byte sent is received), cross-pattern deadlock freedom, and
//! window/messaging interleaving.

use bpmf_mpisim::{Universe, RESERVED_TAG_BASE};

/// Deterministic per-rank pseudo-random schedule.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut x = seed ^ a.wrapping_mul(0x9E3779B97F4A7C15) ^ b.wrapping_mul(0xD1B54A32D192ED03);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51AFD7ED558CCD);
    x ^= x >> 33;
    x
}

#[test]
fn random_traffic_conserves_messages_and_bytes() {
    for seed in [1u64, 7, 42] {
        let n = 5;
        let stats = Universe::run(n, None, |comm| {
            let me = comm.rank();
            // Every rank sends a deterministic number of messages of
            // deterministic sizes to every other rank, then receives exactly
            // what the same formula says it should expect.
            for dst in 0..n {
                if dst == me {
                    continue;
                }
                let msgs = (mix(seed, me as u64, dst as u64) % 8) as usize;
                for m in 0..msgs {
                    let len = (mix(seed, (me * n + dst) as u64, m as u64) % 256) as usize;
                    comm.send(dst, 1, &vec![me as u8; len]);
                }
            }
            for src in 0..n {
                if src == me {
                    continue;
                }
                let msgs = (mix(seed, src as u64, me as u64) % 8) as usize;
                for m in 0..msgs {
                    let (from, data) = comm.recv(Some(src), 1);
                    assert_eq!(from, src);
                    let expect = (mix(seed, (src * n + me) as u64, m as u64) % 256) as usize;
                    assert_eq!(data.len(), expect, "message {m} from {src} has wrong size");
                    assert!(data.iter().all(|&b| b == src as u8));
                }
            }
            comm.stats()
        });
        let sent: u64 = stats.iter().map(|s| s.bytes_sent).sum();
        let recv: u64 = stats.iter().map(|s| s.bytes_recv).sum();
        assert_eq!(sent, recv, "seed {seed}: bytes not conserved");
        let msent: u64 = stats.iter().map(|s| s.msgs_sent).sum();
        let mrecv: u64 = stats.iter().map(|s| s.msgs_recv).sum();
        assert_eq!(msent, mrecv, "seed {seed}: messages not conserved");
    }
}

#[test]
fn interleaved_collectives_and_p2p_do_not_cross_talk() {
    let n = 4;
    let out = Universe::run(n, None, |comm| {
        let me = comm.rank();
        // P2P ring + allreduce + bcast, repeated; values must stay aligned.
        let mut acc = 0.0f64;
        for round in 0..10u64 {
            comm.send((me + 1) % n, 5, &[(round as u8).wrapping_add(me as u8)]);
            let mut buf = [me as f64 + round as f64];
            comm.allreduce_sum_f64(&mut buf);
            // Σ(r + round) over ranks = n*round + n(n-1)/2
            assert_eq!(buf[0], (n * (n - 1) / 2) as f64 + (n as u64 * round) as f64);
            let (_, data) = comm.recv(Some((me + n - 1) % n), 5);
            assert_eq!(
                data[0],
                (round as u8).wrapping_add(((me + n - 1) % n) as u8)
            );
            let mut b = [if me == 0 { round as f64 } else { -1.0 }];
            comm.bcast_f64s(0, &mut b);
            assert_eq!(b[0], round as f64);
            acc += buf[0] + b[0];
        }
        acc
    });
    // Every rank computed the identical accumulator.
    for v in &out[1..] {
        assert_eq!(v, &out[0]);
    }
}

#[test]
fn windows_and_messages_interleave_safely() {
    let n = 3;
    Universe::run(n, None, |comm| {
        let me = comm.rank();
        let win = comm.window_create(n * 4);
        // One-sided puts to the right neighbor while two-sided traffic flows
        // to the left neighbor. Spans are reused across rounds, so the
        // writer must wait for the reader's ack before overwriting (the
        // epoch requirement documented on the window module); without it
        // the reader can observe round r+1 data under round r's
        // notification.
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        for round in 0..20u64 {
            if round > 0 {
                let _ = comm.recv(Some(right), 10); // right read our previous span
            }
            comm.window_put_notify(win, right, me * 4, &[round as f64; 4], round);
            comm.send(left, 9, &round.to_le_bytes());
            let (_, bytes) = comm.recv(Some(right), 9);
            assert_eq!(u64::from_le_bytes(bytes[..8].try_into().unwrap()), round);
            let note = comm.window_wait_notification(win, left);
            assert_eq!(note, round);
            let mut row = [0.0f64; 4];
            comm.window_read_local(win, left * 4, &mut row);
            assert!(
                row.iter().all(|&v| v == round as f64),
                "round {round}: stale span {row:?}"
            );
            comm.send(left, 10, &[]); // ack: the writer may reuse the span
        }
    });
}

#[test]
fn rank_panic_aborts_blocked_receivers() {
    // Rank 1 dies before sending; without abort semantics rank 0 would wait
    // forever and the whole process would hang. The universe must wake rank
    // 0 and re-panic with the root cause.
    let err = std::panic::catch_unwind(|| {
        Universe::run(3, None, |comm| {
            match comm.rank() {
                0 => {
                    let _ = comm.recv(Some(1), 1); // never satisfied
                }
                1 => panic!("simulated rank failure"),
                _ => {
                    let _ = comm.recv(Some(1), 2); // also never satisfied
                }
            }
        });
    })
    .expect_err("universe must propagate the failure");
    let msg = err.downcast_ref::<String>().expect("formatted panic");
    assert!(msg.contains("rank 1 panicked"), "root cause lost: {msg}");
    assert!(
        msg.contains("simulated rank failure"),
        "root cause lost: {msg}"
    );
}

#[test]
fn rank_panic_poisons_barrier_waiters() {
    let err = std::panic::catch_unwind(|| {
        Universe::run(3, None, |comm| {
            if comm.rank() == 2 {
                panic!("dying before the barrier");
            }
            comm.barrier(); // rank 2 never arrives
        });
    })
    .expect_err("universe must propagate the failure");
    let msg = err.downcast_ref::<String>().expect("formatted panic");
    assert!(msg.contains("rank 2 panicked"), "root cause lost: {msg}");
}

#[test]
fn explicit_abort_unblocks_window_waiters() {
    let err = std::panic::catch_unwind(|| {
        Universe::run(2, None, |comm| {
            let win = comm.window_create(4);
            if comm.rank() == 0 {
                comm.abort("unrecoverable input");
            }
            // Rank 1 waits for a notification rank 0 will never put.
            let _ = comm.window_wait_notification(win, 0);
        });
    })
    .expect_err("universe must propagate the abort");
    let msg = err.downcast_ref::<String>().expect("formatted panic");
    assert!(msg.contains("rank 0 panicked"), "{msg}");
    assert!(msg.contains("unrecoverable input"), "{msg}");
}

#[test]
fn reserved_tag_space_is_not_reachable_from_user_traffic() {
    // User tags stop below the collective range; a full mesh of user traffic
    // plus collectives must not interfere.
    let n = 3;
    Universe::run(n, None, |comm| {
        let me = comm.rank();
        let max_user_tag = RESERVED_TAG_BASE - 1;
        for dst in 0..n {
            if dst != me {
                comm.send(dst, max_user_tag, &[me as u8]);
            }
        }
        let mut sum = [me as f64];
        comm.allreduce_sum_f64(&mut sum);
        assert_eq!(sum[0], 3.0);
        for src in 0..n {
            if src != me {
                let (_, d) = comm.recv(Some(src), max_user_tag);
                assert_eq!(d[0], src as u8);
            }
        }
    });
}

#[test]
fn abort_during_collective_unblocks_all_ranks() {
    // Rank 2 dies while ranks 0 and 1 are already inside an allreduce
    // (waiting for rank 2's contribution). The abort must reach them
    // through the blocked recv inside the collective.
    let err = std::panic::catch_unwind(|| {
        Universe::run(3, None, |comm| {
            if comm.rank() == 2 {
                panic!("rank loss mid-collective");
            }
            let mut buf = [comm.rank() as f64];
            comm.allreduce_sum_f64(&mut buf);
            buf[0]
        });
    })
    .expect_err("universe must propagate the failure");
    let msg = err.downcast_ref::<String>().expect("formatted panic");
    assert!(msg.contains("rank 2 panicked"), "root cause lost: {msg}");
    assert!(
        msg.contains("rank loss mid-collective"),
        "root cause lost: {msg}"
    );
}
