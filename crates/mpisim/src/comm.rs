//! Per-rank communicator: point-to-point, collectives, and accounting.

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use bytes::Bytes;

use crate::universe::{Message, UniverseShared};
use crate::wire;
use crate::{Tag, RESERVED_TAG_BASE};

const TAG_ALLREDUCE_CONTRIB: Tag = RESERVED_TAG_BASE;
const TAG_ALLREDUCE_RESULT: Tag = RESERVED_TAG_BASE + 1;
const TAG_BCAST: Tag = RESERVED_TAG_BASE + 2;
const TAG_GATHER: Tag = RESERVED_TAG_BASE + 3;
const TAG_ALLREDUCE_MAX_CONTRIB: Tag = RESERVED_TAG_BASE + 4;
const TAG_ALLREDUCE_MAX_RESULT: Tag = RESERVED_TAG_BASE + 5;

/// Message counters for one rank.
#[derive(Clone, Copy, Debug, Default)]
pub struct CommStats {
    /// Payload bytes sent (collectives included).
    pub bytes_sent: u64,
    /// Messages sent.
    pub msgs_sent: u64,
    /// Payload bytes received.
    pub bytes_recv: u64,
    /// Messages received.
    pub msgs_recv: u64,
}

/// The compute / communicate / both split of the paper's Fig. 5.
///
/// * `comm` — wall time spent *blocked* inside communication calls;
/// * `both` — wall time inside [`Comm::compute`] sections while this rank
///   had communication in flight (unconsumed outgoing messages or pending
///   incoming ones): computation that successfully overlapped communication;
/// * `compute` — [`Comm::compute`] time with no communication in flight.
#[derive(Clone, Copy, Debug, Default)]
pub struct TimeStats {
    /// Pure computation time.
    pub compute: Duration,
    /// Computation overlapped with in-flight communication.
    pub both: Duration,
    /// Time blocked in communication calls.
    pub comm: Duration,
}

impl TimeStats {
    /// Fractions `(compute, both, comm)` of the accounted total.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let total = self.compute.as_secs_f64() + self.both.as_secs_f64() + self.comm.as_secs_f64();
        if total <= 0.0 {
            return (1.0, 0.0, 0.0);
        }
        (
            self.compute.as_secs_f64() / total,
            self.both.as_secs_f64() / total,
            self.comm.as_secs_f64() / total,
        )
    }
}

/// A completed buffered-send handle.
///
/// Sends in this runtime are buffered (the payload is copied into the
/// mailbox on the spot), so like a small-message `MPI_Isend` the request is
/// complete as soon as it is created; `wait` exists for call-site fidelity
/// with the MPI code the paper describes.
#[derive(Debug)]
#[must_use = "hold the request until the communication epoch is over"]
pub struct SendRequest(());

impl SendRequest {
    /// Complete immediately (buffered semantics).
    pub fn wait(self) {}

    /// Always true (buffered semantics).
    pub fn test(&self) -> bool {
        true
    }
}

/// One rank's endpoint into the universe. Mirrors the MPI surface the
/// paper's implementation uses.
pub struct Comm<'a> {
    rank: usize,
    shared: &'a UniverseShared,
    stats: CommStats,
    times: TimeStats,
}

impl<'a> Comm<'a> {
    pub(crate) fn new(rank: usize, shared: &'a UniverseShared) -> Self {
        Comm {
            rank,
            shared,
            stats: CommStats::default(),
            times: TimeStats::default(),
        }
    }

    /// This rank's id.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    #[inline]
    pub fn size(&self) -> usize {
        self.shared.nranks
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Buffered send (completes immediately, like `MPI_Send` with a small
    /// message or `MPI_Isend` + internal buffering).
    pub fn send(&mut self, dst: usize, tag: Tag, payload: &[u8]) {
        assert!(
            tag < RESERVED_TAG_BASE,
            "tag {tag} is reserved for collectives"
        );
        self.send_raw(dst, tag, Bytes::copy_from_slice(payload));
    }

    /// Buffered send of an owned payload (no copy).
    pub fn send_bytes(&mut self, dst: usize, tag: Tag, payload: Bytes) {
        assert!(
            tag < RESERVED_TAG_BASE,
            "tag {tag} is reserved for collectives"
        );
        self.send_raw(dst, tag, payload);
    }

    /// Nonblocking send; the returned request is already complete (buffered
    /// semantics — the runtime owns a copy of the payload).
    pub fn isend(&mut self, dst: usize, tag: Tag, payload: &[u8]) -> SendRequest {
        self.send(dst, tag, payload);
        SendRequest(())
    }

    fn send_raw(&mut self, dst: usize, tag: Tag, payload: Bytes) {
        assert!(dst < self.size(), "destination rank {dst} out of range");
        let len = payload.len();
        let ready_at = self.shared.net.map(|m| Instant::now() + m.delay(len));
        let msg = Message {
            src: self.rank as u32,
            tag,
            ready_at,
            payload,
        };
        self.shared.inflight_from[self.rank].fetch_add(1, Ordering::AcqRel);
        {
            let mailbox = &self.shared.mailboxes[dst];
            let mut q = mailbox.queue.lock();
            q.push_back(msg);
            mailbox.arrived.notify_all();
        }
        self.stats.bytes_sent += len as u64;
        self.stats.msgs_sent += 1;
    }

    /// Blocking receive matched on `(src, tag)`; `src = None` accepts any
    /// source. Matching is FIFO per source/tag pair (MPI non-overtaking:
    /// an earlier matching message is always delivered first, even if a
    /// later one "arrived" — finished its simulated transfer — sooner).
    pub fn recv(&mut self, src: Option<usize>, tag: Tag) -> (usize, Bytes) {
        let t0 = Instant::now();
        let got = self
            .recv_inner(src, tag, true)
            .expect("blocking recv returned none");
        self.times.comm += t0.elapsed();
        got
    }

    /// Nonblocking receive (`MPI_Iprobe` + `MPI_Recv`): returns a matching
    /// *ready* message if its delivery respects non-overtaking order.
    pub fn try_recv(&mut self, src: Option<usize>, tag: Tag) -> Option<(usize, Bytes)> {
        let t0 = Instant::now();
        let got = self.recv_inner(src, tag, false);
        self.times.comm += t0.elapsed();
        got
    }

    fn recv_inner(&mut self, src: Option<usize>, tag: Tag, block: bool) -> Option<(usize, Bytes)> {
        let mailbox = &self.shared.mailboxes[self.rank];
        let mut q = mailbox.queue.lock();
        loop {
            self.shared.check_abort();
            let pos = q
                .iter()
                .position(|m| m.tag == tag && src.is_none_or(|s| s as u32 == m.src));
            match pos {
                Some(i) => {
                    if let Some(t) = q[i].ready_at {
                        let now = Instant::now();
                        if t > now {
                            if !block {
                                return None;
                            }
                            let _ = mailbox.arrived.wait_for(&mut q, t - now);
                            continue;
                        }
                    }
                    let msg = q.remove(i).expect("position was just found");
                    self.shared.inflight_from[msg.src as usize].fetch_sub(1, Ordering::AcqRel);
                    self.stats.bytes_recv += msg.payload.len() as u64;
                    self.stats.msgs_recv += 1;
                    return Some((msg.src as usize, msg.payload));
                }
                None => {
                    if !block {
                        return None;
                    }
                    mailbox.arrived.wait(&mut q);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Collectives
    // ------------------------------------------------------------------

    /// Synchronize all ranks.
    pub fn barrier(&mut self) {
        let t0 = Instant::now();
        self.shared.barrier.wait();
        self.times.comm += t0.elapsed();
    }

    /// `MPI_Abort`: poison the universe so every rank blocked in a
    /// communication call fails fast, then panic on this rank. Use when a
    /// rank detects an unrecoverable error and peers may be blocked waiting
    /// for messages this rank will never send.
    pub fn abort(&mut self, reason: &str) -> ! {
        self.shared.trigger_abort(self.rank);
        panic!("rank {} called abort: {reason}", self.rank);
    }

    /// Element-wise sum across ranks; every rank ends with the total.
    ///
    /// Reduction happens at rank 0 in rank order, so the result is
    /// bit-identical on every rank and across runs — a requirement for the
    /// replicated hyperparameter sampling in distributed BPMF.
    pub fn allreduce_sum_f64(&mut self, buf: &mut [f64]) {
        let n = self.size();
        if n == 1 {
            return;
        }
        if self.rank == 0 {
            let mut incoming = vec![Bytes::new(); n - 1];
            for _ in 1..n {
                let (src, bytes) = self.recv(None, TAG_ALLREDUCE_CONTRIB);
                incoming[src - 1] = bytes;
            }
            // Rank order for deterministic floating-point reduction.
            for bytes in incoming {
                assert_eq!(bytes.len(), buf.len() * 8, "allreduce length mismatch");
                for (i, c) in bytes.chunks_exact(8).enumerate() {
                    buf[i] += f64::from_le_bytes(c.try_into().unwrap());
                }
            }
            let result = wire::f64s_to_bytes(buf);
            for dst in 1..n {
                self.send_raw(dst, TAG_ALLREDUCE_RESULT, result.clone());
            }
        } else {
            let contrib = wire::f64s_to_bytes(buf);
            self.send_raw(0, TAG_ALLREDUCE_CONTRIB, contrib);
            let (_, result) = self.recv(Some(0), TAG_ALLREDUCE_RESULT);
            for (v, c) in buf.iter_mut().zip(result.chunks_exact(8)) {
                *v = f64::from_le_bytes(c.try_into().unwrap());
            }
        }
    }

    /// Element-wise max across ranks; every rank ends with the maxima.
    pub fn allreduce_max_f64(&mut self, buf: &mut [f64]) {
        let n = self.size();
        if n == 1 {
            return;
        }
        if self.rank == 0 {
            for _ in 1..n {
                let (_, bytes) = self.recv(None, TAG_ALLREDUCE_MAX_CONTRIB);
                assert_eq!(bytes.len(), buf.len() * 8, "allreduce length mismatch");
                for (i, c) in bytes.chunks_exact(8).enumerate() {
                    buf[i] = buf[i].max(f64::from_le_bytes(c.try_into().unwrap()));
                }
            }
            let result = wire::f64s_to_bytes(buf);
            for dst in 1..n {
                self.send_raw(dst, TAG_ALLREDUCE_MAX_RESULT, result.clone());
            }
        } else {
            let contrib = wire::f64s_to_bytes(buf);
            self.send_raw(0, TAG_ALLREDUCE_MAX_CONTRIB, contrib);
            let (_, result) = self.recv(Some(0), TAG_ALLREDUCE_MAX_RESULT);
            for (v, c) in buf.iter_mut().zip(result.chunks_exact(8)) {
                *v = f64::from_le_bytes(c.try_into().unwrap());
            }
        }
    }

    /// Sum a single counter across ranks.
    pub fn allreduce_sum_u64(&mut self, value: u64) -> u64 {
        let mut buf = [value as f64];
        // Exact for counters below 2^53, which covers every count BPMF ships.
        self.allreduce_sum_f64(&mut buf);
        buf[0].round() as u64
    }

    /// Broadcast `buf` from `root` to every rank.
    pub fn bcast_f64s(&mut self, root: usize, buf: &mut [f64]) {
        let n = self.size();
        if n == 1 {
            return;
        }
        if self.rank == root {
            let payload = wire::f64s_to_bytes(buf);
            for dst in 0..n {
                if dst != root {
                    self.send_raw(dst, TAG_BCAST, payload.clone());
                }
            }
        } else {
            let (_, payload) = self.recv(Some(root), TAG_BCAST);
            assert_eq!(payload.len(), buf.len() * 8, "bcast length mismatch");
            for (v, c) in buf.iter_mut().zip(payload.chunks_exact(8)) {
                *v = f64::from_le_bytes(c.try_into().unwrap());
            }
        }
    }

    /// Gather every rank's payload at `root` (rank order). Returns `Some`
    /// on the root, `None` elsewhere.
    pub fn gather_bytes(&mut self, root: usize, payload: &[u8]) -> Option<Vec<Bytes>> {
        let n = self.size();
        if self.rank == root {
            let mut out = vec![Bytes::new(); n];
            out[root] = Bytes::copy_from_slice(payload);
            for _ in 0..n - 1 {
                let (src, bytes) = self.recv(None, TAG_GATHER);
                out[src] = bytes;
            }
            Some(out)
        } else {
            self.send_raw(root, TAG_GATHER, Bytes::copy_from_slice(payload));
            None
        }
    }

    // ------------------------------------------------------------------
    // Accounting
    // ------------------------------------------------------------------

    /// Run a computation section, attributing its wall time to `compute` or
    /// `both` depending on whether communication was in flight (Fig. 5's
    /// three-way split; blocked communication time accumulates separately
    /// in the comm calls themselves).
    pub fn compute<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let active_before = self.comm_in_flight();
        let t0 = Instant::now();
        let r = f();
        let dt = t0.elapsed();
        if active_before || self.comm_in_flight() {
            self.times.both += dt;
        } else {
            self.times.compute += dt;
        }
        r
    }

    /// True when this rank has unconsumed outgoing messages or pending
    /// incoming ones.
    pub fn comm_in_flight(&self) -> bool {
        if self.shared.inflight_from[self.rank].load(Ordering::Acquire) > 0 {
            return true;
        }
        !self.shared.mailboxes[self.rank].queue.lock().is_empty()
    }

    /// Message counters so far.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Time split so far.
    pub fn time_stats(&self) -> TimeStats {
        self.times
    }

    /// Zero all counters and timers (e.g. after warm-up iterations).
    pub fn reset_accounting(&mut self) {
        self.stats = CommStats::default();
        self.times = TimeStats::default();
    }

    // Internal plumbing shared with the one-sided window module.

    pub(crate) fn shared(&self) -> &UniverseShared {
        self.shared
    }

    pub(crate) fn net_model(&self) -> Option<crate::NetModel> {
        self.shared.net
    }

    pub(crate) fn account_put(&mut self, bytes: u64, dur: std::time::Duration) {
        self.stats.bytes_sent += bytes;
        self.stats.msgs_sent += 1;
        self.times.comm += dur;
    }

    pub(crate) fn account_comm_time(&mut self, dur: std::time::Duration) {
        self.times.comm += dur;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;
    use crate::NetModel;

    #[test]
    fn ring_pass_accumulates() {
        let n = 5;
        let out = Universe::run(n, None, |comm| {
            let r = comm.rank();
            let next = (r + 1) % n;
            let prev = (r + n - 1) % n;
            comm.send(next, 1, &[r as u8]);
            let (src, data) = comm.recv(Some(prev), 1);
            (src, data[0] as usize)
        });
        for (r, &(src, val)) in out.iter().enumerate() {
            assert_eq!(src, (r + n - 1) % n);
            assert_eq!(val, src);
        }
    }

    #[test]
    fn tag_matching_selects_correct_stream() {
        Universe::run(2, None, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 10, b"ten");
                comm.send(1, 20, b"twenty");
            } else {
                // Receive in reverse tag order: matching must pick by tag.
                let (_, twenty) = comm.recv(Some(0), 20);
                let (_, ten) = comm.recv(Some(0), 10);
                assert_eq!(&twenty[..], b"twenty");
                assert_eq!(&ten[..], b"ten");
            }
        });
    }

    #[test]
    fn non_overtaking_holds_even_when_later_message_is_ready_first() {
        // Big message sent first (slow transfer), tiny message second (fast).
        // Receiver must still get the big one first.
        let net = NetModel::new(Duration::from_millis(1), 1_000_000.0); // 1 MB/s
        Universe::run(2, Some(net), |comm| {
            if comm.rank() == 0 {
                let big = vec![0xAAu8; 64 * 1024]; // ~64 ms transfer
                comm.send(1, 5, &big);
                comm.send(1, 5, b"small");
            } else {
                let (_, first) = comm.recv(Some(0), 5);
                let (_, second) = comm.recv(Some(0), 5);
                assert_eq!(first.len(), 64 * 1024);
                assert_eq!(&second[..], b"small");
            }
        });
    }

    #[test]
    fn try_recv_polls_without_blocking() {
        Universe::run(2, None, |comm| {
            if comm.rank() == 0 {
                assert!(comm.try_recv(None, 3).is_none());
                comm.barrier(); // let rank 1 send
                comm.barrier(); // wait until the send happened
                let mut got = None;
                while got.is_none() {
                    got = comm.try_recv(Some(1), 3);
                }
                assert_eq!(&got.unwrap().1[..], b"hello");
            } else {
                comm.barrier();
                comm.send(0, 3, b"hello");
                comm.barrier();
            }
        });
    }

    #[test]
    fn network_model_delays_delivery() {
        let latency = Duration::from_millis(25);
        let out = Universe::run(2, Some(NetModel::new(latency, 1e12)), |comm| {
            if comm.rank() == 0 {
                comm.barrier();
                comm.send(1, 1, b"x");
                Duration::ZERO
            } else {
                comm.barrier();
                let t0 = Instant::now();
                let _ = comm.recv(Some(0), 1);
                t0.elapsed()
            }
        });
        assert!(
            out[1] >= latency - Duration::from_millis(2),
            "elapsed = {:?}",
            out[1]
        );
    }

    #[test]
    fn allreduce_sums_identically_everywhere() {
        let n = 4;
        let out = Universe::run(n, None, |comm| {
            let r = comm.rank() as f64;
            let mut buf = vec![r + 1.0, 2.0 * r, -r];
            comm.allreduce_sum_f64(&mut buf);
            buf
        });
        // Σ(r+1) = 10, Σ2r = 12, Σ-r = -6
        for buf in &out {
            assert_eq!(buf, &vec![10.0, 12.0, -6.0]);
        }
    }

    #[test]
    fn allreduce_u64_counts() {
        let out = Universe::run(3, None, |comm| {
            comm.allreduce_sum_u64(comm.rank() as u64 + 1)
        });
        assert_eq!(out, vec![6, 6, 6]);
    }

    #[test]
    fn bcast_propagates_root_data() {
        let out = Universe::run(4, None, |comm| {
            let mut buf = if comm.rank() == 2 {
                vec![3.5, -1.0]
            } else {
                vec![0.0, 0.0]
            };
            comm.bcast_f64s(2, &mut buf);
            buf
        });
        for buf in &out {
            assert_eq!(buf, &vec![3.5, -1.0]);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = Universe::run(3, None, |comm| {
            let payload = vec![comm.rank() as u8; comm.rank() + 1];
            comm.gather_bytes(0, &payload)
        });
        let gathered = out[0].as_ref().unwrap();
        assert_eq!(gathered.len(), 3);
        for (r, b) in gathered.iter().enumerate() {
            assert_eq!(b.len(), r + 1);
            assert!(b.iter().all(|&x| x == r as u8));
        }
        assert!(out[1].is_none() && out[2].is_none());
    }

    #[test]
    fn compute_accounting_splits_pure_and_overlapped() {
        let out = Universe::run(2, None, |comm| {
            if comm.rank() == 0 {
                // Phase 1: compute with a message in flight → "both".
                comm.send(1, 9, b"payload");
                comm.compute(|| std::thread::sleep(Duration::from_millis(10)));
                comm.barrier(); // rank 1 receives after this
                comm.barrier(); // message consumed by now
                                // Phase 2: no communication in flight → "compute".
                comm.compute(|| std::thread::sleep(Duration::from_millis(10)));
                comm.time_stats()
            } else {
                comm.barrier();
                let _ = comm.recv(Some(0), 9);
                comm.barrier();
                comm.time_stats()
            }
        });
        let t0 = out[0];
        assert!(t0.both >= Duration::from_millis(9), "both = {:?}", t0.both);
        assert!(
            t0.compute >= Duration::from_millis(9),
            "compute = {:?}",
            t0.compute
        );
        // Rank 1 blocked in recv/barrier → comm time accumulated.
        assert!(out[1].comm > Duration::ZERO);
    }

    #[test]
    fn message_counters_track_traffic() {
        let out = Universe::run(2, None, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[0u8; 100]);
                comm.send(1, 1, &[0u8; 50]);
            } else {
                let _ = comm.recv(Some(0), 1);
                let _ = comm.recv(Some(0), 1);
            }
            comm.stats()
        });
        assert_eq!(out[0].msgs_sent, 2);
        assert_eq!(out[0].bytes_sent, 150);
        assert_eq!(out[1].msgs_recv, 2);
        assert_eq!(out[1].bytes_recv, 150);
    }

    #[test]
    fn isend_request_completes() {
        Universe::run(2, None, |comm| {
            if comm.rank() == 0 {
                let req = comm.isend(1, 4, b"async");
                assert!(req.test());
                req.wait();
            } else {
                let (_, data) = comm.recv(Some(0), 4);
                assert_eq!(&data[..], b"async");
            }
        });
    }

    #[test]
    #[should_panic(expected = "reserved for collectives")]
    fn reserved_tags_are_rejected() {
        Universe::run(1, None, |comm| {
            comm.send(0, RESERVED_TAG_BASE, b"nope");
        });
    }
}
