//! Latency/bandwidth model for simulated message transfer.

use std::time::Duration;

/// A simple alpha–beta network model: a message of `n` bytes becomes visible
/// to its receiver `latency + n * seconds_per_byte` after it is sent.
///
/// With `None` as the model, delivery is immediate (shared-memory speed) —
/// right for correctness tests. With a model, the mailbox holds messages
/// back until their arrival time, which is what lets the Fig. 5 harness
/// observe genuine compute/communication overlap behaviour in process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetModel {
    /// Per-message latency (the MPI software + wire α term).
    pub latency: Duration,
    /// Transfer time per payload byte (1 / bandwidth, the β term).
    pub seconds_per_byte: f64,
}

impl NetModel {
    /// Model with the given α (latency) and bandwidth in bytes/second.
    pub fn new(latency: Duration, bandwidth_bytes_per_sec: f64) -> Self {
        assert!(bandwidth_bytes_per_sec > 0.0, "bandwidth must be positive");
        NetModel {
            latency,
            seconds_per_byte: 1.0 / bandwidth_bytes_per_sec,
        }
    }

    /// Transfer delay for an `n`-byte payload.
    pub fn delay(&self, n: usize) -> Duration {
        self.latency + Duration::from_secs_f64(self.seconds_per_byte * n as f64)
    }

    /// A model roughly shaped like a commodity cluster interconnect scaled
    /// for in-process testing: 20 µs latency, 1 GiB/s bandwidth.
    pub fn test_cluster() -> Self {
        NetModel::new(Duration::from_micros(20), 1024.0 * 1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_scales_with_size() {
        let net = NetModel::new(Duration::from_micros(10), 1_000_000.0);
        let small = net.delay(0);
        let big = net.delay(1_000_000);
        assert_eq!(small, Duration::from_micros(10));
        assert!(big >= Duration::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = NetModel::new(Duration::ZERO, 0.0);
    }
}
