//! The rank universe: shared mailboxes, barrier, abort handling, and the
//! scoped runner.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use crate::comm::Comm;
use crate::net::NetModel;
use crate::Tag;

pub(crate) struct Message {
    pub src: u32,
    pub tag: Tag,
    /// Earliest instant the receiver may observe this message (network
    /// model); `None` = immediately visible.
    pub ready_at: Option<Instant>,
    pub payload: Bytes,
}

pub(crate) struct Mailbox {
    pub queue: Mutex<VecDeque<Message>>,
    pub arrived: Condvar,
}

pub(crate) struct CentralBarrier {
    state: Mutex<(usize, u64)>, // (waiting count, generation)
    cv: Condvar,
    n: usize,
    poisoned: AtomicBool,
}

impl CentralBarrier {
    fn new(n: usize) -> Self {
        CentralBarrier {
            state: Mutex::new((0, 0)),
            cv: Condvar::new(),
            n,
            poisoned: AtomicBool::new(false),
        }
    }

    /// Wake every waiter; subsequent and in-progress waits panic. Called when
    /// the universe aborts — a dead rank will never arrive, so letting the
    /// survivors sleep would hang the whole run.
    fn poison(&self) {
        let _guard = self.state.lock();
        self.poisoned.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }

    pub fn wait(&self) {
        let mut s = self.state.lock();
        assert!(
            !self.poisoned.load(Ordering::SeqCst),
            "barrier poisoned: universe aborted"
        );
        let gen = s.1;
        s.0 += 1;
        if s.0 == self.n {
            s.0 = 0;
            s.1 += 1;
            self.cv.notify_all();
        } else {
            while s.1 == gen {
                self.cv.wait(&mut s);
                assert!(
                    !self.poisoned.load(Ordering::SeqCst),
                    "barrier poisoned: universe aborted"
                );
            }
        }
    }
}

pub(crate) struct UniverseShared {
    pub nranks: usize,
    pub mailboxes: Vec<Mailbox>,
    pub barrier: CentralBarrier,
    pub net: Option<NetModel>,
    /// Messages sent by rank `r` that no receiver has consumed yet. A rank
    /// whose counter is non-zero has communication "in flight" — the
    /// predicate behind the compute/both split of Fig. 5.
    pub inflight_from: Vec<AtomicUsize>,
    /// One-sided windows (GASPI-style), created collectively.
    pub window_registry: Mutex<crate::window::WindowRegistry>,
    /// Set when some rank panicked (or called [`Comm::abort`]); blocked
    /// communication calls on every other rank observe it and panic instead
    /// of waiting for a message that will never come.
    pub aborted: AtomicBool,
    pub abort_rank: AtomicUsize,
}

impl UniverseShared {
    /// `MPI_Abort` semantics: poison the universe so every blocked or future
    /// communication call fails fast, then wake all sleepers. Idempotent —
    /// the first caller wins and is recorded as the aborting rank.
    pub(crate) fn trigger_abort(&self, rank: usize) {
        if self.aborted.swap(true, Ordering::SeqCst) {
            return;
        }
        self.abort_rank.store(rank, Ordering::SeqCst);
        // Wake receivers blocked on their mailbox condvars. Taking each
        // queue lock orders the wakeup after the flag store, so a receiver
        // either sees the flag at its loop head or is parked and notified.
        for mailbox in &self.mailboxes {
            let _guard = mailbox.queue.lock();
            mailbox.arrived.notify_all();
        }
        self.barrier.poison();
    }

    /// Panic if the universe has been aborted. Every blocking-loop iteration
    /// in the runtime calls this.
    pub(crate) fn check_abort(&self) {
        if self.aborted.load(Ordering::SeqCst) {
            panic!(
                "universe aborted by rank {}",
                self.abort_rank.load(Ordering::SeqCst)
            );
        }
    }
}

/// Entry point of the message-passing runtime: spawns `nranks` rank threads
/// and runs the same program on each, MPI-style (SPMD).
pub struct Universe;

impl Universe {
    /// Run `f` as rank `0..nranks`, returning each rank's result in rank
    /// order. `net = None` delivers messages immediately; a [`NetModel`]
    /// delays visibility per message size.
    ///
    /// If any rank panics the universe is aborted (`MPI_Abort` semantics):
    /// every rank blocked in a communication call is woken and fails, all
    /// threads are joined, and this function re-panics with the *original*
    /// rank's panic message — not the secondary "universe aborted" echoes.
    pub fn run<T, F>(nranks: usize, net: Option<NetModel>, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Sync,
    {
        assert!(nranks > 0, "need at least one rank");
        let shared = UniverseShared {
            nranks,
            mailboxes: (0..nranks)
                .map(|_| Mailbox {
                    queue: Mutex::new(VecDeque::new()),
                    arrived: Condvar::new(),
                })
                .collect(),
            barrier: CentralBarrier::new(nranks),
            net,
            inflight_from: (0..nranks).map(|_| AtomicUsize::new(0)).collect(),
            window_registry: Mutex::new(crate::window::WindowRegistry::new(nranks)),
            aborted: AtomicBool::new(false),
            abort_rank: AtomicUsize::new(usize::MAX),
        };
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..nranks)
                .map(|rank| {
                    let shared = &shared;
                    let f = &f;
                    std::thread::Builder::new()
                        .name(format!("bpmf-rank-{rank}"))
                        .spawn_scoped(scope, move || {
                            let result =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    let mut comm = Comm::new(rank, shared);
                                    f(&mut comm)
                                }));
                            if result.is_err() {
                                shared.trigger_abort(rank);
                            }
                            result
                        })
                        .expect("failed to spawn rank thread")
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread itself cannot panic"))
                .collect::<Vec<_>>()
        });
        let panic_message = |e: &(dyn std::any::Any + Send)| -> String {
            if let Some(s) = e.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = e.downcast_ref::<String>() {
                s.clone()
            } else {
                "opaque panic payload".to_string()
            }
        };
        // Report the root cause: prefer a panic that is not an abort echo.
        let mut first_failure: Option<(usize, String)> = None;
        for (rank, r) in results.iter().enumerate() {
            if let Err(e) = r {
                let msg = panic_message(e.as_ref());
                let is_echo = msg.contains("universe aborted") || msg.contains("barrier poisoned");
                match &first_failure {
                    None => first_failure = Some((rank, msg)),
                    Some((_, prev)) => {
                        let prev_is_echo =
                            prev.contains("universe aborted") || prev.contains("barrier poisoned");
                        if prev_is_echo && !is_echo {
                            first_failure = Some((rank, msg));
                        }
                    }
                }
            }
        }
        if let Some((rank, msg)) = first_failure {
            panic!("rank {rank} panicked: {msg}");
        }
        results
            .into_iter()
            .map(|r| r.expect("failures handled above"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_ids_and_sizes() {
        let out = Universe::run(4, None, |comm| (comm.rank(), comm.size()));
        assert_eq!(out, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn barrier_separates_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let phase1_done = AtomicUsize::new(0);
        let violations = AtomicUsize::new(0);
        Universe::run(4, None, |comm| {
            phase1_done.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            if phase1_done.load(Ordering::SeqCst) != 4 {
                violations.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(violations.load(std::sync::atomic::Ordering::SeqCst), 0);
    }

    #[test]
    fn single_rank_universe_works() {
        let out = Universe::run(1, None, |comm| {
            comm.barrier();
            comm.rank()
        });
        assert_eq!(out, vec![0]);
    }
}
