//! Payload encoding helpers (little-endian `f64`/`u64` slices).
//!
//! The distributed BPMF driver ships factor rows and sufficient statistics
//! as flat `f64` buffers; these helpers are the only (de)serialization it
//! needs, with explicit little-endian framing so payloads are
//! platform-independent.

use bytes::{BufMut, Bytes, BytesMut};

/// Encode an `f64` slice.
pub fn f64s_to_bytes(data: &[f64]) -> Bytes {
    let mut buf = BytesMut::with_capacity(data.len() * 8);
    for &v in data {
        buf.put_f64_le(v);
    }
    buf.freeze()
}

/// Decode an `f64` payload. Panics if the length is not a multiple of 8.
pub fn bytes_to_f64s(bytes: &[u8]) -> Vec<f64> {
    assert_eq!(bytes.len() % 8, 0, "payload is not a whole number of f64s");
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Decode an `f64` payload into an existing buffer (no allocation).
pub fn bytes_to_f64s_into(bytes: &[u8], out: &mut Vec<f64>) {
    assert_eq!(bytes.len() % 8, 0, "payload is not a whole number of f64s");
    out.clear();
    out.extend(
        bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap())),
    );
}

/// Encode a `u64` slice.
pub fn u64s_to_bytes(data: &[u64]) -> Bytes {
    let mut buf = BytesMut::with_capacity(data.len() * 8);
    for &v in data {
        buf.put_u64_le(v);
    }
    buf.freeze()
}

/// Decode a `u64` payload. Panics if the length is not a multiple of 8.
pub fn bytes_to_u64s(bytes: &[u8]) -> Vec<u64> {
    assert_eq!(bytes.len() % 8, 0, "payload is not a whole number of u64s");
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        let data = vec![0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, 42.42];
        let bytes = f64s_to_bytes(&data);
        assert_eq!(bytes.len(), data.len() * 8);
        assert_eq!(bytes_to_f64s(&bytes), data);
    }

    #[test]
    fn f64_roundtrip_into_buffer() {
        let data = vec![1.0, 2.0, 3.0];
        let mut out = vec![9.9; 17];
        bytes_to_f64s_into(&f64s_to_bytes(&data), &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn u64_roundtrip() {
        let data = vec![0u64, 1, u64::MAX, 0xDEADBEEF];
        assert_eq!(bytes_to_u64s(&u64s_to_bytes(&data)), data);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn ragged_payload_panics() {
        let _ = bytes_to_f64s(&[1, 2, 3]);
    }
}
