#![warn(missing_docs)]

//! In-process MPI-style message passing (paper §IV).
//!
//! The paper's distributed BPMF is written against MPI 3.0: asynchronous
//! `MPI_Isend`/`MPI_Irecv`, tag matching, collectives, and hybrid
//! threads-inside-ranks. Real clusters being unavailable here, this crate
//! reproduces that programming model *in process*: every rank is an OS
//! thread, every message is a real buffer handed through a mailbox with MPI
//! matching semantics (FIFO per source/tag pair, no overtaking), and an
//! optional [`NetModel`] imposes latency + bandwidth delays so communication
//! costs behave like a network instead of a memcpy.
//!
//! What transfers to a real MPI build: the entire distributed driver in
//! `bpmf::distributed` — partitioning, send buffering, phase protocols,
//! overlap accounting — is written against [`Comm`], whose surface
//! deliberately mirrors the MPI calls the paper names (`send`/`isend`,
//! blocking and polling receive, barrier, allreduce, gather).
//!
//! # Example
//!
//! ```
//! use bpmf_mpisim::Universe;
//!
//! // Two ranks exchange a ping-pong.
//! let results = Universe::run(2, None, |comm| {
//!     if comm.rank() == 0 {
//!         comm.send(1, 7, b"ping");
//!         let (_, reply) = comm.recv(Some(1), 8);
//!         reply.len()
//!     } else {
//!         let (_, msg) = comm.recv(Some(0), 7);
//!         comm.send(0, 8, b"pong!");
//!         msg.len()
//!     }
//! });
//! assert_eq!(results, vec![5, 4]);
//! ```

mod comm;
mod net;
mod universe;
mod window;
pub mod wire;

pub use comm::{Comm, CommStats, TimeStats};
pub use net::NetModel;
pub use universe::Universe;
pub use window::WindowHandle;

/// Message tag type (MPI uses `int`; tags at `RESERVED_TAG_BASE` and above
/// are reserved for collectives).
pub type Tag = u32;

/// First tag reserved for internal collective operations.
pub const RESERVED_TAG_BASE: Tag = u32::MAX - 16;
