//! GASPI-style one-sided windows with notifications.
//!
//! The paper's future work (§VI) proposes replacing two-sided MPI messaging
//! with "a more light-weight multi-threaded communication library" — GASPI
//! (GPI-2), whose model is: segments of remote-writable memory, one-sided
//! `put` into a target's segment, and small *notifications* that tell the
//! target what arrived. No tag matching, no mailbox scans, no per-message
//! envelopes.
//!
//! This module reproduces that model in process:
//!
//! * every rank owns a segment of `len` f64 slots, remotely writable;
//! * [`Comm::window_put_notify`] writes a span into the destination's
//!   segment and posts a notification value on the (src → dst) queue;
//! * the destination polls or waits for notifications, then reads the spans
//!   the notifications describe from its own segment.
//!
//! Memory safety without locks on the data path: segment slots are
//! `AtomicU64` (f64 bit patterns) written with `Relaxed` stores; the
//! notification enqueue is the `Release` operation and the dequeue the
//! `Acquire`, so a reader that popped a notification observes every store
//! the writer made before posting it. Readers only read spans they were
//! notified about, so torn reads cannot be observed — provided writers keep
//! concurrent puts to disjoint spans, which the BPMF exchange guarantees
//! (each item row is written only by its owner).
//!
//! **Span reuse requires an epoch.** One-sided puts have no flow control: a
//! writer that reuses a span must know the consumer has finished reading the
//! previous contents, or the reader can observe the *next* epoch's values
//! under the old notification. Real GASPI programs carry the same burden.
//! The BPMF exchange satisfies it for free — the hyperparameter collective
//! between Gibbs sweeps orders "all reads of sweep s" before "all writes of
//! sweep s+1" — and ad-hoc uses must add an explicit ack message.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::comm::Comm;

/// Handle to a collectively created window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowHandle(pub(crate) usize);

struct Notification {
    value: u64,
    /// Network-model delivery time (puts traverse the same wire as
    /// messages).
    ready_at: Option<Instant>,
}

pub(crate) struct WindowShared {
    /// One segment of `len` f64 slots per rank.
    segments: Vec<Vec<AtomicU64>>,
    /// Notification queues indexed `dst * nranks + src`.
    notifications: Vec<Mutex<VecDeque<Notification>>>,
    nranks: usize,
}

impl WindowShared {
    pub(crate) fn new(nranks: usize, len: usize) -> Arc<Self> {
        Arc::new(WindowShared {
            segments: (0..nranks)
                .map(|_| (0..len).map(|_| AtomicU64::new(0)).collect())
                .collect(),
            notifications: (0..nranks * nranks)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            nranks,
        })
    }

    fn queue(&self, dst: usize, src: usize) -> &Mutex<VecDeque<Notification>> {
        &self.notifications[dst * self.nranks + src]
    }
}

impl Comm<'_> {
    /// Collectively create a window of `len` f64 slots per rank. Every rank
    /// must call this the same number of times in the same order; the Nth
    /// call everywhere refers to the Nth window, and all ranks receive the
    /// same handle.
    pub fn window_create(&mut self, len: usize) -> WindowHandle {
        let handle = {
            let mut registry = self.shared().window_registry.lock();
            let idx = registry.attached[self.rank()];
            registry.attached[self.rank()] += 1;
            if idx == registry.windows.len() {
                // First rank to reach this creation point materializes it.
                let win = WindowShared::new(self.size(), len);
                registry.windows.push(win);
            } else {
                assert_eq!(
                    registry.windows[idx].segments[0].len(),
                    len,
                    "ranks disagree on the length of window {idx}"
                );
            }
            WindowHandle(idx)
        };
        // No rank may put into a window before every rank has attached.
        self.barrier();
        handle
    }

    /// One-sided write of `data` into `dst`'s segment at `offset`, followed
    /// by a notification carrying `value` (typically the item id). Returns
    /// immediately (one-sided semantics: the target is not involved).
    pub fn window_put_notify(
        &mut self,
        win: WindowHandle,
        dst: usize,
        offset: usize,
        data: &[f64],
        value: u64,
    ) {
        let t0 = Instant::now();
        let bytes = data.len() * 8;
        let ready_at = self.net_model().map(|m| Instant::now() + m.delay(bytes));
        {
            let shared = self.shared();
            let registry = shared.window_registry.lock();
            let window = Arc::clone(&registry.windows[win.0]);
            drop(registry);
            let segment = &window.segments[dst];
            assert!(
                offset + data.len() <= segment.len(),
                "put outside the window"
            );
            for (slot, &v) in segment[offset..offset + data.len()].iter().zip(data) {
                slot.store(v.to_bits(), Ordering::Relaxed);
            }
            // Release: publishing the notification publishes the stores.
            window
                .queue(dst, self.rank())
                .lock()
                .push_back(Notification { value, ready_at });
        }
        self.account_put(bytes as u64, t0.elapsed());
    }

    /// Drain up to `max` ready notifications from `src` into `out`
    /// (non-blocking); returns how many were drained. The bound lets a
    /// consumer with an exact per-phase quota avoid stealing notifications
    /// that belong to a future phase.
    pub fn window_poll_notifications(
        &mut self,
        win: WindowHandle,
        src: usize,
        max: usize,
        out: &mut Vec<u64>,
    ) -> usize {
        let t0 = Instant::now();
        let drained = {
            let shared = self.shared();
            let registry = shared.window_registry.lock();
            let window = Arc::clone(&registry.windows[win.0]);
            drop(registry);
            let mut q = window.queue(self.rank(), src).lock();
            let mut n = 0;
            while n < max {
                let Some(front) = q.front() else { break };
                if front.ready_at.is_some_and(|t| t > Instant::now()) {
                    break; // still "on the wire"; preserve order
                }
                out.push(q.pop_front().expect("front exists").value);
                n += 1;
            }
            n
        };
        self.account_comm_time(t0.elapsed());
        drained
    }

    /// Blocking wait for the next notification from `src` (poll time is
    /// accounted inside each poll).
    pub fn window_wait_notification(&mut self, win: WindowHandle, src: usize) -> u64 {
        let mut out = Vec::with_capacity(1);
        loop {
            self.shared().check_abort();
            if self.window_poll_notifications(win, src, 1, &mut out) > 0 {
                return out[0];
            }
            std::thread::yield_now();
        }
    }

    /// Copy `out.len()` slots starting at `offset` from this rank's own
    /// segment. Only read spans you have been notified about.
    pub fn window_read_local(&self, win: WindowHandle, offset: usize, out: &mut [f64]) {
        let shared = self.shared();
        let registry = shared.window_registry.lock();
        let window = Arc::clone(&registry.windows[win.0]);
        drop(registry);
        let segment = &window.segments[self.rank()];
        let len = out.len();
        assert!(offset + len <= segment.len(), "read outside the window");
        for (o, slot) in out.iter_mut().zip(&segment[offset..offset + len]) {
            *o = f64::from_bits(slot.load(Ordering::Relaxed));
        }
    }
}

/// Registry of collectively created windows (lives in the universe).
pub(crate) struct WindowRegistry {
    pub(crate) windows: Vec<Arc<WindowShared>>,
    /// Per rank: how many windows it has attached so far (creation order is
    /// the identity of a window).
    pub(crate) attached: Vec<usize>,
}

impl WindowRegistry {
    pub(crate) fn new(nranks: usize) -> Self {
        WindowRegistry {
            windows: Vec::new(),
            attached: vec![0; nranks],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;
    use crate::NetModel;
    use std::time::Duration;

    #[test]
    fn put_notify_read_roundtrip() {
        Universe::run(2, None, |comm| {
            let win = comm.window_create(8);
            if comm.rank() == 0 {
                comm.window_put_notify(win, 1, 2, &[1.5, -2.5, 3.5], 7);
                comm.barrier();
            } else {
                let value = comm.window_wait_notification(win, 0);
                assert_eq!(value, 7);
                let mut out = [0.0; 3];
                comm.window_read_local(win, 2, &mut out);
                assert_eq!(out, [1.5, -2.5, 3.5]);
                comm.barrier();
            }
        });
    }

    #[test]
    fn notifications_are_fifo_per_pair() {
        Universe::run(2, None, |comm| {
            let win = comm.window_create(16);
            if comm.rank() == 0 {
                for i in 0..5u64 {
                    comm.window_put_notify(win, 1, i as usize, &[i as f64], i);
                }
                comm.barrier();
            } else {
                comm.barrier(); // all puts posted
                let mut out = Vec::new();
                while out.len() < 5 {
                    comm.window_poll_notifications(win, 0, 8, &mut out);
                }
                assert_eq!(out, vec![0, 1, 2, 3, 4]);
            }
        });
    }

    #[test]
    fn concurrent_disjoint_puts_are_all_visible() {
        let n = 4;
        Universe::run(n, None, |comm| {
            let win = comm.window_create(n * 2);
            let me = comm.rank();
            // Every rank writes its own disjoint span into rank 0.
            if me != 0 {
                comm.window_put_notify(win, 0, me * 2, &[me as f64, -(me as f64)], me as u64);
            }
            comm.barrier();
            if me == 0 {
                let mut seen = vec![false; n];
                let mut values = Vec::new();
                for src in 1..n {
                    while comm.window_poll_notifications(win, src, 8, &mut values) == 0 {}
                }
                for &v in &values {
                    seen[v as usize] = true;
                    let mut out = [0.0; 2];
                    comm.window_read_local(win, v as usize * 2, &mut out);
                    assert_eq!(out, [v as f64, -(v as f64)]);
                }
                assert!(seen[1..].iter().all(|&s| s));
            }
            comm.barrier();
        });
    }

    #[test]
    fn network_model_delays_notifications() {
        let latency = Duration::from_millis(20);
        let out = Universe::run(2, Some(NetModel::new(latency, 1e12)), |comm| {
            let win = comm.window_create(4);
            if comm.rank() == 0 {
                comm.barrier();
                comm.window_put_notify(win, 1, 0, &[9.0], 1);
                Duration::ZERO
            } else {
                comm.barrier();
                let t0 = Instant::now();
                let _ = comm.window_wait_notification(win, 0);
                t0.elapsed()
            }
        });
        assert!(
            out[1] >= latency - Duration::from_millis(2),
            "elapsed {:?}",
            out[1]
        );
    }

    #[test]
    fn multiple_windows_are_independent() {
        Universe::run(2, None, |comm| {
            let a = comm.window_create(4);
            let b = comm.window_create(4);
            assert_ne!(a, b);
            if comm.rank() == 0 {
                comm.window_put_notify(a, 1, 0, &[1.0], 10);
                comm.window_put_notify(b, 1, 0, &[2.0], 20);
                comm.barrier();
            } else {
                assert_eq!(comm.window_wait_notification(a, 0), 10);
                assert_eq!(comm.window_wait_notification(b, 0), 20);
                let mut out = [0.0];
                comm.window_read_local(a, 0, &mut out);
                assert_eq!(out[0], 1.0);
                comm.window_read_local(b, 0, &mut out);
                assert_eq!(out[0], 2.0);
                comm.barrier();
            }
        });
    }
}
