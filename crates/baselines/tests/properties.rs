//! Property-based tests of the baseline trainers: invariants that must hold
//! for *any* small rating matrix, not just the fixtures.

use bpmf_baselines::{AlsConfig, AlsTrainer, MfModel, SgdConfig, SgdTrainer};
use bpmf_linalg::Mat;
use bpmf_sched::StaticPool;
use bpmf_sparse::{Coo, Csr};
use proptest::prelude::*;

/// Arbitrary small rating matrix: dims in [1, 12], up to 40 ratings with
/// values in a plausible star range.
fn arb_ratings() -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, f64)>)> {
    (1usize..12, 1usize..12).prop_flat_map(|(nrows, ncols)| {
        let entry = (0..nrows, 0..ncols, 0.5f64..5.0);
        proptest::collection::vec(entry, 0..40).prop_map(move |entries| (nrows, ncols, entries))
    })
}

fn to_csr(nrows: usize, ncols: usize, entries: &[(usize, usize, f64)]) -> Csr {
    let mut coo = Coo::new(nrows, ncols);
    let mut seen = std::collections::HashSet::new();
    for &(i, j, v) in entries {
        // Deduplicate coordinates: rating matrices have one value per cell.
        if seen.insert((i, j)) {
            coo.push(i, j, v);
        }
    }
    Csr::from_coo_owned(coo)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ALS coordinate descent can never increase its own objective.
    #[test]
    fn als_objective_never_increases((nrows, ncols, entries) in arb_ratings()) {
        let r = to_csr(nrows, ncols, &entries);
        let rt = r.transpose();
        let cfg = AlsConfig { num_latent: 3, sweeps: 0, lambda: 0.1, ..Default::default() };
        let runner = StaticPool::new(1);
        let mut t = AlsTrainer::new(cfg, &r, &rt);
        let mut prev = t.objective();
        prop_assert!(prev.is_finite());
        for _ in 0..4 {
            t.sweep(&runner);
            let now = t.objective();
            prop_assert!(now.is_finite());
            prop_assert!(now <= prev + 1e-7, "objective rose: {prev} -> {now}");
            prev = now;
        }
    }

    /// ALS is deterministic in the thread count: a parallel sweep must be
    /// bit-identical to a serial one (items are independent).
    #[test]
    fn als_is_thread_count_invariant((nrows, ncols, entries) in arb_ratings()) {
        let r = to_csr(nrows, ncols, &entries);
        let rt = r.transpose();
        let cfg = AlsConfig { num_latent: 2, sweeps: 3, ..Default::default() };
        let a = AlsTrainer::new(cfg.clone(), &r, &rt).train(&StaticPool::new(1));
        let b = AlsTrainer::new(cfg, &r, &rt).train(&StaticPool::new(3));
        prop_assert_eq!(a.user_factors.max_abs_diff(&b.user_factors), 0.0);
        prop_assert_eq!(a.movie_factors.max_abs_diff(&b.movie_factors), 0.0);
    }

    /// Whatever the data, trained models predict finite values everywhere
    /// (no NaN poisoning from empty rows, single ratings, etc.).
    #[test]
    fn trained_models_predict_finite_values((nrows, ncols, entries) in arb_ratings()) {
        let r = to_csr(nrows, ncols, &entries);
        let rt = r.transpose();
        let als = AlsTrainer::new(
            AlsConfig { num_latent: 2, sweeps: 3, ..Default::default() },
            &r,
            &rt,
        )
        .train(&StaticPool::new(1));
        let sgd = SgdTrainer::new(
            SgdConfig { num_latent: 2, epochs: 3, ..Default::default() },
            &r,
        )
        .train();
        for i in 0..nrows {
            for j in 0..ncols {
                prop_assert!(als.predict(i, j).is_finite());
                prop_assert!(sgd.predict(i, j).is_finite());
            }
        }
    }

    /// SGD with a clip always honors the rating scale.
    #[test]
    fn clipped_predictions_stay_in_range((nrows, ncols, entries) in arb_ratings()) {
        let r = to_csr(nrows, ncols, &entries);
        let cfg = SgdConfig {
            num_latent: 2,
            epochs: 2,
            clip: Some((0.5, 5.0)),
            ..Default::default()
        };
        let model = SgdTrainer::new(cfg, &r).train();
        for i in 0..nrows {
            for j in 0..ncols {
                let p = model.predict(i, j);
                prop_assert!((0.5..=5.0).contains(&p), "clip violated: {p}");
            }
        }
    }

    /// Stratified SGD partitions every rating into exactly one block per
    /// epoch: one epoch with any worker count consumes each rating once,
    /// so the epoch counter and the parameters always advance the same way
    /// (weaker than bit-equality, which shuffling forbids).
    #[test]
    fn stratified_epoch_advances_for_any_worker_count(
        (nrows, ncols, entries) in arb_ratings(),
        threads in 1usize..5,
    ) {
        let r = to_csr(nrows, ncols, &entries);
        let cfg = SgdConfig { num_latent: 2, epochs: 0, ..Default::default() };
        let mut t = SgdTrainer::new(cfg, &r);
        let before = t.train_rmse();
        t.epoch_stratified(threads);
        prop_assert_eq!(t.epochs_done(), 1);
        let after = t.train_rmse();
        // Either there were no ratings (RMSE NaN in both) or it stays finite.
        if r.nnz() == 0 {
            prop_assert!(before.is_nan() && after.is_nan());
        } else {
            prop_assert!(after.is_finite());
        }
    }

    /// The shared model wrapper: biases of the right length are honored,
    /// empty biases mean zero.
    #[test]
    fn model_bias_semantics(mean in -2.0f64..2.0, bu in -1.0f64..1.0, bm in -1.0f64..1.0) {
        let u = Mat::zeros(2, 2);
        let v = Mat::zeros(3, 2);
        let mut model = MfModel::new(u, v, mean);
        prop_assert_eq!(model.predict(0, 0), mean);
        model.user_bias = vec![bu; 2];
        model.movie_bias = vec![bm; 3];
        prop_assert!((model.predict(1, 2) - (mean + bu + bm)).abs() < 1e-15);
    }
}
