//! Top-N ranking metrics: precision@k, recall@k, NDCG@k, hit rate.
//!
//! RMSE (the paper's §V-B metric) measures rating reconstruction; a
//! deployed recommender is judged on the *ranking* of its top-N list —
//! the "suggestions for movies on Netflix and books for Amazon" of the
//! paper's introduction. These metrics work for any scoring function, so
//! BPMF, ALS and SGD models are evaluated identically.
//!
//! Protocol (standard leave-out evaluation): for each user with held-out
//! ratings, score every item the user has *not* rated in training, take
//! the top `k`, and compare against the held-out items the user rated at
//! or above `relevance_threshold`.
//!
//! Candidate generation, batched scoring, and top-k selection all go
//! through [`bpmf::serve::RecommendService`] — offline ranking evaluation
//! and online serving share one code path, so a metric measured here is a
//! metric of exactly what production would return.

use bpmf::serve::RecommendService;
use bpmf::Recommender;
use bpmf_sparse::Csr;

/// Aggregated ranking quality over all evaluable users.
#[derive(Clone, Copy, Debug)]
pub struct RankingReport {
    /// Mean fraction of the top-k that is relevant.
    pub precision: f64,
    /// Mean fraction of each user's relevant items that made the top-k.
    pub recall: f64,
    /// Mean normalized discounted cumulative gain.
    pub ndcg: f64,
    /// Fraction of users with at least one relevant item in their top-k.
    pub hit_rate: f64,
    /// Users with at least one relevant held-out item (the denominator).
    pub users_evaluated: usize,
    /// The cutoff used.
    pub k: usize,
}

/// Evaluate top-`k` rankings induced by `score(user, item)`.
///
/// `train` marks the items to exclude from each user's candidate list;
/// `test` holds the ground-truth `(user, item, rating)` triples; an item is
/// *relevant* when its held-out rating is at least `relevance_threshold`.
/// Users with no relevant held-out items are skipped (every metric would be
/// undefined for them).
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn evaluate_ranking(
    train: &Csr,
    test: &[(u32, u32, f64)],
    k: usize,
    relevance_threshold: f64,
    score: impl FnMut(usize, usize) -> f64,
) -> RankingReport {
    /// A bare scoring function seen through the serving trait. The
    /// `RefCell` adapts the historical `FnMut` contract (stateful scorers
    /// are allowed) to `Recommender::predict`'s `&self`; evaluation is
    /// single-threaded and never re-enters the scorer.
    struct FnScorer<F>(std::cell::RefCell<F>);

    impl<F: FnMut(usize, usize) -> f64> Recommender for FnScorer<F> {
        fn predict(&self, user: usize, movie: usize) -> f64 {
            (self.0.borrow_mut())(user, movie)
        }
    }

    evaluate_ranking_model(
        train,
        test,
        k,
        relevance_threshold,
        &FnScorer(std::cell::RefCell::new(score)),
    )
}

/// [`evaluate_ranking`] for a fitted model: every user's top-k comes from
/// a [`RecommendService`] (batched scoring, exclude-seen filtering), the
/// exact machinery online serving uses — including the multi-user
/// micro-batch path: all evaluable users go through
/// [`RecommendService::recommend_batch`], so the evaluation pays one GEMM
/// catalogue pass per `MICRO_BATCH`-user block exactly like production
/// block serving.
pub fn evaluate_ranking_model(
    train: &Csr,
    test: &[(u32, u32, f64)],
    k: usize,
    relevance_threshold: f64,
    model: &dyn Recommender,
) -> RankingReport {
    assert!(k > 0, "top-k needs k >= 1");
    let mut service = RecommendService::new(model, train.ncols()).exclude_seen(train);

    // Group the held-out relevant items per user.
    let mut relevant: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
    for &(u, m, r) in test {
        if r >= relevance_threshold {
            relevant.entry(u).or_default().push(m);
        }
    }
    // Ascending user order: the metrics are order-independent sums, but a
    // deterministic block layout keeps the batched scoring reproducible.
    let mut eval_users: Vec<u32> = relevant.keys().copied().collect();
    eval_users.sort_unstable();

    let mut sum_precision = 0.0;
    let mut sum_recall = 0.0;
    let mut sum_ndcg = 0.0;
    let mut hits = 0usize;
    let mut users = 0usize;

    // One micro-batch at a time: each chunk pays a single GEMM catalogue
    // pass, and peak memory stays O(MICRO_BATCH · k) lists rather than
    // one materialized top-k per evaluable user.
    for (chunk, lists) in eval_users
        .chunks(bpmf::serve::MICRO_BATCH)
        .map(|chunk| (chunk, service.recommend_batch(chunk, k)))
    {
        for (&user, topk) in chunk.iter().zip(&lists) {
            let rel_items = &relevant[&user];
            // The user's top-k over everything unseen in training (held-out
            // items are by construction unseen, so they compete against the
            // full catalogue). Users whose candidate set is empty are skipped
            // — every metric would be undefined for them.
            if topk.is_empty() {
                continue;
            }

            let rel: std::collections::HashSet<u32> = rel_items.iter().copied().collect();
            let hit_count = topk.iter().filter(|r| rel.contains(&r.item)).count();

            sum_precision += hit_count as f64 / k as f64;
            sum_recall += hit_count as f64 / rel.len() as f64;
            if hit_count > 0 {
                hits += 1;
            }

            // Binary-gain NDCG: DCG = Σ 1/log2(rank+1) over relevant hits,
            // ideal DCG = the same sum when all of the first min(k, |rel|)
            // slots are relevant.
            let dcg: f64 = topk
                .iter()
                .enumerate()
                .filter(|(_, r)| rel.contains(&r.item))
                .map(|(rank, _)| 1.0 / ((rank as f64 + 2.0).log2()))
                .sum();
            let ideal: f64 = (0..k.min(rel.len()))
                .map(|rank| 1.0 / ((rank as f64 + 2.0).log2()))
                .sum();
            sum_ndcg += dcg / ideal;
            users += 1;
        }
    }

    if users == 0 {
        return RankingReport {
            precision: f64::NAN,
            recall: f64::NAN,
            ndcg: f64::NAN,
            hit_rate: f64::NAN,
            users_evaluated: 0,
            k,
        };
    }
    let n = users as f64;
    RankingReport {
        precision: sum_precision / n,
        recall: sum_recall / n,
        ndcg: sum_ndcg / n,
        hit_rate: hits as f64 / n,
        users_evaluated: users,
        k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpmf_sparse::Coo;

    /// 3 users × 8 movies; user u rated movie u in training.
    fn train_matrix() -> Csr {
        let mut coo = Coo::new(3, 8);
        for u in 0..3 {
            coo.push(u, u, 4.0);
        }
        Csr::from_coo_owned(coo)
    }

    #[test]
    fn oracle_scorer_achieves_perfect_ndcg_and_hits() {
        let train = train_matrix();
        // Each user has two relevant held-out movies: u+3 and u+5.
        let test: Vec<(u32, u32, f64)> = (0..3u32)
            .flat_map(|u| [(u, u + 3, 5.0), (u, u + 5, 4.5)])
            .collect();
        // Oracle: scores the relevant items highest.
        let report = evaluate_ranking(&train, &test, 2, 4.0, |u, m| {
            if m as u32 == u as u32 + 3 || m as u32 == u as u32 + 5 {
                10.0
            } else {
                0.0
            }
        });
        assert_eq!(report.users_evaluated, 3);
        assert!((report.precision - 1.0).abs() < 1e-12);
        assert!((report.recall - 1.0).abs() < 1e-12);
        assert!((report.ndcg - 1.0).abs() < 1e-12);
        assert_eq!(report.hit_rate, 1.0);
    }

    #[test]
    fn anti_oracle_scores_zero() {
        let train = train_matrix();
        let test: Vec<(u32, u32, f64)> = (0..3u32).map(|u| (u, u + 3, 5.0)).collect();
        // Anti-oracle: relevant items last.
        let report = evaluate_ranking(&train, &test, 2, 4.0, |u, m| {
            if m as u32 == u as u32 + 3 {
                -10.0
            } else {
                m as f64
            }
        });
        assert_eq!(report.precision, 0.0);
        assert_eq!(report.recall, 0.0);
        assert_eq!(report.ndcg, 0.0);
        assert_eq!(report.hit_rate, 0.0);
    }

    #[test]
    fn train_items_are_excluded_from_candidates() {
        let train = train_matrix();
        // User 0's only relevant item is movie 3; a scorer that loves the
        // *training* item (movie 0) must not be able to waste a slot on it.
        let test = vec![(0u32, 3u32, 5.0)];
        let report = evaluate_ranking(&train, &test, 1, 4.0, |_, m| {
            match m {
                0 => 100.0, // training item: must be filtered out
                3 => 50.0,
                _ => 0.0,
            }
        });
        assert_eq!(
            report.precision, 1.0,
            "movie 0 must be excluded, movie 3 ranked first"
        );
    }

    #[test]
    fn partial_hits_give_fractional_metrics() {
        let train = train_matrix();
        // Two relevant items; scorer finds exactly one in the top-2.
        let test = vec![(0u32, 3u32, 5.0), (0u32, 4u32, 5.0)];
        let report = evaluate_ranking(&train, &test, 2, 4.0, |_, m| match m {
            3 => 10.0,
            7 => 9.0, // irrelevant distractor takes the second slot
            4 => 8.0,
            _ => 0.0,
        });
        assert!((report.precision - 0.5).abs() < 1e-12);
        assert!((report.recall - 0.5).abs() < 1e-12);
        assert!(
            report.ndcg > 0.5 && report.ndcg < 1.0,
            "ndcg {}",
            report.ndcg
        );
        assert_eq!(report.hit_rate, 1.0);
    }

    #[test]
    fn low_ratings_are_not_relevant() {
        let train = train_matrix();
        let test = vec![(0u32, 3u32, 2.0)]; // below threshold
        let report = evaluate_ranking(&train, &test, 2, 4.0, |_, _| 1.0);
        assert_eq!(report.users_evaluated, 0);
        assert!(report.precision.is_nan());
    }

    #[test]
    fn ranking_is_deterministic_under_ties() {
        let train = train_matrix();
        let test = vec![(0u32, 3u32, 5.0)];
        // All scores equal: ties break by item id, so movie 1 and 2 fill
        // the top-2 and the metrics are stable across runs.
        let a = evaluate_ranking(&train, &test, 2, 4.0, |_, _| 1.0);
        let b = evaluate_ranking(&train, &test, 2, 4.0, |_, _| 1.0);
        assert_eq!(a.precision, b.precision);
        assert_eq!(a.precision, 0.0);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_is_rejected() {
        let train = train_matrix();
        let _ = evaluate_ranking(&train, &[], 0, 4.0, |_, _| 0.0);
    }
}
