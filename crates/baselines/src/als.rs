//! Alternating least squares with weighted-λ regularization (ALS-WR).
//!
//! The algorithm of the paper's reference \[2\] (Zhou, Wilkinson, Schreiber
//! & Pan, AAIM 2008): fix V, solve one ridge regression per user; fix U,
//! solve one per movie; repeat. Each per-item system is
//!
//! ```text
//! (Σ_{j∈Ω_i} v_j v_jᵀ  +  λ·reg_i·I) u_i = Σ_{j∈Ω_i} (r_ij − mean) v_j
//! ```
//!
//! with `reg_i = |Ω_i|` in the weighted-λ scheme (each item's ridge grows
//! with its rating count — the regularization that won ALS its Netflix
//! reputation) or `reg_i = 1` for plain ridge.
//!
//! Structurally one ALS half-sweep is the *same computation* as one BPMF
//! half-sweep minus the sampled noise and hyperparameter resampling: build
//! a K×K SPD system per item (SYRK over the rated counterparts), factor,
//! solve. It therefore shares the kernels (`Mat::syrk_lower`, [`Cholesky`])
//! and the sweep parallelization ([`ItemRunner`]) with the sampler, and its
//! per-item cost profile matches the paper's Fig. 2 workload model — which
//! is why it makes a fair speed baseline.

use bpmf_linalg::{Cholesky, Mat, MatWriter};
use bpmf_sched::ItemRunner;
use bpmf_sparse::Csr;
use bpmf_stats::{normal, Xoshiro256pp};
use std::sync::Mutex;

use crate::model::MfModel;

/// ALS hyperparameters.
#[derive(Clone, Debug)]
pub struct AlsConfig {
    /// Latent dimensions K.
    pub num_latent: usize,
    /// Ridge strength λ.
    pub lambda: f64,
    /// Scale the ridge by each item's rating count (ALS-WR). `false` gives
    /// plain ridge regression.
    pub weighted_regularization: bool,
    /// Full U+V sweeps to run.
    pub sweeps: usize,
    /// Standard deviation of the random factor initialization.
    pub init_sd: f64,
    /// RNG seed for the initialization.
    pub seed: u64,
    /// Optional rating-scale clamp carried into the trained model.
    pub clip: Option<(f64, f64)>,
}

impl Default for AlsConfig {
    fn default() -> Self {
        AlsConfig {
            num_latent: 16,
            lambda: 0.05,
            weighted_regularization: true,
            sweeps: 20,
            init_sd: 0.3,
            seed: 42,
            clip: None,
        }
    }
}

/// Per-worker scratch: the K×K normal matrix and the right-hand side.
struct Scratch {
    a: Mat,
    b: Vec<f64>,
}

/// ALS trainer over a fixed training matrix (both orientations).
pub struct AlsTrainer<'a> {
    cfg: AlsConfig,
    r: &'a Csr,
    rt: &'a Csr,
    global_mean: f64,
    users: Mat,
    movies: Mat,
    sweeps_done: usize,
}

impl<'a> AlsTrainer<'a> {
    /// Set up a trainer for `r` (users × movies) and its transpose `rt`.
    ///
    /// # Panics
    ///
    /// Panics if the orientations disagree or the config is degenerate.
    pub fn new(cfg: AlsConfig, r: &'a Csr, rt: &'a Csr) -> Self {
        assert!(cfg.num_latent > 0, "need at least one latent dimension");
        assert!(cfg.lambda >= 0.0, "lambda must be non-negative");
        assert_eq!(r.nrows(), rt.ncols(), "rt must be the transpose of r");
        assert_eq!(r.ncols(), rt.nrows(), "rt must be the transpose of r");
        let k = cfg.num_latent;
        let mut rng = Xoshiro256pp::seed_from_u64(cfg.seed);
        let mut init = |n: usize| {
            let mut m = Mat::zeros(n, k);
            for v in m.as_mut_slice() {
                *v = normal(&mut rng, 0.0, cfg.init_sd);
            }
            m
        };
        let users = init(r.nrows());
        let movies = init(r.ncols());
        let global_mean = {
            let (_, _, vals) = r.raw_parts();
            if vals.is_empty() {
                0.0
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        };
        AlsTrainer {
            cfg,
            r,
            rt,
            global_mean,
            users,
            movies,
            sweeps_done: 0,
        }
    }

    /// The training-set mean the residuals are centered on.
    pub fn global_mean(&self) -> f64 {
        self.global_mean
    }

    /// Completed full sweeps.
    pub fn sweeps_done(&self) -> usize {
        self.sweeps_done
    }

    /// Current user factors (rows × K).
    pub fn user_factors(&self) -> &Mat {
        &self.users
    }

    /// Current movie factors (cols × K).
    pub fn movie_factors(&self) -> &Mat {
        &self.movies
    }

    /// One full sweep: movies given users, then users given movies (the
    /// same side order as the paper's Algorithm 1).
    pub fn sweep(&mut self, runner: &dyn ItemRunner) {
        solve_side(
            &self.cfg,
            self.rt,
            &self.users,
            &mut self.movies,
            self.global_mean,
            runner,
        );
        solve_side(
            &self.cfg,
            self.r,
            &self.movies,
            &mut self.users,
            self.global_mean,
            runner,
        );
        self.sweeps_done += 1;
    }

    /// Run the configured number of sweeps and package the model.
    pub fn train(mut self, runner: &dyn ItemRunner) -> MfModel {
        for _ in 0..self.cfg.sweeps {
            self.sweep(runner);
        }
        self.into_model()
    }

    /// Package the current factors without further sweeps.
    pub fn into_model(self) -> MfModel {
        let mut model = MfModel::new(self.users, self.movies, self.global_mean);
        model.clip = self.cfg.clip;
        model
    }

    /// RMSE of the *current* factors on held-out ratings (clamped when the
    /// config carries a rating-scale clip) — lets callers trace convergence
    /// sweep by sweep without packaging a model.
    pub fn rmse_on(&self, test: &[(u32, u32, f64)]) -> f64 {
        crate::metrics::rmse(test, |u, m| {
            let p =
                self.global_mean + bpmf_linalg::vecops::dot(self.users.row(u), self.movies.row(m));
            match self.cfg.clip {
                Some((lo, hi)) => p.clamp(lo, hi),
                None => p,
            }
        })
    }

    /// The regularized least-squares objective ALS descends:
    /// `Σ (r−r̂)² + λ Σ reg_i ||u_i||² + λ Σ reg_j ||v_j||²`.
    ///
    /// Each half-sweep minimizes it exactly in one side's variables, so it
    /// must be non-increasing across sweeps — the invariant the tests pin.
    pub fn objective(&self) -> f64 {
        let mut sse = 0.0;
        for (i, j, r) in self.r.iter() {
            let e = r
                - self.global_mean
                - bpmf_linalg::vecops::dot(self.users.row(i), self.movies.row(j as usize));
            sse += e * e;
        }
        let reg_term = |m: &Mat, matrix: &Csr| -> f64 {
            (0..m.rows())
                .map(|i| {
                    let reg = if self.cfg.weighted_regularization {
                        matrix.row_nnz(i) as f64
                    } else {
                        1.0
                    };
                    let n = bpmf_linalg::vecops::norm2(m.row(i));
                    reg * n * n
                })
                .sum()
        };
        sse + self.cfg.lambda * (reg_term(&self.users, self.r) + reg_term(&self.movies, self.rt))
    }
}

/// Solve every item of one side exactly once. `matrix` is oriented so row
/// `i` lists the ratings of output item `i`; `other` holds the fixed
/// counterpart factors.
fn solve_side(
    cfg: &AlsConfig,
    matrix: &Csr,
    other: &Mat,
    out: &mut Mat,
    mean: f64,
    runner: &dyn ItemRunner,
) {
    let k = cfg.num_latent;
    let scratches: Vec<Mutex<Scratch>> = (0..runner.threads())
        .map(|_| {
            Mutex::new(Scratch {
                a: Mat::zeros(k, k),
                b: vec![0.0; k],
            })
        })
        .collect();
    let weights: Vec<f64> = (0..matrix.nrows())
        .map(|i| 1.0 + matrix.row_nnz(i) as f64)
        .collect();
    let writer = MatWriter::new(out);
    let update = |worker: usize, item: usize| {
        let mut scratch = scratches[worker].lock().expect("scratch mutex poisoned");
        let Scratch { a, b } = &mut *scratch;
        let (cols, vals) = matrix.row(item);
        // SAFETY: the runner's exactly-once contract means no other worker
        // receives this item, so the output row is unaliased.
        let row = unsafe { writer.row_mut(item) };
        if cols.is_empty() {
            // No data: ridge pulls the factors to zero exactly.
            row.fill(0.0);
            return;
        }
        let reg = if cfg.weighted_regularization {
            cols.len() as f64
        } else {
            1.0
        };
        a.fill(0.0);
        for d in 0..k {
            a[(d, d)] = cfg.lambda * reg;
        }
        b.fill(0.0);
        for (&j, &r) in cols.iter().zip(vals) {
            let v = other.row(j as usize);
            a.syrk_lower(1.0, v);
            bpmf_linalg::vecops::axpy(r - mean, v, b);
        }
        a.symmetrize_from_lower();
        let chol = Cholesky::factor(a).expect("ridge system is SPD for lambda >= 0");
        chol.solve_in_place(b);
        row.copy_from_slice(b);
    };
    runner.run_items(matrix.nrows(), Some(&weights), None, &update);
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpmf_sched::StaticPool;
    use bpmf_sparse::Coo;

    #[allow(clippy::needless_range_loop)]
    fn small_matrix() -> (Csr, Csr) {
        // 6 users × 5 movies, 18 ratings from a rank-2 pattern + noise-free.
        let mut coo = Coo::new(6, 5);
        let u = [
            [1.0, 0.2],
            [0.5, -0.4],
            [-0.3, 0.9],
            [0.8, 0.8],
            [-1.0, 0.1],
            [0.0, -0.7],
        ];
        let v = [[0.9, 0.0], [0.2, 1.0], [-0.5, 0.5], [1.0, -1.0], [0.3, 0.3]];
        for i in 0..6 {
            for j in 0..5 {
                if (i + 2 * j) % 2 == 0 {
                    let r = 3.0 + u[i][0] * v[j][0] + u[i][1] * v[j][1];
                    coo.push(i, j, r);
                }
            }
        }
        let r = Csr::from_coo_owned(coo);
        let rt = r.transpose();
        (r, rt)
    }

    #[test]
    fn objective_is_monotone_nonincreasing() {
        let (r, rt) = small_matrix();
        let cfg = AlsConfig {
            num_latent: 2,
            sweeps: 0,
            lambda: 0.1,
            ..Default::default()
        };
        let runner = StaticPool::new(1);
        let mut t = AlsTrainer::new(cfg, &r, &rt);
        let mut prev = t.objective();
        for sweep in 0..8 {
            t.sweep(&runner);
            let now = t.objective();
            assert!(
                now <= prev + 1e-9,
                "objective rose at sweep {sweep}: {prev} -> {now}"
            );
            prev = now;
        }
    }

    #[test]
    fn fits_noiseless_rank2_data_exactly() {
        let (r, rt) = small_matrix();
        // Residuals are centered on the training mean, which leaves a small
        // constant offset on top of the rank-2 structure — k = 3 makes the
        // target exactly representable.
        let cfg = AlsConfig {
            num_latent: 3,
            sweeps: 150,
            lambda: 1e-8,
            weighted_regularization: false,
            ..Default::default()
        };
        let runner = StaticPool::new(1);
        let model = AlsTrainer::new(cfg, &r, &rt).train(&runner);
        for (i, j, rating) in r.iter() {
            let p = model.predict(i, j as usize);
            assert!((p - rating).abs() < 1e-3, "({i},{j}): {p} vs {rating}");
        }
    }

    #[test]
    fn parallel_sweep_matches_serial_exactly() {
        // ALS is deterministic given the init, and items are independent
        // within a half-sweep, so thread count must not change the result.
        let (r, rt) = small_matrix();
        let cfg = AlsConfig {
            num_latent: 3,
            sweeps: 4,
            ..Default::default()
        };
        let serial = AlsTrainer::new(cfg.clone(), &r, &rt).train(&StaticPool::new(1));
        let parallel = AlsTrainer::new(cfg, &r, &rt).train(&StaticPool::new(4));
        assert_eq!(
            serial.user_factors.max_abs_diff(&parallel.user_factors),
            0.0,
            "parallel ALS diverged from serial"
        );
        assert_eq!(
            serial.movie_factors.max_abs_diff(&parallel.movie_factors),
            0.0
        );
    }

    #[test]
    fn unrated_items_are_pulled_to_zero() {
        let mut coo = Coo::new(4, 3);
        coo.push(0, 0, 5.0);
        coo.push(1, 0, 1.0);
        // users 2,3 and movies 1,2 have no ratings at all
        let r = Csr::from_coo_owned(coo);
        let rt = r.transpose();
        let cfg = AlsConfig {
            num_latent: 2,
            sweeps: 3,
            ..Default::default()
        };
        let model = AlsTrainer::new(cfg, &r, &rt).train(&StaticPool::new(1));
        for i in 2..4 {
            assert!(model.user_factors.row(i).iter().all(|&v| v == 0.0));
        }
        for j in 1..3 {
            assert!(model.movie_factors.row(j).iter().all(|&v| v == 0.0));
        }
        // Their prediction falls back to the global mean.
        assert_eq!(model.predict(2, 1), model.global_mean);
    }

    #[test]
    fn weighted_regularization_shrinks_heavy_items_more() {
        // One movie with many ratings, one with a single rating, same
        // per-rating signal: ALS-WR applies a ridge proportional to the
        // count, so the lone-rating movie keeps a larger norm relative to
        // plain ridge.
        let mut coo = Coo::new(8, 2);
        for i in 0..8 {
            coo.push(i, 0, 4.0);
        }
        coo.push(0, 1, 4.0);
        let r = Csr::from_coo_owned(coo);
        let rt = r.transpose();
        let base = AlsConfig {
            num_latent: 2,
            sweeps: 10,
            lambda: 0.5,
            ..Default::default()
        };
        let wr = AlsTrainer::new(
            AlsConfig {
                weighted_regularization: true,
                ..base.clone()
            },
            &r,
            &rt,
        )
        .train(&StaticPool::new(1));
        let plain = AlsTrainer::new(
            AlsConfig {
                weighted_regularization: false,
                ..base
            },
            &r,
            &rt,
        )
        .train(&StaticPool::new(1));
        let norm = |m: &Mat, i: usize| bpmf_linalg::vecops::norm2(m.row(i));
        // The heavy movie is shrunk harder under WR than under plain ridge.
        assert!(
            norm(&wr.movie_factors, 0) < norm(&plain.movie_factors, 0) + 1e-12,
            "weighted ridge should not inflate heavy items"
        );
    }

    #[test]
    #[should_panic(expected = "transpose")]
    fn mismatched_orientations_are_rejected() {
        let mut coo = Coo::new(3, 3);
        coo.push(0, 0, 1.0);
        let r = Csr::from_coo_owned(coo);
        let mut coo2 = Coo::new(4, 3);
        coo2.push(0, 0, 1.0);
        let not_rt = Csr::from_coo_owned(coo2);
        let _ = AlsTrainer::new(AlsConfig::default(), &r, &not_rt);
    }
}
