//! The factor model produced by the baseline trainers.

use bpmf_linalg::Mat;

/// A trained matrix-factorization model: `r̂(u,m) = mean + b_u + b_m + U_u · V_m`.
///
/// ALS leaves the bias vectors zero (its regularized normal equations
/// absorb per-item offsets into the factors); biased SGD fits them. Either
/// way prediction and evaluation are uniform, so benchmark tables can treat
/// every algorithm identically.
#[derive(Clone, Debug)]
pub struct MfModel {
    /// User factors, `nrows × k`.
    pub user_factors: Mat,
    /// Movie factors, `ncols × k`.
    pub movie_factors: Mat,
    /// Per-user additive bias (empty = zeros).
    pub user_bias: Vec<f64>,
    /// Per-movie additive bias (empty = zeros).
    pub movie_bias: Vec<f64>,
    /// Training-set global mean the residuals were centered on.
    pub global_mean: f64,
    /// Optional rating-scale clamp applied to predictions.
    pub clip: Option<(f64, f64)>,
    /// Transposed movie factors in the GEMM's cache-blocked packed layout
    /// (`bpmf_linalg::PackedB`), built on the first micro-batch scoring
    /// call — the `B` operand behind `Recommender::score_block`. Built
    /// lazily from `movie_factors`; code that mutates `movie_factors`
    /// after a scoring call must call [`MfModel::invalidate_packed_cache`]
    /// or block scores will keep serving the stale factors.
    movie_factors_packed: std::sync::OnceLock<bpmf_linalg::PackedB>,
}

impl MfModel {
    /// Fresh zero-bias model around `global_mean`.
    pub fn new(user_factors: Mat, movie_factors: Mat, global_mean: f64) -> Self {
        MfModel {
            user_factors,
            movie_factors,
            user_bias: Vec::new(),
            movie_bias: Vec::new(),
            global_mean,
            clip: None,
            movie_factors_packed: std::sync::OnceLock::new(),
        }
    }

    /// Number of latent dimensions.
    pub fn k(&self) -> usize {
        self.user_factors.cols()
    }

    /// Transposed movie factors in the GEMM's packed layout, cached after
    /// the first call.
    pub fn movie_factors_packed(&self) -> &bpmf_linalg::PackedB {
        self.movie_factors_packed
            .get_or_init(|| bpmf_linalg::PackedB::pack_transposed_from(&self.movie_factors))
    }

    /// Drop the packed-factor cache so the next scoring call rebuilds it.
    ///
    /// The fields of this model are public for the baseline trainers'
    /// convenience; anything that mutates `movie_factors` after a scoring
    /// call (another ALS sweep, a hot factor swap) must call this, or
    /// `score_block` — and everything on it, like
    /// `RecommendService::recommend_batch` — will keep scoring against
    /// the factors as they were when the cache was built, silently
    /// diverging from `predict`/`score_all`.
    pub fn invalidate_packed_cache(&mut self) {
        self.movie_factors_packed = std::sync::OnceLock::new();
    }

    /// Predicted rating for `(user, movie)`.
    pub fn predict(&self, user: usize, movie: usize) -> f64 {
        let u = self.user_factors.row(user);
        let v = self.movie_factors.row(movie);
        let mut p = self.global_mean + bpmf_linalg::vecops::dot(u, v);
        if !self.user_bias.is_empty() {
            p += self.user_bias[user];
        }
        if !self.movie_bias.is_empty() {
            p += self.movie_bias[movie];
        }
        match self.clip {
            Some((lo, hi)) => p.clamp(lo, hi),
            None => p,
        }
    }

    /// RMSE over a held-out `(user, movie, rating)` set.
    pub fn rmse_on(&self, test: &[(u32, u32, f64)]) -> f64 {
        crate::metrics::rmse(test, |u, m| self.predict(u, m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> MfModel {
        let mut u = Mat::zeros(2, 2);
        u.row_mut(0).copy_from_slice(&[1.0, 0.0]);
        u.row_mut(1).copy_from_slice(&[0.0, 2.0]);
        let mut v = Mat::zeros(2, 2);
        v.row_mut(0).copy_from_slice(&[3.0, 0.0]);
        v.row_mut(1).copy_from_slice(&[0.0, -1.0]);
        MfModel::new(u, v, 1.0)
    }

    #[test]
    fn prediction_is_mean_plus_dot() {
        let m = tiny_model();
        assert_eq!(m.predict(0, 0), 1.0 + 3.0);
        assert_eq!(m.predict(1, 1), 1.0 - 2.0);
        assert_eq!(m.predict(0, 1), 1.0);
    }

    #[test]
    fn biases_add_when_present() {
        let mut m = tiny_model();
        m.user_bias = vec![0.5, -0.5];
        m.movie_bias = vec![0.25, 0.0];
        assert_eq!(m.predict(0, 0), 1.0 + 3.0 + 0.5 + 0.25);
        assert_eq!(m.predict(1, 1), 1.0 - 2.0 - 0.5);
    }

    #[test]
    fn clip_clamps_predictions() {
        let mut m = tiny_model();
        m.clip = Some((0.0, 3.0));
        assert_eq!(m.predict(0, 0), 3.0); // raw 4.0
        assert_eq!(m.predict(1, 1), 0.0); // raw -1.0
    }

    #[test]
    fn rmse_on_exact_predictions_is_zero() {
        let m = tiny_model();
        let test = vec![(0, 0, 4.0), (1, 1, -1.0)];
        assert!(m.rmse_on(&test) < 1e-15);
    }
}
