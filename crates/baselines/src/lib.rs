#![warn(missing_docs)]

//! # bpmf-baselines — ALS and SGD matrix factorization
//!
//! The paper's introduction names three popular low-rank factorization
//! algorithms: alternating least squares (ALS, its reference \[2\] — Zhou,
//! Wilkinson, Schreiber & Pan's ALS-WR from the Netflix prize), stochastic
//! gradient descent (SGD, reference \[3\] — Koren, Bell & Volinsky), and
//! BPMF itself. BPMF is chosen *despite* being the most expensive because
//! it needs no regularization cross-validation and yields uncertainty; the
//! other two are the baselines any evaluation of that trade-off needs.
//!
//! This crate implements both from scratch on the same substrates the BPMF
//! sampler uses (`bpmf-linalg` for the per-item normal equations,
//! `bpmf-sched` for parallel sweeps):
//!
//! * [`AlsTrainer`] — ALS with weighted-λ regularization (ALS-WR): each
//!   half-sweep solves one ridge system per item via Cholesky, exactly once
//!   per item, parallelized with any [`bpmf_sched::ItemRunner`];
//! * [`SgdTrainer`] — biased SGD with inverse-time learning-rate decay,
//!   plus a *stratified* parallel mode (the diagonal-strata scheme of
//!   Gemulla et al.'s distributed SGD) whose block schedule guarantees two
//!   workers never touch the same user or movie row concurrently;
//! * [`MfModel`] — the factor model both trainers produce, with prediction
//!   and RMSE evaluation shared with the BPMF reports.
//!
//! Both trainers model residuals around the training global mean, like the
//! BPMF sampler, so RMSE curves are directly comparable.
//!
//! ```
//! use bpmf_baselines::{AlsConfig, AlsTrainer};
//! use bpmf_sparse::{Coo, Csr};
//!
//! let mut coo = Coo::new(3, 3);
//! for (u, m, r) in [(0, 0, 4.0), (0, 1, 3.0), (1, 1, 5.0), (2, 2, 1.0), (1, 0, 4.5)] {
//!     coo.push(u, m, r);
//! }
//! let r = Csr::from_coo_owned(coo);
//! let rt = r.transpose();
//! let cfg = AlsConfig { num_latent: 2, sweeps: 10, ..Default::default() };
//! let runner = bpmf_sched::StaticPool::new(1);
//! let model = AlsTrainer::new(cfg, &r, &rt).train(&runner);
//! assert!(model.predict(0, 0).is_finite());
//! ```

mod als;
mod metrics;
mod model;
mod ranking;
mod sgd;
mod unified;

pub use als::{AlsConfig, AlsTrainer};
pub use metrics::{mae, rmse};
pub use model::MfModel;
pub use ranking::{evaluate_ranking, evaluate_ranking_model, RankingReport};
pub use sgd::{SgdConfig, SgdTrainer};
pub use unified::{
    make_trainer, AlsRecommenderTrainer, SgdRecommenderTrainer, SgmcmcRecommenderTrainer,
};
