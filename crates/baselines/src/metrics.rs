//! Shared evaluation metrics.

/// Root mean square error of `predict` over `(user, movie, rating)` triples
/// — the metric every experiment in the paper reports (§V-B). Returns `NaN`
/// on an empty test set, which poisons downstream comparisons instead of
/// silently claiming perfection.
pub fn rmse(test: &[(u32, u32, f64)], mut predict: impl FnMut(usize, usize) -> f64) -> f64 {
    if test.is_empty() {
        return f64::NAN;
    }
    let sse: f64 = test
        .iter()
        .map(|&(u, m, r)| {
            let e = predict(u as usize, m as usize) - r;
            e * e
        })
        .sum();
    (sse / test.len() as f64).sqrt()
}

/// Mean absolute error over the same triples (a secondary accuracy metric,
/// less sensitive to outliers than RMSE).
pub fn mae(test: &[(u32, u32, f64)], mut predict: impl FnMut(usize, usize) -> f64) -> f64 {
    if test.is_empty() {
        return f64::NAN;
    }
    let sae: f64 = test
        .iter()
        .map(|&(u, m, r)| (predict(u as usize, m as usize) - r).abs())
        .sum();
    sae / test.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_of_constant_error_is_that_error() {
        let test = vec![(0, 0, 1.0), (1, 1, 2.0), (2, 2, 3.0)];
        let r = rmse(&test, |u, _| test[u].2 + 0.5);
        assert!((r - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rmse_dominated_by_large_errors() {
        let test = vec![(0, 0, 0.0), (1, 0, 0.0)];
        let r = rmse(&test, |u, _| if u == 0 { 0.0 } else { 2.0 });
        let m = mae(&test, |u, _| if u == 0 { 0.0 } else { 2.0 });
        assert!((r - (2.0f64).sqrt()).abs() < 1e-12);
        assert!((m - 1.0).abs() < 1e-12);
        assert!(r > m, "rmse must weight the outlier more than mae");
    }

    #[test]
    fn empty_test_set_is_nan_not_zero() {
        assert!(rmse(&[], |_, _| 0.0).is_nan());
        assert!(mae(&[], |_, _| 0.0).is_nan());
    }
}
