//! Unified-API adapters: ALS and SGD behind `bpmf`'s [`Trainer`] and
//! [`Recommender`] traits, plus [`make_trainer`] — the one dispatch point
//! the CLI, benchmark harnesses, and examples share for all three
//! algorithms.
//!
//! ```
//! use bpmf::{Algorithm, Bpmf, NoCallback, TrainData, Trainer};
//! use bpmf_baselines::make_trainer;
//! use bpmf_sched::StaticPool;
//! use bpmf_sparse::{Coo, Csr};
//!
//! let mut coo = Coo::new(3, 3);
//! for (u, m, r) in [(0, 0, 4.0), (0, 1, 3.0), (1, 1, 5.0), (2, 2, 1.0), (1, 0, 4.5)] {
//!     coo.push(u, m, r);
//! }
//! let r = Csr::from_coo_owned(coo);
//! let rt = r.transpose();
//! let test = vec![(2u32, 0u32, 2.0)];
//! let data = TrainData::try_new(&r, &rt, 3.3, &test).unwrap();
//!
//! let spec = Bpmf::builder()
//!     .algorithm(Algorithm::Als)
//!     .latent(2)
//!     .sweeps(10)
//!     .threads(1)
//!     .build()
//!     .unwrap();
//! let runner = StaticPool::new(1);
//! let mut trainer = make_trainer(&spec);
//! let report = trainer.fit(&data, &runner, &mut NoCallback).unwrap();
//! assert!(report.final_rmse().is_finite());
//! assert!(trainer.recommender().unwrap().predict(0, 0).is_finite());
//! ```

use std::sync::Arc;
use std::time::Instant;

use bpmf::{
    Algorithm, Bpmf, BpmfError, DistributedTrainer, FitControl, FitReport, IterCallback, IterStats,
    NoSnapshot, Recommender, SgldConfig, SgldSampler, TrainData, Trainer,
};
use bpmf_sched::ItemRunner;
use bpmf_sparse::Csr;

use crate::als::{AlsConfig, AlsTrainer};
use crate::model::MfModel;
use crate::sgd::{SgdConfig, SgdTrainer};

/// Shared serving epilogue: turn raw `u · v` dot products into predictions
/// in place (global mean + biases + clip), exactly as `MfModel::predict`
/// does per pair. `movie_of` maps a buffer slot to its movie id.
fn finish_mf_scores(
    model: &MfModel,
    user: usize,
    out: &mut [f64],
    movie_of: impl Fn(usize) -> usize,
) {
    let base = model.global_mean
        + if model.user_bias.is_empty() {
            0.0
        } else {
            model.user_bias[user]
        };
    for (i, s) in out.iter_mut().enumerate() {
        let mut p = base + *s;
        if !model.movie_bias.is_empty() {
            p += model.movie_bias[movie_of(i)];
        }
        if let Some((lo, hi)) = model.clip {
            p = p.clamp(lo, hi);
        }
        *s = p;
    }
}

impl Recommender for MfModel {
    fn predict(&self, user: usize, movie: usize) -> f64 {
        MfModel::predict(self, user, movie)
    }

    fn rmse(&self, test: &[(u32, u32, f64)]) -> f64 {
        self.rmse_on(test)
    }

    fn factors(&self) -> Option<(&bpmf_linalg::Mat, &bpmf_linalg::Mat)> {
        Some((&self.user_factors, &self.movie_factors))
    }

    /// Whole-catalogue scan as one blocked matrix–vector product, with the
    /// bias/clamp epilogue applied per item — the serving fast path behind
    /// `bpmf::serve::RecommendService` and the offline ranking evaluation.
    fn score_all(&self, user: usize, scores: &mut [f64]) {
        assert_eq!(scores.len(), self.movie_factors.rows(), "score buffer size");
        self.movie_factors
            .matvec_into(self.user_factors.row(user), scores);
        finish_mf_scores(self, user, scores, |i| i);
    }

    /// Candidate-set scoring via the gathered four-row kernel.
    fn score_batch(&self, user: usize, items: &[u32], out: &mut [f64]) {
        self.movie_factors
            .gather_matvec_into(items, self.user_factors.row(user), out);
        finish_mf_scores(self, user, out, |i| items[i] as usize);
    }

    /// Micro-batch scoring as one register-tiled GEMM: the gathered user
    /// rows (`B × K`) times the transposed movie factors (cached in the
    /// GEMM's packed layout) stream the catalogue once for the whole
    /// block, then the bias/clamp epilogue runs per score row.
    fn score_block(&self, users: &[u32], out: &mut [f64]) {
        let n = self.movie_factors.rows();
        assert_eq!(out.len(), users.len() * n, "score_block buffer mismatch");
        if n == 0 {
            return;
        }
        bpmf_linalg::gemm_gathered_rows_packed(
            &self.user_factors,
            users,
            self.movie_factors_packed(),
            out,
        );
        for (&u, row) in users.iter().zip(out.chunks_exact_mut(n)) {
            finish_mf_scores(self, u as usize, row, |i| i);
        }
    }

    /// Sharded micro-batch scoring: the same GEMM against a range-packed
    /// slice of the movie factors, with the bias/clamp epilogue indexed by
    /// the *global* item id. Point models have no persistent shard cache —
    /// the slice is packed per call (sharding primarily serves the Gibbs
    /// posterior; this keeps ALS/SGD correct behind the same facade).
    fn score_block_range(&self, users: &[u32], lo: usize, hi: usize, out: &mut [f64]) {
        let n = self.movie_factors.rows();
        assert!(lo <= hi && hi <= n, "item range [{lo}, {hi}) out of 0..{n}");
        let w = hi - lo;
        assert_eq!(
            out.len(),
            users.len() * w,
            "score_block_range buffer mismatch"
        );
        if w == 0 {
            return;
        }
        let packed = bpmf_linalg::PackedB::pack_transposed_range_from(&self.movie_factors, lo, hi);
        bpmf_linalg::gemm_gathered_rows_packed(&self.user_factors, users, &packed, out);
        for (&u, row) in users.iter().zip(out.chunks_exact_mut(w)) {
            finish_mf_scores(self, u as usize, row, |i| lo + i);
        }
    }
}

/// Reject spec features the point estimators cannot honor.
fn reject_unsupported(spec: &Bpmf, algorithm: Algorithm) -> Result<(), BpmfError> {
    if spec.user_side_info.is_some() || spec.movie_side_info.is_some() {
        return Err(BpmfError::Unsupported {
            algorithm,
            feature: "side information",
        });
    }
    if spec.resume.is_some() {
        return Err(BpmfError::Unsupported {
            algorithm,
            feature: "checkpoint resume",
        });
    }
    Ok(())
}

/// The resident CSR pair behind a [`TrainData`], or a typed refusal: the
/// point estimators shuffle or sweep the whole matrix and cannot stream
/// it from an out-of-core store.
fn require_resident<'a>(
    data: &TrainData<'a>,
    algorithm: Algorithm,
) -> Result<(&'a Csr, &'a Csr), BpmfError> {
    match (data.r.as_csr(), data.rt.as_csr()) {
        (Some(r), Some(rt)) => Ok((r, rt)),
        _ => Err(BpmfError::Unsupported {
            algorithm,
            feature: "out-of-core rating stores",
        }),
    }
}

fn baseline_iter_stats(iter: usize, rmse: f64, secs: f64, items: usize) -> IterStats {
    IterStats {
        iter,
        rmse_sample: rmse,
        rmse_mean: rmse,
        items_per_sec: if secs > 0.0 { items as f64 / secs } else { 0.0 },
        sweep_seconds: secs,
        busy_fraction: 1.0,
        steals: 0,
    }
}

// ---------------------------------------------------------------------------
// ALS
// ---------------------------------------------------------------------------

/// [`Trainer`] adapter over [`AlsTrainer`]: derives an [`AlsConfig`] from
/// the unified spec, traces held-out RMSE sweep by sweep through the
/// callback, and leaves an [`MfModel`] behind for serving.
pub struct AlsRecommenderTrainer {
    spec: Bpmf,
    model: Option<Arc<MfModel>>,
}

impl AlsRecommenderTrainer {
    /// Trainer for a validated spec.
    pub fn new(spec: Bpmf) -> Self {
        AlsRecommenderTrainer { spec, model: None }
    }

    /// The fitted model, once `fit` has run.
    pub fn model(&self) -> Option<&MfModel> {
        self.model.as_deref()
    }

    fn config(&self) -> AlsConfig {
        let d = AlsConfig::default();
        AlsConfig {
            num_latent: self.spec.num_latent,
            lambda: self.spec.lambda.unwrap_or(d.lambda),
            weighted_regularization: self.spec.weighted_regularization,
            sweeps: self.spec.sweeps.unwrap_or(d.sweeps),
            init_sd: self.spec.init_sd.unwrap_or(d.init_sd),
            seed: self.spec.seed,
            clip: self.spec.rating_bounds,
        }
    }
}

impl Trainer for AlsRecommenderTrainer {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Als
    }

    fn fit(
        &mut self,
        data: &TrainData<'_>,
        runner: &dyn ItemRunner,
        callback: &mut dyn IterCallback,
    ) -> Result<FitReport, BpmfError> {
        reject_unsupported(&self.spec, Algorithm::Als)?;
        let (r, rt) = require_resident(data, Algorithm::Als)?;
        let cfg = self.config();
        let sweeps = cfg.sweeps;
        let mut trainer = AlsTrainer::new(cfg, r, rt);
        let items_per_sweep = data.r.nrows() + data.r.ncols();
        let mut iters = Vec::with_capacity(sweeps);
        let mut early_stopped = false;
        let t0 = Instant::now();
        for sweep in 0..sweeps {
            let s0 = Instant::now();
            trainer.sweep(runner);
            let secs = s0.elapsed().as_secs_f64();
            let stats =
                baseline_iter_stats(sweep, trainer.rmse_on(data.test), secs, items_per_sweep);
            let control = callback.on_iteration(&stats, &NoSnapshot);
            iters.push(stats);
            if control == FitControl::Stop {
                early_stopped = true;
                break;
            }
        }
        self.model = Some(Arc::new(trainer.into_model()));
        Ok(FitReport {
            algorithm: Algorithm::Als.to_string(),
            engine: runner.name().to_string(),
            parallelism: runner.threads(),
            iters,
            total_seconds: t0.elapsed().as_secs_f64(),
            early_stopped,
        })
    }

    fn recommender(&self) -> Option<&dyn Recommender> {
        self.model.as_deref().map(|m| m as &dyn Recommender)
    }

    fn shared_model(&self) -> Option<Arc<dyn Recommender + Send + Sync>> {
        self.model
            .clone()
            .map(|m| m as Arc<dyn Recommender + Send + Sync>)
    }

    #[allow(deprecated)]
    fn shared_recommender(&self) -> Option<&(dyn Recommender + Sync)> {
        self.model
            .as_deref()
            .map(|m| m as &(dyn Recommender + Sync))
    }
}

// ---------------------------------------------------------------------------
// SGD
// ---------------------------------------------------------------------------

/// [`Trainer`] adapter over [`SgdTrainer`]: serial epochs on one thread,
/// the diagonal-strata parallel schedule when the runner has more, traced
/// epoch by epoch through the callback.
pub struct SgdRecommenderTrainer {
    spec: Bpmf,
    model: Option<Arc<MfModel>>,
}

impl SgdRecommenderTrainer {
    /// Trainer for a validated spec.
    pub fn new(spec: Bpmf) -> Self {
        SgdRecommenderTrainer { spec, model: None }
    }

    /// The fitted model, once `fit` has run.
    pub fn model(&self) -> Option<&MfModel> {
        self.model.as_deref()
    }

    fn config(&self) -> SgdConfig {
        let d = SgdConfig::default();
        SgdConfig {
            num_latent: self.spec.num_latent,
            learning_rate: self.spec.learning_rate.unwrap_or(d.learning_rate),
            decay: self.spec.decay.unwrap_or(d.decay),
            lambda: self.spec.lambda.unwrap_or(d.lambda),
            epochs: self.spec.epochs.unwrap_or(d.epochs),
            use_biases: self.spec.use_biases,
            init_sd: self.spec.init_sd.unwrap_or(d.init_sd),
            seed: self.spec.seed,
            clip: self.spec.rating_bounds,
        }
    }
}

impl Trainer for SgdRecommenderTrainer {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Sgd
    }

    fn fit(
        &mut self,
        data: &TrainData<'_>,
        runner: &dyn ItemRunner,
        callback: &mut dyn IterCallback,
    ) -> Result<FitReport, BpmfError> {
        reject_unsupported(&self.spec, Algorithm::Sgd)?;
        let (r, _) = require_resident(data, Algorithm::Sgd)?;
        let cfg = self.config();
        let epochs = cfg.epochs;
        let threads = runner.threads().max(1);
        let mut trainer = SgdTrainer::new(cfg, r);
        let items_per_epoch = data.r.nrows() + data.r.ncols();
        let mut iters = Vec::with_capacity(epochs);
        let mut early_stopped = false;
        let t0 = Instant::now();
        for epoch in 0..epochs {
            let e0 = Instant::now();
            if threads > 1 {
                trainer.epoch_stratified(threads);
            } else {
                trainer.epoch();
            }
            let secs = e0.elapsed().as_secs_f64();
            let stats =
                baseline_iter_stats(epoch, trainer.rmse_on(data.test), secs, items_per_epoch);
            let control = callback.on_iteration(&stats, &NoSnapshot);
            iters.push(stats);
            if control == FitControl::Stop {
                early_stopped = true;
                break;
            }
        }
        self.model = Some(Arc::new(trainer.into_model()));
        Ok(FitReport {
            algorithm: Algorithm::Sgd.to_string(),
            engine: if threads > 1 {
                "sgd-stratified".to_string()
            } else {
                "sgd-serial".to_string()
            },
            parallelism: threads,
            iters,
            total_seconds: t0.elapsed().as_secs_f64(),
            early_stopped,
        })
    }

    fn recommender(&self) -> Option<&dyn Recommender> {
        self.model.as_deref().map(|m| m as &dyn Recommender)
    }

    fn shared_model(&self) -> Option<Arc<dyn Recommender + Send + Sync>> {
        self.model
            .clone()
            .map(|m| m as Arc<dyn Recommender + Send + Sync>)
    }

    #[allow(deprecated)]
    fn shared_recommender(&self) -> Option<&(dyn Recommender + Sync)> {
        self.model
            .as_deref()
            .map(|m| m as &(dyn Recommender + Sync))
    }
}

// ---------------------------------------------------------------------------
// SG-MCMC (SGLD)
// ---------------------------------------------------------------------------

/// [`Trainer`] adapter over [`bpmf::SgldSampler`]: mini-batch
/// stochastic-gradient Langevin sampling, at home on out-of-core
/// [`bpmf::RatingStore`]s (it draws mini-batches instead of sweeping the
/// matrix), traced epoch-equivalent by epoch-equivalent through the
/// callback. Leaves an [`MfModel`] of posterior-mean factors behind, so
/// serving, sharding, and replication work unchanged.
pub struct SgmcmcRecommenderTrainer {
    spec: Bpmf,
    model: Option<Arc<MfModel>>,
}

impl SgmcmcRecommenderTrainer {
    /// Trainer for a validated spec.
    pub fn new(spec: Bpmf) -> Self {
        SgmcmcRecommenderTrainer { spec, model: None }
    }

    /// The fitted model, once `fit` has run.
    pub fn model(&self) -> Option<&MfModel> {
        self.model.as_deref()
    }

    fn config(&self) -> SgldConfig {
        let d = SgldConfig::default();
        SgldConfig {
            num_latent: self.spec.num_latent,
            alpha: self.spec.alpha,
            lambda: self.spec.lambda.unwrap_or(d.lambda),
            step_size: self.spec.sgld_step_size.unwrap_or(d.step_size),
            step_decay: self.spec.sgld_step_decay.unwrap_or(d.step_decay),
            minibatch: self.spec.minibatch.unwrap_or(d.minibatch),
            burnin: self.spec.burnin,
            samples: self.spec.samples,
            init_sd: self.spec.init_sd.unwrap_or(d.init_sd),
            seed: self.spec.seed,
            rating_bounds: self.spec.rating_bounds,
        }
    }
}

impl Trainer for SgmcmcRecommenderTrainer {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Sgmcmc
    }

    fn fit(
        &mut self,
        data: &TrainData<'_>,
        _runner: &dyn ItemRunner,
        callback: &mut dyn IterCallback,
    ) -> Result<FitReport, BpmfError> {
        reject_unsupported(&self.spec, Algorithm::Sgmcmc)?;
        let cfg = self.config();
        let total = cfg.burnin + cfg.samples;
        let mut sampler = SgldSampler::try_new(cfg, *data)?;
        let items_per_epoch = data.r.nrows() + data.r.ncols();
        let mut iters = Vec::with_capacity(total);
        let mut early_stopped = false;
        let t0 = Instant::now();
        for epoch in 0..total {
            let e0 = Instant::now();
            let (rmse_sample, rmse_mean) = sampler.step_epoch();
            let secs = e0.elapsed().as_secs_f64();
            let stats = IterStats {
                iter: epoch,
                rmse_sample,
                rmse_mean,
                items_per_sec: if secs > 0.0 {
                    items_per_epoch as f64 / secs
                } else {
                    0.0
                },
                sweep_seconds: secs,
                busy_fraction: 1.0,
                steals: 0,
            };
            let control = callback.on_iteration(&stats, &NoSnapshot);
            iters.push(stats);
            if control == FitControl::Stop {
                early_stopped = true;
                break;
            }
        }
        let (u, v) = sampler.posterior_factors();
        let mut model = MfModel::new(u, v, data.global_mean);
        model.clip = self.spec.rating_bounds;
        self.model = Some(Arc::new(model));
        Ok(FitReport {
            algorithm: Algorithm::Sgmcmc.to_string(),
            engine: "sgld-serial".to_string(),
            parallelism: 1,
            iters,
            total_seconds: t0.elapsed().as_secs_f64(),
            early_stopped,
        })
    }

    fn recommender(&self) -> Option<&dyn Recommender> {
        self.model.as_deref().map(|m| m as &dyn Recommender)
    }

    fn shared_model(&self) -> Option<Arc<dyn Recommender + Send + Sync>> {
        self.model
            .clone()
            .map(|m| m as Arc<dyn Recommender + Send + Sync>)
    }

    #[allow(deprecated)]
    fn shared_recommender(&self) -> Option<&(dyn Recommender + Sync)> {
        self.model
            .as_deref()
            .map(|m| m as &(dyn Recommender + Sync))
    }
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

/// One trainer for any [`Algorithm`]: the dispatch point behind which the
/// CLI, bench binaries, and examples treat Gibbs, ALS, SGD, SG-MCMC, and
/// the paper's distributed sampler uniformly.
pub fn make_trainer(spec: &Bpmf) -> Box<dyn Trainer> {
    match spec.algorithm {
        Algorithm::Gibbs => Box::new(spec.gibbs_trainer()),
        Algorithm::Als => Box::new(AlsRecommenderTrainer::new(spec.clone())),
        Algorithm::Sgd => Box::new(SgdRecommenderTrainer::new(spec.clone())),
        Algorithm::Sgmcmc => Box::new(SgmcmcRecommenderTrainer::new(spec.clone())),
        Algorithm::Distributed => Box::new(DistributedTrainer::new(spec.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpmf::NoCallback;
    use bpmf_sched::StaticPool;
    use bpmf_sparse::{Coo, Csr};

    fn small() -> (Csr, Csr, Vec<(u32, u32, f64)>, f64) {
        let mut coo = Coo::new(8, 6);
        let mut test = Vec::new();
        for i in 0..8 {
            for j in 0..6 {
                let r = 3.0 + ((i as f64 * 0.7).sin() * (j as f64 * 0.5).cos());
                if (i * 6 + j) % 5 == 0 {
                    test.push((i as u32, j as u32, r));
                } else {
                    coo.push(i, j, r);
                }
            }
        }
        let r = Csr::from_coo_owned(coo);
        let rt = r.transpose();
        let mean = r.iter().map(|(_, _, v)| v).sum::<f64>() / r.nnz() as f64;
        (r, rt, test, mean)
    }

    fn spec(algorithm: Algorithm) -> Bpmf {
        Bpmf::builder()
            .algorithm(algorithm)
            .latent(3)
            .sweeps(6)
            .epochs(6)
            .burnin(2)
            .samples(4)
            .threads(1)
            .kernel_threads(1)
            .seed(5)
            .build()
            .unwrap()
    }

    #[test]
    fn all_three_algorithms_fit_and_serve_through_the_trait() {
        let (r, rt, test, mean) = small();
        let data = TrainData::try_new(&r, &rt, mean, &test).unwrap();
        let runner = StaticPool::new(1);
        for algorithm in Algorithm::all() {
            let mut trainer = make_trainer(&spec(algorithm));
            assert_eq!(trainer.algorithm(), algorithm);
            assert!(trainer.recommender().is_none());
            let report = trainer.fit(&data, &runner, &mut NoCallback).unwrap();
            assert_eq!(report.algorithm, algorithm.to_string());
            assert!(report.final_rmse().is_finite(), "{algorithm}: bad RMSE");
            assert!(!report.iters.is_empty());
            let rec = trainer.recommender().expect("fitted model");
            assert!(rec.predict(0, 0).is_finite());
            assert!(rec.rmse(&test).is_finite());
        }
    }

    #[test]
    fn trait_dispatch_matches_direct_als_calls_exactly() {
        let (r, rt, test, mean) = small();
        let data = TrainData::try_new(&r, &rt, mean, &test).unwrap();
        let runner = StaticPool::new(2);

        let direct_cfg = AlsConfig {
            num_latent: 3,
            sweeps: 6,
            lambda: 0.07,
            init_sd: 0.3,
            seed: 5,
            ..Default::default()
        };
        let direct = AlsTrainer::new(direct_cfg, &r, &rt).train(&runner);

        let spec = Bpmf::builder()
            .algorithm(Algorithm::Als)
            .latent(3)
            .sweeps(6)
            .lambda(0.07)
            .init_sd(0.3)
            .seed(5)
            .threads(2)
            .build()
            .unwrap();
        let mut unified = make_trainer(&spec);
        unified.fit(&data, &runner, &mut NoCallback).unwrap();
        let rec = unified.recommender().unwrap();

        for &(u, m, _) in &test {
            let a = direct.predict(u as usize, m as usize);
            let b = rec.predict(u as usize, m as usize);
            assert_eq!(a.to_bits(), b.to_bits(), "({u},{m}): {a} vs {b}");
        }
    }

    #[test]
    fn trait_dispatch_matches_direct_sgd_calls_exactly() {
        let (r, rt, test, mean) = small();
        let data = TrainData::try_new(&r, &rt, mean, &test).unwrap();
        let runner = StaticPool::new(1);

        let direct_cfg = SgdConfig {
            num_latent: 3,
            epochs: 6,
            lambda: 0.02,
            learning_rate: 0.03,
            decay: 0.05,
            init_sd: 0.3,
            seed: 5,
            ..Default::default()
        };
        let direct = SgdTrainer::new(direct_cfg, &r).train();

        let spec = Bpmf::builder()
            .algorithm(Algorithm::Sgd)
            .latent(3)
            .epochs(6)
            .lambda(0.02)
            .learning_rate(0.03)
            .decay(0.05)
            .init_sd(0.3)
            .seed(5)
            .threads(1)
            .build()
            .unwrap();
        let mut unified = make_trainer(&spec);
        unified.fit(&data, &runner, &mut NoCallback).unwrap();
        let rec = unified.recommender().unwrap();

        for &(u, m, _) in &test {
            let a = direct.predict(u as usize, m as usize);
            let b = rec.predict(u as usize, m as usize);
            assert_eq!(a.to_bits(), b.to_bits(), "({u},{m}): {a} vs {b}");
        }
    }

    #[test]
    fn unified_defaults_match_each_algorithms_own_defaults() {
        // The spec leaves init_sd/lambda/learning_rate unset; the adapters
        // must fall back to each algorithm's own defaults (SGD inits at
        // 0.1, ALS at 0.3), not a shared flat value.
        let (r, rt, test, mean) = small();
        let data = TrainData::try_new(&r, &rt, mean, &test).unwrap();
        let runner = StaticPool::new(1);

        let direct_sgd = SgdTrainer::new(
            SgdConfig {
                num_latent: 3,
                epochs: 2,
                seed: 5,
                ..Default::default()
            },
            &r,
        )
        .train();
        let direct_als = AlsTrainer::new(
            AlsConfig {
                num_latent: 3,
                sweeps: 2,
                seed: 5,
                ..Default::default()
            },
            &r,
            &rt,
        )
        .train(&runner);

        for (algorithm, direct) in [(Algorithm::Sgd, &direct_sgd), (Algorithm::Als, &direct_als)] {
            let spec = Bpmf::builder()
                .algorithm(algorithm)
                .latent(3)
                .epochs(2)
                .sweeps(2)
                .seed(5)
                .threads(1)
                .build()
                .unwrap();
            let mut unified = make_trainer(&spec);
            unified.fit(&data, &runner, &mut NoCallback).unwrap();
            let rec = unified.recommender().unwrap();
            for &(u, m, _) in &test {
                assert_eq!(
                    direct.predict(u as usize, m as usize).to_bits(),
                    rec.predict(u as usize, m as usize).to_bits(),
                    "{algorithm}: default-config drift between unified and direct paths"
                );
            }
        }
    }

    #[test]
    fn early_stop_halts_baseline_sweeps() {
        let (r, rt, test, mean) = small();
        let data = TrainData::try_new(&r, &rt, mean, &test).unwrap();
        let runner = StaticPool::new(1);
        for algorithm in [Algorithm::Als, Algorithm::Sgd] {
            let mut trainer = make_trainer(&spec(algorithm));
            let mut cb = |s: &IterStats| {
                if s.iter + 1 >= 2 {
                    FitControl::Stop
                } else {
                    FitControl::Continue
                }
            };
            let report = trainer.fit(&data, &runner, &mut cb).unwrap();
            assert_eq!(report.iters.len(), 2, "{algorithm}");
            assert!(report.early_stopped, "{algorithm}");
        }
    }

    #[test]
    fn unsupported_features_are_typed_errors() {
        let (r, rt, test, mean) = small();
        let data = TrainData::try_new(&r, &rt, mean, &test).unwrap();
        let runner = StaticPool::new(1);
        let spec = Bpmf::builder()
            .algorithm(Algorithm::Als)
            .latent(3)
            .threads(1)
            .user_side_info(bpmf_linalg::Mat::zeros(8, 2), 1.0)
            .build()
            .unwrap();
        let err = make_trainer(&spec)
            .fit(&data, &runner, &mut NoCallback)
            .unwrap_err();
        assert_eq!(
            err,
            BpmfError::Unsupported {
                algorithm: Algorithm::Als,
                feature: "side information"
            }
        );
    }

    #[test]
    fn rating_bounds_clamp_served_predictions() {
        let (r, rt, test, mean) = small();
        let data = TrainData::try_new(&r, &rt, mean, &test).unwrap();
        let runner = StaticPool::new(1);
        let spec = Bpmf::builder()
            .algorithm(Algorithm::Sgd)
            .latent(3)
            .epochs(3)
            .threads(1)
            .rating_bounds(2.5, 3.5)
            .build()
            .unwrap();
        let mut trainer = make_trainer(&spec);
        trainer.fit(&data, &runner, &mut NoCallback).unwrap();
        let rec = trainer.recommender().unwrap();
        for u in 0..8 {
            for m in 0..6 {
                let p = rec.predict(u, m);
                assert!((2.5..=3.5).contains(&p), "unclamped prediction {p}");
            }
        }
    }
}
