//! Stochastic gradient descent factorization (biased MF).
//!
//! The algorithm of the paper's reference \[3\] (Koren, Bell & Volinsky,
//! *Matrix factorization techniques for recommender systems*): for each
//! observed rating, nudge the user and movie factors along the gradient of
//! the regularized squared error
//!
//! ```text
//! e   = r − (mean + b_u + b_m + u·v)
//! u  += η (e·v − λ·u)      v  += η (e·u − λ·v)
//! b_u += η (e − λ·b_u)     b_m += η (e − λ·b_m)
//! ```
//!
//! with an inverse-time step-size decay `η_t = η₀ / (1 + d·t)`.
//!
//! Two execution modes:
//!
//! * [`SgdTrainer::train`] — the classic serial pass over a per-epoch
//!   shuffle of the ratings;
//! * [`SgdTrainer::train_stratified`] — the diagonal-strata parallel
//!   schedule of Gemulla et al.'s distributed SGD (KDD 2011): rows and
//!   columns are cut into `P` blocks; in sub-epoch `s`, worker `w`
//!   processes block `(w, (w+s) mod P)`, so no two workers ever touch the
//!   same user *or* movie row concurrently and no atomics are needed. This
//!   is SGD's answer to the data-distribution problem the paper solves for
//!   BPMF in §IV-B, which makes it the natural third column in the
//!   algorithm-comparison table.

use bpmf_linalg::{Mat, MatWriter};
use bpmf_sparse::Csr;
use bpmf_stats::{normal, Xoshiro256pp};

use crate::model::MfModel;

/// SGD hyperparameters.
#[derive(Clone, Debug)]
pub struct SgdConfig {
    /// Latent dimensions K.
    pub num_latent: usize,
    /// Initial learning rate η₀.
    pub learning_rate: f64,
    /// Inverse-time decay: `η_t = η₀ / (1 + decay · epoch)`.
    pub decay: f64,
    /// L2 regularization λ.
    pub lambda: f64,
    /// Epochs (full passes over the ratings).
    pub epochs: usize,
    /// Fit per-user and per-movie additive biases.
    pub use_biases: bool,
    /// Standard deviation of the factor initialization.
    pub init_sd: f64,
    /// Seed for initialization and epoch shuffles.
    pub seed: u64,
    /// Optional rating-scale clamp carried into the trained model.
    pub clip: Option<(f64, f64)>,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            num_latent: 16,
            learning_rate: 0.01,
            decay: 0.05,
            lambda: 0.02,
            epochs: 30,
            use_biases: true,
            init_sd: 0.1,
            seed: 42,
            clip: None,
        }
    }
}

impl SgdConfig {
    /// The step size used in `epoch` (0-based).
    pub fn learning_rate_at(&self, epoch: usize) -> f64 {
        self.learning_rate / (1.0 + self.decay * epoch as f64)
    }
}

/// SGD trainer over a fixed training matrix.
pub struct SgdTrainer {
    cfg: SgdConfig,
    ratings: Vec<(u32, u32, f64)>,
    nrows: usize,
    ncols: usize,
    global_mean: f64,
    users: Mat,
    movies: Mat,
    user_bias: Vec<f64>,
    movie_bias: Vec<f64>,
    rng: Xoshiro256pp,
    epochs_done: usize,
}

impl SgdTrainer {
    /// Set up a trainer for `r` (users × movies).
    pub fn new(cfg: SgdConfig, r: &Csr) -> Self {
        assert!(cfg.num_latent > 0, "need at least one latent dimension");
        assert!(cfg.learning_rate > 0.0, "learning rate must be positive");
        assert!(cfg.lambda >= 0.0, "lambda must be non-negative");
        let mut rng = Xoshiro256pp::seed_from_u64(cfg.seed);
        let k = cfg.num_latent;
        let mut init = |n: usize| {
            let mut m = Mat::zeros(n, k);
            for v in m.as_mut_slice() {
                *v = normal(&mut rng, 0.0, cfg.init_sd);
            }
            m
        };
        let users = init(r.nrows());
        let movies = init(r.ncols());
        let ratings: Vec<_> = r.iter().map(|(i, j, v)| (i as u32, j, v)).collect();
        let global_mean = if ratings.is_empty() {
            0.0
        } else {
            ratings.iter().map(|&(_, _, v)| v).sum::<f64>() / ratings.len() as f64
        };
        SgdTrainer {
            user_bias: vec![0.0; r.nrows()],
            movie_bias: vec![0.0; r.ncols()],
            nrows: r.nrows(),
            ncols: r.ncols(),
            cfg,
            ratings,
            global_mean,
            users,
            movies,
            rng,
            epochs_done: 0,
        }
    }

    /// Completed epochs.
    pub fn epochs_done(&self) -> usize {
        self.epochs_done
    }

    /// RMSE of the current parameters on the *training* ratings.
    pub fn train_rmse(&self) -> f64 {
        crate::metrics::rmse(&self.ratings, |u, m| self.predict(u, m))
    }

    /// RMSE of the current parameters on held-out ratings (clamped when the
    /// config carries a rating-scale clip) — lets callers trace convergence
    /// epoch by epoch without packaging a model.
    pub fn rmse_on(&self, test: &[(u32, u32, f64)]) -> f64 {
        crate::metrics::rmse(test, |u, m| {
            let p = self.predict(u, m);
            match self.cfg.clip {
                Some((lo, hi)) => p.clamp(lo, hi),
                None => p,
            }
        })
    }

    fn predict(&self, u: usize, m: usize) -> f64 {
        self.global_mean
            + self.user_bias[u]
            + self.movie_bias[m]
            + bpmf_linalg::vecops::dot(self.users.row(u), self.movies.row(m))
    }

    /// One serial epoch: shuffled pass over every rating.
    pub fn epoch(&mut self) {
        let lr = self.cfg.learning_rate_at(self.epochs_done);
        // Fisher–Yates over an index array; the rating triples stay put.
        let mut order: Vec<u32> = (0..self.ratings.len() as u32).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, self.rng.next_index(i + 1));
        }
        for &idx in &order {
            let (u, m, r) = self.ratings[idx as usize];
            sgd_step(
                &self.cfg,
                lr,
                self.global_mean,
                (u as usize, m as usize, r),
                self.users.row_mut(u as usize),
                // SAFETY-free split: users and movies are different fields.
                self.movies.row_mut(m as usize),
                &mut self.user_bias[u as usize],
                &mut self.movie_bias[m as usize],
            );
        }
        self.epochs_done += 1;
    }

    /// Run the configured number of serial epochs and package the model.
    pub fn train(mut self) -> MfModel {
        for _ in 0..self.cfg.epochs {
            self.epoch();
        }
        self.into_model()
    }

    /// One stratified-parallel epoch over `threads` workers (diagonal
    /// strata: `threads` sub-epochs, each running `threads` conflict-free
    /// blocks concurrently).
    pub fn epoch_stratified(&mut self, threads: usize) {
        assert!(threads > 0, "need at least one worker");
        if threads == 1 || self.ratings.is_empty() {
            self.epoch();
            return;
        }
        let p = threads;
        let lr = self.cfg.learning_rate_at(self.epochs_done);
        let row_block = |u: u32| (u as usize * p / self.nrows.max(1)).min(p - 1);
        let col_block = |m: u32| (m as usize * p / self.ncols.max(1)).min(p - 1);
        // Bucket ratings by (row block, column block), shuffled within each
        // bucket by construction order randomization.
        let mut buckets: Vec<Vec<(u32, u32, f64)>> = vec![Vec::new(); p * p];
        let mut order: Vec<u32> = (0..self.ratings.len() as u32).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, self.rng.next_index(i + 1));
        }
        for &idx in &order {
            let (u, m, r) = self.ratings[idx as usize];
            buckets[row_block(u) * p + col_block(m)].push((u, m, r));
        }
        let cfg = &self.cfg;
        let mean = self.global_mean;
        for stratum in 0..p {
            let users = MatWriter::new(&mut self.users);
            let movies = MatWriter::new(&mut self.movies);
            let ub = SliceWriter::new(&mut self.user_bias);
            let mb = SliceWriter::new(&mut self.movie_bias);
            let buckets = &buckets;
            std::thread::scope(|scope| {
                for w in 0..p {
                    let users = &users;
                    let movies = &movies;
                    let ub = &ub;
                    let mb = &mb;
                    scope.spawn(move || {
                        let block = &buckets[w * p + (w + stratum) % p];
                        for &(u, m, r) in block {
                            // SAFETY: worker w owns row block w and column
                            // block (w+stratum)%p exclusively within this
                            // stratum, so every row and bias cell touched
                            // here is unaliased.
                            unsafe {
                                sgd_step(
                                    cfg,
                                    lr,
                                    mean,
                                    (u as usize, m as usize, r),
                                    users.row_mut(u as usize),
                                    movies.row_mut(m as usize),
                                    ub.get_mut(u as usize),
                                    mb.get_mut(m as usize),
                                );
                            }
                        }
                    });
                }
            });
        }
        self.epochs_done += 1;
    }

    /// Run the configured number of stratified-parallel epochs.
    pub fn train_stratified(mut self, threads: usize) -> MfModel {
        for _ in 0..self.cfg.epochs {
            self.epoch_stratified(threads);
        }
        self.into_model()
    }

    /// Package the current parameters without further epochs.
    pub fn into_model(self) -> MfModel {
        let mut model = MfModel::new(self.users, self.movies, self.global_mean);
        if self.cfg.use_biases {
            model.user_bias = self.user_bias;
            model.movie_bias = self.movie_bias;
        }
        model.clip = self.cfg.clip;
        model
    }
}

/// One SGD update. Biases are only moved when configured.
#[allow(clippy::too_many_arguments)]
fn sgd_step(
    cfg: &SgdConfig,
    lr: f64,
    mean: f64,
    (u, m, r): (usize, usize, f64),
    urow: &mut [f64],
    vrow: &mut [f64],
    bu: &mut f64,
    bm: &mut f64,
) {
    let _ = (u, m);
    let mut pred = mean + bpmf_linalg::vecops::dot(urow, vrow);
    if cfg.use_biases {
        pred += *bu + *bm;
    }
    let e = r - pred;
    for (uu, vv) in urow.iter_mut().zip(vrow.iter_mut()) {
        let (du, dv) = (e * *vv - cfg.lambda * *uu, e * *uu - cfg.lambda * *vv);
        *uu += lr * du;
        *vv += lr * dv;
    }
    if cfg.use_biases {
        *bu += lr * (e - cfg.lambda * *bu);
        *bm += lr * (e - cfg.lambda * *bm);
    }
}

/// Raw-pointer view of a slice for disjoint-index concurrent writes (the
/// bias analogue of [`MatWriter`]).
struct SliceWriter {
    ptr: *mut f64,
    len: usize,
}

// SAFETY: used only under the stratified schedule, which hands each index
// to exactly one worker per stratum.
unsafe impl Send for SliceWriter {}
unsafe impl Sync for SliceWriter {}

impl SliceWriter {
    fn new(s: &mut [f64]) -> Self {
        SliceWriter {
            ptr: s.as_mut_ptr(),
            len: s.len(),
        }
    }

    /// # Safety
    ///
    /// No two concurrent calls may receive the same `i`, and no other
    /// reference to the slice may be alive.
    #[allow(clippy::mut_from_ref)]
    unsafe fn get_mut(&self, i: usize) -> &mut f64 {
        debug_assert!(i < self.len);
        unsafe { &mut *self.ptr.add(i) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpmf_sparse::Coo;

    /// Planted rank-2 ratings with a small deterministic "noise".
    fn planted(nrows: usize, ncols: usize) -> Csr {
        let mut coo = Coo::new(nrows, ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                if (i * 7 + j * 3) % 4 != 0 {
                    let u = [(i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()];
                    let v = [(j as f64 * 0.53).cos(), (j as f64 * 0.29).sin()];
                    coo.push(i, j, 3.0 + u[0] * v[0] + u[1] * v[1]);
                }
            }
        }
        Csr::from_coo_owned(coo)
    }

    #[test]
    fn training_reduces_train_rmse() {
        let r = planted(30, 20);
        let cfg = SgdConfig {
            num_latent: 4,
            epochs: 0,
            learning_rate: 0.05,
            decay: 0.01,
            init_sd: 0.3,
            ..Default::default()
        };
        let mut t = SgdTrainer::new(cfg, &r);
        let before = t.train_rmse();
        for _ in 0..40 {
            t.epoch();
        }
        let after = t.train_rmse();
        assert!(
            after < before * 0.5,
            "SGD failed to reduce train RMSE: {before} -> {after}"
        );
    }

    #[test]
    fn same_seed_is_deterministic() {
        let r = planted(15, 10);
        let cfg = SgdConfig {
            num_latent: 3,
            epochs: 5,
            ..Default::default()
        };
        let a = SgdTrainer::new(cfg.clone(), &r).train();
        let b = SgdTrainer::new(cfg, &r).train();
        assert_eq!(a.user_factors.max_abs_diff(&b.user_factors), 0.0);
        assert_eq!(a.movie_factors.max_abs_diff(&b.movie_factors), 0.0);
    }

    #[test]
    fn biases_capture_additive_structure() {
        // Ratings are purely additive: mean + row offset + column offset.
        let (nrows, ncols) = (20, 12);
        let mut coo = Coo::new(nrows, ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                if (i + j) % 3 != 0 {
                    coo.push(i, j, 3.0 + 0.1 * i as f64 - 0.15 * j as f64);
                }
            }
        }
        let r = Csr::from_coo_owned(coo);
        let base = SgdConfig {
            num_latent: 1,
            epochs: 60,
            init_sd: 0.01,
            learning_rate: 0.05,
            ..Default::default()
        };
        let with = SgdTrainer::new(
            SgdConfig {
                use_biases: true,
                ..base.clone()
            },
            &r,
        )
        .train();
        let without = SgdTrainer::new(
            SgdConfig {
                use_biases: false,
                ..base
            },
            &r,
        )
        .train();
        let test: Vec<_> = r.iter().map(|(i, j, v)| (i as u32, j, v)).collect();
        let rmse_with = with.rmse_on(&test);
        let rmse_without = without.rmse_on(&test);
        assert!(
            rmse_with < rmse_without * 0.6,
            "biases should fit additive data far better: {rmse_with} vs {rmse_without}"
        );
    }

    #[test]
    fn stratified_converges_like_serial() {
        let r = planted(40, 24);
        let cfg = SgdConfig {
            num_latent: 4,
            epochs: 40,
            learning_rate: 0.05,
            decay: 0.01,
            init_sd: 0.3,
            ..Default::default()
        };
        let serial = SgdTrainer::new(cfg.clone(), &r).train();
        let strat = SgdTrainer::new(cfg, &r).train_stratified(3);
        let test: Vec<_> = r.iter().map(|(i, j, v)| (i as u32, j, v)).collect();
        let (a, b) = (serial.rmse_on(&test), strat.rmse_on(&test));
        assert!(a < 0.2, "serial SGD should fit planted data, rmse {a}");
        assert!(b < 0.2, "stratified SGD should fit planted data, rmse {b}");
    }

    #[test]
    fn learning_rate_decays_inverse_time() {
        let cfg = SgdConfig {
            learning_rate: 0.1,
            decay: 0.5,
            ..Default::default()
        };
        assert_eq!(cfg.learning_rate_at(0), 0.1);
        assert!((cfg.learning_rate_at(2) - 0.05).abs() < 1e-15);
        assert!(cfg.learning_rate_at(10) < cfg.learning_rate_at(9));
    }

    #[test]
    fn empty_matrix_trains_to_global_mean_model() {
        let coo = Coo::new(4, 4);
        let r = Csr::from_coo_owned(coo);
        let cfg = SgdConfig {
            num_latent: 2,
            epochs: 3,
            init_sd: 0.0,
            ..Default::default()
        };
        let model = SgdTrainer::new(cfg, &r).train();
        assert_eq!(model.predict(1, 2), 0.0); // mean of no ratings = 0
    }

    #[test]
    fn clip_is_carried_into_the_model() {
        let r = planted(10, 8);
        let cfg = SgdConfig {
            epochs: 1,
            clip: Some((1.0, 5.0)),
            ..Default::default()
        };
        let model = SgdTrainer::new(cfg, &r).train();
        for i in 0..10 {
            for j in 0..8 {
                let p = model.predict(i, j);
                assert!((1.0..=5.0).contains(&p), "clip violated: {p}");
            }
        }
    }
}
