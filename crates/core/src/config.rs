//! Sampler configuration.

use serde::{Deserialize, Serialize};

/// BPMF hyper- and engineering parameters.
///
/// Statistical parameters follow the original BPMF paper; engineering
/// parameters follow CLUSTER'16 (notably the 1000-rating threshold above
/// which an item update switches to the parallel Cholesky kernel, §III).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BpmfConfig {
    /// Number of latent features `K`.
    pub num_latent: usize,
    /// Observation precision α of the rating noise model.
    pub alpha: f64,
    /// Gibbs iterations discarded before posterior averaging starts.
    pub burnin: usize,
    /// Gibbs iterations that contribute to the posterior mean.
    pub samples: usize,
    /// Ratings count at or above which an item uses the parallel Cholesky
    /// kernel (the paper's ≈1000).
    pub parallel_threshold: usize,
    /// Ratings count at or below which an item uses the rank-one update
    /// kernel; `None` selects `K/8`, the measured crossover against the
    /// blocked serial kernel (re-measure on new hardware with
    /// `bpmf_bench::calibrate::calibrate_rank_one_max` or
    /// `cargo run --release -p bpmf-bench --bin perf_snapshot`).
    pub rank_one_max: Option<usize>,
    /// Threads used *inside* one parallel-kernel item update.
    pub kernel_threads: usize,
    /// Master seed; every worker/rank stream is derived from it by RNG
    /// jumps.
    pub seed: u64,
    /// Clamp every prediction into `[min, max]` — the standard treatment of
    /// bounded rating scales (e.g. 0.5–5 stars) in reference BPMF
    /// implementations. `None` leaves predictions unclamped.
    #[serde(default)]
    pub rating_bounds: Option<(f64, f64)>,
}

impl Default for BpmfConfig {
    fn default() -> Self {
        BpmfConfig {
            num_latent: 16,
            alpha: 2.0,
            burnin: 8,
            samples: 24,
            parallel_threshold: 1000,
            rank_one_max: None,
            kernel_threads: std::thread::available_parallelism().map_or(2, |n| n.get()),
            seed: 42,
            rating_bounds: None,
        }
    }
}

impl BpmfConfig {
    /// Total Gibbs iterations (`burnin + samples`).
    pub fn iterations(&self) -> usize {
        self.burnin + self.samples
    }

    /// Effective rank-one/serial-Cholesky crossover. The `K/8` default was
    /// measured with the blocked panel kernels (the old `K/2` predates
    /// them: blocked accumulation made the serial kernel faster while the
    /// rank-one kernel was unchanged, pushing the crossover down).
    pub fn rank_one_threshold(&self) -> usize {
        self.rank_one_max.unwrap_or((self.num_latent / 8).max(1))
    }

    /// Clamp a prediction to the configured rating bounds (identity when
    /// unset).
    #[inline]
    pub fn clamp_rating(&self, p: f64) -> f64 {
        match self.rating_bounds {
            Some((lo, hi)) => p.clamp(lo, hi),
            None => p,
        }
    }

    /// Reject nonsensical settings with a typed error.
    pub fn try_validate(&self) -> Result<(), crate::BpmfError> {
        use crate::BpmfError;
        if self.num_latent == 0 {
            return Err(BpmfError::InvalidLatentDim(self.num_latent));
        }
        if self.alpha <= 0.0 || !self.alpha.is_finite() {
            return Err(BpmfError::InvalidAlpha(self.alpha));
        }
        if self.kernel_threads == 0 {
            return Err(BpmfError::InvalidThreads(self.kernel_threads));
        }
        if let Some((lo, hi)) = self.rating_bounds {
            if lo >= hi || !lo.is_finite() || !hi.is_finite() {
                return Err(BpmfError::InvalidRatingBounds { min: lo, max: hi });
            }
        }
        Ok(())
    }

    /// Panic early on nonsensical settings (zero latent dimension,
    /// non-positive noise precision). Legacy entry point; library code
    /// should prefer [`BpmfConfig::try_validate`].
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        let cfg = BpmfConfig::default();
        cfg.validate();
        assert_eq!(cfg.iterations(), cfg.burnin + cfg.samples);
        assert_eq!(cfg.rank_one_threshold(), (cfg.num_latent / 8).max(1));
    }

    #[test]
    fn explicit_rank_one_threshold_wins() {
        let cfg = BpmfConfig {
            rank_one_max: Some(7),
            ..Default::default()
        };
        assert_eq!(cfg.rank_one_threshold(), 7);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn bad_alpha_is_rejected() {
        BpmfConfig {
            alpha: 0.0,
            ..Default::default()
        }
        .validate();
    }
}
