//! Posterior serving: batched scoring and filtered top-N recommendation
//! over any fitted [`Recommender`].
//!
//! Training produces a posterior over user/item factors; this module is
//! the *serving* side of that pipeline — the "suggestions for movies on
//! Netflix and books for Amazon" of the paper's introduction, engineered
//! for the roadmap's heavy-traffic north star:
//!
//! * **batched scoring** — [`RecommendService::score_batch`] and the
//!   whole-catalogue scan behind [`RecommendService::top_n`] go through
//!   the blocked [`bpmf_linalg::Mat::matvec_into`] /
//!   [`bpmf_linalg::Mat::gather_matvec_into`] kernels (one virtual call
//!   per *request*, not per pair);
//! * **multi-user micro-batching** — [`RecommendService::recommend_batch`]
//!   serves a block of users through one `Recommender::score_block` call
//!   per [`MICRO_BATCH`] users: factor models turn that into a single
//!   register-tiled GEMM ([`bpmf_linalg::gemm_packed_into`]) against the
//!   transposed item factors, packed once into the kernel's blocked
//!   layout ([`bpmf_linalg::PackedB`]), so the catalogue is streamed once
//!   per block instead of once per user — the difference between
//!   compute-bound and memory-streaming once the factor panel falls out
//!   of L2;
//! * **candidate filtering** — exclude already-rated items straight from
//!   the training matrix, allowlists/denylists, and a minimum training
//!   support (long-tail items with fewer ratings than `min_support` are
//!   suppressed);
//! * **pluggable ranking policies** ([`RankPolicy`]) — rank by posterior
//!   mean, by UCB (`mean + β·std`), or by Thompson sampling, the latter
//!   two driven by [`Recommender::predict_with_uncertainty`] — the
//!   exploration/exploitation knob BPMF's posterior provides "for free"
//!   (point estimators degrade gracefully to the mean);
//! * **the serving daemon** ([`daemon`]) — a persistent TCP process that
//!   turns micro-batching from an offline trick into a serving
//!   architecture by *coalescing* genuinely concurrent traffic.
//!
//! # Daemon architecture
//!
//! The daemon decouples request arrival from batched computation (the
//! asynchronous-communication idea of the paper's follow-up, applied to
//! serving):
//!
//! ```text
//!  client conns          bounded MPSC            worker pool
//!  ┌──────────┐  submit  ┌───────────┐  batch   ┌─────────────────────┐
//!  │ reader 0 ├───────┐  │ coalesce  │ ≤64 reqs │ RecommendService #0 │
//!  │ reader 1 ├───────┼─▶│  ::Queue  ├─────────▶│ RecommendService #1 │
//!  │ reader N ├───────┘  │ (deadline │          │   … recommend_each  │
//!  └──────────┘          │  │ size)  │          │   one GEMM / block  │
//!        ▲               └───────────┘          └──────────┬──────────┘
//!        └────────────── per-connection writer ◀───────────┘
//! ```
//!
//! * Every connection reader parses newline-delimited JSON ([`wire`]),
//!   resolves per-request policy/filters against the daemon defaults, and
//!   submits to one **bounded** queue ([`coalesce::Queue`]) — a full
//!   queue blocks the reader, which is the backpressure that keeps a
//!   traffic spike from ballooning memory.
//! * Workers drain the queue in **blocks**: a batch flushes when
//!   [`MICRO_BATCH`] requests are pending *or* the oldest request has
//!   waited `batch_window`, whichever comes first. The window is the
//!   latency/efficiency knob: `0` serves every request alone (lowest
//!   possible queueing delay, one catalogue pass per request); a few
//!   milliseconds lets concurrent requests share one packed-GEMM
//!   catalogue pass ([`RecommendService::recommend_each`] →
//!   [`Recommender::score_block`]) at the cost of at most that much
//!   added latency under light load.
//! * Each worker owns a [`RecommendService`] over the *shared* model, so
//!   the transposed/packed factor caches (`OnceLock`) are built once per
//!   process and shared by every worker, and each user's reply is routed
//!   back to its originating connection through the per-connection
//!   writer.
//!
//! Results are **arrival-order independent**: scoring is per-row
//! deterministic regardless of batch composition, and Thompson draws are
//! stateless per `(seed, item)` (see [`thompson_draw`]), so coalescing —
//! and catalogue sharding — never changes what any client receives.
//!
//! # Sharded tier
//!
//! When one catalogue outgrows one process, [`shard`] partitions it into
//! contiguous GEMM-panel-aligned column ranges and [`router`] puts a
//! scatter-gather front end over the per-shard daemons. The router
//! speaks the same [`wire`] protocol on both sides, so clients cannot
//! tell it from a single whole-catalogue daemon — down to the bit
//! pattern of every score:
//!
//! ```text
//!              clients (same newline-JSON wire protocol)
//!                 │ recommend / health / stats / ping
//!                 ▼
//!  ┌─────────────────────────────┐   admission control (inflight cap),
//!  │        router::serve        │   typed errors: overloaded,
//!  │  scatter ─► every shard     │   partial_result, timeout,
//!  │  gather  ─► k-way merge     │   unsupported_version
//!  └──┬─────────┬─────────┬─────┘
//!     │ persistent, pipelined, reconnect-with-backoff links
//!     ▼         ▼         ▼
//!  ┌───────┐ ┌───────┐ ┌───────┐   each daemon serves one contiguous
//!  │shard 0│ │shard 1│ │shard 2│   GEMM_NC-aligned item range
//!  │ [0,n₀)│ │[n₀,n₁)│ │[n₁,N) │   (ShardView; global ids on the wire)
//!  └───────┘ └───────┘ └───────┘
//! ```
//!
//! The alignment is what buys bit-identity: a shard's packed factor
//! panel is byte-identical to the corresponding slice of the full
//! catalogue's packed panel, and [`shard::merge_top_n`] uses the exact
//! total order of the single-process ranking (score descending, ties to
//! the lower item id).
//!
//! # Replicated groups and failover
//!
//! Each shard range can be served by a **replica group** — several
//! daemons holding the same slice of the same checkpoint — and the
//! router then routes each scatter to one healthy replica per range
//! (least-loaded, ties to the lowest index: a pure function, so drills
//! reproduce):
//!
//! ```text
//!                         router::serve
//!        range 0 ────────────┐        range 1 ──────────┐
//!        ▼                   ▼        ▼                 ▼
//!  ┌───────────┐      ┌───────────┐  ┌───────────┐ ┌───────────┐
//!  │ replica 0 │      │ replica 1 │  │ replica 0 │ │ replica 1 │
//!  │  [0, n₀)  │      │  [0, n₀)  │  │ [n₀, N)   │ │ [n₀, N)   │
//!  └───────────┘      └───────────┘  └───────────┘ └───────────┘
//!     twin daemons, same slice + epoch; scatter goes to ONE of them
//! ```
//!
//! Scoring is a pure, deterministic read, so a request whose link dies
//! mid-flight (or times out) is **transparently retried** on a surviving
//! replica of the same range under a bounded per-request retry budget —
//! duplicate replies carry identical bits, the first one wins. A typed
//! [`wire::CODE_PARTIAL_RESULT`] refusal — never a silently truncated
//! ranking and never a hang — surfaces only when *every* replica of a
//! range is down. Replicas of a group must serve the same checkpoint
//! epoch: a divergent replica is quarantined (typed
//! [`wire::CODE_EPOCH_MISMATCH`] diagnostics, `epoch_refusals` counter)
//! rather than allowed to mix factors from two trainings into one
//! ranking, and the pin resets when a whole group goes down so a
//! rolling restart onto a new checkpoint recovers. `health`/`stats`
//! aggregate per-replica reports (dead replicas, dead ranges, epoch
//! skew, failover/retry counters) for diagnostics, and [`faults`]
//! provides the seeded fault-injection layer (`delay` / `drop` /
//! `close` / `panic` at scripted request ordinals, plus `truncate` /
//! `corrupt` / `enospc` on a separate artifact-write counter) that makes
//! the failover and recovery paths deterministically testable — off in
//! release paths.
//!
//! # Self-healing fleet: supervision
//!
//! Failover keeps traffic flowing while a replica is down; [`supervise`]
//! is what brings the replica *back*. One supervisor process owns the
//! whole fleet as child processes, declared once as
//! [`supervise::ReplicaSpec`]s (`bpmf-train serve-fleet` on the CLI):
//!
//! ```text
//!                    serve::supervise (one process)
//!    SIGCHLD-aware reap loop · health probes · restart budgets
//!      │ spawn/respawn (argv verbatim → ORIGINAL ports)
//!      ▼
//!  ┌───────────┐ ┌───────────┐ ┌───────────┐ ┌───────────┐
//!  │ 0/2:7001  │ │ 0/2:7002  │ │ 1/2:7003  │ │ 1/2:7004  │  children
//!  └───────────┘ └───────────┘ └───────────┘ └───────────┘
//!      ▲ fixed replica addresses, so the router needs no re-config
//!  ┌───┴────────────────────────────────────────────────┐
//!  │ router::serve — failover bridges each restart gap  │
//!  └────────────────────────────────────────────────────┘
//! ```
//!
//! * **Reaping**: children are `waitpid`-ed promptly (a `SIGCHLD` flag
//!   short-cuts the poll tick), so a crashed replica never lingers as a
//!   zombie and its exit is observed within one tick.
//! * **Respawn on the original port**: the replica's argv is reused
//!   verbatim and the daemon binds with `SO_REUSEADDR`
//!   ([`net::bind_reuseaddr`]), so the address survives `TIME_WAIT`.
//!   The router's per-range group pinning re-admits the replica at the
//!   epoch it already pinned — recovery is client-invisible.
//! * **Restart budget**: each respawn waits a seeded, jittered
//!   exponential backoff ([`net::jittered_backoff`], one seed per
//!   replica — a fleet-wide crash does not respawn as a thundering
//!   herd). A replica charged `restart_limit` *consecutive* failures —
//!   exits or probe kills, without a healthy probe in between — is
//!   **quarantined** with a typed [`wire::CODE_CRASH_LOOP`] diagnostic
//!   instead of being restarted forever; a healthy probe refunds the
//!   budget, so a slow memory leak that crashes daily never accumulates
//!   into quarantine.
//! * **Health probes**: a running child is probed over its own wire
//!   protocol (`ping`); `probe_failures` consecutive misses mean the
//!   process is alive but not serving (wedged accept loop, deadlock) —
//!   it is killed and charged like a crash.
//! * **Integrity gate**: before *every* (re)spawn the replica's
//!   checkpoint is re-verified ([`crate::checkpoint::read_checkpoint`];
//!   slabs carry per-section CRC32C the same way). A corrupt artifact
//!   quarantines the replica immediately with
//!   [`wire::CODE_CORRUPT_ARTIFACT`] — the one thing a self-healing
//!   loop must never do is resurrect a replica onto damaged state and
//!   serve garbage rankings that *look* healthy.
//!
//! Quarantine is deliberately terminal per supervisor run: budgets and
//! corrupt artifacts need an operator (or a fresh deploy) — an automatic
//! un-quarantine would just re-enter the crash loop.
//!
//! # Live models: RCU-style swap and rolling reload
//!
//! A daemon *owns* its model behind an epoch-stamped
//! [`crate::ModelHandle`] — an RCU-style atomic pointer — instead of
//! borrowing one for its whole life. Workers pin a guard per micro-batch
//! (read side: one atomic load, no lock on the scoring path); a
//! [`wire::CMD_RELOAD`] request loads + CRC-verifies a new checkpoint on
//! the *connection* thread, validates it against the running shard's
//! range, rebuilds the posterior, and publishes it with one pointer swap
//! (write side):
//!
//! ```text
//!   connection thread                      worker threads
//!   ─────────────────                      ──────────────
//!   reload v2.ckpt                         guard = handle.load()  ←─ pin
//!     read + CRC ✔                         … score micro-batch
//!     shard range ✔         swap           … on pinned version
//!     rebuild posterior ──────────▶ ptr    stale? re-pin, re-score,
//!     reply {model_epoch}                  THEN reply (never mixed)
//! ```
//!
//! Requests in flight during a swap finish against exactly one version —
//! a worker that observes the swap mid-batch re-pins and re-scores the
//! whole batch before replying, so every reply is bit-identical to the
//! old *or* the new model, never a blend; staleness is bounded by one
//! micro-batch. Zero requests are dropped or errored by a reload.
//!
//! The supervisor turns this into **fleet freshness**: when a replica's
//! checkpoint file changes on disk (a trainer finishing `--resume`d
//! warm-start iterations, for instance), it verifies the new artifact
//! first and then pushes `reload` across each replica *group* one
//! replica at a time — the router's failover covers the one briefly
//! mid-swap replica, and its health report flags the transient
//! intra-group epoch skew as an informational
//! [`wire::CODE_MODEL_RELOAD`] diagnostic (never `degraded`):
//!
//! ```text
//!   trainer ──writes──▶ v2.ckpt (shared path)
//!                         │ supervisor: stat poll → CRC verify
//!              ┌──────────┴──────────┐   then, one group at a time,
//!              ▼ reload              │   one replica at a time:
//!   ┌───────────┐ ┌───────────┐     ▼
//!   │ replica 0 │ │ replica 1 │   (next pass: replica 1, then
//!   │ epoch 100 │ │ epoch 60  │    the other group's replicas)
//!   └───────────┘ └───────────┘
//!       range keeps serving throughout; skew is SEV_INFO
//! ```
//!
//! Cold-start users ride the same owned-model surface:
//! [`wire::CMD_FOLD_IN`] folds a brand-new user's ratings into the
//! *served* posterior with one conjugate kernel call
//! ([`crate::Recommender::fold_in_user`], item factors fixed) and
//! returns their factors plus a ranked list — milliseconds, no retrain,
//! deterministic.
//!
//! ```
//! use bpmf::serve::{RankPolicy, RecommendService};
//! use bpmf::{Bpmf, NoCallback, TrainData, Trainer};
//! use bpmf_sparse::{Coo, Csr};
//!
//! let mut coo = Coo::new(4, 6);
//! for (u, m, r) in [(0, 0, 5.0), (0, 1, 3.0), (1, 0, 4.0), (2, 2, 1.0), (3, 4, 2.0)] {
//!     coo.push(u, m, r);
//! }
//! let r = Csr::from_coo_owned(coo);
//! let rt = r.transpose();
//! let data = TrainData::try_new(&r, &rt, 3.0, &[]).unwrap();
//! let spec = Bpmf::builder().latent(2).burnin(2).samples(4).threads(1).build().unwrap();
//! let runner = spec.runner();
//! let mut trainer = spec.gibbs_trainer();
//! trainer.fit(&data, runner.as_ref(), &mut NoCallback).unwrap();
//!
//! let mut service = RecommendService::for_train_data(trainer.recommender().unwrap(), &data)
//!     .policy(RankPolicy::Mean);
//! let top = service.top_n(0, 3);
//! assert!(top.len() <= 3);
//! assert!(top.iter().all(|rec| rec.item != 0 && rec.item != 1), "seen items filtered");
//! ```

pub mod coalesce;
pub mod daemon;
pub mod faults;
pub mod net;
pub mod router;
pub mod shard;
pub mod supervise;
pub mod wire;

use std::str::FromStr;

use bpmf_sparse::Csr;
use bpmf_stats::{normal, Xoshiro256pp};

use crate::api::Recommender;
use crate::error::BpmfError;
use crate::sampler::TrainData;

/// How [`RecommendService::top_n`] orders candidates.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum RankPolicy {
    /// Rank by the posterior-mean (or point-estimate) prediction.
    #[default]
    Mean,
    /// Upper confidence bound: `mean + beta · std`. Surfaces items the
    /// posterior is uncertain about; models without uncertainty degrade to
    /// the mean.
    Ucb {
        /// Exploration weight on the posterior standard deviation.
        beta: f64,
    },
    /// Thompson sampling: one draw from `Normal(mean, std)` per candidate,
    /// ranked by the draw. Draws are stateless per `(seed, item)` — see
    /// [`thompson_draw`] — so rankings are deterministic given the seed
    /// and independent of batch composition or catalogue partitioning;
    /// models without uncertainty degrade to the mean.
    Thompson {
        /// Seed keying every candidate's draw.
        seed: u64,
    },
}

impl FromStr for RankPolicy {
    type Err = BpmfError;

    /// `mean` | `ucb` | `ucb:BETA` | `thompson` | `thompson:SEED`.
    fn from_str(s: &str) -> Result<Self, BpmfError> {
        let lower = s.to_ascii_lowercase();
        let (name, arg) = match lower.split_once(':') {
            Some((n, a)) => (n, Some(a)),
            None => (lower.as_str(), None),
        };
        match name {
            "mean" if arg.is_none() => Ok(RankPolicy::Mean),
            "ucb" => {
                let beta = match arg {
                    None => 1.0,
                    Some(a) => a
                        .parse::<f64>()
                        .ok()
                        .filter(|b| b.is_finite() && *b >= 0.0)
                        .ok_or_else(|| BpmfError::UnknownPolicy(s.to_string()))?,
                };
                Ok(RankPolicy::Ucb { beta })
            }
            "thompson" | "ts" => {
                let seed = match arg {
                    None => 42,
                    Some(a) => a
                        .parse::<u64>()
                        .map_err(|_| BpmfError::UnknownPolicy(s.to_string()))?,
                };
                Ok(RankPolicy::Thompson { seed })
            }
            _ => Err(BpmfError::UnknownPolicy(s.to_string())),
        }
    }
}

/// Users scored per `Recommender::score_block` call inside
/// [`RecommendService::recommend_batch`], derived from the GEMM kernel's
/// cache geometry rather than hand-picked: with the `KC × NC` B-panel
/// pinned in L2 by the kernel, the rest of a nominal 1 MiB L2 budget is
/// split between the user-factor panel (`B × KC` doubles) and the score
/// panel (`B × NC` doubles), giving
/// `B = (L2 − KC·NC·8) / ((KC + NC)·8)`, rounded down to a multiple of 8
/// for the kernel's row tiles. At KC = NC = 256 that lands on 128 users —
/// double the old hardcoded 64, and it now tracks any retuning of
/// [`bpmf_linalg::GEMM_KC`]/[`bpmf_linalg::GEMM_NC`] automatically. The
/// `perf_snapshot` serve section records the measured B = 64 vs B = 256
/// throughput delta if this needs re-checking on new hardware.
pub const MICRO_BATCH: usize = {
    const L2_BUDGET_BYTES: usize = 1 << 20;
    const B: usize = (L2_BUDGET_BYTES - bpmf_linalg::GEMM_KC * bpmf_linalg::GEMM_NC * 8)
        / ((bpmf_linalg::GEMM_KC + bpmf_linalg::GEMM_NC) * 8);
    let aligned = B / 8 * 8;
    if aligned < 8 {
        8
    } else {
        aligned
    }
};

/// One ranked recommendation out of [`RecommendService::top_n`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Recommendation {
    /// Recommended item (movie) id.
    pub item: u32,
    /// The policy's ranking score (posterior-mean prediction under
    /// [`RankPolicy::Mean`]; includes the exploration term otherwise).
    pub score: f64,
}

/// One fully-resolved serving request inside a coalesced batch — the unit
/// the daemon's workers execute through
/// [`RecommendService::recommend_each`]. Per-request knobs (policy,
/// exclude-seen) have already been resolved against the daemon defaults by
/// the time one of these exists.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeRequest {
    /// User to recommend for.
    pub user: u32,
    /// List length (must be ≥ 1).
    pub top_n: usize,
    /// Ranking policy for this request.
    pub policy: RankPolicy,
    /// Skip the user's already-rated items (no-op when the service has no
    /// training matrix attached).
    pub exclude_seen: bool,
}

/// A serving front-end over any fitted [`Recommender`].
///
/// Construct with [`RecommendService::new`] (or
/// [`RecommendService::for_train_data`], which wires up exclude-seen and
/// min-support from the training matrix), chain the builder-style filters,
/// then call [`RecommendService::top_n`] / [`RecommendService::score_batch`]
/// per request. The service owns its score scratch, so repeated requests
/// allocate nothing.
pub struct RecommendService<'a> {
    model: &'a dyn Recommender,
    n_items: usize,
    train: Option<&'a Csr>,
    exclude_seen: bool,
    allow: Option<Vec<bool>>,
    deny: Option<Vec<bool>>,
    min_support: u32,
    support: Option<Vec<u32>>,
    policy: RankPolicy,
    /// Global id of the service's first item: recommendations come back
    /// as `item_base + local index`, and Thompson draws are keyed by the
    /// global id. 0 except when serving one shard of a partitioned
    /// catalogue (see [`shard`]).
    item_base: u32,
    scores: Vec<f64>,
    stds: Vec<f64>,
    /// Micro-batch scratch: up to [`MICRO_BATCH`] score rows, grown on the
    /// first `recommend_batch` call and reused afterwards.
    block_scores: Vec<f64>,
}

impl<'a> RecommendService<'a> {
    /// Service over `model` with a catalogue of `n_items` items and no
    /// filtering. Prefer [`RecommendService::for_train_data`] when the
    /// training matrix is at hand.
    pub fn new(model: &'a dyn Recommender, n_items: usize) -> Self {
        // Catch a catalogue mismatch here, at construction, rather than as
        // a buffer-size panic inside `score_all` on the first request.
        if let Some(model_items) = model.num_items() {
            assert_eq!(
                model_items, n_items,
                "model scores {model_items} items but the service was built for {n_items}"
            );
        }
        RecommendService {
            model,
            n_items,
            train: None,
            exclude_seen: false,
            allow: None,
            deny: None,
            min_support: 0,
            support: None,
            policy: RankPolicy::Mean,
            item_base: 0,
            scores: vec![0.0; n_items],
            stds: Vec::new(),
            block_scores: Vec::new(),
        }
    }

    /// Service wired to the training data: catalogue size from the rating
    /// matrix, exclude-seen on, min-support counts available.
    ///
    /// Exclude-seen needs the resident rating matrix; when the data was
    /// trained out-of-core (no backing [`Csr`]), the service comes up
    /// without the seen-item filter — pair it with an explicit
    /// [`RecommendService::exclude_seen`] if the matrix is loadable.
    pub fn for_train_data(model: &'a dyn Recommender, data: &TrainData<'a>) -> Self {
        match data.r.as_csr() {
            Some(train) => Self::new(model, data.r.ncols()).exclude_seen(train),
            None => Self::new(model, data.r.ncols()),
        }
    }

    /// Exclude each user's already-rated items (rows of `train`) from
    /// recommendation. Also provides the per-item rating counts behind
    /// [`RecommendService::min_support`].
    pub fn exclude_seen(mut self, train: &'a Csr) -> Self {
        assert_eq!(train.ncols(), self.n_items, "train matrix catalogue size");
        self.train = Some(train);
        self.exclude_seen = true;
        self
    }

    /// Restrict recommendations to this candidate set.
    pub fn allow(mut self, items: &[u32]) -> Self {
        let mut mask = vec![false; self.n_items];
        for &m in items {
            mask[m as usize] = true;
        }
        self.allow = Some(mask);
        self
    }

    /// Never recommend these items (stacked on top of every other filter).
    pub fn deny(mut self, items: &[u32]) -> Self {
        let mask = self.deny.get_or_insert_with(|| vec![false; self.n_items]);
        for &m in items {
            mask[m as usize] = true;
        }
        self
    }

    /// Only recommend items with at least `n` training ratings. Requires a
    /// training matrix (see [`RecommendService::exclude_seen`]).
    ///
    /// # Panics
    ///
    /// Panics if no training matrix was attached.
    pub fn min_support(mut self, n: u32) -> Self {
        let train = self
            .train
            .expect("min_support needs the training matrix (call exclude_seen first)");
        if self.support.is_none() {
            let mut counts = vec![0u32; self.n_items];
            for (_, j, _) in train.iter() {
                counts[j as usize] += 1;
            }
            self.support = Some(counts);
        }
        self.min_support = n;
        self
    }

    /// Select the ranking policy.
    pub fn policy(mut self, policy: RankPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Serve a *shard*: the model's local item 0 is global item `base`.
    /// Recommendations come back with global ids, and Thompson draws are
    /// keyed by the global id, so a shard's lists splice bit-exactly into
    /// the whole-catalogue ranking (see [`shard`]).
    pub fn item_base(mut self, base: u32) -> Self {
        self.item_base = base;
        self
    }

    /// The model being served.
    pub fn model(&self) -> &dyn Recommender {
        self.model
    }

    /// Catalogue size.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Batched prediction into a caller buffer: `out[i] = predict(user,
    /// items[i])`, via the model's gathered batch kernel. Raw predicted
    /// ratings — the ranking policy does not apply here.
    pub fn score_batch(&self, user: usize, items: &[u32], out: &mut [f64]) {
        self.model.score_batch(user, items, out);
    }

    /// Whole-catalogue scores for `user` (raw predictions, no filtering),
    /// computed into the service's scratch buffer.
    pub fn score_all(&mut self, user: usize) -> &[f64] {
        self.model.score_all(user, &mut self.scores);
        &self.scores
    }

    fn passes_static_filters(&self, item: usize) -> bool {
        if let Some(allow) = &self.allow {
            if !allow[item] {
                return false;
            }
        }
        if let Some(deny) = &self.deny {
            if deny[item] {
                return false;
            }
        }
        if self.min_support > 0 {
            if let Some(support) = &self.support {
                if support[item] < self.min_support {
                    return false;
                }
            }
        }
        true
    }

    /// Top-`n` recommendations for `user` under the configured policy and
    /// filters, sorted best-first (ties broken by ascending item id, so
    /// results are deterministic).
    ///
    /// Candidates are scored in one whole-catalogue batch; the selection
    /// keeps a bounded worst-out heap, so a top-10 over a million items
    /// does no full sort.
    pub fn top_n(&mut self, user: usize, n: usize) -> Vec<Recommendation> {
        assert!(n > 0, "top-n needs n >= 1");
        // The scratch is taken out for the duration of the scan so the
        // selection pass can borrow the service mutably (policy RNG, std
        // buffer) alongside the scores.
        let mut scores = std::mem::take(&mut self.scores);
        self.model.score_all(user, &mut scores);
        let top = self.select_top_n(user, n, &scores);
        self.scores = scores;
        top
    }

    /// Serve a batch of heterogeneous requests — each with its own policy
    /// and exclude-seen choice — scoring [`MICRO_BATCH`] users per
    /// `Recommender::score_block` call exactly like
    /// [`RecommendService::recommend_batch`]. This is the execution path
    /// of the serving daemon's coalesced batches.
    ///
    /// Every request's result is exactly what a fresh service would
    /// return from a single [`RecommendService::top_n`] call — Thompson
    /// draws are stateless per `(seed, item)` ([`thompson_draw`]), so
    /// results are independent of arrival order, batch composition, and
    /// whatever the service served before. (That per-request determinism
    /// is what lets the daemon coalesce traffic without changing any
    /// client's answer.) Results come back in `reqs` order.
    pub fn recommend_each(&mut self, reqs: &[ServeRequest]) -> Vec<Vec<Recommendation>> {
        let n_items = self.n_items;
        let mut block = std::mem::take(&mut self.block_scores);
        let mut users = Vec::with_capacity(MICRO_BATCH.min(reqs.len()));
        let mut out = Vec::with_capacity(reqs.len());
        for chunk in reqs.chunks(MICRO_BATCH) {
            block.resize(chunk.len() * n_items, 0.0);
            users.clear();
            users.extend(chunk.iter().map(|r| r.user));
            self.model.score_block(&users, &mut block);
            for (i, req) in chunk.iter().enumerate() {
                assert!(req.top_n > 0, "top-n needs n >= 1");
                let row = &block[i * n_items..(i + 1) * n_items];
                out.push(self.select_for(
                    req.user as usize,
                    req.top_n,
                    row,
                    req.policy,
                    req.exclude_seen,
                ));
            }
        }
        self.block_scores = block;
        out
    }

    /// Top-`n` lists for a **block** of users — the multi-user micro-batch
    /// serving path of the roadmap's heavy-traffic north star.
    ///
    /// Users are scored [`MICRO_BATCH`] at a time through one
    /// `Recommender::score_block` call per block (factor models: one
    /// register-tiled GEMM streaming the catalogue once for the whole
    /// block), then each user's list is selected under the same policy
    /// and filters as [`RecommendService::top_n`]. Rankings match
    /// per-user `top_n` calls up to floating-point rounding: the block
    /// path scores
    /// through the GEMM while `top_n` scores through the transposed scan,
    /// which re-associate sums differently, so two candidates whose
    /// scores agree to ~1e-13 relative could in principle swap ranks.
    /// Results come back in `users` order.
    pub fn recommend_batch(&mut self, users: &[u32], n: usize) -> Vec<Vec<Recommendation>> {
        assert!(n > 0, "top-n needs n >= 1");
        let n_items = self.n_items;
        let mut block = std::mem::take(&mut self.block_scores);
        let mut out = Vec::with_capacity(users.len());
        for chunk in users.chunks(MICRO_BATCH) {
            block.resize(chunk.len() * n_items, 0.0);
            self.model.score_block(chunk, &mut block);
            for (i, &user) in chunk.iter().enumerate() {
                let row = &block[i * n_items..(i + 1) * n_items];
                out.push(self.select_top_n(user as usize, n, row));
            }
        }
        self.block_scores = block;
        out
    }

    /// Policy scoring + filtering + bounded top-`n` selection over an
    /// already-computed whole-catalogue score row, under the service-wide
    /// policy and filters.
    fn select_top_n(&mut self, user: usize, n: usize, scores: &[f64]) -> Vec<Recommendation> {
        let (policy, exclude_seen) = (self.policy, self.exclude_seen);
        self.select_for(user, n, scores, policy, exclude_seen)
    }

    /// Selection under explicit per-request policy and filters.
    fn select_for(
        &mut self,
        user: usize,
        n: usize,
        scores: &[f64],
        policy: RankPolicy,
        exclude_seen: bool,
    ) -> Vec<Recommendation> {
        // Uncertainty-aware policies take one batched std scan up front
        // instead of a per-candidate `predict_with_uncertainty` round trip
        // (which would recompute every mean only to discard it).
        let has_std = if policy == RankPolicy::Mean {
            false
        } else {
            self.stds.resize(self.n_items, 0.0);
            self.model.uncertainty_all(user, &mut self.stds)
        };
        let seen: &[u32] = match (exclude_seen, self.train) {
            (true, Some(train)) => train.row(user).0,
            _ => &[],
        };

        // Bounded selection: `heap` holds the current top candidates,
        // worst-first (entry 0 is the weakest of the kept set).
        let mut heap: Vec<Recommendation> = Vec::with_capacity(n + 1);
        for (item, &mean) in scores.iter().enumerate().take(self.n_items) {
            if !self.passes_static_filters(item) {
                continue;
            }
            if !seen.is_empty() && seen.binary_search(&(item as u32)).is_ok() {
                continue;
            }
            let std = if has_std { self.stds[item] } else { 0.0 };
            let global = self.item_base + item as u32;
            let score = match policy {
                RankPolicy::Mean => mean,
                RankPolicy::Ucb { beta } => mean + beta * std,
                RankPolicy::Thompson { seed } => thompson_draw(seed, global as u64, mean, std),
            };
            let cand = Recommendation {
                item: global,
                score,
            };
            if heap.len() < n {
                heap.push(cand);
                sift_up(&mut heap);
            } else if better(&cand, &heap[0]) {
                heap[0] = cand;
                sift_down(&mut heap);
            }
        }
        // Worst-first heap → best-first list.
        heap.sort_by(|a, b| {
            b.score
                .total_cmp(&a.score)
                .then_with(|| a.item.cmp(&b.item))
        });
        heap
    }
}

/// The Thompson score for one candidate: a single draw from
/// `Normal(mean, std)` on a stream keyed by `(seed, item)`.
///
/// Draws are **stateless per item**: each candidate's stream is derived
/// from the policy seed and the item's *global* id, never from how many
/// candidates were scored before it. This is what makes Thompson
/// rankings independent of batch composition, arrival order, *and
/// catalogue partitioning* — a shard scoring items `[lo, hi)` produces
/// for item `j` exactly the draw the whole-catalogue daemon produces,
/// which the sharded serving tier's byte-identity gate rests on.
///
/// The item id is mixed with the 64-bit golden ratio before keying, so
/// neighbouring items land on well-separated seeds (which the seeding
/// splitmix then expands to full state).
pub fn thompson_draw(seed: u64, item: u64, mean: f64, std: f64) -> f64 {
    let key = seed ^ item.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    normal(&mut Xoshiro256pp::seed_from_u64(key), mean, std)
}

/// `a` outranks `b`: higher score wins, ties go to the smaller item id.
fn better(a: &Recommendation, b: &Recommendation) -> bool {
    match a.score.total_cmp(&b.score) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => a.item < b.item,
    }
}

/// Restore the min-heap ("worst at the root") after a push.
fn sift_up(heap: &mut [Recommendation]) {
    let mut i = heap.len() - 1;
    while i > 0 {
        let parent = (i - 1) / 2;
        if better(&heap[parent], &heap[i]) {
            heap.swap(parent, i);
            i = parent;
        } else {
            break;
        }
    }
}

/// Restore the min-heap after replacing the root.
fn sift_down(heap: &mut [Recommendation]) {
    let mut i = 0;
    loop {
        let (l, r) = (2 * i + 1, 2 * i + 2);
        let mut worst = i;
        if l < heap.len() && better(&heap[worst], &heap[l]) {
            worst = l;
        }
        if r < heap.len() && better(&heap[worst], &heap[r]) {
            worst = r;
        }
        if worst == i {
            return;
        }
        heap.swap(i, worst);
        i = worst;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpmf_linalg::Mat;
    use bpmf_sparse::Coo;

    /// Deterministic scorer: `predict(u, m) = base[m]` (user-independent).
    struct FixedScores {
        base: Vec<f64>,
    }

    impl Recommender for FixedScores {
        fn predict(&self, _user: usize, movie: usize) -> f64 {
            self.base[movie]
        }
    }

    fn train_matrix() -> Csr {
        // 2 users × 6 items; user 0 has seen items 0 and 3; item 5 has no
        // ratings at all (support 0), items 0..=4 have one or two.
        let mut coo = Coo::new(2, 6);
        coo.push(0, 0, 4.0);
        coo.push(0, 3, 3.0);
        coo.push(1, 0, 5.0);
        coo.push(1, 4, 2.0);
        Csr::from_coo_owned(coo)
    }

    #[test]
    fn top_n_orders_by_score_and_excludes_seen() {
        let model = FixedScores {
            base: vec![9.0, 1.0, 5.0, 8.0, 3.0, 7.0],
        };
        let train = train_matrix();
        let mut service = RecommendService::new(&model, 6).exclude_seen(&train);
        let top = service.top_n(0, 3);
        // Items 0 and 3 are seen; best remaining: 5 (7.0), 2 (5.0), 4 (3.0).
        assert_eq!(
            top.iter().map(|r| r.item).collect::<Vec<_>>(),
            vec![5, 2, 4]
        );
        assert_eq!(top[0].score, 7.0);
    }

    #[test]
    fn allow_deny_and_min_support_filter() {
        let model = FixedScores {
            base: vec![9.0, 8.0, 7.0, 6.0, 5.0, 10.0],
        };
        let train = train_matrix();
        let mut service = RecommendService::new(&model, 6)
            .exclude_seen(&train)
            .min_support(1) // kills items 1, 2, 5 (no training ratings)
            .deny(&[3])
            .allow(&[2, 3, 4]);
        let top = service.top_n(0, 6);
        // user 0 saw 0 and 3 → seen removes them anyway; allow keeps
        // {2,3,4}; deny removes 3; min-support removes 2. Only 4 survives.
        assert_eq!(top.iter().map(|r| r.item).collect::<Vec<_>>(), vec![4]);
    }

    #[test]
    fn ties_break_by_item_id() {
        let model = FixedScores { base: vec![1.0; 8] };
        let mut service = RecommendService::new(&model, 8);
        let top = service.top_n(0, 3);
        assert_eq!(
            top.iter().map(|r| r.item).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn policies_parse_and_reject() {
        assert_eq!("mean".parse::<RankPolicy>().unwrap(), RankPolicy::Mean);
        assert_eq!(
            "ucb".parse::<RankPolicy>().unwrap(),
            RankPolicy::Ucb { beta: 1.0 }
        );
        assert_eq!(
            "UCB:0.5".parse::<RankPolicy>().unwrap(),
            RankPolicy::Ucb { beta: 0.5 }
        );
        assert_eq!(
            "thompson:7".parse::<RankPolicy>().unwrap(),
            RankPolicy::Thompson { seed: 7 }
        );
        assert!(matches!(
            "argmax".parse::<RankPolicy>(),
            Err(BpmfError::UnknownPolicy(_))
        ));
        assert!(matches!(
            "ucb:-1".parse::<RankPolicy>(),
            Err(BpmfError::UnknownPolicy(_))
        ));
    }

    #[test]
    fn thompson_is_deterministic_per_seed_and_explores() {
        // A posterior model with genuine spread: Thompson must reproduce
        // exactly per seed and differ across seeds.
        let u = Mat::from_fn(2, 2, |_, j| 0.3 + j as f64 * 0.1);
        let v = Mat::from_fn(6, 2, |i, j| 0.2 + (i * 2 + j) as f64 * 0.05);
        let u2 = Mat::from_fn(2, 2, |i, j| {
            let m = 0.3 + j as f64 * 0.1;
            m * m + 0.2 + i as f64 * 0.0
        });
        let v2 = Mat::from_fn(6, 2, |i, j| {
            let m = 0.2 + (i * 2 + j) as f64 * 0.05;
            m * m + 0.2
        });
        let model = crate::PosteriorModel::from_factors(u, v, Some((u2, v2)), 3.0, None, 8);
        let run = |seed: u64| {
            let mut service =
                RecommendService::new(&model, 6).policy(RankPolicy::Thompson { seed });
            service.top_n(0, 6)
        };
        let a = run(9);
        let b = run(9);
        assert_eq!(a, b, "same seed, same ranking");
        let c = run(10);
        // Scores are draws: different seeds must produce different scores.
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.score != y.score),
            "different seeds should explore differently"
        );
    }
}
