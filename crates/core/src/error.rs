//! Typed errors for configuration, data validation, and training.
//!
//! The seed codebase validated with `assert!`/`panic!`; library callers
//! (the CLI, services embedding the trainer) need recoverable errors
//! instead. Every legacy panicking entry point now delegates to a
//! `try_*` variant returning [`BpmfError`], and the panic messages are the
//! error's `Display` text, so existing `#[should_panic(expected = ...)]`
//! contracts still hold.

use std::fmt;

use crate::api::Algorithm;

/// Everything that can go wrong assembling or running a recommender.
#[derive(Clone, Debug, PartialEq)]
pub enum BpmfError {
    /// `num_latent` must be at least 1.
    InvalidLatentDim(usize),
    /// Observation precision α must be positive and finite.
    InvalidAlpha(f64),
    /// `kernel_threads` must be at least 1.
    InvalidThreads(usize),
    /// The runtime's worker thread count must be at least 1.
    InvalidWorkerThreads(usize),
    /// Regularization strength λ must be non-negative and finite.
    InvalidLambda(f64),
    /// SGD learning rate must be positive and finite.
    InvalidLearningRate(f64),
    /// Rating bounds must satisfy `min < max` and be finite.
    InvalidRatingBounds {
        /// Requested lower bound.
        min: f64,
        /// Requested upper bound.
        max: f64,
    },
    /// `rt` passed to [`crate::TrainData`] is not the transpose of `r`.
    NotTranspose {
        /// Shape of `r` (rows × cols, nnz).
        r: (usize, usize, usize),
        /// Shape of `rt` (rows × cols, nnz).
        rt: (usize, usize, usize),
    },
    /// A held-out test point indexes outside the rating matrix.
    TestPointOutOfRange {
        /// Position in the test slice.
        index: usize,
        /// Offending user index.
        user: u32,
        /// Offending movie index.
        movie: u32,
        /// Rating-matrix rows.
        nrows: usize,
        /// Rating-matrix cols.
        ncols: usize,
    },
    /// Side-information features must have one row per user/movie.
    SideInfoShape {
        /// Which side the features were attached to.
        side: &'static str,
        /// Rows the rating matrix implies.
        expected_rows: usize,
        /// Rows the feature matrix has.
        found_rows: usize,
    },
    /// A checkpoint does not match the configuration or data it is being
    /// resumed against.
    CheckpointMismatch(String),
    /// The selected algorithm does not support a requested feature.
    Unsupported {
        /// The algorithm that cannot honor the request.
        algorithm: Algorithm,
        /// The requested feature.
        feature: &'static str,
    },
    /// An out-of-core rating store failed to open, parse, or validate.
    Store(String),
    /// An on-disk artifact (slab or checkpoint) failed checksum
    /// verification: a torn write, truncation, or bit rot. Recovery paths
    /// must refuse such state rather than resurrect garbage factors.
    Integrity(String),
    /// An algorithm name failed to parse.
    UnknownAlgorithm(String),
    /// A ranking-policy name failed to parse.
    UnknownPolicy(String),
}

impl fmt::Display for BpmfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // The first three messages are load-bearing: legacy panicking
            // validators emit them and tests pin the text.
            BpmfError::InvalidLatentDim(k) => {
                write!(f, "num_latent must be positive (got {k})")
            }
            BpmfError::InvalidAlpha(a) => write!(f, "alpha must be positive (got {a})"),
            BpmfError::InvalidThreads(t) => {
                write!(f, "kernel_threads must be positive (got {t})")
            }
            BpmfError::InvalidWorkerThreads(t) => {
                write!(f, "threads (worker count) must be positive (got {t})")
            }
            BpmfError::InvalidLambda(l) => {
                write!(f, "lambda must be non-negative and finite (got {l})")
            }
            BpmfError::InvalidLearningRate(lr) => {
                write!(f, "learning rate must be positive and finite (got {lr})")
            }
            BpmfError::InvalidRatingBounds { min, max } => {
                write!(
                    f,
                    "rating bounds must satisfy min < max with finite values (got {min}..{max})"
                )
            }
            BpmfError::NotTranspose { r, rt } => {
                write!(
                    f,
                    "rt must be the transpose of r: r is {}x{} ({} nnz), rt is {}x{} ({} nnz)",
                    r.0, r.1, r.2, rt.0, rt.1, rt.2
                )
            }
            BpmfError::TestPointOutOfRange {
                index,
                user,
                movie,
                nrows,
                ncols,
            } => {
                if (*user as usize) >= *nrows {
                    write!(f, "test user {user} out of range (matrix has {nrows} rows; test point {index})")
                } else {
                    write!(f, "test movie {movie} out of range (matrix has {ncols} cols; test point {index})")
                }
            }
            BpmfError::SideInfoShape {
                side,
                expected_rows,
                found_rows,
            } => {
                write!(
                    f,
                    "one feature row per {side} required: rating matrix implies {expected_rows} rows, features have {found_rows}"
                )
            }
            BpmfError::CheckpointMismatch(msg) => write!(f, "checkpoint mismatch: {msg}"),
            BpmfError::Unsupported { algorithm, feature } => {
                write!(f, "{feature} is not supported by the {algorithm} algorithm")
            }
            BpmfError::Store(msg) => write!(f, "rating store error: {msg}"),
            BpmfError::Integrity(msg) => write!(f, "artifact integrity error: {msg}"),
            BpmfError::UnknownAlgorithm(name) => {
                write!(
                    f,
                    "unknown algorithm '{name}' (expected gibbs | als | sgd | sgmcmc | distributed)"
                )
            }
            BpmfError::UnknownPolicy(name) => {
                write!(
                    f,
                    "unknown ranking policy '{name}' (expected mean | ucb[:beta] | thompson[:seed])"
                )
            }
        }
    }
}

impl std::error::Error for BpmfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_panic_messages_are_preserved() {
        assert!(BpmfError::InvalidAlpha(0.0)
            .to_string()
            .contains("alpha must be positive"));
        assert!(BpmfError::InvalidLatentDim(0)
            .to_string()
            .contains("num_latent must be positive"));
        let nt = BpmfError::NotTranspose {
            r: (2, 3, 4),
            rt: (2, 3, 4),
        };
        assert!(nt.to_string().contains("rt must be the transpose of r"));
        let oob = BpmfError::TestPointOutOfRange {
            index: 0,
            user: 9,
            movie: 0,
            nrows: 5,
            ncols: 5,
        };
        assert!(oob.to_string().contains("test user 9 out of range"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(BpmfError::InvalidLatentDim(0));
        assert!(!e.to_string().is_empty());
    }
}
