//! Reusable [`IterCallback`] policies: early stopping on held-out RMSE
//! patience and on a wall-clock budget.
//!
//! PR 1 made every trainer stream [`IterStats`] through one observer
//! hook; these are the two stock policies the roadmap called for, so
//! examples and services no longer hand-roll stop conditions inside ad-hoc
//! closures. Both compose with any algorithm behind the [`crate::Trainer`]
//! trait (Gibbs iteration, ALS sweep, SGD epoch, distributed replay).

use std::time::{Duration, Instant};

use crate::api::{FitControl, FitSnapshot, IterCallback};
use crate::report::IterStats;

/// The held-out RMSE an iteration is judged by: the posterior-mean RMSE
/// once averaging has started, the current-sample RMSE before that.
fn iteration_rmse(stats: &IterStats) -> f64 {
    if stats.rmse_mean.is_finite() {
        stats.rmse_mean
    } else {
        stats.rmse_sample
    }
}

/// Stop when held-out RMSE has not improved by at least `min_delta` for
/// `patience` consecutive iterations.
///
/// ```
/// use bpmf::{FitControl, IterCallback, NoSnapshot, Patience};
/// # use bpmf::IterStats;
/// # fn stats(iter: usize, rmse: f64) -> IterStats {
/// #     IterStats { iter, rmse_sample: rmse, rmse_mean: f64::NAN,
/// #         items_per_sec: 0.0, sweep_seconds: 0.0, busy_fraction: 1.0, steals: 0 }
/// # }
/// let mut cb = Patience::new(2, 0.0);
/// assert_eq!(cb.on_iteration(&stats(0, 1.0), &NoSnapshot), FitControl::Continue);
/// assert_eq!(cb.on_iteration(&stats(1, 0.9), &NoSnapshot), FitControl::Continue);
/// assert_eq!(cb.on_iteration(&stats(2, 0.95), &NoSnapshot), FitControl::Continue);
/// assert_eq!(cb.on_iteration(&stats(3, 0.91), &NoSnapshot), FitControl::Stop);
/// ```
pub struct Patience {
    patience: usize,
    min_delta: f64,
    best: f64,
    stale: usize,
}

impl Patience {
    /// Stop after `patience` iterations without an improvement of at least
    /// `min_delta` over the best RMSE seen so far.
    ///
    /// # Panics
    ///
    /// Panics if `patience` is zero (the very first iteration could never
    /// "improve" on anything and training would stop immediately).
    pub fn new(patience: usize, min_delta: f64) -> Self {
        assert!(patience > 0, "patience must be at least 1");
        Patience {
            patience,
            min_delta,
            best: f64::INFINITY,
            stale: 0,
        }
    }

    /// Best held-out RMSE observed so far.
    pub fn best_rmse(&self) -> f64 {
        self.best
    }
}

impl IterCallback for Patience {
    fn on_iteration(&mut self, stats: &IterStats, _snapshot: &dyn FitSnapshot) -> FitControl {
        let rmse = iteration_rmse(stats);
        // No held-out metric (e.g. training with an empty test set) means
        // progress cannot be judged — never stop on an undefined RMSE.
        if rmse.is_nan() {
            return FitControl::Continue;
        }
        if rmse < self.best - self.min_delta {
            self.best = rmse;
            self.stale = 0;
            return FitControl::Continue;
        }
        self.best = self.best.min(rmse);
        self.stale += 1;
        if self.stale >= self.patience {
            FitControl::Stop
        } else {
            FitControl::Continue
        }
    }
}

/// Stop when training has consumed its wall-clock budget.
///
/// The clock starts at construction, so the budget covers the whole fit
/// (including setup); training stops after the first iteration that
/// finishes past the deadline.
pub struct WallClockBudget {
    deadline: Instant,
}

impl WallClockBudget {
    /// Budget of `budget` wall time starting now.
    pub fn new(budget: Duration) -> Self {
        WallClockBudget {
            deadline: Instant::now() + budget,
        }
    }

    /// Remaining budget (zero once exhausted).
    pub fn remaining(&self) -> Duration {
        self.deadline.saturating_duration_since(Instant::now())
    }
}

impl IterCallback for WallClockBudget {
    fn on_iteration(&mut self, _stats: &IterStats, _snapshot: &dyn FitSnapshot) -> FitControl {
        if Instant::now() >= self.deadline {
            FitControl::Stop
        } else {
            FitControl::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::NoSnapshot;

    fn stats(iter: usize, rmse_sample: f64, rmse_mean: f64) -> IterStats {
        IterStats {
            iter,
            rmse_sample,
            rmse_mean,
            items_per_sec: 1.0,
            sweep_seconds: 0.1,
            busy_fraction: 1.0,
            steals: 0,
        }
    }

    #[test]
    fn patience_tolerates_plateaus_up_to_the_limit() {
        let mut cb = Patience::new(3, 0.0);
        let seq = [1.0, 0.8, 0.81, 0.82, 0.79, 0.80, 0.80, 0.80];
        let mut stopped_at = None;
        for (i, &r) in seq.iter().enumerate() {
            if cb.on_iteration(&stats(i, r, f64::NAN), &NoSnapshot) == FitControl::Stop {
                stopped_at = Some(i);
                break;
            }
        }
        // 0.79 at index 4 resets the counter; 0.80 ×3 exhausts it at 7.
        assert_eq!(stopped_at, Some(7));
        assert_eq!(cb.best_rmse(), 0.79);
    }

    #[test]
    fn patience_min_delta_counts_marginal_gains_as_stale() {
        let mut cb = Patience::new(2, 0.05);
        assert_eq!(
            cb.on_iteration(&stats(0, 1.0, f64::NAN), &NoSnapshot),
            FitControl::Continue
        );
        // 0.97 improves by < min_delta: stale.
        assert_eq!(
            cb.on_iteration(&stats(1, 0.97, f64::NAN), &NoSnapshot),
            FitControl::Continue
        );
        assert_eq!(
            cb.on_iteration(&stats(2, 0.96, f64::NAN), &NoSnapshot),
            FitControl::Stop
        );
        // The best tracker still records the marginal gains.
        assert_eq!(cb.best_rmse(), 0.96);
    }

    #[test]
    fn patience_prefers_posterior_mean_rmse() {
        let mut cb = Patience::new(1, 0.0);
        // Sample RMSE improves but the posterior-mean RMSE (the one that
        // matters) does not → stop.
        cb.on_iteration(&stats(0, 2.0, 0.5), &NoSnapshot);
        assert_eq!(
            cb.on_iteration(&stats(1, 1.0, 0.6), &NoSnapshot),
            FitControl::Stop
        );
    }

    #[test]
    fn undefined_rmse_never_stops_training() {
        // No test set → both RMSE fields are NaN forever; patience must
        // not mistake "no metric" for "no progress".
        let mut cb = Patience::new(1, 0.0);
        for i in 0..20 {
            assert_eq!(
                cb.on_iteration(&stats(i, f64::NAN, f64::NAN), &NoSnapshot),
                FitControl::Continue,
                "iteration {i}"
            );
        }
    }

    #[test]
    fn zero_budget_stops_immediately() {
        let mut cb = WallClockBudget::new(Duration::ZERO);
        assert_eq!(
            cb.on_iteration(&stats(0, 1.0, f64::NAN), &NoSnapshot),
            FitControl::Stop
        );
        assert_eq!(cb.remaining(), Duration::ZERO);
    }

    #[test]
    fn generous_budget_continues() {
        let mut cb = WallClockBudget::new(Duration::from_secs(3600));
        assert_eq!(
            cb.on_iteration(&stats(0, 1.0, f64::NAN), &NoSnapshot),
            FitControl::Continue
        );
        assert!(cb.remaining() > Duration::from_secs(3000));
    }

    #[test]
    #[should_panic(expected = "patience must be at least 1")]
    fn zero_patience_is_rejected() {
        let _ = Patience::new(0, 0.0);
    }
}
