#![warn(missing_docs)]

//! # bpmf — Distributed Bayesian Probabilistic Matrix Factorization
//!
//! A from-scratch Rust reproduction of *"Distributed Bayesian Probabilistic
//! Matrix Factorization"* (Vander Aa, Chakroun, Haber — IEEE CLUSTER 2016):
//! the BPMF Gibbs sampler of Salakhutdinov & Mnih engineered for multi-core
//! and distributed execution.
//!
//! ## What lives here
//!
//! * [`GibbsSampler`] — the sampler itself: Normal–Wishart hyperparameter
//!   resampling, per-item conditional updates, RMSE tracking with posterior
//!   averaging;
//! * the three item-update kernels of the paper's Fig. 2
//!   ([`UpdateMethod::RankOne`], [`UpdateMethod::CholSerial`],
//!   [`UpdateMethod::CholParallel`]) plus the adaptive selection rule;
//! * multicore execution over any [`bpmf_sched::ItemRunner`] — work-stealing
//!   (TBB-like), static chunks (OpenMP-like) or the GraphLab-like vertex
//!   engine ([`EngineKind`]);
//! * the distributed driver ([`distributed`]) over the message-passing
//!   runtime: workload-model partitioning, cross-rank item exchange with
//!   buffered asynchronous sends, barrier-free phase alignment via
//!   per-source quotas, and Fig. 5 overlap accounting;
//! * [`FeatureSideInfo`] — Macau-style side information (the paper's
//!   reference \[6\]): per-item features shift the prior mean through a
//!   Gibbs-sampled link matrix, closing the ChEMBL cold-start gap;
//! * [`diagnostics`] — effective sample size, autocorrelation, and the
//!   Gelman–Rubin R̂ for validating that every execution mode samples the
//!   same posterior (the formal version of §V-B's accuracy-parity claim);
//! * [`checkpoint`] — bit-exact save/resume of a running chain, including
//!   the side-information link state.
//!
//! ## Quickstart
//!
//! ```
//! use bpmf::{BpmfConfig, EngineKind, GibbsSampler, TrainData};
//! use bpmf_sparse::{Coo, Csr};
//!
//! // Toy 4×3 rating matrix.
//! let mut coo = Coo::new(4, 3);
//! for (u, m, r) in [(0, 0, 5.0), (0, 1, 3.0), (1, 0, 4.0), (2, 2, 1.0), (3, 1, 2.0)] {
//!     coo.push(u, m, r);
//! }
//! let r = Csr::from_coo_owned(coo);
//! let rt = r.transpose();
//! let test = vec![(1u32, 1u32, 3.0)];
//! let data = TrainData::new(&r, &rt, 3.0, &test);
//!
//! let cfg = BpmfConfig { num_latent: 4, burnin: 5, samples: 10, ..Default::default() };
//! let runner = EngineKind::WorkStealing.build(1);
//! let mut sampler = GibbsSampler::new(cfg, data);
//! let report = sampler.run(runner.as_ref(), 15);
//! assert!(report.final_rmse().is_finite());
//! ```

pub mod checkpoint;
pub mod diagnostics;
pub mod distributed;
mod config;
mod engine;
mod model;
mod report;
mod sampler;
mod sideinfo;
mod update;

pub use config::BpmfConfig;
pub use engine::EngineKind;
pub use report::{IterStats, TrainReport};
pub use sampler::{GibbsSampler, PredictionSummary, TrainData};
pub use sideinfo::FeatureSideInfo;
pub use update::{choose_method, update_item, SidePrior, UpdateMethod, UpdateScratch};
