#![warn(missing_docs)]

//! # bpmf — Distributed Bayesian Probabilistic Matrix Factorization
//!
//! A from-scratch Rust reproduction of *"Distributed Bayesian Probabilistic
//! Matrix Factorization"* (Vander Aa, Chakroun, Haber — IEEE CLUSTER 2016):
//! the BPMF Gibbs sampler of Salakhutdinov & Mnih engineered for multi-core
//! and distributed execution.
//!
//! ## What lives here
//!
//! * the **unified recommender API** — [`Bpmf::builder`] (one fluent,
//!   validated configuration), the [`Trainer`] and [`Recommender`] traits
//!   (one `fit`/`predict` facade shared by Gibbs here and the ALS/SGD
//!   baselines in `bpmf-baselines`), [`FitReport`] (one report shape so
//!   RMSE/timing curves from all three algorithms are directly
//!   comparable), [`IterCallback`] (per-iteration stats streaming,
//!   checkpoint snapshots, early stop), and typed [`BpmfError`]s instead
//!   of panics;
//! * [`GibbsSampler`] — the sampler itself: Normal–Wishart hyperparameter
//!   resampling, per-item conditional updates, RMSE tracking with posterior
//!   averaging;
//! * the three item-update kernels of the paper's Fig. 2
//!   ([`UpdateMethod::RankOne`], [`UpdateMethod::CholSerial`],
//!   [`UpdateMethod::CholParallel`]) plus the adaptive selection rule;
//! * multicore execution over any [`bpmf_sched::ItemRunner`] — work-stealing
//!   (TBB-like), static chunks (OpenMP-like) or the GraphLab-like vertex
//!   engine ([`EngineKind`]);
//! * the distributed driver ([`distributed`]) over the message-passing
//!   runtime: workload-model partitioning, cross-rank item exchange with
//!   buffered asynchronous sends, barrier-free phase alignment via
//!   per-source quotas, Fig. 5 overlap accounting, and the
//!   [`DistributedTrainer`] facade adapter ([`Algorithm::Distributed`])
//!   with end-of-run posterior-factor gathering for serving;
//! * the serving layer ([`serve`]) — [`serve::RecommendService`]: batched
//!   scoring through the blocked linalg kernels, top-N recommendation with
//!   candidate filtering (exclude-seen, allow/deny lists, min-support),
//!   uncertainty-aware ranking policies (mean / UCB / Thompson), and the
//!   persistent serving daemon ([`serve::daemon`]): concurrent TCP
//!   requests coalesced ([`serve::coalesce`]) into GEMM micro-batches
//!   behind a newline-delimited JSON protocol ([`serve::wire`]), with
//!   [`serve::supervise`] keeping the replica fleet itself alive
//!   (respawn under restart budgets, quarantine on crash loops or
//!   checksum-corrupt artifacts) and fresh (rolling zero-downtime
//!   model reloads, one replica per group at a time, when a served
//!   checkpoint changes on disk); daemons own their model through an
//!   epoch-stamped swappable [`ModelHandle`] and answer cold-start
//!   users live via [`Recommender::fold_in_user`];
//! * [`FeatureSideInfo`] — Macau-style side information (the paper's
//!   reference \[6\]): per-item features shift the prior mean through a
//!   Gibbs-sampled link matrix, closing the ChEMBL cold-start gap;
//! * [`diagnostics`] — effective sample size, autocorrelation, and the
//!   Gelman–Rubin R̂ for validating that every execution mode samples the
//!   same posterior (the formal version of §V-B's accuracy-parity claim);
//! * [`checkpoint`] — bit-exact save/resume of a running chain, including
//!   the side-information link state.
//!
//! ## Quickstart
//!
//! Configuration goes through one fluent builder; training goes through
//! the [`Trainer`] trait; the fitted [`Recommender`] serves predictions
//! (clamped to the rating scale when bounds are set):
//!
//! ```
//! use bpmf::{Bpmf, EngineKind, NoCallback, Recommender, TrainData, Trainer};
//! use bpmf_sparse::{Coo, Csr};
//!
//! // Toy 4×3 rating matrix.
//! let mut coo = Coo::new(4, 3);
//! for (u, m, r) in [(0, 0, 5.0), (0, 1, 3.0), (1, 0, 4.0), (2, 2, 1.0), (3, 1, 2.0)] {
//!     coo.push(u, m, r);
//! }
//! let r = Csr::from_coo_owned(coo);
//! let rt = r.transpose();
//! let test = vec![(1u32, 1u32, 3.0)];
//! let data = TrainData::try_new(&r, &rt, 3.0, &test)?;
//!
//! let spec = Bpmf::builder()
//!     .latent(4)
//!     .burnin(5)
//!     .samples(10)
//!     .engine(EngineKind::WorkStealing)
//!     .threads(1)
//!     .rating_bounds(1.0, 5.0)
//!     .build()?;
//! let runner = spec.runner();
//! let mut trainer = spec.gibbs_trainer();
//! let report = trainer.fit(&data, runner.as_ref(), &mut NoCallback)?;
//! assert!(report.final_rmse().is_finite());
//!
//! let model = trainer.recommender().expect("fitted");
//! let p = model.predict(1, 1);
//! assert!((1.0..=5.0).contains(&p));
//!
//! // …and serve it: batched scoring + filtered top-N through the
//! // `serve::RecommendService` front-end (exclude already-rated items,
//! // rank by posterior mean / UCB / Thompson sampling).
//! use bpmf::serve::{RankPolicy, RecommendService};
//! let mut service = RecommendService::for_train_data(model, &data)
//!     .policy(RankPolicy::Ucb { beta: 0.5 });
//! for rec in service.top_n(1, 2) {
//!     assert_ne!(rec.item, 0, "user 1 already rated movie 0");
//! }
//!
//! // Heavy traffic? Serve whole request blocks: `recommend_batch` scores
//! // a block of users with one register-tiled GEMM per [`serve::MICRO_BATCH`]-user
//! // micro-batch (one streaming pass over the catalogue for the whole
//! // block) and returns each user's list, identical to per-user `top_n`.
//! let lists = service.recommend_batch(&[0, 1, 2], 2);
//! assert_eq!(lists.len(), 3);
//! let direct = service.top_n(1, 2);
//! assert!(lists[1].iter().zip(&direct).all(|(a, b)| a.item == b.item));
//!
//! // Genuinely concurrent traffic? Keep the model resident behind the
//! // serving daemon: requests arriving over TCP (newline-delimited JSON)
//! // are *coalesced* into those same GEMM micro-batches — flush at
//! // `serve::MICRO_BATCH` pending or the batch window, whichever first —
//! // and each reply is routed back to its connection. `bpmf-train
//! // serve-daemon` wraps
//! // exactly this; see `serve::daemon` for the architecture.
//! use bpmf::serve::daemon::{self, DaemonConfig, ServingModel};
//! use bpmf::serve::wire;
//! use bpmf::ModelHandle;
//! use std::io::{BufRead as _, BufReader, Write as _};
//! use std::sync::atomic::{AtomicBool, Ordering};
//!
//! // The daemon *owns* its model through an epoch-stamped, swappable
//! // `ModelHandle` (RCU-style atomic pointer) instead of borrowing it
//! // for life — that's what makes live reload below possible.
//! let world = ServingModel {
//!     model: ModelHandle::new(trainer.shared_model().expect("fitted"), 1),
//!     train: Some(&r),
//!     n_users: r.nrows(),
//!     n_items: r.ncols(),
//!     shard: None,
//!     reload: None, // daemon::ReloadContext enables the `reload` command
//! };
//! let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
//! let addr = listener.local_addr().unwrap();
//! let stop = AtomicBool::new(false);
//! std::thread::scope(|s| {
//!     let daemon = s.spawn(|| daemon::serve(&world, listener, &DaemonConfig::default(), &stop));
//!     let mut conn = std::net::TcpStream::connect(addr).unwrap();
//!     writeln!(conn, "{}", wire::encode(&wire::Request::recommend(7, 1))).unwrap();
//!     let mut reply = String::new();
//!     BufReader::new(conn.try_clone().unwrap()).read_line(&mut reply).unwrap();
//!     let resp = wire::decode_response(&reply).unwrap();
//!     assert!(resp.error.is_none() && resp.id == 7);
//!     stop.store(true, Ordering::Relaxed); // SIGINT in the CLI
//!     daemon.join().unwrap().unwrap(); // drains in-flight batches
//! });
//!
//! // Models go stale while the daemon runs. Publish a fresh posterior
//! // with `swap`: new micro-batches score against it immediately, while
//! // a worker that already pinned a guard finishes its batch on the old
//! // version — every reply is computed entirely against exactly one
//! // model, never a half-swapped mix. Over the wire,
//! // `{"cmd":"reload","path":"v2.ckpt"}` (CLI: `serve-client --reload
//! // v2.ckpt`) does exactly this after CRC + shard validation, with
//! // zero dropped requests.
//! let pinned = world.model.load();
//! world.model.swap(trainer.shared_model().expect("fitted"), 2);
//! assert_eq!((pinned.epoch(), world.model.epoch()), (1, 2));
//! assert!(!world.model.is_current(&pinned)); // reader drains, then re-pins
//!
//! // Cold-start: a user who signed up *after* training still gets a
//! // personalised list — one conjugate Gibbs kernel call folds their
//! // ratings in against the fixed item factors, served in milliseconds
//! // with no retrain (wire: `{"cmd":"fold_in","ratings":[…]}`; CLI:
//! // `serve-client --fold-in '0:5.0,2:1.0'`).
//! let fold = world.model.load().model().fold_in_user(&[0, 2], &[5.0, 1.0]).unwrap();
//! assert_eq!(fold.factors.len(), 4); // K posterior-mean factors
//! assert_eq!(fold.scores.len(), r.ncols()); // ready to rank
//!
//! // Catalogue outgrew one process? Shard it: each `ShardView` serves a
//! // contiguous GEMM-panel-aligned item range (global ids in replies),
//! // and `merge_top_n` k-way-merges the per-shard lists with the exact
//! // tie-break order of the single-process ranking — so the sharded
//! // answer is bit-identical to the whole-catalogue one. `bpmf-train
//! // serve-daemon --shard i/N` plus `serve-router` run exactly this
//! // split over TCP; see `serve::router` for the scatter-gather side.
//! use bpmf::serve::shard::{merge_top_n, shard_ranges, slice_train_columns, ShardView};
//! use bpmf::serve::wire::RankedItem;
//! let whole = service.top_n(1, 2);
//! let model = trainer.shared_model().expect("fitted");
//! let per_shard: Vec<Vec<RankedItem>> = shard_ranges(r.ncols(), 2)
//!     .into_iter()
//!     .map(|(lo, hi)| {
//!         let view = ShardView::new(model.clone(), lo, hi);
//!         let local = slice_train_columns(&r, lo, hi);
//!         RecommendService::new(&view, hi - lo)
//!             .exclude_seen(&local)
//!             .policy(RankPolicy::Ucb { beta: 0.5 })
//!             .item_base(lo as u32)
//!             .top_n(1, 2)
//!             .into_iter()
//!             .map(RankedItem::from)
//!             .collect()
//!     })
//!     .collect();
//! let merged = merge_top_n(&per_shard, 2);
//! assert!(whole.iter().zip(&merged).all(|(a, b)| {
//!     a.item == b.item && a.score.to_bits() == b.score.to_bits()
//! }));
//!
//! // Shards crash. Give each range a *replica group* instead of a single
//! // daemon: the router scatters each request to the least-loaded healthy
//! // replica and — because scoring is a pure read over an immutable
//! // posterior — transparently retries on the twin when a link dies
//! // mid-flight. Clients see zero errors and bit-identical rankings; a
//! // typed `partial_result` refusal appears only when EVERY replica of a
//! // range is down. `bpmf-train serve-router --shard-addr i/N@HOST:PORT`
//! // (repeated per replica) runs this fleet-side, and `serve::faults`
//! // scripts deterministic link failures for chaos drills.
//! use bpmf::serve::router::{self, RouterConfig};
//! use bpmf::serve::shard::ShardSpec;
//! let range = ServingModel {
//!     shard: Some(ShardSpec::for_shard(0, 1, r.ncols(), 1)),
//!     ..world
//! };
//! let twin_a = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
//! let twin_b = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
//! let group = vec![vec![
//!     twin_a.local_addr().unwrap().to_string(),
//!     twin_b.local_addr().unwrap().to_string(),
//! ]];
//! let front = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
//! let front_addr = front.local_addr().unwrap();
//! let stop_a = AtomicBool::new(false);
//! let stop_b = AtomicBool::new(false);
//! let halt = AtomicBool::new(false);
//! std::thread::scope(|s| {
//!     s.spawn(|| daemon::serve(&range, twin_a, &DaemonConfig::default(), &stop_a));
//!     s.spawn(|| daemon::serve(&range, twin_b, &DaemonConfig::default(), &stop_b));
//!     let rt = s.spawn(|| router::serve(front, &group, &RouterConfig::default(), &halt));
//!     let ask = |user: u64| {
//!         let mut conn = std::net::TcpStream::connect(front_addr).unwrap();
//!         writeln!(conn, "{}", wire::encode(&wire::Request::recommend(user, user as u32))).unwrap();
//!         let mut reply = String::new();
//!         BufReader::new(conn).read_line(&mut reply).unwrap();
//!         wire::decode_response(&reply).unwrap()
//!     };
//!     // Replica links dial in asynchronously; recommends are refused
//!     // with a typed error until the range has a live replica.
//!     while ask(0).error.is_some() {
//!         std::thread::sleep(std::time::Duration::from_millis(10));
//!     }
//!     stop_a.store(true, Ordering::Relaxed); // one replica dies...
//!     assert!(ask(1).error.is_none()); // ...and no client notices
//!     halt.store(true, Ordering::Relaxed);
//!     rt.join().unwrap().unwrap();
//!     stop_b.store(true, Ordering::Relaxed);
//! });
//! # Ok::<(), bpmf::BpmfError>(())
//! ```
//!
//! Failover masks a replica death; [`serve::supervise`] *heals* it. One
//! supervisor process owns the whole fleet as children, reaps deaths
//! (SIGCHLD-aware, no zombies), respawns each replica on its original
//! port under a jittered restart budget, health-probes the survivors,
//! and — because every (re)spawn re-verifies the replica's checkpoint
//! checksum first — never resurrects a replica onto corrupt state.
//! `bpmf-train serve-fleet --replica i/N@HOST:PORT=CKPT … -- DAEMON ARGS`
//! wraps exactly this. A replica that keeps dying is quarantined with a
//! typed diagnostic rather than restarted forever:
//!
//! ```
//! use bpmf::serve::supervise::{supervise, ReplicaSpec, SuperviseConfig};
//! use bpmf::serve::wire;
//! use std::sync::atomic::AtomicBool;
//! use std::time::Duration;
//!
//! let crash_looper = ReplicaSpec {
//!     id: "0/1@127.0.0.1:7001".into(),
//!     addr: "127.0.0.1:7001".into(),
//!     // Normally `bpmf-train serve-daemon --shard 0/1 --addr …`; respawns
//!     // reuse this argv verbatim so the replica returns on its port.
//!     argv: vec!["/bin/sh".into(), "-c".into(), "exit 1".into()],
//!     checkpoint: None, // integrity-checked before every (re)spawn when set
//!     group: 0, // rolling reloads touch one replica per group at a time
//! };
//! let cfg = SuperviseConfig {
//!     restart_limit: 2,
//!     backoff_base: Duration::from_millis(2),
//!     backoff_max: Duration::from_millis(8),
//!     ..SuperviseConfig::default()
//! };
//! let mut events = Vec::new();
//! let report = supervise(
//!     &[crash_looper],
//!     &cfg,
//!     &AtomicBool::new(false), // the CLI wires SIGINT/SIGTERM to this
//!     &mut |d| events.push(d),
//! )?;
//! // Initial spawn + 2 budget-charged respawns, then quarantine — the
//! // supervisor returns on its own once nothing is left to supervise.
//! assert_eq!((report.spawns, report.quarantined), (3, 1));
//! assert!(events.iter().any(|d| d.code == wire::CODE_CRASH_LOOP));
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! The same `fit` call trains ALS or SGD instead: pick the algorithm with
//! `.algorithm(Algorithm::Als)` and dispatch through
//! `bpmf_baselines::make_trainer(&spec)` — the CLI, benchmark tables, and
//! examples all go through that one `Box<dyn Trainer>` path. The paper's
//! distributed sampler is behind the same facade:
//! `.algorithm(Algorithm::Distributed)` trains over a message-passing
//! universe with `threads` ranks ([`DistributedTrainer`]) and leaves the
//! same [`PosteriorModel`] behind for serving. To observe training live
//! (or stop it early), pass an [`IterCallback`] closure instead of
//! [`NoCallback`] — or the stock [`Patience`] / [`WallClockBudget`]
//! early-stop policies.
//!
//! The legacy entry points ([`GibbsSampler::new`] + [`BpmfConfig`] struct
//! literals, panic-based validation) still work and now delegate to the
//! `try_*` variants internally.
//!
//! ## Out-of-core: pack → mmap → train → serve
//!
//! When the rating matrix outgrows RAM, pack it once into an on-disk CSR
//! slab (`bpmf-train pack --train r.mtx --out r.slab --test-out t.mtx`
//! wraps exactly this) and train straight off a read-only memory map.
//! [`TrainData`] holds `&dyn` [`RatingStore`], so the swap is invisible
//! to the samplers — the slab-backed Gibbs chain is **bit-identical** to
//! the in-RAM chain — and only the row-pointer tables live on the heap:
//! column indices and values stream through the page cache, which the
//! kernel can reclaim under memory pressure.
//!
//! ```
//! use bpmf::{BpmfConfig, EngineKind, GibbsSampler, MappedSlab, TrainData};
//! use bpmf_sparse::{slab_extents, write_slab, Coo, Csr};
//!
//! let mut coo = Coo::new(4, 3);
//! for (u, m, r) in [(0, 0, 5.0), (0, 1, 3.0), (1, 0, 4.0), (2, 2, 1.0), (3, 1, 2.0)] {
//!     coo.push(u, m, r);
//! }
//! let r = Csr::from_coo_owned(coo);
//! let rt = r.transpose();
//!
//! // `bpmf-train pack` writes this file format (both CSR orientations,
//! // 8-byte-aligned little-endian sections; see `bpmf_sparse::slab`).
//! let path = std::env::temp_dir().join(format!("bpmf-doc-{}.slab", std::process::id()));
//! let mut w = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
//! write_slab(&mut w, &r, &rt, 3.0, &slab_extents(&r, 2)).unwrap();
//! drop(w);
//!
//! // `bpmf-train --train r.slab --test t.mtx` opens it like this: two
//! // zero-copy CSR views (rating rows mmap'd, paged in on demand).
//! let slab = MappedSlab::open(&path).unwrap();
//! let (sr, srt) = (slab.r(), slab.rt());
//! let test = vec![(1u32, 1u32, 3.0)];
//! let data = TrainData::try_new(&sr, &srt, slab.global_mean(), &test).unwrap();
//! let cfg = BpmfConfig {
//!     num_latent: 4,
//!     burnin: 2,
//!     samples: 3,
//!     seed: 7,
//!     kernel_threads: 1,
//!     ..Default::default()
//! };
//! let runner = EngineKind::WorkStealing.build(1);
//! let mut sampler = GibbsSampler::new(cfg.clone(), data);
//! let report = sampler.run(runner.as_ref(), cfg.iterations());
//! assert!(report.final_rmse().is_finite());
//! // The posterior is an ordinary in-RAM model: checkpoint it, serve it
//! // through `RecommendService` or the daemon exactly as above.
//! # drop(slab);
//! # std::fs::remove_file(&path).unwrap();
//! ```
//!
//! Mini-batch SG-MCMC rides the same store abstraction: Stochastic
//! Gradient Langevin Dynamics ([`SgldSampler`]) draws rating mini-batches
//! from whichever store backs the run, trading the Gibbs sweep's
//! full-conditional pass for constant-size epochs. Select it through the
//! facade with `.algorithm(Algorithm::Sgmcmc).minibatch(10_000)` (CLI:
//! `--algorithm sgmcmc`), tune with `.sgld_step_size(…)` /
//! `.sgld_step_decay(…)`.

mod api;
mod callbacks;
pub mod checkpoint;
mod config;
pub mod diagnostics;
pub mod distributed;
mod engine;
mod error;
mod model;
mod report;
mod sampler;
pub mod serve;
mod sgld;
mod sideinfo;
pub mod store;
mod update;

pub use api::{
    Algorithm, Bpmf, BpmfBuilder, FitControl, FitSnapshot, FoldIn, FoldInError, GibbsTrainer,
    IterCallback, ModelGuard, ModelHandle, NoCallback, NoSnapshot, PosteriorModel, Recommender,
    SideInfoSpec, Trainer,
};
pub use callbacks::{Patience, WallClockBudget};
pub use config::BpmfConfig;
pub use distributed::DistributedTrainer;
pub use engine::EngineKind;
pub use error::BpmfError;
pub use report::{FitReport, IterStats, TrainReport};
pub use sampler::{GibbsSampler, PredictionSummary, TrainData};
pub use sgld::{SgldConfig, SgldSampler};
pub use sideinfo::FeatureSideInfo;
pub use store::{store_row_weights, MappedSlab, RatingStore, SlabCsr};
pub use update::{
    choose_method, fold_in_mean, update_item, SidePrior, UpdateMethod, UpdateScratch,
};
