#![warn(missing_docs)]

//! # bpmf — Distributed Bayesian Probabilistic Matrix Factorization
//!
//! A from-scratch Rust reproduction of *"Distributed Bayesian Probabilistic
//! Matrix Factorization"* (Vander Aa, Chakroun, Haber — IEEE CLUSTER 2016):
//! the BPMF Gibbs sampler of Salakhutdinov & Mnih engineered for multi-core
//! and distributed execution.
//!
//! ## What lives here
//!
//! * the **unified recommender API** — [`Bpmf::builder`] (one fluent,
//!   validated configuration), the [`Trainer`] and [`Recommender`] traits
//!   (one `fit`/`predict` facade shared by Gibbs here and the ALS/SGD
//!   baselines in `bpmf-baselines`), [`FitReport`] (one report shape so
//!   RMSE/timing curves from all three algorithms are directly
//!   comparable), [`IterCallback`] (per-iteration stats streaming,
//!   checkpoint snapshots, early stop), and typed [`BpmfError`]s instead
//!   of panics;
//! * [`GibbsSampler`] — the sampler itself: Normal–Wishart hyperparameter
//!   resampling, per-item conditional updates, RMSE tracking with posterior
//!   averaging;
//! * the three item-update kernels of the paper's Fig. 2
//!   ([`UpdateMethod::RankOne`], [`UpdateMethod::CholSerial`],
//!   [`UpdateMethod::CholParallel`]) plus the adaptive selection rule;
//! * multicore execution over any [`bpmf_sched::ItemRunner`] — work-stealing
//!   (TBB-like), static chunks (OpenMP-like) or the GraphLab-like vertex
//!   engine ([`EngineKind`]);
//! * the distributed driver ([`distributed`]) over the message-passing
//!   runtime: workload-model partitioning, cross-rank item exchange with
//!   buffered asynchronous sends, barrier-free phase alignment via
//!   per-source quotas, and Fig. 5 overlap accounting;
//! * [`FeatureSideInfo`] — Macau-style side information (the paper's
//!   reference \[6\]): per-item features shift the prior mean through a
//!   Gibbs-sampled link matrix, closing the ChEMBL cold-start gap;
//! * [`diagnostics`] — effective sample size, autocorrelation, and the
//!   Gelman–Rubin R̂ for validating that every execution mode samples the
//!   same posterior (the formal version of §V-B's accuracy-parity claim);
//! * [`checkpoint`] — bit-exact save/resume of a running chain, including
//!   the side-information link state.
//!
//! ## Quickstart
//!
//! Configuration goes through one fluent builder; training goes through
//! the [`Trainer`] trait; the fitted [`Recommender`] serves predictions
//! (clamped to the rating scale when bounds are set):
//!
//! ```
//! use bpmf::{Bpmf, EngineKind, NoCallback, Recommender, TrainData, Trainer};
//! use bpmf_sparse::{Coo, Csr};
//!
//! // Toy 4×3 rating matrix.
//! let mut coo = Coo::new(4, 3);
//! for (u, m, r) in [(0, 0, 5.0), (0, 1, 3.0), (1, 0, 4.0), (2, 2, 1.0), (3, 1, 2.0)] {
//!     coo.push(u, m, r);
//! }
//! let r = Csr::from_coo_owned(coo);
//! let rt = r.transpose();
//! let test = vec![(1u32, 1u32, 3.0)];
//! let data = TrainData::try_new(&r, &rt, 3.0, &test)?;
//!
//! let spec = Bpmf::builder()
//!     .latent(4)
//!     .burnin(5)
//!     .samples(10)
//!     .engine(EngineKind::WorkStealing)
//!     .threads(1)
//!     .rating_bounds(1.0, 5.0)
//!     .build()?;
//! let runner = spec.runner();
//! let mut trainer = spec.gibbs_trainer();
//! let report = trainer.fit(&data, runner.as_ref(), &mut NoCallback)?;
//! assert!(report.final_rmse().is_finite());
//!
//! let model = trainer.recommender().expect("fitted");
//! let p = model.predict(1, 1);
//! assert!((1.0..=5.0).contains(&p));
//! # Ok::<(), bpmf::BpmfError>(())
//! ```
//!
//! The same `fit` call trains ALS or SGD instead: pick the algorithm with
//! `.algorithm(Algorithm::Als)` and dispatch through
//! `bpmf_baselines::make_trainer(&spec)` — the CLI, benchmark tables, and
//! examples all go through that one `Box<dyn Trainer>` path. To observe
//! training live (or stop it early), pass an [`IterCallback`] closure
//! instead of [`NoCallback`].
//!
//! The legacy entry points ([`GibbsSampler::new`] + [`BpmfConfig`] struct
//! literals, panic-based validation) still work and now delegate to the
//! `try_*` variants internally.

mod api;
pub mod checkpoint;
mod config;
pub mod diagnostics;
pub mod distributed;
mod engine;
mod error;
mod model;
mod report;
mod sampler;
mod sideinfo;
mod update;

pub use api::{
    Algorithm, Bpmf, BpmfBuilder, FitControl, FitSnapshot, GibbsTrainer, IterCallback, NoCallback,
    NoSnapshot, PosteriorModel, Recommender, SideInfoSpec, Trainer,
};
pub use config::BpmfConfig;
pub use engine::EngineKind;
pub use error::BpmfError;
pub use report::{FitReport, IterStats, TrainReport};
pub use sampler::{GibbsSampler, PredictionSummary, TrainData};
pub use sideinfo::FeatureSideInfo;
pub use update::{choose_method, update_item, SidePrior, UpdateMethod, UpdateScratch};
